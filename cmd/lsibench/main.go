// Command lsibench reproduces the paper's tables, figures, and
// theorem-shaped claims from the command line. Each subcommand runs one
// experiment from internal/experiments and prints its table; `all` runs the
// full suite (as used to populate EXPERIMENTS.md).
//
// Usage:
//
//	lsibench <experiment> [-small] [-json] [flags]
//	lsibench all [-small] [-json]
//	lsibench list
//
// -json emits machine-readable results (experiment name, wall-clock
// elapsed seconds, rendered table lines) so perf and output can be
// diffed across commits without parsing tables.
//
// Experiments: table1, thm2, thm3, lemma1, jl, thm5, runtime, synonymy,
// thm6, retrieval, cf, mixture, ablate-weighting, ablate-projection,
// ablate-engine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

// experiment is one runnable entry: a description and a runner that parses
// its own flags from args and returns the rendered table.
type experiment struct {
	desc string
	run  func(args []string, small bool) (string, error)
}

var registry = map[string]experiment{
	"table1": {
		desc: "§4 experiment table: intratopic/intertopic angles, original vs LSI space",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultTable1Config()
			if small {
				cfg = experiments.SmallTable1Config()
			}
			hist := false
			fs := flag.NewFlagSet("table1", flag.ContinueOnError)
			fs.IntVar(&cfg.NumDocs, "docs", cfg.NumDocs, "number of documents")
			fs.IntVar(&cfg.Corpus.NumTopics, "topics", cfg.Corpus.NumTopics, "number of topics")
			fs.IntVar(&cfg.Corpus.TermsPerTopic, "terms-per-topic", cfg.Corpus.TermsPerTopic, "primary terms per topic")
			fs.Float64Var(&cfg.Corpus.Epsilon, "eps", cfg.Corpus.Epsilon, "separability epsilon")
			fs.IntVar(&cfg.K, "k", cfg.K, "LSI rank")
			fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
			fs.BoolVar(&hist, "hist", false, "append angle-distribution histograms")
			if err := fs.Parse(args); err != nil {
				return "", err
			}
			if hist {
				res, fig, err := experiments.RunTable1WithFigure(cfg)
				if err != nil {
					return "", err
				}
				return res.Table() + "\n" + fig, nil
			}
			res, err := experiments.RunTable1(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"thm2": {
		desc: "Theorem 2: 0-separable pure corpora give (near-)0-skewed rank-k LSI",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultTheorem2Config()
			if small {
				cfg = experiments.SmallTheorem2Config()
			}
			res, err := experiments.RunTheorem2(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"thm3": {
		desc: "Theorem 3: skew grows O(eps) with separability eps",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultTheorem3Config()
			if small {
				cfg = experiments.SmallTheorem3Config()
			}
			res, err := experiments.RunTheorem3(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"lemma1": {
		desc: "Lemma 1/4: invariant subspace stability under bounded perturbation",
		run: func(args []string, small bool) (string, error) {
			res, err := experiments.RunLemma1(experiments.DefaultLemma1Config())
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"jl": {
		desc: "Lemma 2: Johnson–Lindenstrauss distance preservation",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultJLConfig()
			if small {
				cfg = experiments.SmallJLConfig()
			}
			res, err := experiments.RunJL(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"thm5": {
		desc: "Theorem 5: two-step (random projection + rank-2k LSI) residual bound",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultTheorem5Config()
			if small {
				cfg = experiments.SmallTheorem5Config()
			}
			res, err := experiments.RunTheorem5(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"runtime": {
		desc: "§5 running-time comparison: direct LSI vs two-step",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultRuntimeConfig()
			if small {
				cfg.Corpora = cfg.Corpora[:2]
				cfg.NumDocs = cfg.NumDocs[:2]
			}
			res, err := experiments.RunRuntime(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"synonymy": {
		desc: "§4 synonymy: identical co-occurrence pairs are projected out",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultSynonymyConfig()
			if small {
				cfg = experiments.SmallSynonymyConfig()
			}
			res, err := experiments.RunSynonymy(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"thm6": {
		desc: "Theorem 6: spectral discovery of high-conductance subgraphs",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultTheorem6Config()
			if small {
				cfg = experiments.SmallTheorem6Config()
			}
			res, err := experiments.RunTheorem6(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"retrieval": {
		desc: "§1 claim: LSI beats the vector-space model under synonymy",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultRetrievalConfig()
			if small {
				cfg = experiments.SmallRetrievalConfig()
			}
			res, err := experiments.RunRetrieval(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"cf": {
		desc: "§6 collaborative filtering: LSI recommender vs popularity",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultCFConfig()
			if small {
				cfg = experiments.SmallCFConfig()
			}
			res, err := experiments.RunCF(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"style": {
		desc: "Definition 3 probe: cross-topic style strength vs LSI separation",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultStyleConfig()
			if small {
				cfg = experiments.SmallStyleConfig()
			}
			res, err := experiments.RunStyle(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"sampling": {
		desc: "§5 discussion: document-sampled LSI vs random projection",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultSamplingConfig()
			if small {
				cfg = experiments.SmallSamplingConfig()
			}
			res, err := experiments.RunSampling(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"polysemy": {
		desc: "Open question (§6): does LSI address polysemy?",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultPolysemyConfig()
			if small {
				cfg = experiments.SmallPolysemyConfig()
			}
			res, err := experiments.RunPolysemy(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"mixture": {
		desc: "Open question after Thm 2: multi-topic documents",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultMixtureConfig()
			if small {
				cfg = experiments.SmallMixtureConfig()
			}
			res, err := experiments.RunMixture(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"ablate-weighting": {
		desc: "Ablation: §2 remark that the count function does not matter",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.SmallTable1Config()
			if !small {
				cfg = experiments.DefaultTable1Config()
				cfg.NumDocs = 400 // keep the 4 SVDs affordable
			}
			res, err := experiments.RunWeightingAblation(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"ablate-projection": {
		desc: "Ablation: projection family (orthonormal/gaussian/sign)",
		run: func(args []string, small bool) (string, error) {
			cfg := experiments.DefaultTheorem5Config()
			if small {
				cfg = experiments.SmallTheorem5Config()
			}
			res, err := experiments.RunProjectionAblation(cfg)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"ablate-engine": {
		desc: "Ablation: SVD engine accuracy and time",
		run: func(args []string, small bool) (string, error) {
			res, err := experiments.RunEngineAblation(13)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"ablate-lanczos": {
		desc: "Ablation: Lanczos dimension p vs accuracy",
		run: func(args []string, small bool) (string, error) {
			res, err := experiments.RunLanczosDimAblation(17)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
	"ablate-randomized": {
		desc: "Ablation: randomized SVD power/oversampling vs accuracy",
		run: func(args []string, small bool) (string, error) {
			res, err := experiments.RunRandomizedParamAblation(17)
			if err != nil {
				return "", err
			}
			return res.Table(), nil
		},
	},
}

// jsonResult is one experiment's machine-readable outcome — the envelope
// future PRs diff for perf regressions (-json flag) without parsing the
// rendered tables.
type jsonResult struct {
	Experiment string `json:"experiment"`
	// ElapsedSeconds is the wall-clock time of the experiment run — the
	// number perf-trajectory diffs care about.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Small          bool    `json:"small"`
	// Output is the rendered result table, line by line.
	Output []string `json:"output"`
}

// runTimed executes one experiment and wraps its outcome for -json.
func runTimed(name string, args []string, small bool) (jsonResult, error) {
	start := time.Now()
	out, err := registry[name].run(args, small)
	if err != nil {
		return jsonResult{}, err
	}
	return jsonResult{
		Experiment:     name,
		ElapsedSeconds: time.Since(start).Seconds(),
		Small:          small,
		Output:         strings.Split(out, "\n"),
	}, nil
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "lsibench: encoding results: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	switch cmd {
	case "list", "help", "-h", "--help":
		usage()
		return
	case "all":
		small := false
		asJSON := false
		fs := flag.NewFlagSet("all", flag.ExitOnError)
		fs.BoolVar(&small, "small", false, "run scaled-down configurations")
		fs.BoolVar(&asJSON, "json", false, "emit machine-readable JSON results")
		if err := fs.Parse(os.Args[2:]); err != nil {
			os.Exit(2)
		}
		var results []jsonResult
		for _, name := range sortedNames() {
			if !asJSON {
				fmt.Printf("==== %s ====\n", name)
			}
			res, err := runTimed(name, nil, small)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lsibench %s: %v\n", name, err)
				os.Exit(1)
			}
			if asJSON {
				results = append(results, res)
			} else {
				fmt.Println(strings.Join(res.Output, "\n"))
			}
		}
		if asJSON {
			emitJSON(results)
		}
		return
	}
	if _, ok := registry[cmd]; !ok {
		fmt.Fprintf(os.Stderr, "lsibench: unknown experiment %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	args := os.Args[2:]
	small := false
	asJSON := false
	// Leading -small / -json flags are accepted for every experiment.
	filtered := args[:0:0]
	for _, a := range args {
		switch a {
		case "-small", "--small":
			small = true
		case "-json", "--json":
			asJSON = true
		default:
			filtered = append(filtered, a)
		}
	}
	res, err := runTimed(cmd, filtered, small)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsibench %s: %v\n", cmd, err)
		os.Exit(1)
	}
	if asJSON {
		emitJSON(res)
		return
	}
	fmt.Println(strings.Join(res.Output, "\n"))
}

func sortedNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func usage() {
	fmt.Println("lsibench — reproduce the experiments of \"Latent Semantic Indexing: A Probabilistic Analysis\"")
	fmt.Println("\nusage: lsibench <experiment> [-small] [-json] [flags]")
	fmt.Println("       lsibench all [-small] [-json]")
	fmt.Println("\nexperiments:")
	for _, n := range sortedNames() {
		fmt.Printf("  %-18s %s\n", n, registry[n].desc)
	}
}
