// Command benchjson merges `go test -bench` output into a JSON perf
// record — the machinery behind scripts/bench_record.sh. It replaces
// that script's old approach of splicing JSON with sed (which silently
// corrupted the file whenever the closing lines moved): the whole
// record is unmarshaled, mutated, and rewritten through encoding/json,
// so the output is valid JSON no matter what state the file was in, and
// recording is idempotent — re-running with the same label replaces
// that label's run instead of appending a duplicate.
//
// Usage:
//
//	go test -bench=. -benchmem pkg | benchjson -l my-label -o BENCH.json
//	benchjson -l my-label -o BENCH.json -i raw-bench-output.txt
//
// The record is {"runs": [{label, date, go, benchmarks: [...]}]}; each
// benchmark entry carries pkg, name, iterations, ns_per_op, and (when
// -benchmem was in effect) bytes_per_op and allocs_per_op. Extra metric
// columns (b.ReportMetric) land in a "metrics" map. The schema, parser,
// and merge live in internal/benchfmt, shared with cmd/lsiload. Files
// written by the previous awk-based recorder load as-is (their entries
// simply lack the newer pkg/metrics fields).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

func run(args []string, stdin io.Reader, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("l", "", "run label (required); re-recording a label replaces its run")
	out := fs.String("o", "BENCH.json", "perf-record file to create or merge into")
	in := fs.String("i", "", "read bench output from this file instead of stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *label == "" || fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("benchjson: -l <label> is required and no positional arguments are accepted")
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	benches, err := benchfmt.Parse(src)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input; nothing recorded")
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return benchfmt.Merge(*out, benchfmt.Run{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Benchmarks: benches,
	})
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "%v\n", err)
		}
		os.Exit(1)
	}
}
