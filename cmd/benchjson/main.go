// Command benchjson merges `go test -bench` output into a JSON perf
// record — the machinery behind scripts/bench_record.sh. It replaces
// that script's old approach of splicing JSON with sed (which silently
// corrupted the file whenever the closing lines moved): the whole
// record is unmarshaled, mutated, and rewritten through encoding/json,
// so the output is valid JSON no matter what state the file was in, and
// recording is idempotent — re-running with the same label replaces
// that label's run instead of appending a duplicate.
//
// Usage:
//
//	go test -bench=. -benchmem pkg | benchjson -l my-label -o BENCH.json
//	benchjson -l my-label -o BENCH.json -i raw-bench-output.txt
//
// The record is {"runs": [{label, date, go, benchmarks: [...]}]}; each
// benchmark entry carries pkg, name, iterations, ns_per_op, and (when
// -benchmem was in effect) bytes_per_op and allocs_per_op. Extra metric
// columns (b.ReportMetric) land in a "metrics" map. Files written by
// the previous awk-based recorder load as-is (their entries simply lack
// the newer pkg/metrics fields).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Pkg         string             `json:"pkg,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Run is one labeled recording session.
type Run struct {
	Label      string      `json:"label"`
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Record is the whole perf-record file.
type Record struct {
	Runs []Run `json:"runs"`
}

// parseBench extracts benchmark lines from go test -bench output,
// tracking the current "pkg:" header so names stay unique across
// packages. Repeated lines for one benchmark (-count > 1) are averaged.
func parseBench(r io.Reader) ([]Benchmark, error) {
	type acc struct {
		bench Benchmark
		n     int64
	}
	var order []string
	accs := map[string]*acc{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) >= 2 && fields[0] == "pkg:" {
			pkg = fields[1]
			continue
		}
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || fields[len(fields)-1] == "FAIL" {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX---FAIL" noise; not a result line
		}
		b := Benchmark{Pkg: pkg, Name: fields[0], Iterations: iters, NsPerOp: -1}
		for i := 3; i < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				v := val
				b.BytesPerOp = &v
			case "allocs/op":
				v := val
				b.AllocsPerOp = &v
			case "MB/s":
				// Throughput is derivable from ns/op; skip.
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		if b.NsPerOp < 0 {
			continue
		}
		key := pkg + "\x00" + b.Name
		a, ok := accs[key]
		if !ok {
			accs[key] = &acc{bench: b, n: 1}
			order = append(order, key)
			continue
		}
		// Average every measured column across repeated (-count) runs;
		// the iteration count keeps the latest run's value.
		n := float64(a.n)
		avg := func(prev, cur float64) float64 { return (prev*n + cur) / (n + 1) }
		a.bench.NsPerOp = avg(a.bench.NsPerOp, b.NsPerOp)
		if a.bench.BytesPerOp != nil && b.BytesPerOp != nil {
			*a.bench.BytesPerOp = avg(*a.bench.BytesPerOp, *b.BytesPerOp)
		}
		if a.bench.AllocsPerOp != nil && b.AllocsPerOp != nil {
			*a.bench.AllocsPerOp = avg(*a.bench.AllocsPerOp, *b.AllocsPerOp)
		}
		for k, cur := range b.Metrics {
			if prev, ok := a.bench.Metrics[k]; ok {
				a.bench.Metrics[k] = avg(prev, cur)
			} else {
				if a.bench.Metrics == nil {
					a.bench.Metrics = map[string]float64{}
				}
				a.bench.Metrics[k] = cur
			}
		}
		a.bench.Iterations = b.Iterations
		a.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Benchmark, len(order))
	for i, key := range order {
		out[i] = accs[key].bench
	}
	return out, nil
}

// merge loads the record at path (missing or empty file = empty
// record), replaces or appends the run by label, and rewrites the file
// atomically.
func merge(path string, run Run) error {
	var rec Record
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return err
	case len(data) > 0:
		if err := json.Unmarshal(data, &rec); err != nil {
			return fmt.Errorf("%s is not a valid perf record: %w (fix or remove it; benchjson refuses to overwrite data it cannot parse)", path, err)
		}
	}
	replaced := false
	for i := range rec.Runs {
		if rec.Runs[i].Label == run.Label {
			rec.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		rec.Runs = append(rec.Runs, run)
	}
	out, err := json.MarshalIndent(&rec, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func run(args []string, stdin io.Reader, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("l", "", "run label (required); re-recording a label replaces its run")
	out := fs.String("o", "BENCH.json", "perf-record file to create or merge into")
	in := fs.String("i", "", "read bench output from this file instead of stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *label == "" || fs.NArg() > 0 {
		fs.Usage()
		return fmt.Errorf("benchjson: -l <label> is required and no positional arguments are accepted")
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	benches, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchjson: no benchmark result lines in input; nothing recorded")
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return merge(*out, Run{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		Benchmarks: benches,
	})
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "%v\n", err)
		}
		os.Exit(1)
	}
}
