package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// Parser-level coverage lives in internal/benchfmt; these tests pin the
// CLI behavior on top of it.

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/retrieval
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCachedQueryHit              	 5182532	       232.6 ns/op	     320 B/op	       1 allocs/op
BenchmarkCachedQueryZipfian          	 3941790	       296.5 ns/op	         0.8885 hit-rate	     320 B/op	       1 allocs/op
pkg: repro/internal/vsm
BenchmarkSearchShortQuery            	  500000	      1500 ns/op
PASS
ok  	repro/retrieval	8.294s
`

func record(t *testing.T, path, label, bench string) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "raw.txt")
	if err := os.WriteFile(tmp, []byte(bench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-l", label, "-o", path, "-i", tmp}, nil, os.Stderr); err != nil {
		t.Fatal(err)
	}
}

func load(t *testing.T, path string) benchfmt.Record {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchfmt.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	return rec
}

func TestMergeAppendsAndReplacesIdempotently(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	record(t, path, "run-a", sampleBench)
	record(t, path, "run-b", sampleBench)
	rec := load(t, path)
	if len(rec.Runs) != 2 || rec.Runs[0].Label != "run-a" || rec.Runs[1].Label != "run-b" {
		t.Fatalf("runs = %+v", rec.Runs)
	}
	// Re-recording run-a replaces it in place: same count, same order,
	// still valid JSON — idempotent where the old sed splice duplicated.
	faster := strings.ReplaceAll(sampleBench, "232.6", "111.1")
	record(t, path, "run-a", faster)
	rec = load(t, path)
	if len(rec.Runs) != 2 {
		t.Fatalf("replace grew runs to %d", len(rec.Runs))
	}
	if rec.Runs[0].Label != "run-a" || rec.Runs[0].Benchmarks[0].NsPerOp != 111.1 {
		t.Fatalf("run-a not replaced: %+v", rec.Runs[0].Benchmarks[0])
	}
	if rec.Runs[0].Go == "" || rec.Runs[0].Date == "" {
		t.Fatalf("metadata missing: %+v", rec.Runs[0])
	}
}

func TestMergeLoadsAwkEraRecords(t *testing.T) {
	// A file in the exact shape the old awk recorder produced must load
	// and accept new runs without losing the old entries.
	legacy := `{
  "runs": [
    {
      "label": "before-pr3",
      "date": "2026-07-01T00:00:00Z",
      "go": "go1.24.0",
      "benchmarks": [
        {"name": "BenchmarkQueryLatency", "iterations": 13188, "ns_per_op": 91086, "bytes_per_op": 83282, "allocs_per_op": 8}
      ]
    }
  ]
}
`
	path := filepath.Join(t.TempDir(), "BENCH_3.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	record(t, path, "new-run", sampleBench)
	rec := load(t, path)
	if len(rec.Runs) != 2 || rec.Runs[0].Label != "before-pr3" {
		t.Fatalf("legacy run lost: %+v", rec.Runs)
	}
	if rec.Runs[0].Benchmarks[0].NsPerOp != 91086 {
		t.Fatalf("legacy benchmark mangled: %+v", rec.Runs[0].Benchmarks[0])
	}
}

func TestRefusalPaths(t *testing.T) {
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"runs": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	raw := filepath.Join(dir, "raw.txt")
	if err := os.WriteFile(raw, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt records are refused, not clobbered.
	if err := run([]string{"-l", "x", "-o", corrupt, "-i", raw}, nil, os.Stderr); err == nil {
		t.Fatal("merging into a corrupt record should fail")
	}
	if data, _ := os.ReadFile(corrupt); string(data) != `{"runs": [` {
		t.Fatal("corrupt record was modified")
	}
	// Empty input records nothing.
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("no benches\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-l", "x", "-o", filepath.Join(dir, "out.json"), "-i", empty}, nil, os.Stderr); err == nil {
		t.Fatal("empty bench input should fail")
	}
	// Missing label.
	if err := run([]string{"-o", "out.json", "-i", raw}, nil, io.Discard); err == nil {
		t.Fatal("missing -l should fail")
	}
}
