// Command annsmoke gates the IVF ANN tier against the paper's corpus
// model end to end: it reads a corpusgen JSON-lines corpus, builds an
// LSI index with WithANN over it, and measures recall@topN and latency
// of the probed path against the exhaustive scan on the same index —
// the exact quantities the PR acceptance bar speaks to. It exits
// non-zero when recall falls below -min-recall or the
// exhaustive-to-ANN latency ratio falls below -min-speedup, so CI can
// use it as a pass/fail smoke (scripts/ann_smoke.sh drives it via
// `make ann-smoke`).
//
// Usage:
//
//	corpusgen -topics 128 -docs-per-topic 800 -eps 0.1 -o corpus.jsonl
//	annsmoke -corpus corpus.jsonl -rank 32 -nlist 128 -nprobe 8 \
//	         -min-recall 0.95 -min-speedup 1.0 -o ann-smoke.json
//
// Queries are documents sampled from the corpus itself (the model's
// own distribution), so recall is measured exactly where the paper's
// topic-clustering guarantees apply. Corpus term IDs are rendered as
// letter-only tokens so the text pipeline preserves them one-to-one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/retrieval"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "annsmoke: %v\n", err)
		os.Exit(1)
	}
}

// Summary is the machine-readable result of one smoke run: the corpus
// and tier shape, the measured recall, and the per-query latency of
// both paths. It is written as JSON to -o (CI archives ann-smoke.json).
type Summary struct {
	Docs     int `json:"docs"`
	NumTerms int `json:"numTerms"`
	Rank     int `json:"rank"`
	NList    int `json:"nlist"`
	NProbe   int `json:"nprobe"`
	TopN     int `json:"topN"`
	Queries  int `json:"queries"`
	// Recall is the fraction of exhaustive top-N documents the probed
	// path returned, averaged over the query set.
	Recall float64 `json:"recall"`
	// ExhaustiveNsPerQuery and ANNNsPerQuery are wall-clock means over
	// the query set; Speedup is their ratio.
	ExhaustiveNsPerQuery float64 `json:"exhaustive_ns_per_query"`
	ANNNsPerQuery        float64 `json:"ann_ns_per_query"`
	Speedup              float64 `json:"speedup"`
	// DocsScoredPerQuery is the mean candidate count the probed path
	// scored (from the tier's lifetime counters) — the sublinearity
	// evidence next to Docs.
	DocsScoredPerQuery float64 `json:"docs_scored_per_query"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("annsmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	corpusPath := fs.String("corpus", "", "corpusgen JSON-lines corpus to index (required)")
	rank := fs.Int("rank", 32, "LSI rank")
	nlist := fs.Int("nlist", 128, "IVF cell count")
	nprobe := fs.Int("nprobe", 8, "probe budget for the ANN measurement")
	topN := fs.Int("topn", 10, "result depth for the recall measurement")
	nq := fs.Int("queries", 200, "number of queries sampled from the corpus")
	seed := fs.Int64("seed", 1, "query-sampling seed")
	minRecall := fs.Float64("min-recall", 0, "fail when recall@topn falls below this")
	minSpeedup := fs.Float64("min-speedup", 0, "fail when the exhaustive/ANN latency ratio falls below this")
	out := fs.String("o", "-", "summary output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}
	if *corpusPath == "" {
		return fmt.Errorf("-corpus is required")
	}
	if *nq <= 0 || *topN <= 0 {
		return fmt.Errorf("-queries and -topn must be positive")
	}

	f, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	c, err := corpus.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(c.Docs) == 0 {
		return fmt.Errorf("corpus %s is empty", *corpusPath)
	}

	docs := make([]retrieval.Document, len(c.Docs))
	for i := range c.Docs {
		docs[i] = retrieval.Document{ID: fmt.Sprintf("d%06d", i), Text: docText(&c.Docs[i])}
	}
	fmt.Fprintf(stderr, "annsmoke: indexing %d documents (rank=%d nlist=%d)\n", len(docs), *rank, *nlist)
	buildStart := time.Now()
	ix, err := retrieval.Build(docs,
		retrieval.WithRank(*rank),
		retrieval.WithEngine(retrieval.EngineRandomized),
		retrieval.WithStopwordRemoval(false),
		retrieval.WithStemming(false),
		retrieval.WithANN(*nlist, *nprobe))
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Fprintf(stderr, "annsmoke: index built in %v\n", time.Since(buildStart).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(*seed))
	queries := make([]string, *nq)
	for i := range queries {
		queries[i] = docs[rng.Intn(len(docs))].Text
	}

	// Warm both paths so neither measurement pays first-touch costs.
	if _, err := ix.SearchProbe(ctx, queries[0], *topN, 0); err != nil {
		return err
	}
	if _, err := ix.SearchProbe(ctx, queries[0], *topN, *nprobe); err != nil {
		return err
	}

	truth := make([][]retrieval.Result, len(queries))
	start := time.Now()
	for i, q := range queries {
		if truth[i], err = ix.SearchProbe(ctx, q, *topN, 0); err != nil {
			return err
		}
	}
	exNs := float64(time.Since(start).Nanoseconds()) / float64(len(queries))

	before, _ := ix.ANNStats()
	got := make([][]retrieval.Result, len(queries))
	start = time.Now()
	for i, q := range queries {
		if got[i], err = ix.SearchProbe(ctx, q, *topN, *nprobe); err != nil {
			return err
		}
	}
	annNs := float64(time.Since(start).Nanoseconds()) / float64(len(queries))
	after, ok := ix.ANNStats()
	if !ok || after.Searches-before.Searches != int64(len(queries)) {
		return fmt.Errorf("probed searches bypassed the ANN tier: stats %+v -> %+v", before, after)
	}

	hits, want := 0, 0
	for i := range truth {
		ids := make(map[string]bool, len(truth[i]))
		for _, r := range truth[i] {
			ids[r.ID] = true
		}
		want += len(truth[i])
		for _, r := range got[i] {
			if ids[r.ID] {
				hits++
			}
		}
	}
	if want == 0 {
		return fmt.Errorf("exhaustive baseline returned no results")
	}

	s := Summary{
		Docs: len(docs), NumTerms: c.NumTerms, Rank: *rank,
		NList: *nlist, NProbe: *nprobe, TopN: *topN, Queries: len(queries),
		Recall:               float64(hits) / float64(want),
		ExhaustiveNsPerQuery: exNs,
		ANNNsPerQuery:        annNs,
		Speedup:              exNs / annNs,
		DocsScoredPerQuery:   float64(after.DocsScored-before.DocsScored) / float64(len(queries)),
	}
	fmt.Fprintf(stderr, "annsmoke: recall@%d=%.4f speedup=%.2fx (%.0f of %d docs scored per query)\n",
		s.TopN, s.Recall, s.Speedup, s.DocsScoredPerQuery, s.Docs)

	var w io.Writer = stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := of.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = of
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}

	if s.Recall < *minRecall {
		return fmt.Errorf("recall@%d = %.4f below the %.4f gate", s.TopN, s.Recall, *minRecall)
	}
	if s.Speedup < *minSpeedup {
		return fmt.Errorf("speedup = %.2fx below the %.2fx gate (exhaustive %.0fns vs ann %.0fns per query)",
			s.Speedup, *minSpeedup, exNs, annNs)
	}
	return nil
}

// docText renders a sampled document as text the index pipeline
// preserves verbatim: Tokenize splits on digits, so term IDs become
// letter-only tokens ("x" plus the decimal digits mapped a–j).
func docText(d *corpus.Document) string {
	var b strings.Builder
	for i, t := range d.Terms {
		tok := termToken(t)
		for n := 0; n < d.Counts[i]; n++ {
			b.WriteString(tok)
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func termToken(t int) string {
	const letters = "abcdefghij"
	s := strconv.Itoa(t)
	b := make([]byte, 1, len(s)+1)
	b[0] = 'x'
	for i := 0; i < len(s); i++ {
		b = append(b, letters[s[i]-'0'])
	}
	return string(b)
}
