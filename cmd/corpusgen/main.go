// Command corpusgen samples synthetic corpora from the paper's
// probabilistic corpus model (Section 3) and writes them in the JSON-lines
// format of corpus.WriteJSON (one header object, then one object per
// document), for use by external tools or for inspecting the model.
//
// Usage:
//
//	corpusgen [-docs 1000] [-topics 20] [-terms-per-topic 100] [-eps 0.05]
//	          [-minlen 50] [-maxlen 100] [-mixture] [-seed 1] [-o corpus.jsonl]
//	corpusgen -topics 128 -docs-per-topic 800 -eps 0.1    # balanced 102400-doc corpus
//
// Scale is set either by -docs (topics drawn uniformly at random, so
// per-topic counts fluctuate) or by -docs-per-topic, which deals topics
// round-robin for exactly that many documents per topic — the balanced
// regime the paper's theorems assume, and the distribution the ANN
// recall smoke test (scripts/ann_smoke.sh) measures against. -eps is
// the model's noise knob: the probability mass each topic spreads
// uniformly over the whole term universe instead of its primary set.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/corpus"
)

func main() {
	docs := flag.Int("docs", 1000, "number of documents (topics drawn uniformly at random)")
	docsPerTopic := flag.Int("docs-per-topic", 0, "balanced scale: exactly this many documents per topic, dealt round-robin (overrides -docs; incompatible with -mixture)")
	topics := flag.Int("topics", 20, "number of topics")
	termsPer := flag.Int("terms-per-topic", 100, "primary terms per topic")
	eps := flag.Float64("eps", 0.05, "separability epsilon: the noise mass each topic spreads over the whole term universe")
	minLen := flag.Int("minlen", 50, "minimum document length")
	maxLen := flag.Int("maxlen", 100, "maximum document length")
	mixture := flag.Bool("mixture", false, "sample multi-topic documents (Dirichlet mixtures of up to 3 topics)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output path ('-' for stdout)")
	flag.Parse()

	cfg := corpus.SeparableConfig{
		NumTopics: *topics, TermsPerTopic: *termsPer,
		Epsilon: *eps, MinLen: *minLen, MaxLen: *maxLen,
	}
	var (
		model *corpus.Model
		err   error
	)
	if *mixture {
		if *docsPerTopic > 0 {
			fatal(fmt.Errorf("-docs-per-topic deals single-topic documents; it cannot apply with -mixture"))
		}
		maxT := 3
		if maxT > *topics {
			maxT = *topics
		}
		model, err = corpus.MixedSeparableModel(cfg, maxT, 0.8)
	} else {
		model, err = corpus.PureSeparableModel(cfg)
	}
	if err != nil {
		fatal(err)
	}
	count := *docs
	if *docsPerTopic > 0 {
		count = *topics * *docsPerTopic
		model.Sampler = &corpus.RoundRobinSampler{NumTopics: *topics, MinLen: *minLen, MaxLen: *maxLen}
	}
	c, err := corpus.Generate(model, count, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := corpus.WriteJSON(w, c); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "corpusgen: wrote %d documents over %d terms (topics=%d eps=%g seed=%d)\n",
		len(c.Docs), c.NumTerms, *topics, *eps, *seed)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "corpusgen: %v\n", err)
	os.Exit(1)
}
