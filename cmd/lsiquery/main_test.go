package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestNonInteractiveQuery is the CLI smoke test: `lsiquery -q` on the
// built-in demo corpus must print both rankings, with the LSI side
// showing the synonymy effect ("car" retrieves the "automobile"
// documents that literal matching cannot reach).
func TestNonInteractiveQuery(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-q", "car", "-top", "4"}, strings.NewReader(""), &out, &errOut); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"query: car", "LSI:", "VSM:", "demo-01", "demo-02"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The VSM section must not contain the synonym-only documents; they
	// appear only under LSI.
	vsmPart := got[strings.Index(got, "VSM:"):]
	if strings.Contains(vsmPart, "demo-01") || strings.Contains(vsmPart, "demo-02") {
		t.Fatalf("VSM ranking retrieved synonym-only documents:\n%s", got)
	}
}

func TestUnknownVocabularyQuery(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-q", "zzzunknownzzz"}, strings.NewReader(""), &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no query terms in the vocabulary") {
		t.Fatalf("missing vocabulary notice:\n%s", out.String())
	}
}

func TestInteractiveLoop(t *testing.T) {
	var out bytes.Buffer
	in := strings.NewReader("galaxy\npasta sauce\n")
	if err := run(nil, in, &out, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if strings.Count(got, "LSI:") != 2 || strings.Count(got, "query> ") != 3 {
		t.Fatalf("interactive loop output wrong:\n%s", got)
	}
}

func TestSaveIndexRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "demo.idx")
	var out bytes.Buffer
	if err := run([]string{"-save-index", path}, strings.NewReader(""), &out, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Saved self-contained rank-3 index over 12 documents") {
		t.Fatalf("save message wrong:\n%s", out.String())
	}
	// lsiserve-style load must serve text queries from it (covered in
	// depth by retrieval's tests; this is the CLI-level smoke).
	fi, err := filepath.Glob(path)
	if err != nil || len(fi) != 1 {
		t.Fatalf("index file missing: %v %v", fi, err)
	}
}

func TestStatsFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-k", "3", "-stats"}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"backend:      lsi", "rank:         3", "vocabulary:", "memory (est):"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-stats output missing %q:\n%s", want, out.String())
		}
	}
}

func TestStatsFlagCacheSection(t *testing.T) {
	// Uncached by default: the stats block says how to turn it on.
	var out, errb bytes.Buffer
	if err := run([]string{"-stats"}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "query cache:  off") {
		t.Fatalf("-stats output missing cache-off notice:\n%s", out.String())
	}
	// With -cache-mb the capacity and counters are reported.
	out.Reset()
	if err := run([]string{"-cache-mb", "8", "-stats"}, strings.NewReader(""), &out, &errb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"query cache:  8.0 MiB cap", "0 hits / 0 misses"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-stats -cache-mb output missing %q:\n%s", want, out.String())
		}
	}
}
