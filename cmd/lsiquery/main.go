// Command lsiquery builds an LSI index over plain-text documents and
// answers interactive queries, printing the LSI ranking side by side with
// the conventional vector-space ranking so the synonymy behaviour of the
// paper is visible on real text.
//
// Usage:
//
//	lsiquery [-k 5] [-top 5] [file1.txt file2.txt ...]
//
// Each file is one document. With no files, a small built-in demo corpus
// (cars/space/cooking themes with synonym variation) is indexed. Queries
// are read line by line from stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/lsi"
	"repro/internal/vsm"
)

// demoCorpus exercises the synonymy scenario of the paper's introduction:
// some documents say "car", others "automobile"; some say "cosmos", others
// "galaxy".
var demoCorpus = []string{
	"The car dealership sells used cars, and the mechanic inspects every engine.",
	"An automobile dealership services automobile engines and adjusts the brakes.",
	"The automobile mechanic repaired the engine and brakes for the driver.",
	"The car race featured fast cars, skilled drivers and roaring engines.",
	"Astronomers observed the galaxy through a telescope and charted distant stars.",
	"The cosmos contains billions of galaxies, stars and planets in expansion.",
	"A starship in science fiction travels between stars and distant galaxies.",
	"Telescopes map stars and planets across the galaxy and measure stellar distances.",
	"The recipe requires fresh basil, olive oil, garlic and ripe tomatoes.",
	"Cooking pasta al dente takes about nine minutes in salted boiling water.",
	"A good pasta sauce starts with garlic and olive oil over gentle heat.",
	"The kitchen smelled of baked bread, garlic and roasted tomatoes.",
}

func main() {
	k := flag.Int("k", 3, "LSI rank")
	topN := flag.Int("top", 5, "results to show per system")
	saveIndex := flag.String("save-index", "", "write the built LSI index to this path and exit")
	flag.Parse()

	texts := demoCorpus
	names := make([]string, len(demoCorpus))
	for i := range names {
		names[i] = fmt.Sprintf("demo-%02d", i)
	}
	if flag.NArg() > 0 {
		texts = nil
		names = nil
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lsiquery: %v\n", err)
				os.Exit(1)
			}
			texts = append(texts, string(data))
			names = append(names, path)
		}
	}

	pipe := ir.NewPipeline()
	c := pipe.ProcessAll(texts)
	if c.NumTerms == 0 {
		fmt.Fprintln(os.Stderr, "lsiquery: corpus is empty after preprocessing")
		os.Exit(1)
	}
	a := corpus.TermDocMatrix(c, corpus.LogWeighting)
	ix, err := lsi.Build(a, *k, lsi.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lsiquery: %v\n", err)
		os.Exit(1)
	}
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lsiquery: %v\n", err)
			os.Exit(1)
		}
		if err := ix.Save(f); err != nil {
			fmt.Fprintf(os.Stderr, "lsiquery: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "lsiquery: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("Saved rank-%d index over %d documents to %s\n", ix.K(), ix.NumDocs(), *saveIndex)
		return
	}
	vix := vsm.NewFromMatrix(a)
	fmt.Printf("Indexed %d documents, %d terms, rank-%d LSI. Enter queries (Ctrl-D to quit).\n",
		len(c.Docs), c.NumTerms, ix.K())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("query> ")
	for sc.Scan() {
		query := sc.Text()
		terms := pipe.Terms(query)
		q := make([]float64, c.NumTerms)
		known := 0
		for _, term := range terms {
			if id, ok := pipe.Vocab.Lookup(term); ok {
				q[id]++
				known++
			}
		}
		if known == 0 {
			fmt.Println("  (no query terms in the vocabulary)")
			fmt.Print("query> ")
			continue
		}
		fmt.Println("  LSI:")
		for _, m := range ix.Search(q, *topN) {
			fmt.Printf("    %-12s score=%.4f  %s\n", names[m.Doc], m.Score, snippet(texts[m.Doc]))
		}
		fmt.Println("  VSM:")
		vres := vix.Search(q, *topN)
		if len(vres) == 0 {
			fmt.Println("    (no literal term matches)")
		}
		for _, m := range vres {
			fmt.Printf("    %-12s score=%.4f  %s\n", names[m.Doc], m.Score, snippet(texts[m.Doc]))
		}
		fmt.Print("query> ")
	}
	fmt.Println()
}

func snippet(text string) string {
	const max = 60
	if len(text) <= max {
		return text
	}
	return text[:max] + "..."
}
