// Command lsiquery builds an LSI index over plain-text documents through
// the public retrieval package and answers queries, printing the LSI
// ranking side by side with the conventional vector-space ranking so the
// synonymy behaviour of the paper is visible on real text.
//
// Usage:
//
//	lsiquery [-k 3] [-top 5] [-cache-mb 0] [file1.txt file2.txt ...]
//	lsiquery -q "car engine repair"          # non-interactive, scriptable
//	lsiquery -save-index demo.idx            # write a self-contained index
//	lsiquery -stats                          # describe the index (incl. query cache) and exit
//	lsiquery -ann-nlist 16 -nprobe 2 -q ...  # sublinear IVF cell-probe search
//
// Each file is one document. With no files, a small built-in demo corpus
// (cars/space/cooking themes with synonym variation) is indexed. Without
// -q, queries are read line by line from stdin. Indexes written by
// -save-index are self-contained (wire format v2: vocabulary, weighting,
// document IDs) and can be served directly by `lsiserve -index`.
//
// -ann-nlist trains an IVF ANN tier over the LSI space (see
// retrieval.WithANN) and -nprobe sets how many cells each LSI query
// scores (0 = exhaustive; -nprobe >= -ann-nlist matches the exhaustive
// ranking exactly). -quant-beta adds the int8 quantized scoring tier
// (see retrieval.WithQuantized): the scan runs over the int8 shadow,
// the top topN*beta candidates are reranked with the exact float
// kernels, and both tiers compose. The VSM column always scans
// exhaustively — it has no latent space to quantize.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/retrieval"
)

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lsiquery", flag.ContinueOnError)
	fs.SetOutput(stderr)
	k := fs.Int("k", 3, "LSI rank (0 = auto)")
	topN := fs.Int("top", 5, "results to show per system")
	saveIndex := fs.String("save-index", "", "write the built LSI index to this path and exit")
	query := fs.String("q", "", "answer this one query and exit instead of reading stdin")
	statsOnly := fs.Bool("stats", false, "print index statistics (backend, rank, vocabulary, memory estimate, query cache) and exit")
	cacheMB := fs.Int("cache-mb", 0, "attach a query result cache of this many MiB (0 = uncached; repeated interactive queries answer from memory)")
	annNList := fs.Int("ann-nlist", 0, "train an IVF ANN tier with this many k-means cells over the LSI space (0 = no tier)")
	nprobe := fs.Int("nprobe", 0, "ANN cells scored per LSI query (0 = exhaustive scan; needs -ann-nlist)")
	quantBeta := fs.Int("quant-beta", 0, "quantized scoring tier: int8 scan selects top*beta candidates for exact rerank (0 = float scan)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nprobe > 0 && *annNList <= 0 {
		return fmt.Errorf("-nprobe needs an ANN tier; set -ann-nlist too")
	}

	docs := retrieval.DemoCorpus()
	if fs.NArg() > 0 {
		var err error
		if docs, err = retrieval.ReadFiles(fs.Args()); err != nil {
			return err
		}
	}

	lsiIx, err := retrieval.Build(docs, retrieval.WithRank(*k),
		retrieval.WithQueryCache(int64(*cacheMB)<<20),
		retrieval.WithANN(*annNList, *nprobe),
		retrieval.WithQuantized(*quantBeta))
	if err != nil {
		return err
	}
	if *statsOnly {
		printStats(stdout, lsiIx.Stats())
		return nil
	}
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			return err
		}
		if err := lsiIx.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "Saved self-contained rank-%d index over %d documents to %s\n",
			lsiIx.Rank(), lsiIx.NumDocs(), *saveIndex)
		return nil
	}
	vsmIx, err := retrieval.Build(docs, retrieval.WithBackend(retrieval.BackendVSM))
	if err != nil {
		return err
	}

	ctx := context.Background()
	answer := func(q string) error {
		res, err := lsiIx.Search(ctx, q, *topN)
		if errors.Is(err, retrieval.ErrNoQueryTerms) {
			fmt.Fprintln(stdout, "  (no query terms in the vocabulary)")
			return nil
		}
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "  LSI:")
		for _, m := range res {
			fmt.Fprintf(stdout, "    %-12s score=%.4f  %s\n", m.ID, m.Score, snippet(docs[m.Doc].Text))
		}
		fmt.Fprintln(stdout, "  VSM:")
		vres, err := vsmIx.Search(ctx, q, *topN)
		if err != nil && !errors.Is(err, retrieval.ErrNoQueryTerms) {
			return err
		}
		if len(vres) == 0 {
			fmt.Fprintln(stdout, "    (no literal term matches)")
		}
		for _, m := range vres {
			fmt.Fprintf(stdout, "    %-12s score=%.4f  %s\n", m.ID, m.Score, snippet(docs[m.Doc].Text))
		}
		return nil
	}

	if *query != "" {
		fmt.Fprintf(stdout, "query: %s\n", *query)
		return answer(*query)
	}

	fmt.Fprintf(stdout, "Indexed %d documents, %d terms, rank-%d LSI. Enter queries (Ctrl-D to quit).\n",
		lsiIx.NumDocs(), lsiIx.NumTerms(), lsiIx.Rank())
	sc := bufio.NewScanner(stdin)
	fmt.Fprint(stdout, "query> ")
	for sc.Scan() {
		if err := answer(sc.Text()); err != nil {
			return err
		}
		fmt.Fprint(stdout, "query> ")
	}
	fmt.Fprintln(stdout)
	return sc.Err()
}

func snippet(text string) string {
	const max = 60
	if len(text) <= max {
		return text
	}
	return text[:max] + "..."
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, flag.ErrHelp) {
			fmt.Fprintf(os.Stderr, "lsiquery: %v\n", err)
		}
		os.Exit(1)
	}
}

// printStats renders the full retrieval.Stats for -stats: the backend
// kind, dimensions, rank, vocabulary size, and the per-backend memory
// estimate.
func printStats(w io.Writer, st retrieval.Stats) {
	fmt.Fprintf(w, "backend:      %s\n", st.Backend)
	fmt.Fprintf(w, "documents:    %d\n", st.NumDocs)
	fmt.Fprintf(w, "terms:        %d\n", st.NumTerms)
	fmt.Fprintf(w, "vocabulary:   %d terms (text queries: %v)\n", st.VocabSize, st.TextQueries)
	if st.Rank > 0 {
		fmt.Fprintf(w, "rank:         %d\n", st.Rank)
	}
	fmt.Fprintf(w, "weighting:    %s\n", st.Weighting)
	fmt.Fprintf(w, "memory (est): %s\n", humanBytes(st.MemoryBytes))
	if st.Sharded {
		fmt.Fprintf(w, "shards:       %d (%d segments: %d live, %d sealed, %d compacted)\n",
			st.Shards, st.Segments, st.LiveSegments, st.SealedPending, st.CompactedSegments)
	}
	if st.ANN != nil {
		fmt.Fprintf(w, "ann tier:     nlist=%d nprobe=%d (%d quantizers over %d documents)\n",
			st.ANN.NList, st.ANN.NProbe, st.ANN.Segments, st.ANN.Docs)
	}
	if st.Quant != nil {
		fmt.Fprintf(w, "quant tier:   beta=%d (%d int8 shadows over %d documents, %s)\n",
			st.Quant.Beta, st.Quant.Segments, st.Quant.Docs, humanBytes(st.Quant.Bytes))
	}
	if st.Cache != nil {
		fmt.Fprintf(w, "query cache:  %s cap, %d entries (%s), epoch %d\n",
			humanBytes(st.Cache.CapBytes), st.Cache.Entries, humanBytes(st.Cache.Bytes), st.Cache.Epoch)
		fmt.Fprintf(w, "              %d hits / %d misses / %d coalesced / %d evictions\n",
			st.Cache.Hits, st.Cache.Misses, st.Cache.Coalesced, st.Cache.Evictions)
	} else {
		fmt.Fprintf(w, "query cache:  off (enable with -cache-mb)\n")
	}
}

// humanBytes renders a byte count at a readable scale.
func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
