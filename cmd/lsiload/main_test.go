package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/benchfmt"
	"repro/retrieval"
	"repro/retrieval/httpapi"
)

func startServer(t *testing.T, opts []retrieval.Option, hopts httpapi.Options) *httptest.Server {
	t.Helper()
	ix, err := retrieval.Build(retrieval.DemoCorpus(), append([]retrieval.Option{retrieval.WithRank(3)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	srv := httptest.NewServer(httpapi.NewHandler(ix, hopts))
	t.Cleanup(srv.Close)
	return srv
}

func runLoad(t *testing.T, args []string) Summary {
	t.Helper()
	var out, errb bytes.Buffer
	if err := run(context.Background(), args, &out, &errb); err != nil {
		t.Fatalf("lsiload: %v\nstderr: %s", err, errb.String())
	}
	var s Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, out.String())
	}
	return s
}

func TestZipfTraceAgainstLiveServer(t *testing.T) {
	srv := startServer(t, []retrieval.Option{retrieval.WithQueryCache(1 << 20)}, httpapi.Options{})
	out := filepath.Join(t.TempDir(), "BENCH.json")
	s := runLoad(t, []string{"-addr", srv.URL, "-duration", "300ms", "-concurrency", "4",
		"-trace", "zipf", "-o", out, "-l", "test-zipf", "-seed", "7"})

	if s.Requests == 0 || s.OK == 0 {
		t.Fatalf("no traffic delivered: %+v", s)
	}
	if s.Failed != 0 {
		t.Errorf("unexpected failures: %+v", s)
	}
	if !(s.P50Ns > 0 && s.P50Ns <= s.P99Ns && s.P99Ns <= s.P999Ns) {
		t.Errorf("quantiles not ordered: p50=%v p99=%v p999=%v", s.P50Ns, s.P99Ns, s.P999Ns)
	}

	// The -o record is benchjson-compatible with the quantiles as metrics.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchfmt.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("record not valid JSON: %v", err)
	}
	if len(rec.Runs) != 1 || rec.Runs[0].Label != "test-zipf" {
		t.Fatalf("record runs: %+v", rec.Runs)
	}
	b := rec.Runs[0].Benchmarks[0]
	if b.Name != "LoadZipf" || b.Iterations != s.Requests || b.Metrics["p99_ns"] != s.P99Ns {
		t.Fatalf("benchmark entry: %+v (summary %+v)", b, s)
	}
	for _, k := range []string{"p50_ns", "p99_ns", "p999_ns", "qps", "error_rate", "shed_rate"} {
		if _, ok := b.Metrics[k]; !ok {
			t.Errorf("metric %s missing from record", k)
		}
	}
}

func TestIngestTraceAppendsDocuments(t *testing.T) {
	srv := startServer(t,
		[]retrieval.Option{retrieval.WithShards(2), retrieval.WithAutoCompact(true)},
		httpapi.Options{MaxInFlight: 8})
	before := 12 // demo corpus size
	s := runLoad(t, []string{"-addr", srv.URL, "-duration", "300ms", "-concurrency", "2", "-trace", "ingest"})
	if s.OK == 0 || s.Failed != 0 {
		t.Fatalf("ingest trace: %+v", s)
	}
	// Roughly half the requests were appends; the index must have grown.
	var stats struct {
		NumDocs int `json:"numDocs"`
	}
	res, err := srv.Client().Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if err := json.NewDecoder(res.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.NumDocs <= before {
		t.Errorf("ingest trace added no documents: numDocs=%d", stats.NumDocs)
	}
}

func TestBurstTraceIdlesBetweenBursts(t *testing.T) {
	srv := startServer(t, nil, httpapi.Options{})
	start := time.Now()
	s := runLoad(t, []string{"-addr", srv.URL, "-duration", "600ms", "-concurrency", "2", "-trace", "burst"})
	if s.OK == 0 {
		t.Fatalf("burst trace delivered nothing: %+v", s)
	}
	if time.Since(start) < 600*time.Millisecond {
		t.Error("burst trace returned before the duration elapsed")
	}
}

func TestANNTraceSweepsProbeBudgets(t *testing.T) {
	srv := startServer(t, []retrieval.Option{retrieval.WithANN(4, 0)}, httpapi.Options{})
	out := filepath.Join(t.TempDir(), "BENCH.json")
	s := runLoad(t, []string{"-addr", srv.URL, "-duration", "300ms", "-concurrency", "4",
		"-trace", "ann", "-nprobe-sweep", "0,2,4", "-o", out, "-l", "test-ann", "-seed", "7"})

	if s.Requests == 0 || s.OK == 0 || s.Failed != 0 {
		t.Fatalf("ann trace traffic: %+v", s)
	}
	if len(s.ANNSweep) != 3 {
		t.Fatalf("ann_sweep has %d buckets, want 3: %+v", len(s.ANNSweep), s.ANNSweep)
	}
	var total int64
	for i, b := range s.ANNSweep {
		if b.NProbe != []int{0, 2, 4}[i] {
			t.Errorf("bucket %d budget = %d, want sweep order preserved", i, b.NProbe)
		}
		if b.Requests == 0 || b.P50Ns <= 0 || b.P99Ns < b.P50Ns {
			t.Errorf("bucket %+v has no coherent quantiles", b)
		}
		total += b.Requests
	}
	if total != s.OK {
		t.Errorf("sweep buckets cover %d requests, ok=%d", total, s.OK)
	}

	// The per-budget p99 columns land in the perf record.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec benchfmt.Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	m := rec.Runs[0].Benchmarks[0].Metrics
	for _, key := range []string{"p99_ns_nprobe0", "p99_ns_nprobe2", "p99_ns_nprobe4"} {
		if m[key] <= 0 {
			t.Errorf("perf record missing %s: %v", key, m)
		}
	}
}

func TestParseFlagsRejects(t *testing.T) {
	for _, args := range [][]string{
		{"-trace", "nope"},
		{"-zipf-s", "0.5"},
		{"-trace", "ann", "-nprobe-sweep", "1,-2"},
		{"-trace", "ann", "-nprobe-sweep", " , "},
		{"positional"},
	} {
		if _, err := parseFlags(args, os.Stderr); err == nil {
			t.Errorf("parseFlags(%v) should fail", args)
		}
	}
	cfg, err := parseFlags([]string{"-addr", "localhost:9999"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.addrs) != 1 || cfg.addrs[0] != "http://localhost:9999" || cfg.label != "load-zipf" {
		t.Errorf("defaults: %+v", cfg)
	}
	// Comma-separated targets normalize independently.
	cfg, err = parseFlags([]string{"-addr", "host1:8080, http://host2:9090/"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.addrs) != 2 || cfg.addrs[0] != "http://host1:8080" || cfg.addrs[1] != "http://host2:9090" {
		t.Errorf("multi-target addrs: %+v", cfg.addrs)
	}
	if _, err := parseFlags([]string{"-addr", " , "}, os.Stderr); err == nil {
		t.Error("empty target list should fail")
	}
}

// TestMultiTargetRoundRobin: with two targets every node sees traffic.
func TestMultiTargetRoundRobin(t *testing.T) {
	var hits [2]atomic.Int64
	servers := make([]*httptest.Server, 2)
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			w.Write([]byte(`{"results":[]}`))
		}))
		t.Cleanup(servers[i].Close)
	}
	s := runLoad(t, []string{"-addr", servers[0].URL + "," + servers[1].URL,
		"-duration", "200ms", "-concurrency", "2"})
	if s.OK == 0 || s.Failed != 0 {
		t.Fatalf("multi-target run: %+v", s)
	}
	if hits[0].Load() == 0 || hits[1].Load() == 0 {
		t.Fatalf("round robin skipped a target: %d / %d", hits[0].Load(), hits[1].Load())
	}
}

// TestShedCounts503: the compaction-debt gate answers 503, which is
// shed (backpressure working), not an error.
func TestShedCounts503(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		http.Error(w, `{"error":"compaction debt"}`, http.StatusServiceUnavailable)
	}))
	t.Cleanup(srv.Close)
	s := runLoad(t, []string{"-addr", srv.URL, "-duration", "150ms", "-concurrency", "2"})
	if s.Shed == 0 || s.Shed != s.Requests {
		t.Fatalf("503s not counted as shed: %+v", s)
	}
	if s.Failed != 0 || s.ErrorRate != 0 {
		t.Fatalf("503 counted as failure: %+v", s)
	}
}

func TestDefaultQueriesDeterministic(t *testing.T) {
	a, b := defaultQueries(), defaultQueries()
	if len(a) < 10 {
		t.Fatalf("query set too small: %d", len(a))
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Error("defaultQueries is not deterministic")
	}
}
