// Command lsiload is a closed-loop load generator for a running
// lsiserve: N workers each keep exactly one request in flight against
// the server for a fixed duration, and the tool reports client-observed
// latency quantiles (p50/p99/p999), throughput, and error/shed rates as
// JSON. Closed-loop means offered load adapts to the server — when the
// admission gate sheds or latency grows, workers slow down instead of
// stacking an unbounded backlog, which keeps the quantiles honest.
//
// Usage:
//
//	lsiload -addr localhost:8080 [-duration 10s] [-concurrency 8] [-trace zipf]
//	lsiload -addr localhost:8080 -trace ingest -o BENCH_6.json -l load-ingest
//	lsiload -addr host1:8080,host2:8080   # round-robin over several targets
//
// -addr accepts a comma-separated target list; each worker rotates
// through them request by request, which spreads a trace across the
// nodes of a cluster (or compares a router against its nodes).
//
// Shed accounting counts both admission-gate statuses: 429 (queue
// full) and 503 (compaction debt). Both are the server protecting
// itself, not a failure, and both back the closed loop off briefly.
//
// Traces:
//
//	zipf    searches drawn from the query set with a Zipfian rank-
//	        frequency law (-zipf-s), the cache-friendly steady state
//	burst   the zipf trace gated by a square wave: 200ms full load,
//	        300ms idle — exercises queue fill/drain and shed recovery
//	ingest  alternates POST /v1/docs appends with searches — exercises
//	        epoch invalidation and the compaction-debt backpressure
//
// The query set defaults to terms drawn from the built-in demo corpus
// (what `lsiserve` with no arguments serves); -queries points at a file
// with one query per line for real corpora. With -o the run is merged
// into a BENCH*.json perf record (internal/benchfmt schema, the same
// file format cmd/benchjson writes), with the quantiles in the
// benchmark's metrics map: p50_ns, p99_ns, p999_ns, qps, error_rate,
// shed_rate.
//
// Exit status is 0 even when requests failed — the error rate is data,
// not a tool failure; CI gates assert on the JSON instead. Only flag
// errors, an unreachable -o path, or an empty query set fail the run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/metrics"
	"repro/retrieval"
)

type loadConfig struct {
	addr        string
	addrs       []string // normalized base URLs parsed from addr
	duration    time.Duration
	concurrency int
	trace       string
	topN        int
	zipfS       float64
	queriesFile string
	out         string
	label       string
	seed        int64
}

func parseFlags(args []string, stderr io.Writer) (loadConfig, error) {
	cfg := loadConfig{}
	fs := flag.NewFlagSet("lsiload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", "localhost:8080", "lsiserve address (host:port or http:// base URL; comma-separate several to round-robin)")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to run the trace")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop workers (each keeps one request in flight)")
	fs.StringVar(&cfg.trace, "trace", "zipf", "workload trace: zipf, burst, or ingest")
	fs.IntVar(&cfg.topN, "topn", 10, "results requested per search")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.1, "Zipf exponent for query popularity (>1; larger = more skewed, more cache hits)")
	fs.StringVar(&cfg.queriesFile, "queries", "", "file with one query per line (default: terms from the built-in demo corpus)")
	fs.StringVar(&cfg.out, "o", "", "merge the run into this BENCH*.json perf record (cmd/benchjson schema)")
	fs.StringVar(&cfg.label, "l", "", "run label for -o (default: load-<trace>)")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed (per-worker streams derive from it)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("lsiload: unexpected arguments: %v", fs.Args())
	}
	switch cfg.trace {
	case "zipf", "burst", "ingest":
	default:
		return cfg, fmt.Errorf("lsiload: unknown trace %q (want zipf, burst, or ingest)", cfg.trace)
	}
	if cfg.zipfS <= 1 {
		return cfg, fmt.Errorf("lsiload: -zipf-s must be > 1, got %v", cfg.zipfS)
	}
	if cfg.concurrency <= 0 {
		cfg.concurrency = 1
	}
	if cfg.label == "" {
		cfg.label = "load-" + cfg.trace
	}
	for _, a := range strings.Split(cfg.addr, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		cfg.addrs = append(cfg.addrs, strings.TrimRight(a, "/"))
	}
	if len(cfg.addrs) == 0 {
		return cfg, fmt.Errorf("lsiload: -addr names no targets")
	}
	return cfg, nil
}

// defaultQueries derives a deterministic query set from the demo corpus:
// every word of length >= 4, lowercased and deduplicated. Zipf ranks
// follow this order, so runs are reproducible.
func defaultQueries() []string {
	seen := map[string]bool{}
	var qs []string
	for _, d := range retrieval.DemoCorpus() {
		for _, w := range strings.Fields(strings.ToLower(d.Text)) {
			w = strings.Trim(w, ".,;:!?\"'")
			if len(w) >= 4 && !seen[w] {
				seen[w] = true
				qs = append(qs, w)
			}
		}
	}
	sort.Strings(qs)
	return qs
}

func readQueries(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var qs []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			qs = append(qs, line)
		}
	}
	return qs, nil
}

// collector aggregates client-observed outcomes across workers. The
// latency histogram only records completed requests (any status);
// transport errors have no meaningful latency.
type collector struct {
	latency *metrics.Histogram // seconds
	ok      atomic.Int64       // 2xx
	shed    atomic.Int64       // 429/503 (the admission gates working as designed)
	failed  atomic.Int64       // other statuses and transport errors
}

// isShed reports whether a status is an admission-gate response: 429
// for a full queue, 503 for compaction debt on ingest.
func isShed(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

func (c *collector) observe(elapsed time.Duration, status int, err error) {
	if err != nil {
		c.failed.Add(1)
		return
	}
	c.latency.Observe(elapsed.Seconds())
	switch {
	case status >= 200 && status < 300:
		c.ok.Add(1)
	case isShed(status):
		c.shed.Add(1)
	default:
		c.failed.Add(1)
	}
}

// burst timing: full load for onPhase, idle for offPhase, repeating.
const (
	onPhase  = 200 * time.Millisecond
	offPhase = 300 * time.Millisecond
)

type worker struct {
	cfg     loadConfig
	client  *http.Client
	queries []string
	col     *collector
	rng     *rand.Rand
	zipf    *rand.Zipf
	begin   time.Time
	seq     int
}

func (w *worker) run(ctx context.Context) {
	for ctx.Err() == nil {
		if w.cfg.trace == "burst" {
			phase := time.Since(w.begin) % (onPhase + offPhase)
			if phase >= onPhase {
				idle := onPhase + offPhase - phase
				select {
				case <-time.After(idle):
				case <-ctx.Done():
					return
				}
				continue
			}
		}
		w.seq++
		if w.cfg.trace == "ingest" && w.seq%2 == 0 {
			w.do(ctx, "/v1/docs", w.ingestBody())
		} else {
			w.do(ctx, "/v1/search", w.searchBody())
		}
	}
}

func (w *worker) searchBody() []byte {
	q := w.queries[int(w.zipf.Uint64())]
	body, _ := json.Marshal(map[string]any{"query": q, "topN": w.cfg.topN})
	return body
}

func (w *worker) ingestBody() []byte {
	// A few random query terms make a plausible document that overlaps
	// the search vocabulary, so ingested documents influence results.
	words := make([]string, 6)
	for i := range words {
		words[i] = w.queries[w.rng.Intn(len(w.queries))]
	}
	body, _ := json.Marshal(map[string]any{"text": strings.Join(words, " ")})
	return body
}

// target rotates through the configured base URLs request by request.
func (w *worker) target() string {
	return w.cfg.addrs[w.seq%len(w.cfg.addrs)]
}

func (w *worker) do(ctx context.Context, path string, body []byte) {
	req, err := http.NewRequestWithContext(ctx, "POST", w.target()+path, bytes.NewReader(body))
	if err != nil {
		w.col.failed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not a server failure
		}
		w.col.observe(0, 0, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.col.observe(time.Since(start), resp.StatusCode, nil)
	if isShed(resp.StatusCode) {
		// Back off briefly; a closed loop that instantly retries turns
		// shedding into a busy-wait against the gate.
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// Summary is the JSON report printed on stdout.
type Summary struct {
	Trace       string  `json:"trace"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	QPS         float64 `json:"qps"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Failed      int64   `json:"failed"`
	ErrorRate   float64 `json:"error_rate"`
	ShedRate    float64 `json:"shed_rate"`
	MeanNs      float64 `json:"mean_ns"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	queries := defaultQueries()
	if cfg.queriesFile != "" {
		if queries, err = readQueries(cfg.queriesFile); err != nil {
			return err
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("lsiload: empty query set")
	}

	col := &collector{latency: metrics.NewHistogram(metrics.DefLatencyBuckets)}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency,
		MaxIdleConnsPerHost: cfg.concurrency,
	}}
	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	begin := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.concurrency; i++ {
		rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
		w := &worker{
			cfg: cfg, client: client, queries: queries, col: col,
			rng:   rng,
			zipf:  rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(queries)-1)),
			begin: begin,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(runCtx)
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)

	ok, shed, failed := col.ok.Load(), col.shed.Load(), col.failed.Load()
	total := ok + shed + failed
	s := Summary{
		Trace:       cfg.trace,
		DurationS:   elapsed.Seconds(),
		Concurrency: cfg.concurrency,
		Requests:    total,
		OK:          ok,
		Shed:        shed,
		Failed:      failed,
		MeanNs:      mean(col) * 1e9,
		P50Ns:       col.latency.Quantile(0.50) * 1e9,
		P99Ns:       col.latency.Quantile(0.99) * 1e9,
		P999Ns:      col.latency.Quantile(0.999) * 1e9,
	}
	if total > 0 {
		s.QPS = float64(total) / elapsed.Seconds()
		s.ErrorRate = float64(failed) / float64(total)
		s.ShedRate = float64(shed) / float64(total)
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}

	if cfg.out != "" {
		name := "Load" + strings.ToUpper(cfg.trace[:1]) + cfg.trace[1:]
		return benchfmt.Merge(cfg.out, benchfmt.Run{
			Label: cfg.label,
			Date:  time.Now().UTC().Format(time.RFC3339),
			Go:    runtime.Version(),
			Benchmarks: []benchfmt.Benchmark{{
				Name:       name,
				Iterations: total,
				NsPerOp:    s.MeanNs,
				Metrics: map[string]float64{
					"p50_ns":     s.P50Ns,
					"p99_ns":     s.P99Ns,
					"p999_ns":    s.P999Ns,
					"qps":        s.QPS,
					"error_rate": s.ErrorRate,
					"shed_rate":  s.ShedRate,
				},
			}},
		})
	}
	return nil
}

func mean(c *collector) float64 {
	n := c.latency.Count()
	if n == 0 {
		return 0
	}
	return c.latency.Sum() / float64(n)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "lsiload: %v\n", err)
		os.Exit(1)
	}
}
