// Command lsiload is a closed-loop load generator for a running
// lsiserve: N workers each keep exactly one request in flight against
// the server for a fixed duration, and the tool reports client-observed
// latency quantiles (p50/p99/p999), throughput, and error/shed rates as
// JSON. Closed-loop means offered load adapts to the server — when the
// admission gate sheds or latency grows, workers slow down instead of
// stacking an unbounded backlog, which keeps the quantiles honest.
//
// Usage:
//
//	lsiload -addr localhost:8080 [-duration 10s] [-concurrency 8] [-trace zipf]
//	lsiload -addr localhost:8080 -trace ingest -o BENCH_6.json -l load-ingest
//	lsiload -addr host1:8080,host2:8080   # round-robin over several targets
//
// -addr accepts a comma-separated target list; each worker rotates
// through them request by request, which spreads a trace across the
// nodes of a cluster (or compares a router against its nodes).
//
// Shed accounting counts both admission-gate statuses: 429 (queue
// full) and 503 (compaction debt). Both are the server protecting
// itself, not a failure, and both back the closed loop off briefly.
//
// Traces:
//
//	zipf    searches drawn from the query set with a Zipfian rank-
//	        frequency law (-zipf-s), the cache-friendly steady state
//	burst   the zipf trace gated by a square wave: 200ms full load,
//	        300ms idle — exercises queue fill/drain and shed recovery
//	ingest  alternates POST /v1/docs appends with searches — exercises
//	        epoch invalidation and the compaction-debt backpressure
//	ann     the zipf query stream with a per-request "nprobe" override
//	        cycling through -nprobe-sweep — reports latency quantiles
//	        per probe budget (the "ann_sweep" summary block), so the
//	        p99-under-probe-pressure story is one run. The target must
//	        serve a *retrieval.Index (a node, not the cluster router);
//	        budget 0 is the exhaustive baseline the others compare to
//
// -exact forces nprobe=0 on every search request — the fully exact
// per-request escape hatch — so a server running with ANN or quantized
// tiers (-ann-nlist / -quant-beta on lsiserve) can be load-tested
// against its own exhaustive float baseline with the same trace.
//
// The query set defaults to terms drawn from the built-in demo corpus
// (what `lsiserve` with no arguments serves); -queries points at a file
// with one query per line for real corpora. With -o the run is merged
// into a BENCH*.json perf record (internal/benchfmt schema, the same
// file format cmd/benchjson writes), with the quantiles in the
// benchmark's metrics map: p50_ns, p99_ns, p999_ns, qps, error_rate,
// shed_rate.
//
// Exit status is 0 even when requests failed — the error rate is data,
// not a tool failure; CI gates assert on the JSON instead. Only flag
// errors, an unreachable -o path, or an empty query set fail the run.
//
// -faults turns the tool into a chaos driver: it reads a JSON schedule
// of fault steps and posts each step's InjectSpec to a node's
// /debug/faults admin endpoint (lsiserve -chaos) at its offset, while
// the trace keeps running. The schedule format:
//
//	{"steps": [
//	  {"at_ms": 0,    "node": "http://127.0.0.1:8081",
//	   "spec": {"seed": 1, "faults": [{"class": "search", "err_rate": 1}]}},
//	  {"at_ms": 2000, "node": "http://127.0.0.1:8081", "clear": true}
//	]}
//
// Under -faults the run also checks resilience invariants and exits 1
// when one is violated, which is what the CI chaos-smoke job gates on:
//
//   - no stuck request: every request completes (any status) within
//     -deadline; a client-side deadline expiry is a violation
//   - no acked write lost, none invented: the target's /v1/stats
//     numDocs must end at exactly its starting value plus the acked
//     (2xx) /v1/docs appends this run made
//
// Responses carrying X-Partial-Results (degraded fan-outs honestly
// marked) are counted in the summary as "partials" — evidence the
// faults landed, not a violation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/retrieval"
)

type loadConfig struct {
	addr        string
	addrs       []string // normalized base URLs parsed from addr
	duration    time.Duration
	concurrency int
	trace       string
	topN        int
	zipfS       float64
	queriesFile string
	out         string
	label       string
	seed        int64
	nprobeSweep []int // parsed from -nprobe-sweep (trace "ann" only)
	exact       bool  // force nprobe=0 on searches (the fully exact escape hatch)

	// Chaos driving (-faults).
	faultsFile string
	deadline   time.Duration
}

func parseFlags(args []string, stderr io.Writer) (loadConfig, error) {
	cfg := loadConfig{}
	fs := flag.NewFlagSet("lsiload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", "localhost:8080", "lsiserve address (host:port or http:// base URL; comma-separate several to round-robin)")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to run the trace")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop workers (each keeps one request in flight)")
	fs.StringVar(&cfg.trace, "trace", "zipf", "workload trace: zipf, burst, ingest, or ann")
	sweep := fs.String("nprobe-sweep", "0,1,2,4,8,16", "trace ann: comma-separated probe budgets cycled per request (0 = exhaustive baseline)")
	fs.IntVar(&cfg.topN, "topn", 10, "results requested per search")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.1, "Zipf exponent for query popularity (>1; larger = more skewed, more cache hits)")
	fs.StringVar(&cfg.queriesFile, "queries", "", "file with one query per line (default: terms from the built-in demo corpus)")
	fs.StringVar(&cfg.out, "o", "", "merge the run into this BENCH*.json perf record (cmd/benchjson schema)")
	fs.StringVar(&cfg.label, "l", "", "run label for -o (default: load-<trace>)")
	fs.Int64Var(&cfg.seed, "seed", 1, "PRNG seed (per-worker streams derive from it)")
	fs.BoolVar(&cfg.exact, "exact", false, "send nprobe=0 with every search: the fully exact escape hatch, bypassing the server's ANN and quantized tiers (baseline for -quant-beta / ANN runs; not with -trace ann)")
	fs.StringVar(&cfg.faultsFile, "faults", "", "chaos mode: apply this JSON fault schedule to lsiserve -chaos nodes and gate on resilience invariants (exit 1 on violation)")
	fs.DurationVar(&cfg.deadline, "deadline", 0, "per-request stuck bound; expiring it is an invariant violation (default 5s under -faults, unset otherwise)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	if cfg.faultsFile != "" && cfg.deadline == 0 {
		cfg.deadline = 5 * time.Second
	}
	if fs.NArg() > 0 {
		return cfg, fmt.Errorf("lsiload: unexpected arguments: %v", fs.Args())
	}
	switch cfg.trace {
	case "zipf", "burst", "ingest":
	case "ann":
		for _, part := range strings.Split(*sweep, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			np, err := strconv.Atoi(part)
			if err != nil || np < 0 {
				return cfg, fmt.Errorf("lsiload: bad -nprobe-sweep entry %q (want integers >= 0)", part)
			}
			cfg.nprobeSweep = append(cfg.nprobeSweep, np)
		}
		if len(cfg.nprobeSweep) == 0 {
			return cfg, fmt.Errorf("lsiload: -nprobe-sweep names no budgets")
		}
	default:
		return cfg, fmt.Errorf("lsiload: unknown trace %q (want zipf, burst, ingest, or ann)", cfg.trace)
	}
	if cfg.exact && cfg.trace == "ann" {
		return cfg, fmt.Errorf("lsiload: -exact conflicts with -trace ann (the sweep sets nprobe per request)")
	}
	if cfg.zipfS <= 1 {
		return cfg, fmt.Errorf("lsiload: -zipf-s must be > 1, got %v", cfg.zipfS)
	}
	if cfg.concurrency <= 0 {
		cfg.concurrency = 1
	}
	if cfg.label == "" {
		cfg.label = "load-" + cfg.trace
	}
	for _, a := range strings.Split(cfg.addr, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		cfg.addrs = append(cfg.addrs, strings.TrimRight(a, "/"))
	}
	if len(cfg.addrs) == 0 {
		return cfg, fmt.Errorf("lsiload: -addr names no targets")
	}
	return cfg, nil
}

// defaultQueries derives a deterministic query set from the demo corpus:
// every word of length >= 4, lowercased and deduplicated. Zipf ranks
// follow this order, so runs are reproducible.
func defaultQueries() []string {
	seen := map[string]bool{}
	var qs []string
	for _, d := range retrieval.DemoCorpus() {
		for _, w := range strings.Fields(strings.ToLower(d.Text)) {
			w = strings.Trim(w, ".,;:!?\"'")
			if len(w) >= 4 && !seen[w] {
				seen[w] = true
				qs = append(qs, w)
			}
		}
	}
	sort.Strings(qs)
	return qs
}

func readQueries(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var qs []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			qs = append(qs, line)
		}
	}
	return qs, nil
}

// collector aggregates client-observed outcomes across workers. The
// latency histogram only records completed requests (any status);
// transport errors have no meaningful latency.
type collector struct {
	latency *metrics.Histogram // seconds
	ok      atomic.Int64       // 2xx
	shed    atomic.Int64       // 429/503 (the admission gates working as designed)
	failed  atomic.Int64       // other statuses and transport errors

	// Per-probe-budget latency for the ann trace, keyed by nprobe.
	// Populated before the workers start; Observe is concurrency-safe.
	annLatency map[int]*metrics.Histogram

	// Chaos-mode accounting (-faults).
	stuck    atomic.Int64 // requests that blew the -deadline bound
	partials atomic.Int64 // 2xx responses marked X-Partial-Results
	acked    atomic.Int64 // documents acked (2xx) on /v1/docs
}

// isShed reports whether a status is an admission-gate response: 429
// for a full queue, 503 for compaction debt on ingest.
func isShed(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

func (c *collector) observe(elapsed time.Duration, status int, err error) {
	if err != nil {
		c.failed.Add(1)
		return
	}
	c.latency.Observe(elapsed.Seconds())
	switch {
	case status >= 200 && status < 300:
		c.ok.Add(1)
	case isShed(status):
		c.shed.Add(1)
	default:
		c.failed.Add(1)
	}
}

// burst timing: full load for onPhase, idle for offPhase, repeating.
const (
	onPhase  = 200 * time.Millisecond
	offPhase = 300 * time.Millisecond
)

type worker struct {
	cfg     loadConfig
	client  *http.Client
	queries []string
	col     *collector
	rng     *rand.Rand
	zipf    *rand.Zipf
	begin   time.Time
	seq     int
}

func (w *worker) run(ctx context.Context) {
	// The trace duration bounds request STARTS; ctx (cut at duration +
	// drain grace) is only the backstop. In-flight requests at the
	// cutoff drain to completion, so an append the server acks is
	// always counted — canceling mid-flight would strand applied writes
	// outside the acked-write ledger and fail the chaos gate on a
	// healthy cluster.
	for ctx.Err() == nil && time.Since(w.begin) < w.cfg.duration {
		if w.cfg.trace == "burst" {
			phase := time.Since(w.begin) % (onPhase + offPhase)
			if phase >= onPhase {
				idle := onPhase + offPhase - phase
				select {
				case <-time.After(idle):
				case <-ctx.Done():
					return
				}
				continue
			}
		}
		w.seq++
		switch {
		case w.cfg.trace == "ann":
			np := w.cfg.nprobeSweep[w.seq%len(w.cfg.nprobeSweep)]
			w.do(ctx, "/v1/search", w.annBody(np), w.col.annLatency[np])
		case w.cfg.trace == "ingest" && w.seq%2 == 0:
			w.do(ctx, "/v1/docs", w.ingestBody(), nil)
		default:
			w.do(ctx, "/v1/search", w.searchBody(), nil)
		}
	}
}

func (w *worker) searchBody() []byte {
	q := w.queries[int(w.zipf.Uint64())]
	req := map[string]any{"query": q, "topN": w.cfg.topN}
	if w.cfg.exact {
		// nprobe=0 is the per-request fully exact escape hatch: float
		// kernels over every document, no ANN probing, no int8 scan.
		req["nprobe"] = 0
	}
	body, _ := json.Marshal(req)
	return body
}

// annBody is searchBody with an explicit per-request probe budget.
func (w *worker) annBody(nprobe int) []byte {
	q := w.queries[int(w.zipf.Uint64())]
	body, _ := json.Marshal(map[string]any{"query": q, "topN": w.cfg.topN, "nprobe": nprobe})
	return body
}

func (w *worker) ingestBody() []byte {
	// A few random query terms make a plausible document that overlaps
	// the search vocabulary, so ingested documents influence results.
	words := make([]string, 6)
	for i := range words {
		words[i] = w.queries[w.rng.Intn(len(w.queries))]
	}
	body, _ := json.Marshal(map[string]any{"text": strings.Join(words, " ")})
	return body
}

// target rotates through the configured base URLs request by request.
func (w *worker) target() string {
	return w.cfg.addrs[w.seq%len(w.cfg.addrs)]
}

// do issues one request; extra, when non-nil, additionally records the
// latency of successful (2xx) responses — the ann trace's per-budget
// histogram.
func (w *worker) do(ctx context.Context, path string, body []byte, extra *metrics.Histogram) {
	reqCtx := ctx
	if w.cfg.deadline > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithTimeout(ctx, w.cfg.deadline)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(reqCtx, "POST", w.target()+path, bytes.NewReader(body))
	if err != nil {
		w.col.failed.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := w.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not a server failure
		}
		if errors.Is(err, context.DeadlineExceeded) {
			// The request was still in flight when the stuck bound expired —
			// the invariant the chaos gate exists to catch.
			w.col.stuck.Add(1)
		}
		w.col.observe(0, 0, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if resp.Header.Get("X-Partial-Results") == "true" {
			w.col.partials.Add(1)
		}
		if path == "/v1/docs" {
			w.col.acked.Add(1)
		}
		if extra != nil {
			extra.Observe(elapsed.Seconds())
		}
	}
	w.col.observe(elapsed, resp.StatusCode, nil)
	if isShed(resp.StatusCode) {
		// Back off briefly; a closed loop that instantly retries turns
		// shedding into a busy-wait against the gate.
		select {
		case <-time.After(5 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// Summary is the JSON report printed on stdout.
type Summary struct {
	Trace       string  `json:"trace"`
	DurationS   float64 `json:"duration_s"`
	Concurrency int     `json:"concurrency"`
	Requests    int64   `json:"requests"`
	QPS         float64 `json:"qps"`
	OK          int64   `json:"ok"`
	Shed        int64   `json:"shed"`
	Failed      int64   `json:"failed"`
	ErrorRate   float64 `json:"error_rate"`
	ShedRate    float64 `json:"shed_rate"`
	MeanNs      float64 `json:"mean_ns"`
	P50Ns       float64 `json:"p50_ns"`
	P99Ns       float64 `json:"p99_ns"`
	P999Ns      float64 `json:"p999_ns"`

	// Chaos-mode fields (-faults only).
	FaultSteps int   `json:"fault_steps,omitempty"`
	Stuck      int64 `json:"stuck,omitempty"`
	Partials   int64 `json:"partials,omitempty"`
	AckedDocs  int64 `json:"acked_docs,omitempty"`

	// ANNSweep reports per-probe-budget latency for the ann trace, in
	// -nprobe-sweep order (budget 0 is the exhaustive baseline).
	ANNSweep []ANNBucket `json:"ann_sweep,omitempty"`
}

// ANNBucket is one probe budget's slice of an ann-trace run; only
// successful (2xx) searches count toward its quantiles.
type ANNBucket struct {
	NProbe   int     `json:"nprobe"`
	Requests int64   `json:"requests"`
	P50Ns    float64 `json:"p50_ns"`
	P99Ns    float64 `json:"p99_ns"`
}

// faultStep is one timed entry of a -faults schedule: at at_ms from run
// start, install spec on node's /debug/faults (or clear it).
type faultStep struct {
	AtMS  int64                  `json:"at_ms"`
	Node  string                 `json:"node"`
	Clear bool                   `json:"clear,omitempty"`
	Spec  faultinject.InjectSpec `json:"spec,omitempty"`
}

type faultSchedule struct {
	Steps []faultStep `json:"steps"`
}

func readFaultSchedule(path string) (*faultSchedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sched faultSchedule
	if err := json.Unmarshal(data, &sched); err != nil {
		return nil, fmt.Errorf("lsiload: bad fault schedule %s: %v", path, err)
	}
	if len(sched.Steps) == 0 {
		return nil, fmt.Errorf("lsiload: fault schedule %s has no steps", path)
	}
	sort.SliceStable(sched.Steps, func(i, j int) bool { return sched.Steps[i].AtMS < sched.Steps[j].AtMS })
	for i, s := range sched.Steps {
		if s.Node == "" {
			return nil, fmt.Errorf("lsiload: fault step %d names no node", i)
		}
	}
	return &sched, nil
}

// applyFaultStep drives one node's /debug/faults admin endpoint.
func applyFaultStep(ctx context.Context, client *http.Client, step faultStep) error {
	url := strings.TrimRight(step.Node, "/") + "/debug/faults"
	var req *http.Request
	var err error
	if step.Clear {
		req, err = http.NewRequestWithContext(ctx, http.MethodDelete, url, nil)
	} else {
		body, _ := json.Marshal(step.Spec)
		req, err = http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: status %d (is the node running lsiserve -chaos?)", req.Method, url, resp.StatusCode)
	}
	return nil
}

// runFaultSchedule fires each step at its offset from begin until ctx
// ends. Failures to reach an admin endpoint are reported, not fatal —
// the invariant gate at the end is what fails the run.
func runFaultSchedule(ctx context.Context, client *http.Client, sched *faultSchedule, begin time.Time, stderr io.Writer) {
	for _, step := range sched.Steps {
		wait := time.Until(begin.Add(time.Duration(step.AtMS) * time.Millisecond))
		if wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return
			}
		}
		if err := applyFaultStep(ctx, client, step); err != nil {
			fmt.Fprintf(stderr, "lsiload: fault step at %dms: %v\n", step.AtMS, err)
			continue
		}
		what := "spec installed"
		if step.Clear {
			what = "cleared"
		}
		fmt.Fprintf(stderr, "lsiload: fault step at %dms: %s on %s\n", step.AtMS, what, step.Node)
	}
}

// clearAllFaults disarms every node the schedule touched, so a crashed
// or interrupted run does not leave a bench flapping.
func clearAllFaults(client *http.Client, sched *faultSchedule, stderr io.Writer) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	seen := map[string]bool{}
	for _, step := range sched.Steps {
		if seen[step.Node] {
			continue
		}
		seen[step.Node] = true
		if err := applyFaultStep(ctx, client, faultStep{Node: step.Node, Clear: true}); err != nil {
			fmt.Fprintf(stderr, "lsiload: clearing faults on %s: %v\n", step.Node, err)
		}
	}
}

// fetchNumDocs reads the target's document count from /v1/stats,
// retrying briefly (the post-run probe can race the last fault clear).
func fetchNumDocs(base string, client *http.Client) (int, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(200 * time.Millisecond)
		}
		resp, err := client.Get(base + "/v1/stats")
		if err != nil {
			lastErr = err
			continue
		}
		var body struct {
			NumDocs *int `json:"numDocs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || body.NumDocs == nil {
			lastErr = fmt.Errorf("%s/v1/stats: no numDocs in response (err=%v)", base, err)
			continue
		}
		return *body.NumDocs, nil
	}
	return 0, lastErr
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	queries := defaultQueries()
	if cfg.queriesFile != "" {
		if queries, err = readQueries(cfg.queriesFile); err != nil {
			return err
		}
	}
	if len(queries) == 0 {
		return fmt.Errorf("lsiload: empty query set")
	}

	col := &collector{latency: metrics.NewHistogram(metrics.DefLatencyBuckets)}
	if cfg.trace == "ann" {
		col.annLatency = make(map[int]*metrics.Histogram, len(cfg.nprobeSweep))
		for _, np := range cfg.nprobeSweep {
			if col.annLatency[np] == nil {
				col.annLatency[np] = metrics.NewHistogram(metrics.DefLatencyBuckets)
			}
		}
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.concurrency,
		MaxIdleConnsPerHost: cfg.concurrency,
	}}
	var sched *faultSchedule
	baseDocs := 0
	if cfg.faultsFile != "" {
		if sched, err = readFaultSchedule(cfg.faultsFile); err != nil {
			return err
		}
		// The acked-write ledger starts from the target's pre-run count.
		if baseDocs, err = fetchNumDocs(cfg.addrs[0], client); err != nil {
			return fmt.Errorf("lsiload: pre-run document count: %w", err)
		}
	}
	// Workers stop STARTING requests at cfg.duration (they watch the
	// clock themselves); the context leaves a drain grace on top so the
	// last in-flight requests resolve — by response or by their own
	// -deadline — instead of being canceled mid-flight with the ack
	// undelivered.
	grace := cfg.deadline
	if grace <= 0 {
		grace = 5 * time.Second
	}
	runCtx, cancel := context.WithTimeout(ctx, cfg.duration+grace)
	defer cancel()
	begin := time.Now()
	if sched != nil {
		go runFaultSchedule(runCtx, client, sched, begin, stderr)
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.concurrency; i++ {
		rng := rand.New(rand.NewSource(cfg.seed + int64(i)))
		w := &worker{
			cfg: cfg, client: client, queries: queries, col: col,
			rng:   rng,
			zipf:  rand.NewZipf(rng, cfg.zipfS, 1, uint64(len(queries)-1)),
			begin: begin,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(runCtx)
		}()
	}
	wg.Wait()
	elapsed := time.Since(begin)
	if sched != nil {
		clearAllFaults(client, sched, stderr)
	}

	ok, shed, failed := col.ok.Load(), col.shed.Load(), col.failed.Load()
	total := ok + shed + failed
	s := Summary{
		Trace:       cfg.trace,
		DurationS:   elapsed.Seconds(),
		Concurrency: cfg.concurrency,
		Requests:    total,
		OK:          ok,
		Shed:        shed,
		Failed:      failed,
		MeanNs:      mean(col) * 1e9,
		P50Ns:       col.latency.Quantile(0.50) * 1e9,
		P99Ns:       col.latency.Quantile(0.99) * 1e9,
		P999Ns:      col.latency.Quantile(0.999) * 1e9,
	}
	if total > 0 {
		s.QPS = float64(total) / elapsed.Seconds()
		s.ErrorRate = float64(failed) / float64(total)
		s.ShedRate = float64(shed) / float64(total)
	}
	if sched != nil {
		s.FaultSteps = len(sched.Steps)
		s.Stuck = col.stuck.Load()
		s.Partials = col.partials.Load()
		s.AckedDocs = col.acked.Load()
	}
	if cfg.trace == "ann" {
		seen := map[int]bool{}
		for _, np := range cfg.nprobeSweep {
			if seen[np] {
				continue
			}
			seen[np] = true
			h := col.annLatency[np]
			s.ANNSweep = append(s.ANNSweep, ANNBucket{
				NProbe:   np,
				Requests: int64(h.Count()),
				P50Ns:    h.Quantile(0.50) * 1e9,
				P99Ns:    h.Quantile(0.99) * 1e9,
			})
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}

	if cfg.out != "" {
		name := "Load" + strings.ToUpper(cfg.trace[:1]) + cfg.trace[1:]
		extra := map[string]float64{}
		for _, b := range s.ANNSweep {
			extra[fmt.Sprintf("p99_ns_nprobe%d", b.NProbe)] = b.P99Ns
		}
		err := benchfmt.Merge(cfg.out, benchfmt.Run{
			Label: cfg.label,
			Date:  time.Now().UTC().Format(time.RFC3339),
			Go:    runtime.Version(),
			Benchmarks: []benchfmt.Benchmark{{
				Name:       name,
				Iterations: total,
				NsPerOp:    s.MeanNs,
				Metrics: func() map[string]float64 {
					m := map[string]float64{
						"p50_ns":     s.P50Ns,
						"p99_ns":     s.P99Ns,
						"p999_ns":    s.P999Ns,
						"qps":        s.QPS,
						"error_rate": s.ErrorRate,
						"shed_rate":  s.ShedRate,
					}
					for k, v := range extra {
						m[k] = v
					}
					return m
				}(),
			}},
		})
		if err != nil {
			return err
		}
	}

	// The chaos gate: under -faults the run itself passes judgment, so
	// CI can assert "survived the schedule" with a plain exit status.
	if sched != nil {
		var violations []string
		if s.Stuck > 0 {
			violations = append(violations, fmt.Sprintf("%d requests stuck past the %v deadline", s.Stuck, cfg.deadline))
		}
		finalDocs, err := fetchNumDocs(cfg.addrs[0], client)
		if err != nil {
			violations = append(violations, fmt.Sprintf("post-run document count unreadable: %v", err))
		} else if int64(finalDocs) != int64(baseDocs)+s.AckedDocs {
			violations = append(violations, fmt.Sprintf(
				"acked-write ledger mismatch: started at %d docs, acked %d appends, target reports %d",
				baseDocs, s.AckedDocs, finalDocs))
		}
		if len(violations) > 0 {
			return fmt.Errorf("invariant violations under faults:\n  - %s", strings.Join(violations, "\n  - "))
		}
		fmt.Fprintf(stderr, "lsiload: fault invariants held: %d steps, %d stuck, ledger %d+%d docs verified\n",
			s.FaultSteps, s.Stuck, baseDocs, s.AckedDocs)
	}
	return nil
}

func mean(c *collector) float64 {
	n := c.latency.Count()
	if n == 0 {
		return 0
	}
	return c.latency.Sum() / float64(n)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "lsiload: %v\n", err)
		os.Exit(1)
	}
}
