package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func writeCorpus(t *testing.T, topics, docsPerTopic int) string {
	t.Helper()
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: topics, TermsPerTopic: 20, Epsilon: 0.05, MinLen: 30, MaxLen: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	model.Sampler = &corpus.RoundRobinSampler{NumTopics: topics, MinLen: 30, MaxLen: 60}
	c, err := corpus.Generate(model, topics*docsPerTopic, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "corpus.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.WriteJSON(f, c); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSmokePassesOnSeparableCorpus(t *testing.T) {
	path := writeCorpus(t, 8, 50)
	out := filepath.Join(t.TempDir(), "quant-smoke.json")
	var stdout, stderr bytes.Buffer
	// beta=100 saturates a 400-document corpus (10*100 >= 400), so the
	// two-stage path degenerates to the exact pass and overlap is
	// exactly 1 by the determinism contract.
	err := run(context.Background(), []string{
		"-corpus", path, "-rank", "8", "-beta", "100",
		"-queries", "40", "-min-overlap", "1.0", "-o", out,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("summary not valid JSON: %v\n%s", err, data)
	}
	if s.Overlap != 1 || s.Docs != 400 || s.Beta != 100 || s.Queries != 40 {
		t.Errorf("summary: %+v", s)
	}
	if s.ExactNsPerQuery <= 0 || s.QuantNsPerQuery <= 0 || s.RerankedPerQuery <= 0 {
		t.Errorf("latency fields not populated: %+v", s)
	}
	if s.QuantBytes <= 0 || s.FloatBytes <= 0 || s.QuantBytes >= s.FloatBytes {
		t.Errorf("shadow should be smaller than the float matrix: %+v", s)
	}
}

func TestSmokeGatesFail(t *testing.T) {
	path := writeCorpus(t, 4, 25)
	var stdout, stderr bytes.Buffer
	// A speedup gate no configuration meets on 100 documents: the gate
	// must trip and name the ratio.
	err := run(context.Background(), []string{
		"-corpus", path, "-rank", "4", "-beta", "4",
		"-queries", "10", "-min-speedup", "1e9", "-o", "-",
	}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "speedup") {
		t.Fatalf("speedup gate did not trip: %v", err)
	}
	if !strings.Contains(stdout.String(), "\"overlap\"") {
		t.Error("summary should be written before the gate verdict")
	}
}

func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{},                       // -corpus missing
		{"-corpus", "x", "junk"}, // positional
		{"-corpus", "x", "-queries", "0"},
		{"-corpus", "x", "-beta", "0"},
		{"-corpus", filepath.Join(t.TempDir(), "nope.jsonl")}, // unreadable
	} {
		var stdout, stderr bytes.Buffer
		if err := run(context.Background(), args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
