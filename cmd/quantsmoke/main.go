// Command quantsmoke gates the quantized scoring tier against the
// paper's corpus model end to end: it reads a corpusgen JSON-lines
// corpus, builds an LSI index with WithQuantized over it, and measures
// top-N overlap (internal/eval) and latency of the two-stage
// int8-scan-plus-rerank path against the exact float scan on the same
// index — the exact quantities the PR acceptance bar speaks to. It
// exits non-zero when overlap falls below -min-overlap or the
// exact-to-quantized latency ratio falls below -min-speedup, so CI can
// use it as a pass/fail smoke (scripts/quant_smoke.sh drives it via
// `make quant-smoke`).
//
// Usage:
//
//	corpusgen -topics 128 -docs-per-topic 800 -eps 0.1 -o corpus.jsonl
//	quantsmoke -corpus corpus.jsonl -rank 64 -beta 64 \
//	           -min-overlap 0.99 -min-speedup 1.0 -o quant-smoke.json
//
// Queries are documents sampled from the corpus itself (the model's
// own distribution), so fidelity is measured exactly where the paper's
// topic-clustering guarantees apply. The exact baseline is the same
// index's per-request escape hatch (SearchProbe with nprobe=0), so the
// comparison isolates the tier: same decomposition, same vocabulary,
// same weighting — only the scan kernel differs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/retrieval"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "quantsmoke: %v\n", err)
		os.Exit(1)
	}
}

// Summary is the machine-readable result of one smoke run: the corpus
// and tier shape, the measured fidelity, and the per-query latency of
// both paths. It is written as JSON to -o (CI archives
// quant-smoke.json).
type Summary struct {
	Docs     int `json:"docs"`
	NumTerms int `json:"numTerms"`
	Rank     int `json:"rank"`
	Beta     int `json:"beta"`
	TopN     int `json:"topN"`
	Queries  int `json:"queries"`
	// Overlap is the top-N overlap (internal/eval.TopKOverlap) between
	// the quantized two-stage ranking and the exact float ranking,
	// averaged over the query set.
	Overlap float64 `json:"overlap"`
	// ExactNsPerQuery and QuantNsPerQuery are wall-clock means over the
	// query set; Speedup is their ratio.
	ExactNsPerQuery float64 `json:"exact_ns_per_query"`
	QuantNsPerQuery float64 `json:"quant_ns_per_query"`
	Speedup         float64 `json:"speedup"`
	// RerankedPerQuery is the mean candidate count stage 2 rescored
	// with the float kernels (from the tier's lifetime counters) —
	// evidence the scan ran two-stage, next to Docs.
	RerankedPerQuery float64 `json:"reranked_per_query"`
	// QuantBytes and FloatBytes compare the int8 shadow's footprint to
	// the float64 document matrix it shadows (the ~8x memory story).
	QuantBytes int64 `json:"quant_bytes"`
	FloatBytes int64 `json:"float_bytes"`
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("quantsmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	corpusPath := fs.String("corpus", "", "corpusgen JSON-lines corpus to index (required)")
	rank := fs.Int("rank", 32, "LSI rank")
	beta := fs.Int("beta", 4, "rerank over-fetch: the int8 scan selects topn*beta candidates")
	topN := fs.Int("topn", 10, "result depth for the fidelity measurement")
	nq := fs.Int("queries", 200, "number of queries sampled from the corpus")
	seed := fs.Int64("seed", 1, "query-sampling seed")
	minOverlap := fs.Float64("min-overlap", 0, "fail when top-N overlap falls below this")
	minSpeedup := fs.Float64("min-speedup", 0, "fail when the exact/quantized latency ratio falls below this")
	out := fs.String("o", "-", "summary output path ('-' for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}
	if *corpusPath == "" {
		return fmt.Errorf("-corpus is required")
	}
	if *nq <= 0 || *topN <= 0 || *beta <= 0 {
		return fmt.Errorf("-queries, -topn, and -beta must be positive")
	}

	f, err := os.Open(*corpusPath)
	if err != nil {
		return err
	}
	c, err := corpus.ReadJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if len(c.Docs) == 0 {
		return fmt.Errorf("corpus %s is empty", *corpusPath)
	}

	docs := make([]retrieval.Document, len(c.Docs))
	for i := range c.Docs {
		docs[i] = retrieval.Document{ID: fmt.Sprintf("d%06d", i), Text: docText(&c.Docs[i])}
	}
	fmt.Fprintf(stderr, "quantsmoke: indexing %d documents (rank=%d beta=%d)\n", len(docs), *rank, *beta)
	buildStart := time.Now()
	ix, err := retrieval.Build(docs,
		retrieval.WithRank(*rank),
		retrieval.WithEngine(retrieval.EngineRandomized),
		retrieval.WithStopwordRemoval(false),
		retrieval.WithStemming(false),
		retrieval.WithQuantized(*beta))
	if err != nil {
		return err
	}
	defer ix.Close()
	fmt.Fprintf(stderr, "quantsmoke: index built in %v\n", time.Since(buildStart).Round(time.Millisecond))

	rng := rand.New(rand.NewSource(*seed))
	queries := make([]string, *nq)
	for i := range queries {
		queries[i] = docs[rng.Intn(len(docs))].Text
	}

	// Warm both paths so neither measurement pays first-touch costs.
	if _, err := ix.SearchProbe(ctx, queries[0], *topN, 0); err != nil {
		return err
	}
	if _, err := ix.Search(ctx, queries[0], *topN); err != nil {
		return err
	}

	// One timed pass over the query set; out, when non-nil, collects the
	// ranking of each query.
	pass := func(out [][]string, search func(q string) ([]retrieval.Result, error)) (float64, error) {
		start := time.Now()
		for i, q := range queries {
			res, err := search(q)
			if err != nil {
				return 0, err
			}
			if out != nil {
				out[i] = resultIDs(res)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(queries)), nil
	}
	// nprobe=0 is the fully exact escape hatch: float kernels over every
	// document, no int8 scan.
	exact := func(q string) ([]retrieval.Result, error) { return ix.SearchProbe(ctx, q, *topN, 0) }
	// The default search on a WithQuantized index is the two-stage path:
	// int8 scan, then exact rerank of the top topn*beta.
	quantized := func(q string) ([]retrieval.Result, error) { return ix.Search(ctx, q, *topN) }

	// Interleave the paths A/B/A/B and keep each path's best pass: the
	// float scan is memory-bandwidth-bound, so a mid-run shift in the
	// machine's effective bandwidth would otherwise charge one path and
	// not the other, making the speedup gate flap.
	truth := make([][]string, len(queries))
	got := make([][]string, len(queries))
	before, _ := ix.QuantStats()
	exNs, err := pass(truth, exact)
	if err != nil {
		return err
	}
	qNs, err := pass(got, quantized)
	if err != nil {
		return err
	}
	after, ok := ix.QuantStats()
	if !ok || after.Searches-before.Searches != int64(len(queries)) {
		return fmt.Errorf("searches bypassed the quantized tier: stats %+v -> %+v", before, after)
	}
	if ex2, err := pass(nil, exact); err != nil {
		return err
	} else if ex2 < exNs {
		exNs = ex2
	}
	if q2, err := pass(nil, quantized); err != nil {
		return err
	} else if q2 < qNs {
		qNs = q2
	}

	s := Summary{
		Docs: len(docs), NumTerms: c.NumTerms, Rank: *rank,
		Beta: *beta, TopN: *topN, Queries: len(queries),
		Overlap:          eval.TopKOverlap(got, truth, *topN),
		ExactNsPerQuery:  exNs,
		QuantNsPerQuery:  qNs,
		Speedup:          exNs / qNs,
		RerankedPerQuery: float64(after.DocsReranked-before.DocsReranked) / float64(len(queries)),
		QuantBytes:       after.Bytes,
		FloatBytes:       int64(len(docs)) * int64(*rank) * 8,
	}
	fmt.Fprintf(stderr, "quantsmoke: overlap@%d=%.4f speedup=%.2fx (%.0f reranked per query; shadow %dB vs float %dB)\n",
		s.TopN, s.Overlap, s.Speedup, s.RerankedPerQuery, s.QuantBytes, s.FloatBytes)

	var w io.Writer = stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := of.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = of
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}

	if s.Overlap < *minOverlap {
		return fmt.Errorf("overlap@%d = %.4f below the %.4f gate", s.TopN, s.Overlap, *minOverlap)
	}
	if s.Speedup < *minSpeedup {
		return fmt.Errorf("speedup = %.2fx below the %.2fx gate (exact %.0fns vs quantized %.0fns per query)",
			s.Speedup, *minSpeedup, exNs, qNs)
	}
	return nil
}

func resultIDs(res []retrieval.Result) []string {
	ids := make([]string, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	return ids
}

// docText renders a sampled document as text the index pipeline
// preserves verbatim: Tokenize splits on digits, so term IDs become
// letter-only tokens ("x" plus the decimal digits mapped a–j).
func docText(d *corpus.Document) string {
	var b strings.Builder
	for i, t := range d.Terms {
		tok := termToken(t)
		for n := 0; n < d.Counts[i]; n++ {
			b.WriteString(tok)
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func termToken(t int) string {
	const letters = "abcdefghij"
	s := strconv.Itoa(t)
	b := make([]byte, 1, len(s)+1)
	b[0] = 'x'
	for i := 0; i < len(s); i++ {
		b = append(b, letters[s[i]-'0'])
	}
	return string(b)
}
