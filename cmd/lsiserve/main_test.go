package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/retrieval"
	"repro/retrieval/httpapi"
)

// TestEndToEndServe builds a demo index, starts the daemon on a random
// port, and round-trips searches over real HTTP — the full lsiserve path
// minus only signal handling.
func TestEndToEndServe(t *testing.T) {
	cfg, err := parseFlags([]string{"-k", "3"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() {
		api := httpapi.NewHandler(ret, httpapi.Options{})
		served <- serve(ctx, ln, api, api, 5*time.Second, &out)
	}()
	base := fmt.Sprintf("http://%s", ln.Addr())

	// Liveness.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Text search round trip: the synonymy effect over the wire.
	body := strings.NewReader(`{"query":"car engine","topN":4}`)
	resp, err = http.Post(base+"/v1/search", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var sr httpapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(sr.Results) != 4 {
		t.Fatalf("search status %d results %+v", resp.StatusCode, sr.Results)
	}
	seen := map[string]bool{}
	for _, r := range sr.Results {
		seen[r.ID] = true
	}
	if !seen["demo-01"] || !seen["demo-02"] {
		t.Fatalf("synonym documents missing over HTTP: %+v", sr.Results)
	}

	// Batch endpoint.
	resp, err = http.Post(base+"/v1/search:batch", "application/json",
		strings.NewReader(`{"queries":["galaxy","pasta"],"topN":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var br httpapi.BatchSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(br.Results) != 2 {
		t.Fatalf("batch status %d results %+v", resp.StatusCode, br.Results)
	}

	// Stats.
	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats retrieval.Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.NumDocs != 12 || stats.Backend != "lsi" || stats.Rank != 3 {
		t.Fatalf("stats = %+v", stats)
	}

	// Graceful shutdown: cancel drains and serve returns cleanly.
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "listening on http://") {
		t.Fatalf("missing listen line in output: %q", out.String())
	}
}

// TestServeSavedIndex proves the persistence path end to end: save a
// self-contained index, reload it via -index, and serve text queries
// from it without the corpus.
func TestServeSavedIndex(t *testing.T) {
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithEngine(retrieval.EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "demo.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseFlags([]string{"-index", path}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ret.Search(context.Background(), "automobile mechanic", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || !strings.HasPrefix(res[0].ID, "demo-") {
		t.Fatalf("loaded index results: %+v", res)
	}
}

// TestRunWarnsOnVocabularylessIndex boots the full run() path against
// the golden v1 index file: the daemon must come up (vector queries
// still work) but announce at startup that text queries will fail.
func TestRunWarnsOnVocabularylessIndex(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-index", "../../retrieval/testdata/index_v1.gob", "-addr", "127.0.0.1:0"}, &stdout, &stderr)
	}()
	deadline := time.After(10 * time.Second)
	for !strings.Contains(stdout.String(), "listening on") {
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v (stderr: %s)", err, stderr.String())
		case <-deadline:
			t.Fatalf("daemon never came up; stdout: %s", stdout.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr.String(), "WARNING: index has no vocabulary") {
		t.Fatalf("missing startup warning; stderr: %q", stderr.String())
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: run() writes from the
// daemon goroutine while the test polls String().
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestParseFlagErrors(t *testing.T) {
	var stderr bytes.Buffer
	cfg, err := parseFlags([]string{"-backend", "nope"}, &stderr)
	if err != nil {
		t.Fatal(err) // flag parsing succeeds; the backend is validated at build
	}
	if _, err := newRetriever(cfg); err == nil {
		t.Fatal("unknown backend should fail")
	}
	cfg, err = parseFlags([]string{"-weighting", "nope"}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newRetriever(cfg); err == nil {
		t.Fatal("unknown weighting should fail")
	}
	if _, err := parseFlags([]string{"-no-such-flag"}, &stderr); err == nil {
		t.Fatal("unknown flag should fail")
	}
	// -index fixes backend/rank/weighting at build time; combining it
	// with build flags or corpus files must be rejected, not ignored.
	if _, err := parseFlags([]string{"-index", "x.idx", "-backend", "vsm"}, &stderr); err == nil {
		t.Fatal("-index with -backend should fail")
	}
	if _, err := parseFlags([]string{"-index", "x.idx", "doc.txt"}, &stderr); err == nil {
		t.Fatal("-index with file arguments should fail")
	}
	if _, err := parseFlags([]string{"-index", "x.idx", "-addr", ":0"}, &stderr); err != nil {
		t.Fatalf("-index with serving flags should be fine: %v", err)
	}
}

// TestEndToEndServeSharded boots the daemon with -shards, appends a
// document over HTTP, searches for it, and checks /readyz — the full
// sharded live-serving path.
func TestEndToEndServeSharded(t *testing.T) {
	cfg, err := parseFlags([]string{"-k", "3", "-shards", "2"}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ret.Close()
	if !ret.Sharded() {
		t.Fatal("-shards did not produce a sharded index")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	served := make(chan error, 1)
	go func() {
		api := httpapi.NewHandler(ret, httpapi.Options{})
		served <- serve(ctx, ln, api, api, 5*time.Second, &out)
	}()
	base := fmt.Sprintf("http://%s", ln.Addr())

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d", code)
	}

	body := strings.NewReader(`{"id":"live-1","text":"a turbocharged car engine"}`)
	resp, err := http.Post(base+"/v1/docs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var added httpapi.AddDocsResponse
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || added.Count != 1 {
		t.Fatalf("append: %d %+v", resp.StatusCode, added)
	}

	resp, err = http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"query":"turbocharged engine","topN":20}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr httpapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, r := range sr.Results {
		if r.ID == "live-1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("appended doc missing from search results: %+v", sr.Results)
	}

	cancel()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
}

// TestServeSavedShardedDir saves a sharded index directory and serves it
// via -index, exercising retrieval.Open's directory path end to end.
func TestServeSavedShardedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "sharded-idx")
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithShards(2), retrieval.WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	cfg, err := parseFlags([]string{"-index", dir}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ret.Close()
	if !ret.Sharded() || ret.NumDocs() != ix.NumDocs() {
		t.Fatalf("served index: sharded=%v docs=%d", ret.Sharded(), ret.NumDocs())
	}
	res, err := ret.Search(context.Background(), "car", 3)
	if err != nil || len(res) == 0 {
		t.Fatalf("search on served dir index: %v, %d results", err, len(res))
	}
}
