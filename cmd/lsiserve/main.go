// Command lsiserve is the HTTP/JSON retrieval daemon: it builds (or
// loads) an index through the public retrieval package and serves it via
// the retrieval/httpapi endpoints:
//
//	POST /v1/search        one query (text or raw vector)
//	POST /v1/search:batch  many queries in one call
//	GET  /v1/stats         index description
//	GET  /healthz          liveness probe
//
// Usage:
//
//	lsiserve [-addr :8080] [-k 0] [-backend lsi] [-weighting log] [file1.txt ...]
//	lsiserve -index saved.idx
//
// Each file argument is one document; with no files (and no -index) the
// built-in demo corpus is served, which is what the CI smoke test and
// the quickstart curl examples use. The daemon shuts down gracefully on
// SIGINT/SIGTERM, draining in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/retrieval"
	"repro/retrieval/httpapi"
)

type serveConfig struct {
	addr      string
	indexPath string
	rank      int
	backend   string
	weighting string
	timeout   time.Duration
	maxTopN   int
	files     []string
}

func parseFlags(args []string, stderr io.Writer) (serveConfig, error) {
	cfg := serveConfig{}
	fs := flag.NewFlagSet("lsiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&cfg.indexPath, "index", "", "serve a saved index instead of building one")
	fs.IntVar(&cfg.rank, "k", 0, "LSI rank (0 = auto)")
	fs.StringVar(&cfg.backend, "backend", "lsi", "retrieval backend: lsi or vsm")
	fs.StringVar(&cfg.weighting, "weighting", "log", "term weighting: count, binary, log, or tfidf")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request search timeout")
	fs.IntVar(&cfg.maxTopN, "top-max", 100, "cap on per-query result count")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.files = fs.Args()
	// A saved index fixes its backend, rank, and weighting at build time;
	// refuse invocations that would silently discard build flags or files.
	if cfg.indexPath != "" {
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k", "backend", "weighting":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(cfg.files) > 0 {
			conflicts = append(conflicts, "file arguments")
		}
		if len(conflicts) > 0 {
			return cfg, fmt.Errorf("-index serves a prebuilt index; %s cannot apply (rebuild and re-save instead)",
				strings.Join(conflicts, ", "))
		}
	}
	return cfg, nil
}

// newRetriever builds or loads the index the daemon serves.
func newRetriever(cfg serveConfig) (*retrieval.Index, error) {
	if cfg.indexPath != "" {
		f, err := os.Open(cfg.indexPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return retrieval.Load(f)
	}
	backend, err := retrieval.ParseBackend(cfg.backend)
	if err != nil {
		return nil, err
	}
	weighting, err := retrieval.ParseWeighting(cfg.weighting)
	if err != nil {
		return nil, err
	}
	docs := retrieval.DemoCorpus()
	if len(cfg.files) > 0 {
		var err error
		if docs, err = retrieval.ReadFiles(cfg.files); err != nil {
			return nil, err
		}
	}
	return retrieval.Build(docs,
		retrieval.WithBackend(backend),
		retrieval.WithRank(cfg.rank),
		retrieval.WithWeighting(weighting),
	)
}

// serve runs the daemon on ln until ctx is canceled, then drains
// in-flight requests for up to shutdownTimeout. It reports the bound
// address on out before accepting traffic (the smoke script and the e2e
// test parse that line).
func serve(ctx context.Context, ln net.Listener, handler http.Handler, shutdownTimeout time.Duration, out io.Writer) error {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(out, "lsiserve: listening on http://%s\n", ln.Addr())
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("lsiserve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		return err
	}
	stats := ret.Stats()
	fmt.Fprintf(stdout, "lsiserve: %s index, %d documents, %d terms", stats.Backend, stats.NumDocs, stats.NumTerms)
	if stats.Rank > 0 {
		fmt.Fprintf(stdout, ", rank %d", stats.Rank)
	}
	fmt.Fprintln(stdout)
	if !stats.TextQueries {
		// A v1-format file carries no vocabulary: the daemon can answer
		// vector queries but every text search will 400. Say so at boot
		// instead of looking healthy and failing per request.
		fmt.Fprintln(stderr, "lsiserve: WARNING: index has no vocabulary (v1 format?); text queries will fail — re-save it with a current build to upgrade")
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	handler := httpapi.NewHandler(ret, httpapi.Options{
		Timeout: cfg.timeout,
		MaxTopN: cfg.maxTopN,
	})
	return serve(ctx, ln, handler, 10*time.Second, stdout)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "lsiserve: %v\n", err)
		os.Exit(1)
	}
}
