// Command lsiserve is the HTTP/JSON retrieval daemon: it builds (or
// loads) an index through the public retrieval package and serves it via
// the retrieval/httpapi endpoints:
//
//	POST /v1/search        one query (text or raw vector)
//	POST /v1/search:batch  many queries in one call
//	POST /v1/docs          live append (sharded indexes, -shards)
//	POST /v1/docs:batch    live append, batched
//	GET  /v1/stats         index description, segment/compaction stats
//	GET  /metrics          Prometheus text exposition (see OPERATIONS.md)
//	GET  /healthz          liveness probe
//	GET  /readyz           readiness probe (503 while compaction is owed)
//	GET  /debug/pprof/*    runtime profiles (only with -pprof)
//
// Usage:
//
//	lsiserve [-addr :8080] [-k 0] [-backend lsi] [-weighting log] [-shards 0] [-cache-mb 64] [file1.txt ...]
//	lsiserve -index saved.idx       # single-stream index file
//	lsiserve -index saved-dir/      # sharded index directory
//
// Each file argument is one document; with no files (and no -index) the
// built-in demo corpus is served, which is what the CI smoke test and
// the quickstart curl examples use. With -shards N the daemon serves a
// sharded live index that accepts POST /v1/docs appends; a sharded
// index saved with SaveDir is served by pointing -index at its
// directory. Repeated queries are answered from an epoch-keyed result
// cache (-cache-mb, default 64 MiB, 0 disables; the Cache-Status
// response header and /v1/stats expose its behavior) that live appends
// and compactions invalidate instantly.
//
// Under overload the daemon sheds rather than collapses: at most
// -max-inflight search/docs requests execute concurrently, up to
// -max-queue more wait, and the rest are answered 429 with Retry-After;
// ingest is additionally shed while compaction debt exceeds -max-debt.
// Every request is measured on GET /metrics, -access-log adds a
// structured JSON line per request, and -pprof mounts the runtime
// profilers. The daemon shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests and stopping the background compactor.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/retrieval"
	"repro/retrieval/httpapi"
)

type serveConfig struct {
	addr        string
	indexPath   string
	rank        int
	backend     string
	weighting   string
	shards      int
	cacheMB     int
	timeout     time.Duration
	maxTopN     int
	maxInFlight int
	maxQueue    int
	maxDebt     int
	pprof       bool
	accessLog   bool
	files       []string
}

func parseFlags(args []string, stderr io.Writer) (serveConfig, error) {
	cfg := serveConfig{}
	fs := flag.NewFlagSet("lsiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&cfg.indexPath, "index", "", "serve a saved index instead of building one")
	fs.IntVar(&cfg.rank, "k", 0, "LSI rank (0 = auto)")
	fs.StringVar(&cfg.backend, "backend", "lsi", "retrieval backend: lsi or vsm")
	fs.StringVar(&cfg.weighting, "weighting", "log", "term weighting: count, binary, log, or tfidf")
	fs.IntVar(&cfg.shards, "shards", 0, "serve a sharded live index over N shards (accepts POST /v1/docs; 0 = single immutable index)")
	fs.IntVar(&cfg.cacheMB, "cache-mb", 64, "query result cache budget in MiB (0 disables; epoch-keyed, so live appends/compactions invalidate instantly)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request search timeout")
	fs.IntVar(&cfg.maxTopN, "top-max", 100, "cap on per-query result count")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 256, "max concurrently executing search/docs requests; excess requests queue, then shed with 429 (0 = unlimited)")
	fs.IntVar(&cfg.maxQueue, "max-queue", 0, "max requests waiting for an in-flight slot before shedding (0 = 4x max-inflight)")
	fs.IntVar(&cfg.maxDebt, "max-debt", 8, "shed ingest (POST /v1/docs) with 429 while more than this many sealed segments await compaction (0 = never)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "mount /debug/pprof/ profiling endpoints (do not expose to untrusted networks)")
	fs.BoolVar(&cfg.accessLog, "access-log", false, "emit one structured JSON log line per request on stderr")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.files = fs.Args()
	// A saved index fixes its backend, rank, and weighting at build time;
	// refuse invocations that would silently discard build flags or files.
	if cfg.indexPath != "" {
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k", "backend", "weighting", "shards":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(cfg.files) > 0 {
			conflicts = append(conflicts, "file arguments")
		}
		if len(conflicts) > 0 {
			return cfg, fmt.Errorf("-index serves a prebuilt index; %s cannot apply (rebuild and re-save instead)",
				strings.Join(conflicts, ", "))
		}
	}
	return cfg, nil
}

// newRetriever builds or loads the index the daemon serves.
func newRetriever(cfg serveConfig) (*retrieval.Index, error) {
	cacheOpt := retrieval.WithQueryCache(int64(cfg.cacheMB) << 20)
	if cfg.indexPath != "" {
		// Open handles both forms: a directory is a sharded index, a
		// file a single-stream one. The cache is a runtime knob, so it
		// applies to prebuilt indexes too.
		return retrieval.Open(cfg.indexPath, cacheOpt)
	}
	backend, err := retrieval.ParseBackend(cfg.backend)
	if err != nil {
		return nil, err
	}
	weighting, err := retrieval.ParseWeighting(cfg.weighting)
	if err != nil {
		return nil, err
	}
	docs := retrieval.DemoCorpus()
	if len(cfg.files) > 0 {
		var err error
		if docs, err = retrieval.ReadFiles(cfg.files); err != nil {
			return nil, err
		}
	}
	opts := []retrieval.Option{
		retrieval.WithBackend(backend),
		retrieval.WithRank(cfg.rank),
		retrieval.WithWeighting(weighting),
		cacheOpt,
	}
	if cfg.shards > 0 {
		opts = append(opts, retrieval.WithShards(cfg.shards))
	}
	return retrieval.Build(docs, opts...)
}

// serve runs the daemon on ln until ctx is canceled, then drains
// in-flight requests for up to shutdownTimeout. It reports the bound
// address on out before accepting traffic (the smoke script and the e2e
// test parse that line).
func serve(ctx context.Context, ln net.Listener, handler http.Handler, shutdownTimeout time.Duration, out io.Writer) error {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(out, "lsiserve: listening on http://%s\n", ln.Addr())
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("lsiserve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		return err
	}
	defer ret.Close() // stops the sharded compactor; no-op otherwise
	stats := ret.Stats()
	fmt.Fprintf(stdout, "lsiserve: %s index, %d documents, %d terms", stats.Backend, stats.NumDocs, stats.NumTerms)
	if stats.Rank > 0 {
		fmt.Fprintf(stdout, ", rank %d", stats.Rank)
	}
	if stats.Sharded {
		fmt.Fprintf(stdout, ", %d shards (live: POST /v1/docs enabled)", stats.Shards)
	}
	if stats.Cache != nil {
		fmt.Fprintf(stdout, ", query cache %d MiB", stats.Cache.CapBytes>>20)
	}
	fmt.Fprintln(stdout)
	if !stats.TextQueries {
		// A v1-format file carries no vocabulary: the daemon can answer
		// vector queries but every text search will 400. Say so at boot
		// instead of looking healthy and failing per request.
		fmt.Fprintln(stderr, "lsiserve: WARNING: index has no vocabulary (v1 format?); text queries will fail — re-save it with a current build to upgrade")
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	opts := httpapi.Options{
		Timeout:           cfg.timeout,
		MaxTopN:           cfg.maxTopN,
		MaxInFlight:       cfg.maxInFlight,
		MaxQueue:          cfg.maxQueue,
		MaxCompactionDebt: cfg.maxDebt,
		EnablePprof:       cfg.pprof,
	}
	if cfg.accessLog {
		opts.AccessLog = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	handler := httpapi.NewHandler(ret, opts)
	return serve(ctx, ln, handler, 10*time.Second, stdout)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "lsiserve: %v\n", err)
		os.Exit(1)
	}
}
