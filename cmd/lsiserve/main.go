// Command lsiserve is the HTTP/JSON retrieval daemon: it builds (or
// loads) an index through the public retrieval package and serves it via
// the retrieval/httpapi endpoints:
//
//	POST /v1/search        one query (text or raw vector)
//	POST /v1/search:batch  many queries in one call
//	POST /v1/docs          live append (sharded indexes, -shards)
//	POST /v1/docs:batch    live append, batched
//	GET  /v1/stats         index description, segment/compaction stats
//	GET  /v1/replicate/*   replication pull endpoints (serving from an
//	                       index directory; see retrieval/httpapi)
//	GET  /metrics          Prometheus text exposition (see OPERATIONS.md)
//	GET  /healthz          liveness probe
//	GET  /readyz           readiness probe (503 while compaction is owed)
//	GET  /debug/pprof/*    runtime profiles (only with -pprof)
//	*    /debug/faults     chaos fault-script admin (only with -chaos)
//
// Usage:
//
//	lsiserve [-addr :8080] [-k 0] [-backend lsi] [-weighting log] [-shards 0] [-cache-mb 64] [file1.txt ...]
//	lsiserve -index saved.idx       # single-stream index file
//	lsiserve -index saved-dir/      # sharded index directory
//	lsiserve -index dir/ -wal-dir wal/ [-checkpoint-every 30s]   # durable cluster node
//	lsiserve -save-cluster out/ -shards 3 [file1.txt ...]        # export per-shard node dirs
//	lsiserve -cluster manifest.json                              # cluster router
//	lsiserve -replica-of http://primary:8080 [-data-dir dir]     # catch-up replica
//
// The last four forms are the distributed tier (retrieval/cluster):
// -save-cluster exports each shard of a sharded index as a standalone
// 1-shard node directory and exits; a node serves one such directory
// with a write-ahead log (-wal-dir) so acked appends survive SIGKILL,
// checkpointing back into its -index directory every -checkpoint-every
// when documents arrived; -cluster serves the routing tier over the
// nodes in a manifest file (SIGHUP re-reads it — the version must
// strictly increase); -replica-of mirrors a node by snapshot pull +
// WAL tail and serves read traffic for it.
//
// Each file argument is one document; with no files (and no -index) the
// built-in demo corpus is served, which is what the CI smoke test and
// the quickstart curl examples use. With -shards N the daemon serves a
// sharded live index that accepts POST /v1/docs appends; a sharded
// index saved with SaveDir is served by pointing -index at its
// directory. Repeated queries are answered from an epoch-keyed result
// cache (-cache-mb, default 64 MiB, 0 disables; the Cache-Status
// response header and /v1/stats expose its behavior) that live appends
// and compactions invalidate instantly.
//
// -ann-nlist N trains an IVF ANN tier over the LSI space (see
// retrieval.WithANN): searches score only the -ann-nprobe cells nearest
// the query instead of scanning every document, and requests may
// override the budget per call with the "nprobe" body field. Both flags
// are runtime knobs like -cache-mb — they apply to prebuilt -index
// loads too (sharded directories reuse their persisted ann-*.ivf
// quantizer sidecars). The /v1/stats "ann" block and the lsi_ann_*
// metrics expose the tier's probe behavior.
//
// -quant-beta B enables the quantized scoring tier (see
// retrieval.WithQuantized): searches scan an int8 shadow of the document
// matrix (~8x smaller, memory-bandwidth-optimal) and exact-rerank the
// topN*B best candidates, so every served score is still a true float64
// cosine. Also a runtime knob: prebuilt -index loads reuse persisted
// quant-*.qnt sidecars or rebuild the shadow in place. The "nprobe":0
// request override stays the fully exact escape hatch. The /v1/stats
// "quant" block and the lsi_quant_* metrics expose the tier's scan
// behavior.
//
// Under overload the daemon sheds rather than collapses: at most
// -max-inflight search/docs requests execute concurrently, up to
// -max-queue more wait, and the rest are answered 429 with Retry-After;
// ingest is shed 503 + Retry-After while compaction debt exceeds
// -max-debt.
// Every request is measured on GET /metrics, -access-log adds a
// structured JSON line per request, and -pprof mounts the runtime
// profilers. The daemon shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight replication downloads and WAL tails, then ordinary
// requests, within -drain-timeout, and stopping the background
// compactor.
//
// -chaos arms the fault injector (internal/faultinject): POST an
// InjectSpec to /debug/faults to script per-class latency, error rates,
// and connection drops; /debug/faults and /metrics are mounted outside
// the injected path so a drop-everything fault cannot lock the operator
// out. In router mode, -probe-every runs background /readyz probes over
// the manifest nodes to feed outlier ejection. lsiload -faults drives
// this endpoint on a timed schedule; see the chaos suite in
// retrieval/cluster and scripts/chaos_smoke.sh.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/retrieval"
	"repro/retrieval/cluster"
	"repro/retrieval/httpapi"
)

type serveConfig struct {
	addr        string
	indexPath   string
	rank        int
	backend     string
	weighting   string
	shards      int
	cacheMB     int
	annNList    int
	annNProbe   int
	quantBeta   int
	timeout     time.Duration
	maxTopN     int
	maxInFlight int
	maxQueue    int
	maxDebt     int
	pprof       bool
	accessLog   bool
	files       []string

	// Distributed tier (retrieval/cluster).
	clusterPath     string
	replicaOf       string
	dataDir         string
	walDir          string
	checkpointEvery time.Duration
	saveCluster     string
	probeEvery      time.Duration
	breakerOpenFor  time.Duration

	// Resilience and chaos.
	chaos        bool
	drainTimeout time.Duration
}

func parseFlags(args []string, stderr io.Writer) (serveConfig, error) {
	cfg := serveConfig{}
	fs := flag.NewFlagSet("lsiserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	fs.StringVar(&cfg.indexPath, "index", "", "serve a saved index instead of building one")
	fs.IntVar(&cfg.rank, "k", 0, "LSI rank (0 = auto)")
	fs.StringVar(&cfg.backend, "backend", "lsi", "retrieval backend: lsi or vsm")
	fs.StringVar(&cfg.weighting, "weighting", "log", "term weighting: count, binary, log, or tfidf")
	fs.IntVar(&cfg.shards, "shards", 0, "serve a sharded live index over N shards (accepts POST /v1/docs; 0 = single immutable index)")
	fs.IntVar(&cfg.cacheMB, "cache-mb", 64, "query result cache budget in MiB (0 disables; epoch-keyed, so live appends/compactions invalidate instantly)")
	fs.IntVar(&cfg.annNList, "ann-nlist", 0, "train an IVF ANN tier with this many k-means cells over the LSI space (0 disables; requires -backend lsi)")
	fs.IntVar(&cfg.annNProbe, "ann-nprobe", 0, "default ANN probe budget: cells scored per search (0 = exhaustive default; requests override via \"nprobe\")")
	fs.IntVar(&cfg.quantBeta, "quant-beta", 0, "quantized scoring tier: int8 scan selects topN*beta candidates for exact rerank (0 disables; requires -backend lsi)")
	fs.DurationVar(&cfg.timeout, "timeout", 10*time.Second, "per-request search timeout")
	fs.IntVar(&cfg.maxTopN, "top-max", 100, "cap on per-query result count")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 256, "max concurrently executing search/docs requests; excess requests queue, then shed with 429 (0 = unlimited)")
	fs.IntVar(&cfg.maxQueue, "max-queue", 0, "max requests waiting for an in-flight slot before shedding (0 = 4x max-inflight)")
	fs.IntVar(&cfg.maxDebt, "max-debt", 8, "shed ingest (POST /v1/docs) with 503 while more than this many sealed segments await compaction (0 = never)")
	fs.BoolVar(&cfg.pprof, "pprof", false, "mount /debug/pprof/ profiling endpoints (do not expose to untrusted networks)")
	fs.BoolVar(&cfg.accessLog, "access-log", false, "emit one structured JSON log line per request on stderr")
	fs.StringVar(&cfg.clusterPath, "cluster", "", "serve as the routing tier over the cluster manifest at this path (SIGHUP reloads)")
	fs.StringVar(&cfg.replicaOf, "replica-of", "", "serve as a catch-up replica of the node at this base URL")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "local snapshot directory for -replica-of (default: a fresh temp dir)")
	fs.StringVar(&cfg.walDir, "wal-dir", "", "attach a write-ahead log in this directory: appends are fsync'd before they are acked and replayed on boot (sharded indexes)")
	fs.DurationVar(&cfg.checkpointEvery, "checkpoint-every", 0, "checkpoint the index into its -index directory at this cadence when documents arrived, rotating the WAL (0 = never; requires -wal-dir and -index DIR)")
	fs.StringVar(&cfg.saveCluster, "save-cluster", "", "export each shard as a standalone node directory under this path and exit (requires a sharded index)")
	fs.DurationVar(&cfg.probeEvery, "probe-every", 2*time.Second, "router mode: probe every node's /readyz at this cadence to feed outlier ejection (0 disables)")
	fs.DurationVar(&cfg.breakerOpenFor, "breaker-open-for", 0, "router mode: cooldown before an open per-node circuit breaker admits its half-open probe (0 = the cluster default, 5s)")
	fs.BoolVar(&cfg.chaos, "chaos", false, "arm the fault injector: /debug/faults scripts server-side latency/errors/drops per request class (never expose outside a test bench)")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown budget for draining in-flight requests, replication downloads, and WAL tails")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	cfg.files = fs.Args()
	// The three serving modes are exclusive, and the router/replica modes
	// build no index of their own — reject flags they would ignore.
	if cfg.clusterPath != "" || cfg.replicaOf != "" {
		if cfg.clusterPath != "" && cfg.replicaOf != "" {
			return cfg, fmt.Errorf("-cluster and -replica-of are exclusive serving modes")
		}
		mode := "-cluster"
		if cfg.replicaOf != "" {
			mode = "-replica-of"
		}
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k", "backend", "weighting", "shards", "index", "wal-dir", "checkpoint-every", "save-cluster":
				conflicts = append(conflicts, "-"+f.Name)
			case "data-dir":
				if cfg.replicaOf == "" {
					conflicts = append(conflicts, "-"+f.Name)
				}
			}
		})
		if len(cfg.files) > 0 {
			conflicts = append(conflicts, "file arguments")
		}
		if len(conflicts) > 0 {
			return cfg, fmt.Errorf("%s serves no local index; %s cannot apply", mode, strings.Join(conflicts, ", "))
		}
	}
	if cfg.checkpointEvery > 0 && cfg.walDir == "" {
		return cfg, fmt.Errorf("-checkpoint-every needs -wal-dir: a checkpoint without a WAL rotation would not shorten replay")
	}
	// A saved index fixes its backend, rank, and weighting at build time;
	// refuse invocations that would silently discard build flags or files.
	if cfg.indexPath != "" {
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "k", "backend", "weighting", "shards":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(cfg.files) > 0 {
			conflicts = append(conflicts, "file arguments")
		}
		if len(conflicts) > 0 {
			return cfg, fmt.Errorf("-index serves a prebuilt index; %s cannot apply (rebuild and re-save instead)",
				strings.Join(conflicts, ", "))
		}
	}
	return cfg, nil
}

// newRetriever builds or loads the index the daemon serves.
func newRetriever(cfg serveConfig) (*retrieval.Index, error) {
	cacheOpt := retrieval.WithQueryCache(int64(cfg.cacheMB) << 20)
	annOpt := retrieval.WithANN(cfg.annNList, cfg.annNProbe)
	quantOpt := retrieval.WithQuantized(cfg.quantBeta)
	if cfg.indexPath != "" {
		// Open handles both forms: a directory is a sharded index, a
		// file a single-stream one. The cache, the ANN tier, and the
		// quantized tier are runtime knobs, so they apply to prebuilt
		// indexes too (sharded directories load their ann-*.ivf and
		// quant-*.qnt sidecars; missing ones are rebuilt in place when
		// -ann-nlist or -quant-beta asks for them).
		return retrieval.Open(cfg.indexPath, cacheOpt, annOpt, quantOpt)
	}
	backend, err := retrieval.ParseBackend(cfg.backend)
	if err != nil {
		return nil, err
	}
	weighting, err := retrieval.ParseWeighting(cfg.weighting)
	if err != nil {
		return nil, err
	}
	docs := retrieval.DemoCorpus()
	if len(cfg.files) > 0 {
		var err error
		if docs, err = retrieval.ReadFiles(cfg.files); err != nil {
			return nil, err
		}
	}
	opts := []retrieval.Option{
		retrieval.WithBackend(backend),
		retrieval.WithRank(cfg.rank),
		retrieval.WithWeighting(weighting),
		cacheOpt,
		annOpt,
		quantOpt,
	}
	if cfg.shards > 0 {
		opts = append(opts, retrieval.WithShards(cfg.shards))
	}
	return retrieval.Build(docs, opts...)
}

// serve runs the daemon on ln until ctx is canceled, then drains for up
// to shutdownTimeout: first the replication tier (in-flight snapshot
// downloads and WAL tails stop admitting and run to completion), then
// the HTTP server's ordinary in-flight requests. It reports the bound
// address on out before accepting traffic (the smoke script and the e2e
// test parse that line).
func serve(ctx context.Context, ln net.Listener, handler http.Handler, api *httpapi.Handler, shutdownTimeout time.Duration, out io.Writer) error {
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(out, "lsiserve: listening on http://%s\n", ln.Addr())
	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	// Drain replication before closing the listener: a replica that is
	// mid-download finishes intact, new pulls are shed 503 + Retry-After
	// and fail over; killing the listener first would tear both.
	if api != nil {
		if err := api.DrainReplication(shutdownCtx); err != nil {
			fmt.Fprintf(out, "lsiserve: replication drain incomplete: %v\n", err)
		}
	}
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("lsiserve: shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// mountChaos arms the -chaos fault injector in front of h. The admin
// endpoint and the metrics exposition are mounted OUTSIDE the wrapped
// handler: a drop-everything fault must not lock the operator out of
// /debug/faults or blind the dashboards watching the incident.
func mountChaos(in *faultinject.Injector, h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/faults", in.AdminHandler())
	mux.Handle("/metrics", h)
	mux.Handle("/", in.Wrap(h))
	return mux
}

// chaosWrap applies -chaos to a serving handler (transparent when the
// flag is off).
func chaosWrap(cfg serveConfig, h http.Handler) http.Handler {
	if !cfg.chaos {
		return h
	}
	return mountChaos(&faultinject.Injector{}, h)
}

// serveOptions translates the shared flag block into handler options.
func serveOptions(cfg serveConfig, stderr io.Writer) httpapi.Options {
	opts := httpapi.Options{
		Timeout:           cfg.timeout,
		MaxTopN:           cfg.maxTopN,
		MaxInFlight:       cfg.maxInFlight,
		MaxQueue:          cfg.maxQueue,
		MaxCompactionDebt: cfg.maxDebt,
		EnablePprof:       cfg.pprof,
	}
	if cfg.accessLog {
		opts.AccessLog = slog.New(slog.NewJSONHandler(stderr, nil))
	}
	return opts
}

// runRouter serves the cluster routing tier over the manifest at
// cfg.clusterPath. SIGHUP re-reads the manifest; a reload only takes
// effect when its version strictly increases and the shard count is
// unchanged, so a stale or truncated file can never regress the
// topology.
func runRouter(ctx context.Context, cfg serveConfig, stdout, stderr io.Writer) error {
	man, err := cluster.LoadManifest(cfg.clusterPath)
	if err != nil {
		return err
	}
	router, err := cluster.NewRouter(man, cluster.RouterOptions{
		NodeTimeout:   cfg.timeout,
		ProbeInterval: cfg.probeEvery,
		Breaker:       cluster.BreakerOptions{OpenFor: cfg.breakerOpenFor},
	})
	if err != nil {
		return err
	}
	reg := metrics.NewRegistry()
	router.RegisterMetrics(reg)
	if cfg.probeEvery > 0 {
		go router.RunProbes(ctx)
	}
	if err := router.Sync(ctx); err != nil {
		// The router can serve reads without a synced write path; ingest
		// stays frozen until a later Sync (a SIGHUP reload retries).
		fmt.Fprintf(stderr, "lsiserve: WARNING: cluster sync failed, ingest frozen: %v\n", err)
	}
	fmt.Fprintf(stdout, "lsiserve: cluster router, manifest v%d, %d shards over %d nodes, %d documents (SIGHUP reloads %s)\n",
		man.Version, man.Shards, len(man.Nodes), router.NumDocs(), cfg.clusterPath)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-hup:
				m, err := cluster.LoadManifest(cfg.clusterPath)
				if err == nil {
					err = router.Reload(m)
				}
				if err != nil {
					fmt.Fprintf(stderr, "lsiserve: manifest reload rejected: %v\n", err)
					continue
				}
				if err := router.Sync(ctx); err != nil {
					fmt.Fprintf(stderr, "lsiserve: WARNING: cluster sync failed, ingest frozen: %v\n", err)
				}
				fmt.Fprintf(stderr, "lsiserve: manifest reloaded, now v%d over %d nodes\n", m.Version, len(m.Nodes))
			}
		}
	}()
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	opts := serveOptions(cfg, stderr)
	opts.Metrics = reg
	api := httpapi.NewHandler(router, opts)
	return serve(ctx, ln, chaosWrap(cfg, api), api, cfg.drainTimeout, stdout)
}

// runReplica bootstraps a replica from its primary, keeps it caught up
// in the background, and serves read traffic from the local snapshot.
func runReplica(ctx context.Context, cfg serveConfig, stdout, stderr io.Writer) error {
	dir := cfg.dataDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "lsireplica-*"); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "lsiserve: no -data-dir given, snapshots go to %s\n", dir)
	}
	rep := cluster.NewReplica(cfg.replicaOf, dir, cluster.ReplicaOptions{NodeTimeout: cfg.timeout})
	if err := rep.Bootstrap(ctx); err != nil {
		return fmt.Errorf("replica bootstrap from %s: %w", cfg.replicaOf, err)
	}
	reg := metrics.NewRegistry()
	rep.RegisterMetrics(reg)
	go rep.Run(ctx)
	fmt.Fprintf(stdout, "lsiserve: replica of %s, %d documents at generation %d\n",
		cfg.replicaOf, rep.NumDocs(), rep.Generation())
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	opts := serveOptions(cfg, stderr)
	opts.Metrics = reg
	api := httpapi.NewHandler(rep, opts)
	return serve(ctx, ln, chaosWrap(cfg, api), api, cfg.drainTimeout, stdout)
}

// checkpointLoop folds WAL'd appends back into the index directory at a
// fixed cadence, but only when documents actually arrived — an idle
// node never churns its segment files.
func checkpointLoop(ctx context.Context, ix *retrieval.Index, dir string, every time.Duration, stderr io.Writer) {
	t := time.NewTicker(every)
	defer t.Stop()
	last := ix.NumDocs()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n := ix.NumDocs()
			if n == last {
				continue
			}
			if err := ix.Checkpoint(dir); err != nil {
				fmt.Fprintf(stderr, "lsiserve: checkpoint: %v\n", err)
				continue
			}
			last = n
		}
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	cfg, err := parseFlags(args, stderr)
	if err != nil {
		return err
	}
	if cfg.clusterPath != "" {
		return runRouter(ctx, cfg, stdout, stderr)
	}
	if cfg.replicaOf != "" {
		return runReplica(ctx, cfg, stdout, stderr)
	}
	ret, err := newRetriever(cfg)
	if err != nil {
		return err
	}
	defer ret.Close() // stops the sharded compactor; no-op otherwise
	if cfg.saveCluster != "" {
		if err := ret.SaveShardDirs(cfg.saveCluster); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "lsiserve: exported %d node directories under %s\n", ret.NumShards(), cfg.saveCluster)
		return nil
	}
	stats := ret.Stats()
	fmt.Fprintf(stdout, "lsiserve: %s index, %d documents, %d terms", stats.Backend, stats.NumDocs, stats.NumTerms)
	if stats.Rank > 0 {
		fmt.Fprintf(stdout, ", rank %d", stats.Rank)
	}
	if stats.Sharded {
		fmt.Fprintf(stdout, ", %d shards (live: POST /v1/docs enabled)", stats.Shards)
	}
	if stats.Cache != nil {
		fmt.Fprintf(stdout, ", query cache %d MiB", stats.Cache.CapBytes>>20)
	}
	if stats.ANN != nil {
		fmt.Fprintf(stdout, ", ann nlist=%d nprobe=%d", stats.ANN.NList, stats.ANN.NProbe)
	}
	if stats.Quant != nil {
		fmt.Fprintf(stdout, ", quant beta=%d", stats.Quant.Beta)
	}
	fmt.Fprintln(stdout)
	if !stats.TextQueries {
		// A v1-format file carries no vocabulary: the daemon can answer
		// vector queries but every text search will 400. Say so at boot
		// instead of looking healthy and failing per request.
		fmt.Fprintln(stderr, "lsiserve: WARNING: index has no vocabulary (v1 format?); text queries will fail — re-save it with a current build to upgrade")
	}
	opts := serveOptions(cfg, stderr)
	if cfg.walDir != "" {
		replayed, err := ret.AttachWAL(cfg.walDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "lsiserve: wal attached (%s), %d documents replayed\n", cfg.walDir, replayed)
	}
	if cfg.indexPath != "" {
		if st, err := os.Stat(cfg.indexPath); err == nil && st.IsDir() {
			// Serving from an index directory makes this process a valid
			// replication primary: replicas pull the checkpoint files and
			// tail the WAL.
			opts.ReplicateDir = cfg.indexPath
		}
	}
	if cfg.checkpointEvery > 0 {
		if opts.ReplicateDir == "" {
			return fmt.Errorf("-checkpoint-every needs -index pointing at an index directory to checkpoint into")
		}
		go checkpointLoop(ctx, ret, cfg.indexPath, cfg.checkpointEvery, stderr)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	api := httpapi.NewHandler(ret, opts)
	return serve(ctx, ln, chaosWrap(cfg, api), api, cfg.drainTimeout, stdout)
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil && !errors.Is(err, flag.ErrHelp) {
		fmt.Fprintf(os.Stderr, "lsiserve: %v\n", err)
		os.Exit(1)
	}
}
