package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/retrieval/httpapi"
)

// daemon boots run() in a goroutine with the given flags plus a random
// port, waits for the listen line, and returns the base URL. Shutdown
// (cancel + error check) is registered as cleanup.
func daemon(t *testing.T, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var stdout, stderr syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, append(args, "-addr", "127.0.0.1:0"), &stdout, &stderr)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon %v exited: %v (stderr: %s)", args, err, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Errorf("daemon %v did not shut down", args)
		}
	})
	deadline := time.After(15 * time.Second)
	for {
		if out := stdout.String(); strings.Contains(out, "listening on http://") {
			line := out[strings.Index(out, "listening on http://"):]
			return strings.TrimSpace(strings.TrimPrefix(line[:strings.Index(line, "\n")], "listening on "))
		}
		select {
		case err := <-done:
			t.Fatalf("daemon %v exited early: %v (stderr: %s)", args, err, stderr.String())
		case <-deadline:
			t.Fatalf("daemon %v never came up; stdout: %s stderr: %s", args, stdout.String(), stderr.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestEndToEndClusterServe drives the whole distributed tier through
// run(): export node directories with -save-cluster, boot one WAL'd
// node per shard, boot a router over a written manifest, append and
// search through the router, and boot a replica of one node.
func TestEndToEndClusterServe(t *testing.T) {
	root := t.TempDir()
	out := filepath.Join(root, "cluster")

	// Export: builds the demo corpus sharded 2 ways and splits it.
	var stdout, stderr syncBuffer
	if err := run(context.Background(), []string{"-k", "3", "-shards", "2", "-save-cluster", out}, &stdout, &stderr); err != nil {
		t.Fatalf("save-cluster: %v (stderr: %s)", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "exported 2 node directories") {
		t.Fatalf("save-cluster output: %q", stdout.String())
	}

	// One node per shard, each with a WAL and -checkpoint-every armed.
	nodeURLs := make([]string, 2)
	for s := 0; s < 2; s++ {
		nodeURLs[s] = daemon(t,
			"-index", filepath.Join(out, fmt.Sprintf("shard-%d", s)),
			"-wal-dir", filepath.Join(root, fmt.Sprintf("wal-%d", s)),
			"-checkpoint-every", "1h")
	}

	// The routing tier over a manifest file.
	manifest := filepath.Join(root, "manifest.json")
	manJSON := fmt.Sprintf(`{"version":1,"shards":2,"nodes":[
		{"name":"n0","url":"%s","shard":0},
		{"name":"n1","url":"%s","shard":1}]}`, nodeURLs[0], nodeURLs[1])
	if err := os.WriteFile(manifest, []byte(manJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	routerURL := daemon(t, "-cluster", manifest)

	// Reads through the router: the demo corpus answers as one index.
	resp, err := http.Post(routerURL+"/v1/search", "application/json",
		strings.NewReader(`{"query":"car engine","topN":4}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr httpapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || len(sr.Results) != 4 {
		t.Fatalf("router search: %d %+v", resp.StatusCode, sr.Results)
	}
	if got := resp.Header.Get("X-Partial-Results"); got != "" {
		t.Fatalf("healthy cluster answered partial: %q", got)
	}

	// Writes through the router land on a shard and become searchable.
	resp, err = http.Post(routerURL+"/v1/docs", "application/json",
		strings.NewReader(`{"id":"live-1","text":"a turbocharged car engine"}`))
	if err != nil {
		t.Fatal(err)
	}
	var added httpapi.AddDocsResponse
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || added.Count != 1 {
		t.Fatalf("router append: %d %+v", resp.StatusCode, added)
	}
	resp, err = http.Post(routerURL+"/v1/search", "application/json",
		strings.NewReader(`{"query":"turbocharged engine","topN":20}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, r := range sr.Results {
		found = found || r.ID == "live-1"
	}
	if !found {
		t.Fatalf("routed append missing from routed search: %+v", sr.Results)
	}

	// Readiness and freshness surface through the router.
	resp, err = http.Get(routerURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("router /readyz = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Index-Docs") != "13" {
		t.Fatalf("router X-Index-Docs = %q, want 13", resp.Header.Get("X-Index-Docs"))
	}

	// A replica of node 0 bootstraps over HTTP and converges on the
	// node's doc count once the background WAL tail catches up the
	// append that happened after the node's last checkpoint.
	replicaURL := daemon(t, "-replica-of", nodeURLs[0], "-data-dir", filepath.Join(root, "replica"))
	numDocs := func(base string) int {
		t.Helper()
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct{ NumDocs int }
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st.NumDocs
	}
	want := numDocs(nodeURLs[0])
	deadline := time.Now().Add(10 * time.Second)
	for numDocs(replicaURL) != want {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d docs, node holds %d", numDocs(replicaURL), want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterFlagConflicts: the serving modes are exclusive, and flags
// that build or mutate a local index are rejected in modes without one.
func TestClusterFlagConflicts(t *testing.T) {
	var stderr bytes.Buffer
	bad := [][]string{
		{"-cluster", "m.json", "-replica-of", "http://x"},
		{"-cluster", "m.json", "-index", "x.idx"},
		{"-cluster", "m.json", "-shards", "2"},
		{"-cluster", "m.json", "-wal-dir", "wal"},
		{"-cluster", "m.json", "-data-dir", "d"},
		{"-cluster", "m.json", "doc.txt"},
		{"-replica-of", "http://x", "-index", "x.idx"},
		{"-replica-of", "http://x", "-save-cluster", "out"},
		{"-checkpoint-every", "30s"}, // no -wal-dir
	}
	for _, args := range bad {
		if _, err := parseFlags(args, &stderr); err == nil {
			t.Errorf("parseFlags(%v) should fail", args)
		}
	}
	good := [][]string{
		{"-cluster", "m.json", "-addr", ":0", "-timeout", "5s"},
		{"-replica-of", "http://x", "-data-dir", "d"},
		{"-index", "dir", "-wal-dir", "wal", "-checkpoint-every", "30s"},
		{"-shards", "2", "-save-cluster", "out"},
	}
	for _, args := range good {
		if _, err := parseFlags(args, &stderr); err != nil {
			t.Errorf("parseFlags(%v) = %v, want ok", args, err)
		}
	}
}
