package retrieval

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/lsi"
)

// Backend selects the retrieval system a Build produces.
type Backend int

const (
	// BackendLSI indexes documents in the rank-k latent space of the
	// term-document matrix's truncated SVD (the paper's subject).
	BackendLSI Backend = iota
	// BackendVSM is the conventional inverted-index vector-space model —
	// the literal-term-matching baseline of the paper's comparison.
	BackendVSM
)

// String names the backend.
func (b Backend) String() string {
	switch b {
	case BackendLSI:
		return "lsi"
	case BackendVSM:
		return "vsm"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend is the inverse of Backend.String, for CLI flags and wire
// metadata.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "lsi":
		return BackendLSI, nil
	case "vsm":
		return BackendVSM, nil
	default:
		return 0, fmt.Errorf("retrieval: unknown backend %q (want lsi or vsm)", s)
	}
}

// Engine selects the SVD algorithm for the LSI backend; it mirrors the
// engines of internal/lsi without exposing that package.
type Engine int

const (
	// EngineAuto picks an engine from the matrix shape and rank.
	EngineAuto Engine = iota
	// EngineDense runs the full dense Golub–Reinsch SVD.
	EngineDense
	// EngineLanczos runs Golub–Kahan–Lanczos with reorthogonalization.
	EngineLanczos
	// EngineRandomized runs randomized subspace iteration.
	EngineRandomized
)

func (e Engine) toLSI() (lsi.Engine, error) {
	switch e {
	case EngineAuto:
		return lsi.EngineAuto, nil
	case EngineDense:
		return lsi.EngineDense, nil
	case EngineLanczos:
		return lsi.EngineLanczos, nil
	case EngineRandomized:
		return lsi.EngineRandomized, nil
	default:
		return 0, fmt.Errorf("retrieval: unknown engine %d", int(e))
	}
}

// Weighting selects the function of raw term counts stored in the
// term-document matrix (Section 2 of the paper notes the precise choice
// does not affect its results; the repo's ablations verify that).
type Weighting int

const (
	// WeightingCount stores raw occurrence counts.
	WeightingCount Weighting = iota
	// WeightingBinary stores 1 for any occurring term.
	WeightingBinary
	// WeightingLog stores 1 + ln(count) — the Build default.
	WeightingLog
	// WeightingTFIDF stores count × ln(m / df). Queries against a TF-IDF
	// index use raw counts (document frequencies are a corpus statistic).
	WeightingTFIDF
)

// String names the weighting.
func (w Weighting) String() string {
	switch w {
	case WeightingCount:
		return "count"
	case WeightingBinary:
		return "binary"
	case WeightingLog:
		return "log"
	case WeightingTFIDF:
		return "tfidf"
	default:
		return fmt.Sprintf("Weighting(%d)", int(w))
	}
}

// ParseWeighting is the inverse of Weighting.String, for CLI flags and
// wire metadata.
func ParseWeighting(s string) (Weighting, error) {
	switch s {
	case "count":
		return WeightingCount, nil
	case "binary":
		return WeightingBinary, nil
	case "log":
		return WeightingLog, nil
	case "tfidf":
		return WeightingTFIDF, nil
	default:
		return 0, fmt.Errorf("retrieval: unknown weighting %q (want count, binary, log, or tfidf)", s)
	}
}

func (w Weighting) toCorpus() (corpus.Weighting, error) {
	switch w {
	case WeightingCount:
		return corpus.CountWeighting, nil
	case WeightingBinary:
		return corpus.BinaryWeighting, nil
	case WeightingLog:
		return corpus.LogWeighting, nil
	case WeightingTFIDF:
		return corpus.TFIDFWeighting, nil
	default:
		return 0, fmt.Errorf("retrieval: unknown weighting %d", int(w))
	}
}

// config collects the functional options of Build.
type config struct {
	backend         Backend
	rank            int // 0 = auto
	engine          Engine
	weighting       Weighting
	seed            int64
	removeStopwords bool
	stemming        bool
	workers         int   // 0 = leave the process-wide setting alone
	shards          int   // 0 = unsharded; >= 1 builds the sharded live index
	sealEvery       int   // 0 = shard package default
	cacheBytes      int64 // <= 0 = no query result cache
	autoCompact     *bool
	annList         int // 0 = no ANN tier; >= 1 trains IVF quantizers with this many cells
	annProbe        int // default probe budget; 0 = exhaustive unless a request overrides
	quantBeta       int // 0 = no quantized tier; >= 1 builds int8 shadows with this rerank over-fetch
}

func defaultConfig() config {
	return config{
		backend:         BackendLSI,
		rank:            0,
		engine:          EngineAuto,
		weighting:       WeightingLog,
		removeStopwords: true,
		stemming:        true,
	}
}

// Option configures Build.
type Option func(*config)

// WithBackend selects the retrieval system (default BackendLSI).
func WithBackend(b Backend) Option { return func(c *config) { c.backend = b } }

// WithRank sets the LSI rank k. The default (or any k <= 0) picks
// min(numTerms, numDocs)/4 clamped to [2, 100] — small corpora keep a
// low-dimensional latent space, large corpora cap at the paper's typical
// few-hundred scale. k is further clamped to the matrix rank bound. The
// VSM backend ignores rank.
func WithRank(k int) Option { return func(c *config) { c.rank = k } }

// WithEngine selects the SVD engine for the LSI backend (default
// EngineAuto).
func WithEngine(e Engine) Option { return func(c *config) { c.engine = e } }

// WithWeighting selects the term weighting of the term-document matrix
// (default WeightingLog).
func WithWeighting(w Weighting) Option { return func(c *config) { c.weighting = w } }

// WithSeed seeds the randomized SVD engines; builds are deterministic for
// a fixed seed (and fixed parallelism for the Lanczos engine). Zero means
// a fixed default.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithStopwordRemoval toggles stopword removal in the text pipeline
// (default true). The setting is bundled into the index so queries are
// preprocessed identically.
func WithStopwordRemoval(on bool) Option { return func(c *config) { c.removeStopwords = on } }

// WithStemming toggles Porter stemming in the text pipeline (default
// true). The setting is bundled into the index so queries are
// preprocessed identically.
func WithStemming(on bool) Option { return func(c *config) { c.stemming = on } }

// WithShards builds a sharded live index over n shards instead of the
// single immutable index: documents are partitioned round-robin, each
// shard gets an independent per-shard decomposition, the index accepts
// live appends via Add (folded in without a rebuild, re-decomposed by a
// background compactor), and searches fan out across every shard's
// segments with deterministic merged results. A 1-shard index returns
// bitwise-identical rankings to the unsharded build of the same corpus.
// Sharding requires the LSI backend; n <= 0 keeps the unsharded index.
// Sharded indexes persist to a directory (SaveDir/OpenDir) rather than
// a single stream.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithSealEvery sets how many folded-in documents a shard's live segment
// absorbs before it is sealed and handed to the compactor (default 256;
// only meaningful with WithShards).
func WithSealEvery(n int) Option { return func(c *config) { c.sealEvery = n } }

// WithAutoCompact toggles the background compactor of a sharded index
// (default on; only meaningful with WithShards). With it off, sealed
// segments keep serving their fold-in representations until Compact is
// called explicitly — useful for tests that need a fixed segment layout.
func WithAutoCompact(on bool) Option { return func(c *config) { c.autoCompact = &on } }

// WithANN enables the IVF ANN tier of the LSI backend: a k-means coarse
// quantizer with nlist cells (clamped to the corpus size) is trained
// over the rank-k document vectors, and searches score only the nprobe
// cells whose centroids best match the projected query instead of
// scanning every document — sublinear candidate work on the
// topic-clustered corpora the paper's model produces. nprobe is the
// default probe budget: 0 keeps the default search exhaustive while
// still training quantizers (probe only via SearchProbe's per-request
// override), and nprobe >= nlist is bitwise-identical to the exhaustive
// scan. On sharded indexes every compacted segment carries its own
// quantizer, retrained by the compactor at re-SVD time; live fold-in
// segments always scan exhaustively, so freshly added documents are
// never missed. Training is deterministic for a fixed seed; results are
// deterministic for any worker count. Requires the LSI backend;
// nlist <= 0 disables the tier.
func WithANN(nlist, nprobe int) Option {
	return func(c *config) { c.annList = nlist; c.annProbe = nprobe }
}

// WithQuantized enables the quantized scoring tier of the LSI backend:
// an int8 shadow of the rank-k document matrix (one symmetric scale per
// document, ~8× smaller than the float64 matrix) is built alongside the
// decomposition, and searches run two-stage — the bandwidth-optimal int8
// scan selects topN·beta candidates, then an exact float64 rerank
// restores the final (score desc, doc asc) order. Every returned score
// is a true float64 cosine; only membership deep in the list can differ
// from the exhaustive scan, and beta large enough to cover the corpus is
// bitwise-identical to it. On sharded indexes every compacted segment
// carries its own shadow (persisted as a quant-*.qnt sidecar, rebuilt by
// the compactor at re-SVD time); live fold-in segments always score in
// float, so freshly added documents are never subject to quantization
// error. Quantization is seedless and deterministic: the shadow is a
// pure function of the document matrix, and results are deterministic
// for any worker count. Composes with WithANN — the IVF probe narrows
// the candidate set, the int8 kernels score it, exact float rescoring
// ranks it. Requires the LSI backend; beta <= 0 disables the tier.
// SearchProbe's nprobe <= 0 remains the per-request fully exact escape
// hatch.
func WithQuantized(beta int) Option {
	return func(c *config) { c.quantBeta = beta }
}

// WithQueryCache attaches a query result cache bounded at maxBytes
// (estimated footprint; <= 0, the default, disables caching). The cache
// is keyed by (normalized sparse query, topN, index epoch): repeated or
// concurrent identical queries are answered from memory — concurrent
// ones coalesce onto a single backend search — while the epoch key
// keeps live indexes exact: every Add batch and every compaction
// advances the epoch, instantly retiring all previously cached results,
// so a hit can never serve pre-Add or pre-Compact rankings. Immutable
// indexes cache forever. Applies to Build, Open, and OpenDir; cache
// counters surface in Stats and, via the HTTP API, in /v1/stats and
// the Cache-Status response header.
func WithQueryCache(maxBytes int64) Option { return func(c *config) { c.cacheBytes = maxBytes } }

// WithParallelism caps the worker count used by the parallel build and
// query kernels. The setting is process-wide (it adjusts the shared
// worker pool that all indexes fan out through), applied when Build runs;
// n <= 0 leaves the current setting alone.
func WithParallelism(n int) Option { return func(c *config) { c.workers = n } }

func autoRank(numTerms, numDocs int) int {
	k := min(numTerms, numDocs) / 4
	if k < 2 {
		k = 2
	}
	if k > 100 {
		k = 100
	}
	return k
}
