package retrieval

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/quant"
	"repro/internal/segment"
)

// The quantized scoring tier at the retrieval layer (see WithQuantized).
// Unsharded LSI indexes carry one int8 shadow of the whole
// document-vector matrix, built at Build (and at Open, when the opening
// options ask for the tier — quantization is seedless derived state,
// cheap to rebuild, so single-stream index files stay format-stable).
// Sharded indexes delegate to retrieval/shard, where every compacted
// segment owns a shadow persisted as a quant-*.qnt sidecar next to its
// seg-*.idx file. Searches run two-stage: the int8 scan selects
// topN·beta candidates, an exact float64 rerank restores the final
// (score desc, doc asc) order — every returned score is a true float64
// cosine, only membership deep in the list can differ from the exact
// scan.

// trainQuant builds the unsharded index's int8 shadow per cfg; a no-op
// when the tier is not configured. Build and Open call it after the LSI
// index exists.
func (ix *Index) trainQuant(cfg config) error {
	ix.quantBeta = cfg.quantBeta
	if cfg.quantBeta <= 0 || ix.lsiIndex == nil {
		return nil
	}
	ix.quant = quant.Quantize(ix.lsiIndex.DocVectors())
	return nil
}

// probeOpts is the tier routing of the default Search: the configured
// ANN probe budget plus the configured rerank over-fetch factor.
func (ix *Index) probeOpts() segment.ProbeOptions {
	return segment.ProbeOptions{NProbe: ix.annProbe, Beta: ix.quantBeta}
}

// tiered reports whether the default Search routes through any
// approximate tier (and therefore bypasses the backends' batch kernels).
func (ix *Index) tiered() bool {
	return (ix.annProbe > 0 && ix.ann != nil) || (ix.quantBeta > 0 && ix.quant != nil)
}

// searchSparseOpts is searchSparse with explicit tier options: NProbe >
// 0 probes that many IVF cells per quantizer, Beta > 0 scores through
// the int8 shadow and exact-reranks topN·Beta candidates, and the zero
// options scan exhaustively in float — the fully exact escape hatch.
// Indexes without the corresponding sidecar serve each budget
// exhaustively.
func (ix *Index) searchSparseOpts(terms []int, weights []float64, topN int, opts segment.ProbeOptions) []Result {
	if ix.sharded != nil {
		ms, _ := ix.sharded.SearchSparseOpts(terms, weights, topN, opts)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	if ix.backend != BackendLSI || !ix.useAnn(opts) && !ix.useQuant(opts) {
		ms := ix.lsiIndex.SearchSparse(terms, weights, topN)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	return ix.optsProjected(ix.lsiIndex.ProjectSparse(terms, weights), topN, opts)
}

// searchVecOpts is searchSparseOpts for a dense term-space vector.
func (ix *Index) searchVecOpts(q []float64, topN int, opts segment.ProbeOptions) []Result {
	if ix.sharded != nil {
		ms, _ := ix.sharded.SearchVecOpts(q, topN, opts)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	if ix.backend != BackendLSI || !ix.useAnn(opts) && !ix.useQuant(opts) {
		ms := ix.lsiIndex.Search(q, topN)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	return ix.optsProjected(ix.lsiIndex.Project(q), topN, opts)
}

func (ix *Index) useAnn(opts segment.ProbeOptions) bool   { return ix.ann != nil && opts.NProbe > 0 }
func (ix *Index) useQuant(opts segment.ProbeOptions) bool { return ix.quant != nil && opts.Beta > 0 }

// optsProjected runs the unsharded tiered scan over an already-projected
// query: IVF probe and int8 rerank when both sidecars serve (the probe
// narrows the candidate set, the shadow scores it, exact float
// rescores), otherwise whichever single tier is on. The query norm is
// computed exactly as the exhaustive path computes it, so saturated
// budgets reproduce lsi's own scan bitwise.
func (ix *Index) optsProjected(pq []float64, topN int, opts segment.ProbeOptions) []Result {
	qn := mat.Norm(pq)
	vecs, norms := ix.lsiIndex.DocVectors(), ix.lsiIndex.Norms()
	useAnn, useQuant := ix.useAnn(opts), ix.useQuant(opts)
	switch {
	case useAnn && useQuant:
		docs, pst := ix.ann.AppendProbeDocs(nil, pq, qn, opts.NProbe)
		ms, qst := ix.quant.AppendSearchDocs(nil, docs, vecs, norms, pq, qn, topN, opts.Beta)
		ix.recordAnn(pst.Cells, pst.Docs)
		ix.recordQuant(qst)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	case useQuant:
		ms, qst := ix.quant.AppendSearch(nil, vecs, norms, pq, qn, topN, opts.Beta)
		ix.recordQuant(qst)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	default: // useAnn
		ms, st := ix.ann.Search(vecs, norms, pq, qn, topN, opts.NProbe)
		ix.recordAnn(st.Cells, st.Docs)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
}

// recordAnn folds one unsharded probe's work into the lifetime counters.
func (ix *Index) recordAnn(cells, docs int) {
	ix.annSearches.Add(1)
	ix.annCells.Add(int64(cells))
	ix.annDocs.Add(int64(docs))
}

// recordQuant folds one unsharded int8 scan's work into the lifetime
// counters.
func (ix *Index) recordQuant(st quant.ScanStats) {
	ix.quantSearches.Add(1)
	ix.quantScanned.Add(int64(st.Scanned))
	ix.quantReranked.Add(int64(st.Reranked))
}

// QuantStats describes the quantized scoring tier of an index built or
// opened with WithQuantized (surfaced as the "quant" block of
// /v1/stats).
type QuantStats struct {
	// Beta is the configured rerank over-fetch factor of the default
	// search (stage 1 selects topN·Beta candidates for exact rescoring).
	Beta int `json:"beta"`
	// Segments counts int8 shadows serving (1 for an unsharded index;
	// one per quantized segment for sharded indexes) and Docs the
	// documents they cover — Docs/NumDocs is the corpus fraction scored
	// through the bandwidth-optimal kernels.
	Segments int `json:"segments"`
	Docs     int `json:"docs"`
	// Bytes is the shadows' heap footprint — codes plus per-document
	// scales, roughly NumDocs·(rank + 8) versus the float matrix's
	// NumDocs·rank·8.
	Bytes int64 `json:"bytes"`
	// Lifetime counters: searches that used the tier, documents scored
	// through the int8 kernels in them, and over-fetched candidates
	// rescored exactly.
	Searches     int64 `json:"searches"`
	DocsScanned  int64 `json:"docsScanned"`
	DocsReranked int64 `json:"docsReranked"`
}

// QuantStats reports the quantized tier's configuration and scan
// counters; ok is false when the index has no tier (not configured, or a
// backend without one).
func (ix *Index) QuantStats() (QuantStats, bool) {
	st := QuantStats{Beta: ix.quantBeta}
	switch {
	case ix.sharded != nil:
		ss := ix.sharded.Stats()
		if ix.quantBeta <= 0 && ss.QuantSegments == 0 {
			return QuantStats{}, false
		}
		st.Segments = ss.QuantSegments
		st.Docs = ss.QuantDocs
		st.Bytes = ss.QuantBytes
		st.Searches = ss.QuantSearches
		st.DocsScanned = ss.QuantDocsScanned
		st.DocsReranked = ss.QuantDocsReranked
	case ix.quant != nil:
		st.Segments = 1
		st.Docs = ix.quant.NumDocs()
		st.Bytes = ix.quant.Bytes()
		st.Searches = ix.quantSearches.Load()
		st.DocsScanned = ix.quantScanned.Load()
		st.DocsReranked = ix.quantReranked.Load()
	default:
		return QuantStats{}, false
	}
	return st, true
}

// errQuantBackend is the shared WithQuantized-requires-LSI complaint of
// Build and Open.
func errQuantBackend(b Backend) error {
	return fmt.Errorf("retrieval: WithQuantized requires the LSI backend (got %s)", b)
}
