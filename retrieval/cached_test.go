package retrieval

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/race"
	"repro/retrieval/cache"
)

// marker returns a letter-only unique token (the tokenizer keeps
// letters only, so "doc7" would collapse into "doc"); the trailing q
// keeps the Porter stemmer's plural/suffix rules away from it.
func marker(i int) string {
	s := "zz"
	for _, d := range fmt.Sprintf("%d", i) {
		s += string(rune('a' + d - '0'))
	}
	return s + "q"
}

// cachedTestCorpus is DemoCorpus plus a dictionary document holding n
// marker tokens, so the markers are in the build vocabulary and later
// Adds can use them.
func cachedTestCorpus(n int) []Document {
	docs := DemoCorpus()
	dict := ""
	for i := 0; i < n; i++ {
		dict += marker(i) + " "
	}
	return append(docs, Document{ID: "dictionary", Text: dict})
}

func TestCachedSearchMatchesUncachedAndReportsStatus(t *testing.T) {
	ctx := context.Background()
	plain, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense), WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"car engine repair", "galaxy stars telescope", "pasta garlic"}
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			want, err := plain.Search(ctx, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := cached.SearchStatus(ctx, q, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantStatus := cache.StatusHit
			if round == 0 {
				wantStatus = cache.StatusMiss
			}
			if st != wantStatus {
				t.Fatalf("round %d %q: status %v, want %v", round, q, st, wantStatus)
			}
			if len(got) != len(want) {
				t.Fatalf("round %d %q: %d results, want %d", round, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d %q result %d: cached %+v != uncached %+v", round, q, i, got[i], want[i])
				}
			}
		}
	}
	// Uncached index reports bypass and no cache stats.
	if _, st, _ := plain.SearchStatus(ctx, "car", 5); st != cache.StatusBypass {
		t.Fatalf("uncached index status %v, want bypass", st)
	}
	if _, ok := plain.CacheStats(); ok {
		t.Fatal("uncached index reported cache stats")
	}
	cs, ok := cached.CacheStats()
	if !ok {
		t.Fatal("cached index reported no cache stats")
	}
	if cs.Hits != int64(len(queries)*2) || cs.Misses != int64(len(queries)) {
		t.Fatalf("counters = %d hits / %d misses, want %d / %d", cs.Hits, cs.Misses, len(queries)*2, len(queries))
	}
	if cached.Stats().Cache == nil || plain.Stats().Cache != nil {
		t.Fatal("Stats.Cache presence does not track WithQueryCache")
	}
}

// TestCachedResultsAreCallerOwned pins the copy-on-hit contract: a
// caller mutating its result slice must not corrupt later hits.
func TestCachedResultsAreCallerOwned(t *testing.T) {
	ctx := context.Background()
	ix, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense), WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	first, _, err := ix.SearchStatus(ctx, "car engine", 5)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]Result(nil), first...)
	first[0] = Result{Doc: -1, ID: "corrupted", Score: -99}
	again, st, err := ix.SearchStatus(ctx, "car engine", 5)
	if err != nil {
		t.Fatal(err)
	}
	if st != cache.StatusHit {
		t.Fatalf("status %v, want hit", st)
	}
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("hit %d = %+v, want %+v (cache shared a caller-mutable slice)", i, again[i], want[i])
		}
	}
}

func TestCacheInvalidationOnAddAndCompact(t *testing.T) {
	ctx := context.Background()
	ix, err := Build(cachedTestCorpus(8),
		WithShards(2), WithRank(3), WithSealEvery(2), WithAutoCompact(false),
		WithQueryCache(1<<20), WithStemming(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	// Prime the cache on a marker with no matching document beyond the
	// dictionary, then Add a doc made of that marker: the very next
	// search must see it (an epoch-ignorant cache would serve the stale
	// pre-Add hit).
	q := marker(3)
	before, st, err := ix.SearchStatus(ctx, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st != cache.StatusMiss {
		t.Fatalf("priming search status %v, want miss", st)
	}
	if _, _, err := ix.SearchStatus(ctx, q, 0); err != nil {
		t.Fatal(err)
	}
	first, err := ix.Add(ctx, []Document{{ID: "fresh", Text: q + " " + q + " " + q}})
	if err != nil {
		t.Fatal(err)
	}
	after, st, err := ix.SearchStatus(ctx, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st == cache.StatusHit {
		t.Fatal("post-Add search hit the pre-Add cache entry")
	}
	found := false
	for _, r := range after {
		if r.Doc == first {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-Add search does not include the added doc %d: before=%v after=%v", first, before, after)
	}

	// Fill a couple of segments and compact; the post-compact search
	// must not be served from a pre-compact entry (scores move when the
	// segment is re-decomposed).
	for i := 0; i < 6; i++ {
		if _, err := ix.Add(ctx, []Document{{Text: marker(4) + " " + marker(5)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := ix.SearchStatus(ctx, q, 0); err != nil { // prime at current epoch
		t.Fatal(err)
	}
	epochBefore, _ := ix.CacheStats()
	if n, err := ix.Compact(); err != nil || n == 0 {
		t.Fatalf("compact: n=%d err=%v (want work done)", n, err)
	}
	epochAfter, _ := ix.CacheStats()
	if epochAfter.Epoch <= epochBefore.Epoch {
		t.Fatalf("compaction did not advance the cache epoch (%d -> %d)", epochBefore.Epoch, epochAfter.Epoch)
	}
	if _, st, err := ix.SearchStatus(ctx, q, 0); err != nil || st == cache.StatusHit {
		t.Fatalf("post-compact search: status %v err %v, want a recompute", st, err)
	}
}

func TestSearchBatchUsesCache(t *testing.T) {
	ctx := context.Background()
	ix, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense), WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"car engine", "galaxy stars", "zzzunknownzzz", "car engine"}
	want, err := plain.SearchBatch(ctx, queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		got, err := ix.SearchBatch(ctx, queries, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if len(got[i]) != len(want[i]) {
				t.Fatalf("round %d query %d: %d results, want %d", round, i, len(got[i]), len(want[i]))
			}
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("round %d query %d result %d: %+v != %+v", round, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	cs, _ := ix.CacheStats()
	// Round 1: "car engine" twice → 1 flight-less probe miss each (2
	// misses), one stored; "galaxy stars" 1 miss; round 2: all three
	// in-vocabulary lookups hit. The duplicate inside round 1 probes
	// before its twin stores, so it recomputes (batch probing does not
	// coalesce within one batch).
	if cs.Hits < 3 {
		t.Fatalf("hits = %d, want >= 3 (second round should be served from cache)", cs.Hits)
	}
	if cs.Misses == 0 {
		t.Fatal("no misses counted on the priming round")
	}
	// And a single Search on the same query is served from the batch's
	// stored entry — the two paths share the cache.
	if _, st, err := ix.SearchStatus(ctx, "galaxy stars", 5); err != nil || st != cache.StatusHit {
		t.Fatalf("single search after batch: status %v err %v, want hit", st, err)
	}
}

func TestCacheHitAllocsAtMostOne(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	ix, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense), WithQueryCache(1<<20), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	terms, weights, known := ix.querySparse("car engine repair")
	if known == 0 {
		t.Fatal("query missed the vocabulary")
	}
	// Prime, then pin: a steady-state hit allocates exactly the returned
	// copy — nothing for the key, the lookup, or the LRU touch.
	ix.searchSparseStatus(terms, weights, 5)
	allocs := testing.AllocsPerRun(200, func() {
		res, st := ix.searchSparseStatus(terms, weights, 5)
		if st != cache.StatusHit {
			t.Fatalf("status %v, want hit", st)
		}
		if len(res) == 0 {
			t.Fatal("empty hit")
		}
	})
	if allocs > 1 {
		t.Fatalf("cache hit allocates %v/op, want <= 1 (the result copy)", allocs)
	}
}

// TestCachedSearchFreshnessUnderStress is the end-to-end epoch-
// invalidation gate, run under -race by the race CI job: readers,
// writers, and the compactor race while every completed Add is
// immediately verified to be visible through the cached search path. A
// cache serving any pre-Add epoch fails the visibility assertion; the
// race detector additionally gates the lock-free publish protocol.
func TestCachedSearchFreshnessUnderStress(t *testing.T) {
	ctx := context.Background()
	const adds = 60
	ix, err := Build(cachedTestCorpus(adds+16),
		WithShards(2), WithRank(3), WithSealEvery(8), WithAutoCompact(false),
		WithQueryCache(1<<20), WithStemming(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	var wg sync.WaitGroup
	var ready sync.WaitGroup
	stop := make(chan struct{})
	// Background readers keep popular queries hot so the writer's
	// assertions race against real cache traffic. Each reader signals
	// after its first query so the single-CPU scheduler cannot finish
	// the writer before any reader ran (all readers open on the same
	// key, so the barrier also guarantees hit/coalesce traffic).
	for r := 0; r < 3; r++ {
		wg.Add(1)
		ready.Add(1)
		go func(r int) {
			defer wg.Done()
			first := true
			for i := 0; ; i++ {
				select {
				case <-stop:
					if first {
						ready.Done()
					}
					return
				default:
				}
				q := marker(i % 8)
				if _, _, err := ix.SearchStatus(ctx, q, 5); err != nil {
					t.Errorf("reader %d: %v", r, err)
					if first {
						ready.Done()
					}
					return
				}
				if first {
					ready.Done()
					first = false
				}
			}
		}(r)
	}
	// Background compactor churn: epoch bumps from both mutation kinds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()

	ready.Wait()
	// The writer is also the verifier: every Add must be visible to the
	// cached search path the moment it returns.
	for i := 0; i < adds; i++ {
		q := marker(16 + i)
		// Warm the cache on the pre-Add state of this exact query so a
		// stale hit is possible if invalidation were broken.
		if _, _, err := ix.SearchStatus(ctx, q, 0); err != nil {
			t.Fatal(err)
		}
		doc, err := ix.Add(ctx, []Document{{Text: q + " " + q}})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := ix.SearchStatus(ctx, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, r := range res {
			if r.Doc == doc {
				found = true
			}
		}
		if !found {
			t.Fatalf("add %d: doc %d invisible to cached search immediately after Add returned (stale epoch served)", i, doc)
		}
	}
	close(stop)
	wg.Wait()

	cs, ok := ix.CacheStats()
	if !ok || cs.Hits+cs.Coalesced == 0 || cs.Misses == 0 {
		t.Fatalf("stress ran without cache traffic: %+v", cs)
	}
}
