package retrieval

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/race"
)

// Allocation regression for the text hot path. A text query necessarily
// allocates a little O(len(query)) state — token strings from the
// pipeline, the term-count map, the sparse term/weight slices, and the
// returned results — but the backend scan itself must contribute
// nothing: allocations may not grow with the corpus. That is the
// observable difference between the pooled sparse hot path and the old
// one, which allocated a vocabulary-length query vector plus a
// corpus-length match slice (and, for VSM, a score map) per query.

// synthTexts generates n documents over a shared vocabulary so the big
// and small corpora exercise identical query prep.
func synthTexts(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{
		"engine", "carburetor", "gearbox", "piston", "clutch", "galaxy",
		"nebula", "telescope", "quasar", "orbit", "garlic", "basil",
		"risotto", "saffron", "gnocchi", "violin", "sonata", "tempo",
	}
	texts := make([]string, n)
	for i := range texts {
		var s string
		for j := 0; j < 12; j++ {
			s += vocab[rng.Intn(len(vocab))] + " "
		}
		texts[i] = s
	}
	return texts
}

func TestTextSearchAllocsIndependentOfCorpusSize(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	ctx := context.Background()
	const query = "galaxy telescope engine"
	for _, backend := range []Backend{BackendLSI, BackendVSM} {
		t.Run(backend.String(), func(t *testing.T) {
			measure := func(numDocs int) float64 {
				ix, err := BuildTexts(synthTexts(numDocs, 7331),
					WithBackend(backend), WithRank(3), WithEngine(EngineDense), WithParallelism(1))
				if err != nil {
					t.Fatal(err)
				}
				return testing.AllocsPerRun(200, func() {
					if _, err := ix.Search(ctx, query, 10); err != nil {
						t.Fatal(err)
					}
				})
			}
			small := measure(20)
			large := measure(600)
			if large > small {
				t.Fatalf("allocs grew with the corpus: %v/op at 600 docs vs %v/op at 20 (backend scan must be allocation-free)", large, small)
			}
			// Absolute ceiling so query-prep allocations cannot creep
			// either: tokenization + counts map + sparse slices + results.
			if small > 24 {
				t.Fatalf("%v allocs/op for a 3-token query, want <= 24", small)
			}
		})
	}
}

func TestSearchVectorMatchesSparseTextPath(t *testing.T) {
	// The dense SearchVector path and the sparse text path must agree
	// bitwise — same ranking, same scores — for both backends.
	ctx := context.Background()
	for _, backend := range []Backend{BackendLSI, BackendVSM} {
		t.Run(backend.String(), func(t *testing.T) {
			ix, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense), WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			for _, query := range []string{"car engine repair", "galaxy stars telescope", "pasta garlic pasta"} {
				fromText, err := ix.Search(ctx, query, 5)
				if err != nil {
					t.Fatal(err)
				}
				terms, weights, known := ix.querySparse(query)
				if known == 0 {
					t.Fatalf("query %q missed the vocabulary", query)
				}
				dense := make([]float64, ix.NumTerms())
				for i, term := range terms {
					dense[term] = weights[i]
				}
				fromVec, err := ix.SearchVector(ctx, dense, 5)
				if err != nil {
					t.Fatal(err)
				}
				if len(fromText) != len(fromVec) {
					t.Fatalf("%q: %d vs %d results", query, len(fromText), len(fromVec))
				}
				for i := range fromText {
					if fromText[i] != fromVec[i] {
						t.Fatalf("%q result %d: text %+v != vector %+v", query, i, fromText[i], fromVec[i])
					}
				}
			}
		})
	}
}
