package retrieval

import "fmt"

// DemoCorpus returns the repo's tiny built-in demo corpus: twelve
// documents across three themes (vehicles, space, cooking) with the
// synonym variation of the paper's introduction — some vehicle documents
// say "car", others "automobile"; some space documents say "cosmos",
// others "galaxy". It powers cmd/lsiquery and cmd/lsiserve demo modes
// and the serve smoke tests; the synonymy makes the LSI-vs-VSM gap
// visible at a glance.
func DemoCorpus() []Document {
	texts := []string{
		"The car dealership sells used cars, and the mechanic inspects every engine.",
		"An automobile dealership services automobile engines and adjusts the brakes.",
		"The automobile mechanic repaired the engine and brakes for the driver.",
		"The car race featured fast cars, skilled drivers and roaring engines.",
		"Astronomers observed the galaxy through a telescope and charted distant stars.",
		"The cosmos contains billions of galaxies, stars and planets in expansion.",
		"A starship in science fiction travels between stars and distant galaxies.",
		"Telescopes map stars and planets across the galaxy and measure stellar distances.",
		"The recipe requires fresh basil, olive oil, garlic and ripe tomatoes.",
		"Cooking pasta al dente takes about nine minutes in salted boiling water.",
		"A good pasta sauce starts with garlic and olive oil over gentle heat.",
		"The kitchen smelled of baked bread, garlic and roasted tomatoes.",
	}
	docs := make([]Document, len(texts))
	for i, t := range texts {
		docs[i] = Document{ID: fmt.Sprintf("demo-%02d", i), Text: t}
	}
	return docs
}
