package retrieval

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// A WAL'd index that "crashes" (is abandoned without a checkpoint) must
// come back — checkpoint + replay — holding every acked document, and
// serve the same results as an index that never crashed.
func TestWALReplayRestoresAckedAdds(t *testing.T) {
	base := largerCorpus(20)
	opts := []Option{WithRank(3), WithShards(2), WithAutoCompact(false), WithSeed(11)}
	dir := t.TempDir()
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	ctx := context.Background()

	ix, err := Build(base, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveDir(data); err != nil {
		t.Fatal(err)
	}
	if replayed, err := ix.AttachWAL(waldir); err != nil || replayed != 0 {
		t.Fatalf("AttachWAL = (%d, %v), want (0, nil)", replayed, err)
	}
	if !ix.WALAttached() {
		t.Fatal("WALAttached() = false after AttachWAL")
	}

	// Acked adds in several batches; only the first lands in a
	// checkpoint, the rest live solely in the WAL.
	added := []Document{
		{ID: "live-0", Text: "a shiny new car with a powerful engine"},
		{ID: "live-1", Text: "stars and galaxies in deep space"},
		{ID: "live-2", Text: "cooking recipes with fresh tomatoes"},
		{ID: "live-3", Text: "the car engine roared across the galaxy"},
	}
	if _, err := ix.Add(ctx, added[:1]); err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(ctx, added[1:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(ctx, added[3:]); err != nil {
		t.Fatal(err)
	}
	wantDocs := ix.NumDocs()
	wantResults, err := ix.Search(ctx, "car engine", 10)
	if err != nil {
		t.Fatal(err)
	}
	ix.Close() // abandon without a final checkpoint: the WAL must carry live-1..3

	re, err := OpenDir(data, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumDocs() != 21 {
		t.Fatalf("checkpoint holds %d docs, want 21 (base 20 + live-0)", re.NumDocs())
	}
	replayed, err := re.AttachWAL(waldir)
	if err != nil {
		t.Fatalf("AttachWAL replay: %v", err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d docs, want 3", replayed)
	}
	if re.NumDocs() != wantDocs {
		t.Fatalf("NumDocs after replay = %d, want %d", re.NumDocs(), wantDocs)
	}
	got, err := re.Search(ctx, "car engine", 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, wantResults, "after crash replay")

	// Replay is idempotent across another restart with no new writes.
	re.Close()
	re2, err := OpenDir(data, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if replayed, err := re2.AttachWAL(waldir); err != nil || replayed != 3 {
		t.Fatalf("second replay = (%d, %v), want (3, nil)", replayed, err)
	}
	if re2.NumDocs() != wantDocs {
		t.Fatalf("NumDocs after second replay = %d, want %d", re2.NumDocs(), wantDocs)
	}
}

// Checkpoint must rotate the WAL: a restart after a checkpoint replays
// nothing.
func TestCheckpointRotatesWAL(t *testing.T) {
	dir := t.TempDir()
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	ix, err := Build(largerCorpus(12), WithRank(3), WithShards(2), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveDir(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AttachWAL(waldir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := ix.Add(ctx, []Document{{ID: fmt.Sprintf("w-%d", i), Text: "car engine maintenance"}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Checkpoint(data); err != nil {
		t.Fatal(err)
	}
	want := ix.NumDocs()
	ix.Close()

	re, err := OpenDir(data, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.NumDocs() != want {
		t.Fatalf("checkpoint holds %d docs, want %d", re.NumDocs(), want)
	}
	if replayed, err := re.AttachWAL(waldir); err != nil || replayed != 0 {
		t.Fatalf("replay after checkpoint = (%d, %v), want (0, nil)", replayed, err)
	}
}

func TestAttachWALRejectsUnsharded(t *testing.T) {
	ix, err := Build(DemoCorpus(), WithRank(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AttachWAL(t.TempDir()); err == nil {
		t.Fatal("AttachWAL on an unsharded index succeeded")
	}
}

// Per-shard exports through the retrieval layer must open as standalone
// text-query-capable indexes whose merged corpus is the original.
func TestSaveShardDirsOpensStandalone(t *testing.T) {
	docs := largerCorpus(23)
	ix, err := Build(docs, WithRank(3), WithShards(3), WithAutoCompact(false), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	dir := t.TempDir()
	if err := ix.SaveShardDirs(dir); err != nil {
		t.Fatal(err)
	}
	total := 0
	ctx := context.Background()
	for s := 0; s < 3; s++ {
		node, err := OpenDir(shardDirName(dir, s), WithAutoCompact(false))
		if err != nil {
			t.Fatalf("open shard %d export: %v", s, err)
		}
		total += node.NumDocs()
		// Node answers text queries with its shard's documents, and its
		// locals map back to the owning globals.
		if _, err := node.Search(ctx, "car", 3); err != nil {
			t.Fatalf("shard %d query: %v", s, err)
		}
		for l := 0; l < node.NumDocs(); l++ {
			if got, want := node.DocID(l), docs[l*3+s].ID; got != want {
				t.Fatalf("shard %d local %d: id %q, want %q", s, l, got, want)
			}
		}
		node.Close()
	}
	if total != len(docs) {
		t.Fatalf("exports hold %d docs, want %d", total, len(docs))
	}
}

func TestStatsCarryEpochAndGeneration(t *testing.T) {
	ix, err := Build(largerCorpus(12), WithRank(3), WithShards(2), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Epoch() != 0 || ix.Generation() != 0 {
		t.Fatalf("fresh build: epoch %d generation %d, want 0 0", ix.Epoch(), ix.Generation())
	}
	ctx := context.Background()
	if _, err := ix.Add(ctx, []Document{{ID: "x", Text: "car engine"}}); err != nil {
		t.Fatal(err)
	}
	if ix.Epoch() == 0 {
		t.Fatal("epoch did not advance after Add")
	}
	dir := t.TempDir()
	if err := ix.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Epoch != ix.Epoch() || st.Generation != 1 {
		t.Fatalf("Stats epoch %d generation %d, want %d 1", st.Epoch, st.Generation, ix.Epoch())
	}
	if ls, ok := ix.LiveStats(); !ok || ls.Generation != 1 {
		t.Fatalf("LiveStats generation = %d (ok=%v), want 1", ls.Generation, ok)
	}
}

// TailWAL must serve exactly the suffix a replica is missing, and 410
// (ErrWALGone) positions a checkpoint rotated away.
func TestTailWAL(t *testing.T) {
	dir := t.TempDir()
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	ix, err := Build(largerCorpus(10), WithRank(3), WithShards(2), WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.SaveDir(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AttachWAL(waldir); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := ix.Add(ctx, []Document{{ID: fmt.Sprintf("t-%d", i), Text: "car engine"}}); err != nil {
			t.Fatal(err)
		}
	}
	// A replica at 12 is missing t-2, t-3.
	docs, err := ix.TailWAL(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 || docs[0].ID != "t-2" || docs[1].ID != "t-3" {
		t.Fatalf("TailWAL(12) = %+v, want [t-2 t-3]", docs)
	}
	// Caught up: empty.
	if docs, err := ix.TailWAL(14); err != nil || len(docs) != 0 {
		t.Fatalf("TailWAL(14) = (%d docs, %v), want (0, nil)", len(docs), err)
	}
	// Checkpoint rotates; an old position is gone, the new one is fine.
	if err := ix.Checkpoint(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.TailWAL(12); !errors.Is(err, ErrWALGone) {
		t.Fatalf("TailWAL(12) after rotation: err = %v, want ErrWALGone", err)
	}
	if docs, err := ix.TailWAL(14); err != nil || len(docs) != 0 {
		t.Fatalf("TailWAL(14) after rotation = (%d docs, %v), want (0, nil)", len(docs), err)
	}
}
