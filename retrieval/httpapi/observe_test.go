package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/retrieval"
	"repro/retrieval/cache"
)

// TestMetricsEndpoint drives a sharded, cached handler through
// searches and an ingest, then asserts GET /metrics carries every
// series family the acceptance criteria name: query latency
// histograms, cache hit/coalesce counters, compaction debt, and
// per-shard segment counts — in valid exposition shape.
func TestMetricsEndpoint(t *testing.T) {
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithShards(2),
		retrieval.WithAutoCompact(false), retrieval.WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	h := NewHandler(ix, Options{})

	// Two identical searches: a miss then a hit.
	for i := 0; i < 2; i++ {
		if rec := do(t, h, "POST", "/v1/search", `{"query":"car engine","topN":3}`); rec.Code != 200 {
			t.Fatalf("search %d: status %d: %s", i, rec.Code, rec.Body)
		}
	}
	if rec := do(t, h, "POST", "/v1/docs", `{"id":"new","text":"car engine turbo"}`); rec.Code != 200 {
		t.Fatalf("docs: status %d: %s", rec.Code, rec.Body)
	}

	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q, want text/plain exposition", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`lsi_http_request_duration_seconds_bucket{route="search",le="+Inf"} 2`,
		`lsi_http_requests_total{code="200",route="search"} 2`,
		`lsi_http_requests_total{code="200",route="docs"} 1`,
		"# TYPE lsi_http_request_duration_seconds histogram",
		`lsi_cache_lookups_total{result="hit"} 1`,
		`lsi_cache_lookups_total{result="miss"} 1`,
		"lsi_index_compaction_debt ",
		"lsi_index_docs_ingested_total 1",
		"lsi_index_epoch 1",
		"lsi_index_epoch_age_seconds ",
		`lsi_shard_segments{shard="0",state="live"}`,
		`lsi_shard_segments{shard="1",state="compacted"} 1`,
		"lsi_index_docs 13",
		// The scrape itself is admitted and in flight while rendering.
		"lsi_http_inflight_requests 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The scrape itself is instrumented on the next scrape.
	body2 := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body2, `lsi_http_requests_total{code="200",route="metrics"} 1`) {
		t.Errorf("second scrape does not count the first: %s", body2)
	}
}

// TestMetricsUncachedUnsharded: an immutable, uncached index exports no
// cache or live-index families, but the HTTP families are all there.
func TestMetricsUncachedUnsharded(t *testing.T) {
	h := demoHandler(t, Options{})
	body := do(t, h, "GET", "/metrics", "").Body.String()
	for _, absent := range []string{"lsi_cache_", "lsi_shard_", "lsi_index_epoch"} {
		if strings.Contains(body, absent) {
			t.Errorf("/metrics of immutable index carries %q", absent)
		}
	}
	for _, want := range []string{"lsi_index_docs ", "lsi_index_memory_bytes ", "lsi_http_request_duration_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// blockingRet is a Retriever whose Search blocks until released — the
// synthetic overload for the shed tests.
type blockingRet struct {
	started chan struct{} // receives one value per Search that began
	release chan struct{} // each Search consumes one value to finish
}

func (b *blockingRet) Search(ctx context.Context, q string, n int) ([]retrieval.Result, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
		return []retrieval.Result{{Doc: 0, ID: "d", Score: 1}}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *blockingRet) SearchBatch(ctx context.Context, qs []string, n int) ([][]retrieval.Result, error) {
	out := make([][]retrieval.Result, len(qs))
	for i := range qs {
		r, err := b.Search(ctx, qs[i], n)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

func (b *blockingRet) NumDocs() int           { return 1 }
func (b *blockingRet) Stats() retrieval.Stats { return retrieval.Stats{Backend: "fake", NumDocs: 1} }

// TestShedQueueFull pins the 429 contract: with MaxInFlight=1 and
// MaxQueue=1, a third concurrent search is shed immediately with
// Retry-After while the first two complete normally.
func TestShedQueueFull(t *testing.T) {
	ret := &blockingRet{started: make(chan struct{}, 4), release: make(chan struct{})}
	h := NewHandler(ret, Options{MaxInFlight: 1, MaxQueue: 1})

	results := make(chan *httptest.ResponseRecorder, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- do(t, h, "POST", "/v1/search", `{"query":"x"}`)
		}()
	}
	<-ret.started // request A is executing; B is queued or about to be

	// Wait until B actually occupies the queue slot (visible on the
	// never-shed /metrics route), then C is shed deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(do(t, h, "GET", "/metrics", "").Body.String(), "lsi_http_queued_requests 1") {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the wait queue")
		}
		time.Sleep(time.Millisecond)
	}
	shed := do(t, h, "POST", "/v1/search", `{"query":"x"}`)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("expected 429, got %d: %s", shed.Code, shed.Body)
	}
	if ra := shed.Header().Get("Retry-After"); ra == "" {
		t.Error("shed response missing Retry-After")
	}
	if !strings.Contains(shed.Body.String(), "overloaded") {
		t.Errorf("shed body: %s", shed.Body)
	}

	close(ret.release) // let A and B finish
	wg.Wait()
	close(results)
	for rec := range results {
		if rec.Code != 200 {
			t.Errorf("admitted request got %d: %s", rec.Code, rec.Body)
		}
	}

	// The shed is visible on /metrics and never hits the backend.
	body := do(t, h, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body, `lsi_http_shed_total{reason="queue_full",route="search"} 1`) {
		t.Errorf("/metrics missing shed counter:\n%s", body)
	}
	if !strings.Contains(body, `lsi_http_requests_total{code="429",route="search"} 1`) {
		t.Errorf("/metrics missing 429 request counter")
	}
}

// debtRet reports fixed compaction debt.
type debtRet struct {
	blockingRet
	debt int
}

func (d *debtRet) LiveStats() (retrieval.LiveStats, bool) {
	return retrieval.LiveStats{CompactionDebt: d.debt, LastMutation: time.Now()}, true
}

// TestShedCompactionDebt: ingest routes shed 503 on debt (the server
// owes background work — distinct from the queue-full 429), search
// routes do not shed.
func TestShedCompactionDebt(t *testing.T) {
	ret := &debtRet{
		blockingRet: blockingRet{started: make(chan struct{}, 1), release: make(chan struct{}, 1)},
		debt:        10,
	}
	h := NewHandler(ret, Options{MaxCompactionDebt: 5})

	rec := do(t, h, "POST", "/v1/docs", `{"text":"x"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("docs with debt: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After %q, want \"2\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "compaction_debt") {
		t.Errorf("shed body: %s", rec.Body)
	}

	// Searches keep flowing under debt.
	ret.release <- struct{}{}
	if rec := do(t, h, "POST", "/v1/search", `{"query":"x"}`); rec.Code != 200 {
		t.Errorf("search under debt: status %d, want 200", rec.Code)
	}

	// Debt below the budget admits ingest again (the fake has no
	// DocAdder, so admission surfaces as 501, not 429).
	ret.debt = 3
	if rec := do(t, h, "POST", "/v1/docs", `{"text":"x"}`); rec.Code != http.StatusNotImplemented {
		t.Errorf("docs under low debt: status %d, want 501", rec.Code)
	}
}

// TestDegradationUnderOverload floods a small sharded live index
// through a gated handler with concurrent searches and ingests. Every
// response must be a clean 200 or a clean 429 — accepted queries return
// well-formed, correctly ordered results while the gate sheds around
// them. Run under -race (the package race gate) this is the
// graceful-degradation proof: shedding corrupts no in-flight query.
func TestDegradationUnderOverload(t *testing.T) {
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithShards(2),
		retrieval.WithSealEvery(8), retrieval.WithAutoCompact(false),
		retrieval.WithQueryCache(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	// slowRet adds a scheduling point per search so the gate saturates
	// on a 1-core runner too.
	h := NewHandler(&slowRet{Index: ix}, Options{MaxInFlight: 1, MaxQueue: 1, Timeout: 5 * time.Second})

	const workers, perWorker = 8, 20
	var ok200, shed429 int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w%4 == 0 && i%5 == 0 {
					body := fmt.Sprintf(`{"id":"w%d-%d","text":"car engine turbo speed"}`, w, i)
					rec := do(t, h, "POST", "/v1/docs", body)
					if rec.Code != 200 && rec.Code != 429 {
						t.Errorf("ingest: status %d: %s", rec.Code, rec.Body)
					}
					continue
				}
				rec := do(t, h, "POST", "/v1/search", `{"query":"car engine","topN":5}`)
				switch rec.Code {
				case 200:
					var resp SearchResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("accepted search returned malformed JSON: %v", err)
						continue
					}
					for j := 1; j < len(resp.Results); j++ {
						if resp.Results[j].Score > resp.Results[j-1].Score {
							t.Errorf("accepted search results out of order: %v", resp.Results)
							break
						}
					}
					for _, r := range resp.Results {
						if r.ID == "" {
							t.Errorf("result with empty ID: %+v", r)
						}
					}
					mu.Lock()
					ok200++
					mu.Unlock()
				case 429:
					if rec.Header().Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
					mu.Lock()
					shed429++
					mu.Unlock()
				default:
					t.Errorf("search: status %d: %s", rec.Code, rec.Body)
				}
			}
		}(w)
	}
	wg.Wait()
	if ok200 == 0 {
		t.Error("overload admitted nothing — gate wedged")
	}
	t.Logf("degradation: %d served, %d shed", ok200, shed429)
}

// slowRet delegates to a real index with a deliberate scheduling point,
// so concurrent load actually overlaps on single-CPU test runners. The
// handler prefers SearchStatus for text queries, so that is the method
// to slow down.
type slowRet struct {
	*retrieval.Index
}

func (s *slowRet) SearchStatus(ctx context.Context, q string, n int) ([]retrieval.Result, cache.Status, error) {
	time.Sleep(200 * time.Microsecond)
	return s.Index.SearchStatus(ctx, q, n)
}

// TestPprofGating: off by default, mounted with EnablePprof.
func TestPprofGating(t *testing.T) {
	off := demoHandler(t, Options{})
	if rec := do(t, off, "GET", "/debug/pprof/cmdline", ""); rec.Code != 404 {
		t.Errorf("pprof off: status %d, want 404", rec.Code)
	}
	on := demoHandler(t, Options{EnablePprof: true})
	if rec := do(t, on, "GET", "/debug/pprof/cmdline", ""); rec.Code != 200 {
		t.Errorf("pprof on: status %d, want 200", rec.Code)
	}
}

// TestAccessLog: one structured line per request with route, status,
// and cache disposition.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(ix, Options{AccessLog: logger})
	do(t, h, "POST", "/v1/search", `{"query":"car engine"}`)
	line := buf.String()
	for _, want := range []string{`"route":"search"`, `"status":200`, `"cache":"miss"`, `"dur_ms":`} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %s in: %s", want, line)
		}
	}
}
