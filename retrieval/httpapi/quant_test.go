package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/retrieval"
)

// quantIndex builds a demo index carrying the int8 tier with a small
// default rerank over-fetch, so the default search runs two-stage.
func quantIndex(t *testing.T) *retrieval.Index {
	t.Helper()
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithEngine(retrieval.EngineDense),
		retrieval.WithQuantized(4))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestStatsAndMetricsQuantBlock(t *testing.T) {
	h := NewHandler(quantIndex(t), Options{})

	stats := do(t, h, "GET", "/v1/stats", "")
	if stats.Code != http.StatusOK {
		t.Fatalf("stats: %d", stats.Code)
	}
	var st struct {
		Quant *retrieval.QuantStats `json:"quant"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Quant == nil || st.Quant.Segments != 1 || st.Quant.Beta != 4 {
		t.Fatalf("stats quant block = %+v, want a 1-shadow beta-4 tier", st.Quant)
	}

	// Search once (the default path is quantized), then the counter
	// series must be live on /metrics.
	if rec := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3}`); rec.Code != http.StatusOK {
		t.Fatalf("search: %d: %s", rec.Code, rec.Body)
	}
	metrics := do(t, h, "GET", "/metrics", "")
	body := metrics.Body.String()
	for _, series := range []string{"lsi_quant_beta 4", "lsi_quant_segments 1", "lsi_quant_searches_total 1"} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}
}

func TestQuantizedSearchMatchesExhaustiveOverHTTP(t *testing.T) {
	plain := demoHandler(t, Options{})
	h := NewHandler(quantIndex(t), Options{})

	// The demo corpus is tiny, so topN·beta covers it and the quantized
	// default search must reproduce the exhaustive ranking exactly.
	want := do(t, plain, "POST", "/v1/search", `{"query":"car","topN":3}`)
	got := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3}`)
	if want.Code != http.StatusOK || got.Code != http.StatusOK {
		t.Fatalf("codes: %d / %d", want.Code, got.Code)
	}
	var w, g SearchResponse
	if err := json.Unmarshal(want.Body.Bytes(), &w); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.Body.Bytes(), &g); err != nil {
		t.Fatal(err)
	}
	if len(g.Results) != len(w.Results) {
		t.Fatalf("quantized returned %d results, exhaustive %d", len(g.Results), len(w.Results))
	}
	for i := range w.Results {
		if g.Results[i] != w.Results[i] {
			t.Fatalf("quantized result %d = %+v, want %+v", i, g.Results[i], w.Results[i])
		}
	}

	// nprobe=0 remains the fully exact per-request escape hatch on a
	// quantized index.
	if rec := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3,"nprobe":0}`); rec.Code != http.StatusOK {
		t.Fatalf("nprobe=0 on quantized index: %d: %s", rec.Code, rec.Body)
	}
}

func TestMetricsOmitQuantWithoutTier(t *testing.T) {
	h := demoHandler(t, Options{})
	if body := do(t, h, "GET", "/metrics", "").Body.String(); strings.Contains(body, "lsi_quant_") {
		t.Fatalf("tier-less index exports quant series:\n%s", body)
	}
}
