package httpapi

// Observability and admission control: the middleware every route runs
// through. Three concerns live here, in request order:
//
//  1. Admission gate — a concurrency limit (Options.MaxInFlight) with a
//     bounded wait queue (Options.MaxQueue). A request that finds the
//     limit reached and the queue full is shed immediately with
//     429 + Retry-After instead of piling onto a saturated backend;
//     ingest routes are additionally shed with 503 + Retry-After while
//     the index's compaction debt exceeds Options.MaxCompactionDebt
//     (503, not 429: the client did nothing wrong — the server owes
//     background work). Probe and scrape routes (/healthz, /readyz,
//     /metrics, pprof) never queue and are never shed — an overloaded
//     server must stay observable.
//  2. Instrumentation — per-route latency histograms, request counters
//     by status code, in-flight/queued gauges, and shed counters, all
//     registered on the handler's metrics.Registry and served by
//     GET /metrics in the Prometheus text format, alongside collectors
//     for the index itself (documents, memory, cache counters, and the
//     live-index segment/compaction/freshness gauges).
//  3. Access logs — one structured (slog) line per request when
//     Options.AccessLog is set.
//
// The shed path is deliberately cheap: no body read, no backend work,
// one counter increment — the property the degradation tests pin
// (during overload, accepted requests stay correct and shed requests
// cost almost nothing).

import (
	"context"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/retrieval"
)

// LiveStatsReporter is the optional live-index observability capability:
// the concrete *retrieval.Index implements it, reporting per-shard
// segment topology, ingest volume, compaction debt, and freshness (ok
// is false for immutable indexes). The handler exports these as
// /metrics gauges and uses CompactionDebt for ingest admission.
type LiveStatsReporter interface {
	LiveStats() (retrieval.LiveStats, bool)
}

// CacheStatsReporter is the optional query-cache observability
// capability of the concrete *retrieval.Index (ok is false when the
// index was built without retrieval.WithQueryCache). The handler
// exports the counters as live /metrics series.
type CacheStatsReporter interface {
	CacheStats() (retrieval.QueryCacheStats, bool)
}

// ANNStatsReporter is the optional ANN-tier observability capability of
// the concrete *retrieval.Index (ok is false when the index has no IVF
// tier — see retrieval.WithANN). The handler exports the configuration
// gauges and probe counters as live /metrics series.
type ANNStatsReporter interface {
	ANNStats() (retrieval.ANNStats, bool)
}

// QuantStatsReporter is the optional quantized-tier observability
// capability of the concrete *retrieval.Index (ok is false when the
// index has no int8 tier — see retrieval.WithQuantized). The handler
// exports the configuration gauges and scan counters as live /metrics
// series.
type QuantStatsReporter interface {
	QuantStats() (retrieval.QuantStats, bool)
}

// gateClass says how the admission gate treats a route.
type gateClass int

const (
	// gateNone: never queued, never shed (probes, scrapes, pprof).
	gateNone gateClass = iota
	// gateQuery: bounded by the concurrency limit + queue.
	gateQuery
	// gateIngest: bounded like gateQuery, and additionally shed while
	// compaction debt exceeds the budget.
	gateIngest
)

// gate is the admission controller: a counting semaphore of in-flight
// slots plus a bounded count of waiters. nil means admission is
// unlimited (Options.MaxInFlight <= 0).
type gate struct {
	sem      chan struct{}
	queued   atomic.Int64
	maxQueue int64
}

func newGate(maxInFlight, maxQueue int) *gate {
	if maxInFlight <= 0 {
		return nil
	}
	return &gate{sem: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire claims an in-flight slot, waiting in the bounded queue if the
// limit is reached. ok=false means the request must be shed: the queue
// was full, or the caller's context ended while waiting.
func (g *gate) acquire(ctx context.Context) (ok bool) {
	select {
	case g.sem <- struct{}{}:
		return true
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		return false
	}
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (g *gate) release() { <-g.sem }

// observer owns the handler's metric series. It is always present —
// instrumentation is not optional — but costs two atomic adds and a
// histogram observe per request.
type observer struct {
	reg      *metrics.Registry
	latency  map[string]*metrics.Histogram // by route
	inflight *metrics.Gauge

	mu       sync.Mutex
	requests map[string]*metrics.Counter // by route \x00 code
	shed     map[string]*metrics.Counter // by route \x00 reason
}

// routes is the fixed route-label vocabulary; latency histograms are
// pre-registered for each so scrapes show every route from the first
// response.
var routes = []string{"search", "search_batch", "docs", "docs_batch", "stats", "healthz", "readyz", "metrics",
	"replicate_manifest", "replicate_file", "replicate_wal"}

// newObserver registers the handler's own series plus the index-level
// collectors on reg (a fresh registry when nil). One handler per
// registry: series names would collide otherwise.
func newObserver(reg *metrics.Registry, ret retrieval.Retriever) *observer {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	o := &observer{
		reg:      reg,
		latency:  make(map[string]*metrics.Histogram, len(routes)),
		requests: make(map[string]*metrics.Counter),
		shed:     make(map[string]*metrics.Counter),
	}
	for _, route := range routes {
		o.latency[route] = reg.Histogram("lsi_http_request_duration_seconds",
			"Request latency by route, in seconds.", nil, metrics.Label{Name: "route", Value: route})
	}
	o.inflight = reg.Gauge("lsi_http_inflight_requests",
		"Requests currently executing (admitted past the gate).")

	reg.GaugeFunc("lsi_index_docs", "Indexed documents.",
		func() float64 { return float64(ret.NumDocs()) })
	reg.GaugeFunc("lsi_index_memory_bytes", "Estimated index heap footprint in bytes.",
		func() float64 { return float64(ret.Stats().MemoryBytes) })

	if cs, ok := ret.(CacheStatsReporter); ok {
		if _, cached := cs.CacheStats(); cached {
			lookups := func(pick func(retrieval.QueryCacheStats) int64) func() float64 {
				return func() float64 { st, _ := cs.CacheStats(); return float64(pick(st)) }
			}
			reg.CounterFunc("lsi_cache_lookups_total", "Query-cache lookups by disposition.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.Hits }),
				metrics.Label{Name: "result", Value: "hit"})
			reg.CounterFunc("lsi_cache_lookups_total", "Query-cache lookups by disposition.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.Misses }),
				metrics.Label{Name: "result", Value: "miss"})
			reg.CounterFunc("lsi_cache_lookups_total", "Query-cache lookups by disposition.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.Coalesced }),
				metrics.Label{Name: "result", Value: "coalesced"})
			reg.CounterFunc("lsi_cache_evictions_total", "Query-cache entries evicted by the LRU byte bound.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.Evictions }))
			reg.CounterFunc("lsi_cache_rejected_total", "Computed results not stored because the epoch moved mid-compute.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.Rejected }))
			reg.GaugeFunc("lsi_cache_entries", "Query-cache resident entries.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return int64(s.Entries) }))
			reg.GaugeFunc("lsi_cache_bytes", "Query-cache resident bytes (estimated).",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.Bytes }))
			reg.GaugeFunc("lsi_cache_capacity_bytes", "Query-cache byte budget.",
				lookups(func(s retrieval.QueryCacheStats) int64 { return s.CapBytes }))
		}
	}

	if ar, ok := ret.(ANNStatsReporter); ok {
		if _, has := ar.ANNStats(); has {
			ann := func(pick func(retrieval.ANNStats) int64) func() float64 {
				return func() float64 { st, _ := ar.ANNStats(); return float64(pick(st)) }
			}
			reg.GaugeFunc("lsi_ann_nprobe", "Configured default probe budget (0 = default searches scan exhaustively).",
				ann(func(s retrieval.ANNStats) int64 { return int64(s.NProbe) }))
			reg.GaugeFunc("lsi_ann_nlist", "Configured IVF cell count per quantizer.",
				ann(func(s retrieval.ANNStats) int64 { return int64(s.NList) }))
			reg.GaugeFunc("lsi_ann_segments", "Quantized segments serving cell-probe searches.",
				ann(func(s retrieval.ANNStats) int64 { return int64(s.Segments) }))
			reg.GaugeFunc("lsi_ann_docs", "Documents covered by a quantizer (the sublinearly served corpus fraction).",
				ann(func(s retrieval.ANNStats) int64 { return int64(s.Docs) }))
			reg.CounterFunc("lsi_ann_searches_total", "Searches that probed the ANN tier (exhaustive escapes excluded).",
				ann(func(s retrieval.ANNStats) int64 { return s.Searches }))
			reg.CounterFunc("lsi_ann_cells_probed_total", "IVF cells probed across all ANN searches.",
				ann(func(s retrieval.ANNStats) int64 { return s.CellsProbed }))
			reg.CounterFunc("lsi_ann_docs_scored_total", "Candidate documents scored across all ANN searches.",
				ann(func(s retrieval.ANNStats) int64 { return s.DocsScored }))
		}
	}

	if qr, ok := ret.(QuantStatsReporter); ok {
		if _, has := qr.QuantStats(); has {
			qnt := func(pick func(retrieval.QuantStats) int64) func() float64 {
				return func() float64 { st, _ := qr.QuantStats(); return float64(pick(st)) }
			}
			reg.GaugeFunc("lsi_quant_beta", "Configured rerank over-fetch factor (stage 1 selects topN*beta candidates).",
				qnt(func(s retrieval.QuantStats) int64 { return int64(s.Beta) }))
			reg.GaugeFunc("lsi_quant_segments", "Segments carrying an int8 shadow of their document matrix.",
				qnt(func(s retrieval.QuantStats) int64 { return int64(s.Segments) }))
			reg.GaugeFunc("lsi_quant_docs", "Documents covered by an int8 shadow (the bandwidth-optimally scored corpus fraction).",
				qnt(func(s retrieval.QuantStats) int64 { return int64(s.Docs) }))
			reg.GaugeFunc("lsi_quant_bytes", "Heap footprint of the int8 shadows (codes + per-document scales).",
				qnt(func(s retrieval.QuantStats) int64 { return s.Bytes }))
			reg.CounterFunc("lsi_quant_searches_total", "Searches that scored through the int8 tier (exact escapes excluded).",
				qnt(func(s retrieval.QuantStats) int64 { return s.Searches }))
			reg.CounterFunc("lsi_quant_docs_scanned_total", "Documents scored through the int8 kernels across all quantized searches.",
				qnt(func(s retrieval.QuantStats) int64 { return s.DocsScanned }))
			reg.CounterFunc("lsi_quant_docs_reranked_total", "Over-fetched candidates rescored with exact float kernels across all quantized searches.",
				qnt(func(s retrieval.QuantStats) int64 { return s.DocsReranked }))
		}
	}

	if lr, ok := ret.(LiveStatsReporter); ok {
		if ls, live := lr.LiveStats(); live {
			live := func(pick func(retrieval.LiveStats) float64) func() float64 {
				return func() float64 { st, _ := lr.LiveStats(); return pick(st) }
			}
			reg.CounterFunc("lsi_index_epoch", "Index-wide mutation epoch (advances after every published ingest batch and compaction swap).",
				live(func(s retrieval.LiveStats) float64 { return float64(s.Epoch) }))
			reg.GaugeFunc("lsi_index_epoch_age_seconds", "Seconds since the last published mutation — the freshness signal of the epoch-keyed query cache.",
				live(func(s retrieval.LiveStats) float64 { return time.Since(s.LastMutation).Seconds() }))
			reg.CounterFunc("lsi_index_docs_ingested_total", "Documents accepted through live ingest since boot (rate() of this is the ingest rate).",
				live(func(s retrieval.LiveStats) float64 { return float64(s.DocsIngested) }))
			reg.CounterFunc("lsi_index_compactions_total", "Segment rebuilds performed by the compactor since boot.",
				live(func(s retrieval.LiveStats) float64 { return float64(s.Compactions) }))
			reg.GaugeFunc("lsi_index_compaction_debt", "Sealed segments waiting for the compactor (ingest is shed past the configured budget).",
				live(func(s retrieval.LiveStats) float64 { return float64(s.CompactionDebt) }))
			reg.GaugeFunc("lsi_index_compacting", "1 while a compaction pass is in flight.",
				live(func(s retrieval.LiveStats) float64 {
					if s.Compacting {
						return 1
					}
					return 0
				}))
			for sh := range ls.PerShard {
				shardLbl := metrics.Label{Name: "shard", Value: strconv.Itoa(sh)}
				perShard := func(sh int, pick func(retrieval.ShardStat) int) func() float64 {
					return func() float64 {
						st, _ := lr.LiveStats()
						if sh >= len(st.PerShard) {
							return 0
						}
						return float64(pick(st.PerShard[sh]))
					}
				}
				reg.GaugeFunc("lsi_shard_segments", "Published segments per shard by lifecycle state.",
					perShard(sh, func(s retrieval.ShardStat) int { return s.Live }),
					shardLbl, metrics.Label{Name: "state", Value: "live"})
				reg.GaugeFunc("lsi_shard_segments", "Published segments per shard by lifecycle state.",
					perShard(sh, func(s retrieval.ShardStat) int { return s.SealedPending }),
					shardLbl, metrics.Label{Name: "state", Value: "sealed_pending"})
				reg.GaugeFunc("lsi_shard_segments", "Published segments per shard by lifecycle state.",
					perShard(sh, func(s retrieval.ShardStat) int { return s.Compacted }),
					shardLbl, metrics.Label{Name: "state", Value: "compacted"})
				reg.GaugeFunc("lsi_shard_docs", "Documents per shard.",
					perShard(sh, func(s retrieval.ShardStat) int { return s.Docs }),
					shardLbl)
			}
		}
	}
	return o
}

// requestCounter returns (creating on first use) the requests_total
// series for a (route, status) pair. Codes are dynamic, so these cannot
// be pre-registered like the latency histograms.
func (o *observer) requestCounter(route string, code int) *metrics.Counter {
	key := route + "\x00" + strconv.Itoa(code)
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.requests[key]
	if !ok {
		c = o.reg.Counter("lsi_http_requests_total", "Requests by route and status code.",
			metrics.Label{Name: "route", Value: route},
			metrics.Label{Name: "code", Value: strconv.Itoa(code)})
		o.requests[key] = c
	}
	return c
}

// shedCounter returns (creating on first use) the shed_total series for
// a (route, reason) pair.
func (o *observer) shedCounter(route, reason string) *metrics.Counter {
	key := route + "\x00" + reason
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.shed[key]
	if !ok {
		c = o.reg.Counter("lsi_http_shed_total", "Requests shed by the admission gate, by route and reason.",
			metrics.Label{Name: "route", Value: route},
			metrics.Label{Name: "reason", Value: reason})
		o.shed[key] = c
	}
	return c
}

// statusRecorder captures the response status and size for metrics and
// access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// shed writes the refusal for a request the gate refused: 429 for queue
// pressure (the client can help by sending less), 503 for compaction
// debt (the server owes background work; the client did nothing wrong).
// Both carry Retry-After; the hint is deliberately coarse — 1s for
// queue pressure (one request's worth of backoff), 2s for compaction
// debt (one compactor tick).
func (h *handler) shedResponse(w http.ResponseWriter, route, reason string, status, retryAfter int) {
	h.obs.shedCounter(route, reason).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, status, "server overloaded (%s); retry after %ds", reason, retryAfter)
}

// route wraps an endpoint in the admission gate, instrumentation, and
// access-log middleware. name is the route's metrics label.
func (h *handler) route(name string, class gateClass, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}

		admitted := true
		reason := ""
		switch {
		case class == gateIngest && h.opts.MaxCompactionDebt > 0 && h.debt() > h.opts.MaxCompactionDebt:
			admitted, reason = false, "compaction_debt"
			h.shedResponse(sr, name, reason, http.StatusServiceUnavailable, 2)
		case class != gateNone && h.gate != nil:
			if h.gate.acquire(r.Context()) {
				defer h.gate.release()
			} else {
				admitted, reason = false, "queue_full"
				h.shedResponse(sr, name, reason, http.StatusTooManyRequests, 1)
			}
		}
		if admitted {
			h.obs.inflight.Add(1)
			next(sr, r)
			h.obs.inflight.Add(-1)
		}

		elapsed := time.Since(start)
		if sr.status == 0 {
			// A handler that never wrote (nothing in this package does)
			// still counts as a 200 for accounting.
			sr.status = http.StatusOK
		}
		h.obs.latency[name].Observe(elapsed.Seconds())
		h.obs.requestCounter(name, sr.status).Inc()
		if log := h.opts.AccessLog; log != nil {
			attrs := []any{
				"method", r.Method,
				"path", r.URL.Path,
				"route", name,
				"status", sr.status,
				"bytes", sr.bytes,
				"dur_ms", float64(elapsed.Microseconds()) / 1000,
				"remote", r.RemoteAddr,
			}
			if cs := sr.Header().Get("Cache-Status"); cs != "" {
				attrs = append(attrs, "cache", cs)
			}
			if !admitted {
				attrs = append(attrs, "shed", reason)
				log.Warn("shed", attrs...)
			} else {
				log.Info("request", attrs...)
			}
		}
	}
}

// debt reads the index's current compaction debt (0 when the retriever
// does not report live stats).
func (h *handler) debt() int {
	lr, ok := h.ret.(LiveStatsReporter)
	if !ok {
		return 0
	}
	ls, live := lr.LiveStats()
	if !live {
		return 0
	}
	return ls.CompactionDebt
}

// metricsHandler serves GET /metrics in the Prometheus text exposition
// format.
func (h *handler) metricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	h.obs.reg.WritePrometheus(w)
}

// registerPprof mounts the net/http/pprof handlers on mux (behind
// Options.EnablePprof; these endpoints expose process internals and
// should not be reachable from untrusted networks — see OPERATIONS.md).
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
