package httpapi

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/retrieval"
)

// shedRetriever fails every search/add with a ShedError — the shape
// the cluster router returns when every candidate node shed.
type shedRetriever struct {
	retrieval.Retriever
	status int
	after  time.Duration
}

func (s *shedRetriever) Search(ctx context.Context, q string, topN int) ([]retrieval.Result, error) {
	return nil, &ShedError{StatusCode: s.status, RetryAfter: s.after, Msg: "node shed: compaction debt"}
}

func (s *shedRetriever) Add(ctx context.Context, docs []retrieval.Document) (int, error) {
	return 0, &ShedError{StatusCode: s.status, RetryAfter: s.after, Msg: "node shed: compaction debt"}
}

// TestShedErrorPropagatesRetryAfter: a backend shed surfaces to the
// client with its original status and Retry-After hint instead of
// flattening into a 500 at the router hop.
func TestShedErrorPropagatesRetryAfter(t *testing.T) {
	ix, err := retrieval.Build(retrieval.DemoCorpus(), retrieval.WithRank(3))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(&shedRetriever{Retriever: ix, status: 503, after: 2 * time.Second}, Options{})

	rec := do(t, h, "POST", "/v1/search", `{"query":"car"}`)
	if rec.Code != 503 {
		t.Fatalf("search status %d, want 503; body: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("search Retry-After %q, want 2", got)
	}
	if !strings.Contains(rec.Body.String(), "compaction debt") {
		t.Fatalf("shed body lost the node's message: %s", rec.Body)
	}

	rec = do(t, h, "POST", "/v1/docs", `{"text":"a new doc"}`)
	if rec.Code != 503 {
		t.Fatalf("docs status %d, want 503; body: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("docs Retry-After %q, want 2", got)
	}
}

// TestReplicateFileRangeResumes: a replica can re-fetch the rest of a
// checkpoint file with a Range request (206 + the exact suffix) — the
// resumable-bootstrap primitive.
func TestReplicateFileRangeResumes(t *testing.T) {
	_, h, _ := replicaHandler(t)

	full := do(t, h, "GET", "/v1/replicate/manifest", "")
	if full.Code != 200 {
		t.Fatalf("manifest: %d", full.Code)
	}
	body := full.Body.Bytes()
	if len(body) < 10 {
		t.Fatalf("manifest too small to split: %d bytes", len(body))
	}

	req := httptest.NewRequest("GET", "/v1/replicate/file?name=manifest.json", nil)
	req.Header.Set("Range", "bytes=5-")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("ranged fetch: status %d, want 206", rec.Code)
	}
	if got := rec.Body.String(); got != string(body[5:]) {
		t.Fatalf("ranged fetch returned %d bytes, want the %d-byte suffix", len(got), len(body)-5)
	}
	// Freshness headers still ride along so the replica can detect a
	// checkpoint racing its resumed pull.
	if rec.Header().Get("X-Index-Generation") == "" {
		t.Fatal("ranged response lost the X-Index-Generation header")
	}
	// A range past EOF is 416 — the replica restarts that file.
	req = httptest.NewRequest("GET", "/v1/replicate/file?name=manifest.json", nil)
	req.Header.Set("Range", "bytes=99999999-")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("past-EOF range: status %d, want 416", rec.Code)
	}
}

// TestDrainReplication: draining sheds new replication requests with
// 503 + Retry-After, waits for in-flight ones, and leaves ordinary
// search traffic untouched.
func TestDrainReplication(t *testing.T) {
	_, h, _ := replicaHandler(t)

	// Hold one replication download in flight over a real connection so
	// the drain has something to wait for.
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/replicate/manifest")
	if err != nil {
		t.Fatal(err)
	}
	// The handler has completed by the time the response headers are
	// readable, but the drain-group accounting is what we're testing:
	// consume the body fully so leave() has certainly run.
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.DrainReplication(ctx); err != nil {
		t.Fatalf("drain with nothing in flight: %v", err)
	}

	// Post-drain: replication sheds, search still serves.
	rec := do(t, h, "GET", "/v1/replicate/manifest", "")
	if rec.Code != 503 {
		t.Fatalf("post-drain replication: status %d, want 503; body: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("post-drain shed carries no Retry-After")
	}
	rec = do(t, h, "GET", "/v1/replicate/wal?from=0", "")
	if rec.Code != 503 {
		t.Fatalf("post-drain wal tail: status %d, want 503", rec.Code)
	}
	rec = do(t, h, "POST", "/v1/search", `{"query":"car"}`)
	if rec.Code != 200 {
		t.Fatalf("post-drain search: status %d, want 200; body: %s", rec.Code, rec.Body)
	}
}

// TestDrainWaitsForInflight: a drain started while a replication
// request is executing blocks until that request leaves, and a context
// that expires first surfaces as the context's error.
func TestDrainWaitsForInflight(t *testing.T) {
	var g drainGroup
	if !g.enter() {
		t.Fatal("fresh group refused admission")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drained := make(chan error, 1)
	go func() { drained <- g.drain(ctx) }()

	select {
	case err := <-drained:
		t.Fatalf("drain returned with a request in flight: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if g.enter() {
		t.Fatal("draining group admitted a new request")
	}
	g.leave()
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain after leave: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never returned after the last request left")
	}

	// A second drain is idempotent and immediate.
	if err := g.drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Context expiry beats a stuck request.
	var g2 drainGroup
	g2.enter()
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if err := g2.drain(ctx2); !errors.Is(err, context.Canceled) {
		t.Fatalf("drain with dead context: %v, want context.Canceled", err)
	}
}
