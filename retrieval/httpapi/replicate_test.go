package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/retrieval"
)

// replicaHandler builds a WAL'd sharded index checkpointed into a
// directory and wraps it in a replication-enabled handler, returning
// both (the index for driving writes, the handler for the HTTP side).
func replicaHandler(t *testing.T) (*retrieval.Index, *Handler, string) {
	t.Helper()
	dir := t.TempDir()
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithShards(2), retrieval.WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	if err := ix.SaveDir(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AttachWAL(waldir); err != nil {
		t.Fatal(err)
	}
	return ix, NewHandler(ix, Options{ReplicateDir: data}), data
}

// TestReplicateManifestAndFiles: a replica can pull the manifest, then
// every file it names, and traversal or junk names are rejected.
func TestReplicateManifestAndFiles(t *testing.T) {
	_, h, _ := replicaHandler(t)

	rec := do(t, h, "GET", "/v1/replicate/manifest", "")
	if rec.Code != 200 {
		t.Fatalf("manifest: status %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("manifest Content-Type %q", ct)
	}
	var man struct {
		Generation int      `json:"generation"`
		IDsFile    string   `json:"idsFile"`
		Segments   []string `json:"-"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &man); err != nil {
		t.Fatalf("manifest body: %v", err)
	}
	if man.IDsFile == "" {
		t.Fatalf("manifest names no ids file: %s", rec.Body)
	}

	// Every whitelisted kind serves; the ids file round-trips as JSON.
	for _, name := range []string{man.IDsFile, "text.json", "manifest.json"} {
		rec := do(t, h, "GET", "/v1/replicate/file?name="+name, "")
		if rec.Code != 200 {
			t.Errorf("file %q: status %d: %s", name, rec.Code, rec.Body)
		}
	}

	// Names outside the checkpoint vocabulary are 400 — including every
	// traversal shape; a well-formed name that does not exist is 404.
	for _, name := range []string{"", "../data/manifest.json", "..%2Fmanifest.json", "wal-0000000000000000.log", "seg-1-2.idx", "manifest.json/"} {
		rec := do(t, h, "GET", "/v1/replicate/file?name="+name, "")
		if rec.Code != http.StatusBadRequest {
			t.Errorf("file %q: status %d, want 400", name, rec.Code)
		}
	}
	if rec := do(t, h, "GET", "/v1/replicate/file?name=ids-9999.json", ""); rec.Code != http.StatusNotFound {
		t.Errorf("retired file: status %d, want 404", rec.Code)
	}
}

// TestReplicateWAL: the tail endpoint serves exactly the suffix a
// replica is missing, 410 after a checkpoint rotates it away, and the
// freshness headers describe the primary.
func TestReplicateWAL(t *testing.T) {
	ix, h, data := replicaHandler(t)
	base := ix.NumDocs()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := ix.Add(ctx, []retrieval.Document{{ID: fmt.Sprintf("w-%d", i), Text: "car engine"}}); err != nil {
			t.Fatal(err)
		}
	}

	rec := do(t, h, "GET", "/v1/replicate/wal?from="+strconv.Itoa(base+1), "")
	if rec.Code != 200 {
		t.Fatalf("wal tail: status %d: %s", rec.Code, rec.Body)
	}
	var resp ReplicateWALResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) != 2 || resp.Docs[0].ID != "w-1" || resp.Docs[1].ID != "w-2" {
		t.Fatalf("wal tail docs: %+v, want [w-1 w-2]", resp.Docs)
	}
	if got := rec.Header().Get("X-Index-Docs"); got != strconv.Itoa(base+3) {
		t.Errorf("X-Index-Docs %q, want %d", got, base+3)
	}

	// Caught up: empty but 200.
	rec = do(t, h, "GET", "/v1/replicate/wal?from="+strconv.Itoa(base+3), "")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"docs":[]`) {
		t.Fatalf("caught-up tail: status %d body %s", rec.Code, rec.Body)
	}

	// Malformed positions are the client's fault.
	for _, q := range []string{"", "?from=", "?from=-1", "?from=x"} {
		if rec := do(t, h, "GET", "/v1/replicate/wal"+q, ""); rec.Code != http.StatusBadRequest {
			t.Errorf("wal%s: status %d, want 400", q, rec.Code)
		}
	}

	// A checkpoint rotates the log: an old position is 410 Gone.
	if err := ix.Checkpoint(data); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, h, "GET", "/v1/replicate/wal?from="+strconv.Itoa(base+1), ""); rec.Code != http.StatusGone {
		t.Errorf("rotated tail: status %d, want 410: %s", rec.Code, rec.Body)
	}
}

// TestReplicateDisabled: without ReplicateDir the file endpoints 404;
// without an attached WAL the tail endpoint 404s.
func TestReplicateDisabled(t *testing.T) {
	h := demoHandler(t, Options{})
	for _, path := range []string{"/v1/replicate/manifest", "/v1/replicate/file?name=manifest.json", "/v1/replicate/wal?from=0"} {
		if rec := do(t, h, "GET", path, ""); rec.Code != http.StatusNotFound {
			t.Errorf("%s on plain handler: status %d, want 404", path, rec.Code)
		}
	}
}

// TestIndexHeaders: search, stats, readyz, and docs responses carry the
// freshness headers, and the docs headers reflect the post-append
// state.
func TestIndexHeaders(t *testing.T) {
	ix, h, _ := replicaHandler(t)
	before := ix.NumDocs()

	rec := do(t, h, "POST", "/v1/search", `{"query":"car engine","topN":3}`)
	if rec.Code != 200 {
		t.Fatalf("search: %d: %s", rec.Code, rec.Body)
	}
	for _, hdr := range []string{"X-Index-Epoch", "X-Index-Generation", "X-Index-Docs"} {
		if rec.Header().Get(hdr) == "" {
			t.Errorf("search response missing %s", hdr)
		}
	}
	if rec.Header().Get("X-Partial-Results") != "" {
		t.Error("single-process search marked partial")
	}

	rec = do(t, h, "POST", "/v1/docs", `{"id":"hdr","text":"car engine"}`)
	if rec.Code != 200 {
		t.Fatalf("docs: %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Index-Docs"); got != strconv.Itoa(before+1) {
		t.Errorf("docs X-Index-Docs %q, want %d (post-append)", got, before+1)
	}

	rec = do(t, h, "GET", "/readyz", "")
	if rec.Code != 200 {
		t.Fatalf("readyz: %d", rec.Code)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"epoch", "generation", "numDocs"} {
		if _, ok := body[key]; !ok {
			t.Errorf("readyz body missing %q: %s", key, rec.Body)
		}
	}
	if rec := do(t, h, "GET", "/v1/stats", ""); rec.Header().Get("X-Index-Generation") == "" {
		t.Error("stats response missing X-Index-Generation")
	}
}

// partialRet fakes a cluster router: a FanoutSearcher that reports a
// degraded quorum.
type partialRet struct {
	partial bool
}

func (p *partialRet) Search(ctx context.Context, q string, n int) ([]retrieval.Result, error) {
	return []retrieval.Result{{Doc: 0, ID: "d", Score: 1}}, nil
}

func (p *partialRet) SearchBatch(ctx context.Context, qs []string, n int) ([][]retrieval.Result, error) {
	out := make([][]retrieval.Result, len(qs))
	for i := range out {
		out[i] = []retrieval.Result{{Doc: 0, ID: "d", Score: 1}}
	}
	return out, nil
}

func (p *partialRet) SearchPartial(ctx context.Context, q string, n int) ([]retrieval.Result, bool, error) {
	r, err := p.Search(ctx, q, n)
	return r, p.partial, err
}

func (p *partialRet) SearchBatchPartial(ctx context.Context, qs []string, n int) ([][]retrieval.Result, bool, error) {
	r, err := p.SearchBatch(ctx, qs, n)
	return r, p.partial, err
}

func (p *partialRet) NumDocs() int           { return 1 }
func (p *partialRet) Stats() retrieval.Stats { return retrieval.Stats{Backend: "fake", NumDocs: 1} }

// TestPartialResultsHeader: a fan-out retriever answering from a
// degraded quorum marks the response; a full-quorum answer does not.
func TestPartialResultsHeader(t *testing.T) {
	ret := &partialRet{partial: true}
	h := NewHandler(ret, Options{})
	for _, c := range []struct{ path, body string }{
		{"/v1/search", `{"query":"x"}`},
		{"/v1/search:batch", `{"queries":["x","y"]}`},
	} {
		rec := do(t, h, "POST", c.path, c.body)
		if rec.Code != 200 {
			t.Fatalf("%s: %d: %s", c.path, rec.Code, rec.Body)
		}
		if rec.Header().Get("X-Partial-Results") != "true" {
			t.Errorf("%s: degraded response not marked partial", c.path)
		}
	}
	ret.partial = false
	if rec := do(t, h, "POST", "/v1/search", `{"query":"x"}`); rec.Header().Get("X-Partial-Results") != "" {
		t.Error("full-quorum response marked partial")
	}
}
