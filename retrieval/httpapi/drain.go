package httpapi

// Replication drain: the /v1/replicate/* routes register with a
// drainGroup so graceful shutdown (Handler.DrainReplication) can stop
// admitting new replication work and wait for in-flight snapshot
// downloads and WAL tails to complete before the listener closes. A
// replica that hits a draining server gets 503 + Retry-After and fails
// over to another candidate; one that is mid-download finishes intact.

import (
	"context"
	"net/http"
	"sync"
)

// drainGroup counts in-flight requests and supports a one-way drain.
// The zero value is ready.
type drainGroup struct {
	mu       sync.Mutex
	inflight int
	draining bool
	idle     chan struct{} // non-nil while a drain waits; closed at zero
}

// enter admits one request, reporting false when the group is
// draining (the caller must shed).
func (g *drainGroup) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return false
	}
	g.inflight++
	return true
}

// leave retires one admitted request.
func (g *drainGroup) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	if g.draining && g.inflight == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

// inflightNow reports the current in-flight count (for the gauge).
func (g *drainGroup) inflightNow() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// drain flips the group to draining and waits for in-flight requests
// to finish, or for ctx. Draining is one-way: the group never admits
// again.
func (g *drainGroup) drain(ctx context.Context) error {
	g.mu.Lock()
	g.draining = true
	if g.inflight == 0 {
		g.mu.Unlock()
		return nil
	}
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	ch := g.idle
	g.mu.Unlock()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// enterReplication is the shared admission check for the replication
// handlers: false means the 503 has been written and the handler must
// return.
func (h *handler) enterReplication(w http.ResponseWriter) bool {
	if !h.repl.enter() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "server is draining; retry against another node")
		return false
	}
	return true
}
