package httpapi

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/retrieval"
)

// annIndex builds a demo index carrying an IVF tier with quantizers
// trained but the default search exhaustive, so only explicit nprobe
// requests touch the tier.
func annIndex(t *testing.T) *retrieval.Index {
	t.Helper()
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithEngine(retrieval.EngineDense),
		retrieval.WithANN(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSearchNProbe(t *testing.T) {
	ix := annIndex(t)
	h := NewHandler(ix, Options{})

	// A full budget reproduces the default (exhaustive) ranking exactly.
	base := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3}`)
	if base.Code != http.StatusOK {
		t.Fatalf("baseline search: %d: %s", base.Code, base.Body)
	}
	probed := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3,"nprobe":4}`)
	if probed.Code != http.StatusOK {
		t.Fatalf("nprobe search: %d: %s", probed.Code, probed.Body)
	}
	var want, got SearchResponse
	if err := json.Unmarshal(base.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(probed.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("nprobe=nlist returned %d results, exhaustive %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("nprobe=nlist result %d = %+v, want %+v", i, got.Results[i], want.Results[i])
		}
	}

	// nprobe=0 is the explicit exhaustive escape hatch — still a 200.
	if rec := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3,"nprobe":0}`); rec.Code != http.StatusOK {
		t.Fatalf("nprobe=0: %d: %s", rec.Code, rec.Body)
	}
	// Unknown-vocabulary probes are empty result sets, not errors.
	rec := do(t, h, "POST", "/v1/search", `{"query":"zzzunknownzzz","nprobe":2}`)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"results":[]`) {
		t.Fatalf("unknown-vocab probe: %d: %s", rec.Code, rec.Body)
	}
	// Negative budgets are malformed.
	if rec := do(t, h, "POST", "/v1/search", `{"query":"car","nprobe":-1}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("nprobe=-1: %d, want 400", rec.Code)
	}

	// Vector queries take the budget too.
	vec := make([]float64, ix.NumTerms())
	vec[0] = 1
	body, _ := json.Marshal(SearchRequest{Vector: vec, TopN: 3, NProbe: &[]int{4}[0]})
	if rec := do(t, h, "POST", "/v1/search", string(body)); rec.Code != http.StatusOK {
		t.Fatalf("vector nprobe: %d: %s", rec.Code, rec.Body)
	}
}

// plainRetriever hides the concrete index behind the bare Retriever
// interface, so the handler sees no ProbeSearcher capability.
type plainRetriever struct{ retrieval.Retriever }

func TestSearchNProbeWithoutCapability(t *testing.T) {
	h := NewHandler(plainRetriever{annIndex(t)}, Options{})
	rec := do(t, h, "POST", "/v1/search", `{"query":"car","nprobe":2}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("nprobe without ProbeSearcher: %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "probe budgets") {
		t.Fatalf("unexpected error body: %s", rec.Body)
	}
}

func TestStatsAndMetricsANNBlock(t *testing.T) {
	h := NewHandler(annIndex(t), Options{})

	stats := do(t, h, "GET", "/v1/stats", "")
	if stats.Code != http.StatusOK {
		t.Fatalf("stats: %d", stats.Code)
	}
	var st struct {
		ANN *retrieval.ANNStats `json:"ann"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.ANN == nil || st.ANN.Segments != 1 {
		t.Fatalf("stats ann block = %+v, want a 1-segment tier", st.ANN)
	}

	// Probe once, then the counter series must be live on /metrics.
	if rec := do(t, h, "POST", "/v1/search", `{"query":"car","nprobe":2}`); rec.Code != http.StatusOK {
		t.Fatalf("probe: %d: %s", rec.Code, rec.Body)
	}
	metrics := do(t, h, "GET", "/metrics", "")
	body := metrics.Body.String()
	for _, series := range []string{"lsi_ann_segments 1", "lsi_ann_searches_total 1", "lsi_ann_cells_probed_total 2"} {
		if !strings.Contains(body, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}
}

func TestMetricsOmitANNWithoutTier(t *testing.T) {
	h := demoHandler(t, Options{})
	if body := do(t, h, "GET", "/metrics", "").Body.String(); strings.Contains(body, "lsi_ann_") {
		t.Fatalf("tier-less index exports ANN series:\n%s", body)
	}
}
