package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/retrieval"
)

func demoHandler(t *testing.T, opts Options) http.Handler {
	t.Helper()
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithEngine(retrieval.EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	return NewHandler(ix, opts)
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHandlerTable(t *testing.T) {
	h := demoHandler(t, Options{MaxTopN: 5, MaxBatch: 3})
	ix, _ := retrieval.Build(retrieval.DemoCorpus(), retrieval.WithRank(3))
	wrongLen := make([]float64, ix.NumTerms()+7)
	wrongLenBody, _ := json.Marshal(SearchRequest{Vector: wrongLen, TopN: 3})

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantInBody string
	}{
		{"health", "GET", "/healthz", "", 200, `"status":"ok"`},
		{"stats", "GET", "/v1/stats", "", 200, `"backend":"lsi"`},
		{"search ok", "POST", "/v1/search", `{"query":"car engine","topN":3}`, 200, `"results"`},
		{"search default topN", "POST", "/v1/search", `{"query":"car"}`, 200, `"results"`},
		{"search bad json", "POST", "/v1/search", `{"query": car}`, 400, "invalid JSON"},
		{"search truncated json", "POST", "/v1/search", `{"query":"car"`, 400, "invalid JSON"},
		{"search no query or vector", "POST", "/v1/search", `{"topN":3}`, 400, "exactly one"},
		{"search both query and vector", "POST", "/v1/search", `{"query":"car","vector":[1,2],"topN":3}`, 400, "exactly one"},
		{"search negative topN", "POST", "/v1/search", `{"query":"car","topN":-2}`, 400, "topN"},
		{"search wrong vector length", "POST", "/v1/search", string(wrongLenBody), 400, "vector length"},
		{"search unknown vocab is empty not error", "POST", "/v1/search", `{"query":"zzzunknownzzz"}`, 200, `"results":[]`},
		{"search wrong method", "GET", "/v1/search", "", 405, ""},
		{"batch ok", "POST", "/v1/search:batch", `{"queries":["car","galaxy"],"topN":2}`, 200, `"results"`},
		{"batch empty", "POST", "/v1/search:batch", `{"queries":[]}`, 400, "at least one"},
		{"batch too large", "POST", "/v1/search:batch", `{"queries":["a","b","c","d"]}`, 400, "exceeds the limit"},
		{"batch bad json", "POST", "/v1/search:batch", `[]`, 400, "invalid JSON"},
		{"batch negative topN", "POST", "/v1/search:batch", `{"queries":["car"],"topN":-1}`, 400, "topN"},
		{"unknown path", "GET", "/v1/nope", "", 404, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, h, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d; body: %s", rec.Code, tc.wantStatus, rec.Body)
			}
			if tc.wantInBody != "" && !strings.Contains(rec.Body.String(), tc.wantInBody) {
				t.Fatalf("body %q does not contain %q", rec.Body, tc.wantInBody)
			}
		})
	}
}

func TestSearchResultShape(t *testing.T) {
	h := demoHandler(t, Options{})
	rec := do(t, h, "POST", "/v1/search", `{"query":"car","topN":4}`)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(resp.Results))
	}
	// The synonymy effect survives the HTTP round trip: the
	// "automobile" documents rank for a "car" query.
	seen := map[string]bool{}
	for _, r := range resp.Results {
		seen[r.ID] = true
		if r.Score <= 0 {
			t.Fatalf("non-positive score in %+v", r)
		}
	}
	if !seen["demo-01"] || !seen["demo-02"] {
		t.Fatalf("synonym documents missing from %+v", resp.Results)
	}
}

func TestTopNClamping(t *testing.T) {
	h := demoHandler(t, Options{MaxTopN: 2})
	rec := do(t, h, "POST", "/v1/search", `{"query":"car","topN":50}`)
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("topN not clamped to MaxTopN: %d results", len(resp.Results))
	}
}

func TestBatchAlignment(t *testing.T) {
	h := demoHandler(t, Options{})
	rec := do(t, h, "POST", "/v1/search:batch",
		`{"queries":["pasta garlic","zzzunknownzzz","galaxy"],"topN":2}`)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp BatchSearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d result sets, want 3", len(resp.Results))
	}
	if len(resp.Results[0]) != 2 || len(resp.Results[2]) != 2 {
		t.Fatalf("known queries should each have 2 results: %+v", resp.Results)
	}
	if len(resp.Results[1]) != 0 {
		t.Fatalf("unknown-vocabulary query should have empty results: %+v", resp.Results[1])
	}
}

func TestRequestTimeout(t *testing.T) {
	// A 1ns budget expires before the search starts; the handler must
	// answer 504, not hang or 500.
	h := demoHandler(t, Options{Timeout: time.Nanosecond})
	rec := do(t, h, "POST", "/v1/search", `{"query":"car","topN":3}`)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body: %s", rec.Code, rec.Body)
	}
}

func TestStatsBody(t *testing.T) {
	h := demoHandler(t, Options{})
	rec := do(t, h, "GET", "/v1/stats", "")
	var s retrieval.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.Backend != "lsi" || s.NumDocs != 12 || s.Rank != 3 || !s.TextQueries {
		t.Fatalf("stats = %+v", s)
	}
}

func TestVectorSearch(t *testing.T) {
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithEngine(retrieval.EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	h := NewHandler(ix, Options{})
	vec := make([]float64, ix.NumTerms())
	vec[0] = 1 // first vocabulary term ("car")
	body, _ := json.Marshal(SearchRequest{Vector: vec, TopN: 3})
	rec := do(t, h, "POST", "/v1/search", string(body))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp SearchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3: %s", len(resp.Results), rec.Body)
	}
}

func BenchmarkSearchHandler(b *testing.B) {
	ix, err := retrieval.Build(retrieval.DemoCorpus(), retrieval.WithRank(3))
	if err != nil {
		b.Fatal(err)
	}
	h := NewHandler(ix, Options{})
	body := `{"query":"car engine","topN":5}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/search", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func shardedHandler(t *testing.T) (http.Handler, *retrieval.Index) {
	t.Helper()
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithShards(2),
		retrieval.WithAutoCompact(false), retrieval.WithSealEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return NewHandler(ix, Options{MaxBatch: 4}), ix
}

func TestLiveDocsEndpoints(t *testing.T) {
	h, ix := shardedHandler(t)
	before := ix.NumDocs()

	rec := do(t, h, "POST", "/v1/docs", `{"id":"fresh","text":"a fresh car with a diesel engine"}`)
	if rec.Code != 200 {
		t.Fatalf("POST /v1/docs = %d: %s", rec.Code, rec.Body)
	}
	var resp AddDocsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.First != before || resp.Count != 1 {
		t.Fatalf("append response %+v, want first=%d count=1", resp, before)
	}

	rec = do(t, h, "POST", "/v1/docs:batch", `{"docs":[{"text":"galaxy survey"},{"id":"p","text":"pasta recipe"}]}`)
	if rec.Code != 200 {
		t.Fatalf("POST /v1/docs:batch = %d: %s", rec.Code, rec.Body)
	}
	if ix.NumDocs() != before+3 {
		t.Fatalf("NumDocs %d, want %d", ix.NumDocs(), before+3)
	}

	// The appended document is immediately searchable through the API.
	rec = do(t, h, "POST", "/v1/search", `{"query":"diesel engine","topN":20}`)
	if rec.Code != 200 {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), `"fresh"`) {
		t.Fatalf("appended doc missing from results: %s", rec.Body)
	}

	// Validation and limits.
	for _, tc := range []struct {
		name, path, body string
		want             int
		inBody           string
	}{
		{"missing text", "/v1/docs", `{"id":"x"}`, 400, "text"},
		{"empty batch", "/v1/docs:batch", `{"docs":[]}`, 400, "at least one"},
		{"batch too large", "/v1/docs:batch", `{"docs":[{"text":"a"},{"text":"b"},{"text":"c"},{"text":"d"},{"text":"e"}]}`, 400, "limit"},
		{"batch missing text", "/v1/docs:batch", `{"docs":[{"id":"x"}]}`, 400, "text"},
	} {
		rec := do(t, h, "POST", tc.path, tc.body)
		if rec.Code != tc.want || !strings.Contains(rec.Body.String(), tc.inBody) {
			t.Fatalf("%s: %d %s", tc.name, rec.Code, rec.Body)
		}
	}
}

func TestLiveDocsOnImmutableIndex(t *testing.T) {
	h := demoHandler(t, Options{})
	rec := do(t, h, "POST", "/v1/docs", `{"text":"a car"}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("immutable append = %d, want 501", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "immutable") {
		t.Fatalf("body %s", rec.Body)
	}
}

func TestReadyz(t *testing.T) {
	// Immutable index: always ready.
	h := demoHandler(t, Options{})
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != 200 {
		t.Fatalf("immutable readyz = %d", rec.Code)
	}

	// Sharded index: ready, then not-ready once a segment seals, then
	// ready again after compaction.
	h, ix := shardedHandler(t)
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != 200 {
		t.Fatalf("fresh sharded readyz = %d", rec.Code)
	}
	for i := 0; i < 10; i++ {
		if rec := do(t, h, "POST", "/v1/docs", `{"text":"car engine repair"}`); rec.Code != 200 {
			t.Fatalf("append %d = %d", i, rec.Code)
		}
	}
	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("sealed readyz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "not-ready") {
		t.Fatalf("body %s", rec.Body)
	}
	if _, err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != 200 {
		t.Fatalf("compacted readyz = %d: %s", rec.Code, rec.Body)
	}
}

func TestShardedStatsBody(t *testing.T) {
	h, _ := shardedHandler(t)
	rec := do(t, h, "GET", "/v1/stats", "")
	if rec.Code != 200 {
		t.Fatalf("stats = %d", rec.Code)
	}
	var st retrieval.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Sharded || st.Shards != 2 || st.Segments == 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.VocabSize == 0 || st.MemoryBytes == 0 {
		t.Fatalf("stats missing size info: %+v", st)
	}
}

func TestLiveDocsOnClosedIndex(t *testing.T) {
	h, ix := shardedHandler(t)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	rec := do(t, h, "POST", "/v1/docs", `{"text":"a car"}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("append on closed index = %d, want 503: %s", rec.Code, rec.Body)
	}
}

// cachedShardedHandler builds a live (sharded) index with a query cache
// so both invalidation paths are exercisable over HTTP.
func cachedShardedHandler(t *testing.T) (http.Handler, *retrieval.Index) {
	t.Helper()
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3), retrieval.WithShards(2),
		retrieval.WithAutoCompact(false), retrieval.WithSealEvery(4),
		retrieval.WithQueryCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return NewHandler(ix, Options{MaxBatch: 4}), ix
}

// cacheCounters pulls the query-cache counter block out of /v1/stats.
func cacheCounters(t *testing.T, h http.Handler) map[string]float64 {
	t.Helper()
	rec := do(t, h, "GET", "/v1/stats", "")
	if rec.Code != 200 {
		t.Fatalf("stats = %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		Cache map[string]float64 `json:"cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Cache == nil {
		t.Fatalf("stats body has no cache block: %s", rec.Body)
	}
	return body.Cache
}

func TestCacheStatusHeaderTable(t *testing.T) {
	h, _ := cachedShardedHandler(t)
	uncached := demoHandler(t, Options{})
	const q = `{"query":"car engine","topN":3}`

	cases := []struct {
		name       string
		handler    http.Handler
		body       string
		wantHeader string
	}{
		{"first lookup misses", h, q, "miss"},
		{"repeat hits", h, q, "hit"},
		{"different topN misses", h, `{"query":"car engine","topN":4}`, "miss"},
		{"normalized query shares the entry", h, `{"query":"engine car","topN":3}`, "hit"},
		{"unknown vocabulary bypasses", h, `{"query":"zzzunknownzzz","topN":3}`, ""},
		{"uncached index omits the header", uncached, q, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := do(t, tc.handler, "POST", "/v1/search", tc.body)
			if rec.Code != 200 {
				t.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
			if got := rec.Header().Get("Cache-Status"); got != tc.wantHeader {
				t.Fatalf("Cache-Status = %q, want %q", got, tc.wantHeader)
			}
		})
	}
}

func TestCacheInvalidatedByLiveAppend(t *testing.T) {
	h, _ := cachedShardedHandler(t)
	const q = `{"query":"diesel engine","topN":20}`

	// Prime and verify the entry is hot.
	if rec := do(t, h, "POST", "/v1/search", q); rec.Header().Get("Cache-Status") != "miss" {
		t.Fatalf("prime: Cache-Status %q, body %s", rec.Header().Get("Cache-Status"), rec.Body)
	}
	rec := do(t, h, "POST", "/v1/search", q)
	if rec.Header().Get("Cache-Status") != "hit" {
		t.Fatalf("warm lookup: Cache-Status %q", rec.Header().Get("Cache-Status"))
	}
	if strings.Contains(rec.Body.String(), `"fresh"`) {
		t.Fatalf("doc visible before append: %s", rec.Body)
	}

	// Append over HTTP, then repeat the exact query: the epoch bump must
	// force a recompute that includes the new document.
	if rec := do(t, h, "POST", "/v1/docs", `{"id":"fresh","text":"a fresh car with a diesel engine"}`); rec.Code != 200 {
		t.Fatalf("append = %d: %s", rec.Code, rec.Body)
	}
	rec = do(t, h, "POST", "/v1/search", q)
	if rec.Code != 200 {
		t.Fatalf("post-append search = %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Cache-Status"); got != "miss" {
		t.Fatalf("post-append Cache-Status = %q, want miss (stale epoch served)", got)
	}
	if !strings.Contains(rec.Body.String(), `"fresh"`) {
		t.Fatalf("appended doc missing from post-append results: %s", rec.Body)
	}
	// And the recomputed result is cached at the new epoch.
	if rec := do(t, h, "POST", "/v1/search", q); rec.Header().Get("Cache-Status") != "hit" {
		t.Fatalf("re-warm: Cache-Status %q", rec.Header().Get("Cache-Status"))
	}
}

func TestCacheCountersMonotonicInStats(t *testing.T) {
	h, _ := cachedShardedHandler(t)
	const q = `{"query":"car engine","topN":3}`

	prev := cacheCounters(t, h)
	if prev["hits"] != 0 || prev["misses"] != 0 {
		t.Fatalf("fresh handler has nonzero counters: %+v", prev)
	}
	for i := 0; i < 5; i++ {
		if rec := do(t, h, "POST", "/v1/search", q); rec.Code != 200 {
			t.Fatalf("search %d = %d", i, rec.Code)
		}
		cur := cacheCounters(t, h)
		for _, k := range []string{"hits", "misses", "coalesced", "evictions"} {
			if cur[k] < prev[k] {
				t.Fatalf("counter %q went backwards: %v -> %v", k, prev[k], cur[k])
			}
		}
		if total := cur["hits"] + cur["misses"]; total != float64(i+1) {
			t.Fatalf("after %d searches: hits+misses = %v", i+1, total)
		}
		prev = cur
	}
	if prev["hits"] != 4 || prev["misses"] != 1 {
		t.Fatalf("final counters %v hits / %v misses, want 4 / 1", prev["hits"], prev["misses"])
	}
	if prev["capBytes"] <= 0 || prev["entries"] != 1 {
		t.Fatalf("cache working set not reported: %+v", prev)
	}
	// The uncached handler reports no cache block at all.
	rec := do(t, demoHandler(t, Options{}), "GET", "/v1/stats", "")
	if strings.Contains(rec.Body.String(), `"cache"`) {
		t.Fatalf("uncached stats body carries a cache block: %s", rec.Body)
	}
}
