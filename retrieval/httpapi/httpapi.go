// Package httpapi exposes a retrieval.Retriever over HTTP/JSON — the
// handler behind cmd/lsiserve. Endpoints:
//
//	POST /v1/search        {"query":"car engine","topN":10} or {"vector":[...],"topN":10};
//	                       an optional "nprobe" overrides the ANN tier's
//	                       probe budget for this request (0 = exhaustive;
//	                       see retrieval.WithANN)
//	POST /v1/search:batch  {"queries":["car","galaxy"],"topN":10}
//	POST /v1/docs          {"id":"doc-x","text":"..."} — live append (sharded indexes)
//	POST /v1/docs:batch    {"docs":[{"id":"...","text":"..."}, ...]}
//	GET  /v1/stats         index description, segment/compaction counters,
//	                       query-cache counters (hits/misses/coalesced/
//	                       evictions) when the index caches
//	                       (retrieval.WithQueryCache / lsiserve -cache-mb)
//	GET  /metrics          Prometheus text exposition: per-route latency
//	                       histograms and status counters, cache and
//	                       segment/compaction gauges, shed counters
//	GET  /healthz          liveness probe (process is up and serving)
//	GET  /readyz           readiness probe: 503 while the index owes
//	                       compaction work (sealed segments pending or a
//	                       compaction in flight), 200 otherwise; the body
//	                       carries the index epoch, manifest generation,
//	                       and document count
//	GET  /debug/pprof/*    runtime profiles (only with Options.EnablePprof)
//
// Replication (for retrieval/cluster replicas catching up from a
// primary; the file endpoints require Options.ReplicateDir, the WAL
// endpoint a retriever with an attached WAL):
//
//	GET /v1/replicate/manifest       the primary's current manifest.json
//	GET /v1/replicate/file?name=...  one checkpoint file (manifest.json,
//	                                 text.json, ids-*.json, seg-*.idx;
//	                                 anything else is 400, a file a
//	                                 checkpoint has retired is 404 —
//	                                 re-fetch the manifest and retry)
//	GET /v1/replicate/wal?from=N     every logged document with global
//	                                 position >= N, as JSON; 410 Gone
//	                                 when a checkpoint rotated the
//	                                 needed records away (re-snapshot)
//
// Text searches against a caching index carry a Cache-Status response
// header ("hit", "miss", or "coalesced"); uncached indexes omit it.
// Search, docs, stats, readyz, and replication responses carry
// X-Index-Epoch, X-Index-Generation, and X-Index-Docs headers when the
// retriever reports them (see EpochReporter): epoch observes local
// index motion, (generation, docs) is the cross-process freshness token
// replication compares. A fan-out retriever (the cluster router) that
// answered from a degraded quorum marks the response with
// X-Partial-Results: true; the body is still a valid result set.
//
// Malformed requests get a 400 with {"error": "..."}; a query whose
// terms all miss the vocabulary is a valid request with zero matches
// (200, empty results). Every search runs under a per-request timeout,
// checked at query boundaries (an in-flight backend scan is not
// interrupted mid-kernel); overruns surface as 504. The docs endpoints
// require a retriever with live-update support (an index built with
// retrieval.WithShards); immutable indexes answer 501.
//
// Under overload the handler sheds rather than collapses: when
// Options.MaxInFlight requests are executing and Options.MaxQueue more
// are waiting, additional search/docs requests are answered 429 with a
// Retry-After hint; docs requests are shed 503 + Retry-After while
// compaction debt exceeds Options.MaxCompactionDebt. Probes and
// /metrics are never shed. See observe.go for the middleware and
// OPERATIONS.md for the operator view.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/retrieval"
	"repro/retrieval/cache"
)

// Options configures the handler; zero values pick the documented
// defaults.
type Options struct {
	// Timeout bounds each request's search work (default 10s).
	Timeout time.Duration
	// MaxTopN caps the per-query result count; larger requests are
	// clamped, not rejected (default 100). Requests with topN <= 0 get
	// DefaultTopN.
	MaxTopN int
	// DefaultTopN is used when a request omits topN (default 10).
	DefaultTopN int
	// MaxBatch caps the number of queries in one batch call (default 256).
	MaxBatch int
	// MaxBodyBytes caps the request body size (default 1 MiB).
	MaxBodyBytes int64

	// MaxInFlight caps concurrently executing search/docs requests
	// (0 = unlimited). When the cap is reached, up to MaxQueue further
	// requests wait for a slot; beyond that they are shed with
	// 429 + Retry-After. Probes (/healthz, /readyz), /metrics, and
	// pprof are exempt so an overloaded server stays observable.
	MaxInFlight int
	// MaxQueue bounds the requests waiting for an in-flight slot
	// (default 4x MaxInFlight; only meaningful with MaxInFlight > 0).
	MaxQueue int
	// MaxCompactionDebt sheds docs (ingest) requests with 503 +
	// Retry-After while the index has more than this many sealed
	// segments awaiting compaction (0 = never shed on debt). This is the
	// backpressure valve for "ingest outruns compaction": searches keep
	// flowing, writers are asked to back off until the compactor catches
	// up. 503 rather than the queue-full 429: the client's rate is not
	// the problem, the server owes background work.
	MaxCompactionDebt int
	// ReplicateDir enables GET /v1/replicate/{manifest,file}: the
	// checkpoint directory (the one the server saves into / opened from)
	// whose manifest and files replicas may pull. Empty disables the
	// file endpoints (404).
	ReplicateDir string
	// Metrics is the registry the handler's series are registered on
	// and GET /metrics serves (default: a fresh private registry).
	// Register at most one handler per registry — series names collide
	// otherwise.
	Metrics *metrics.Registry
	// AccessLog emits one structured line per request when set (shed
	// requests log at Warn, everything else at Info).
	AccessLog *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiles expose process internals and must not face
	// untrusted networks.
	EnablePprof bool
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxTopN <= 0 {
		o.MaxTopN = 100
	}
	if o.DefaultTopN <= 0 {
		o.DefaultTopN = 10
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.MaxInFlight > 0 && o.MaxQueue <= 0 {
		o.MaxQueue = 4 * o.MaxInFlight
	}
	return o
}

// VectorSearcher is the optional raw-vector query capability; the
// concrete *retrieval.Index implements it. Handlers reject vector
// requests with 400 when the retriever does not.
type VectorSearcher interface {
	SearchVector(ctx context.Context, q []float64, topN int) ([]retrieval.Result, error)
}

// StatusSearcher is the optional cache-aware query capability: the
// concrete *retrieval.Index implements it, reporting each text query's
// cache disposition alongside the results. When the retriever
// implements it and the lookup touched a cache (status != bypass), the
// search handler surfaces the disposition as the Cache-Status response
// header: "hit", "miss", or "coalesced". Results are identical either
// way — the cache is epoch-keyed, so hits can never predate a live
// index's last append or compaction.
type StatusSearcher interface {
	SearchStatus(ctx context.Context, query string, topN int) ([]retrieval.Result, cache.Status, error)
}

// DocAdder is the optional live-update capability behind POST /v1/docs:
// a *retrieval.Index built with WithShards implements it. Handlers
// answer 501 when the retriever does not.
type DocAdder interface {
	Add(ctx context.Context, docs []retrieval.Document) (int, error)
}

// ReadyReporter is the optional readiness capability behind GET
// /readyz; retrievers without it are always ready.
type ReadyReporter interface {
	Ready() bool
}

// EpochReporter is the optional freshness capability: the concrete
// *retrieval.Index (and the cluster router) implement it. When present,
// responses carry X-Index-Epoch and X-Index-Generation headers next to
// X-Index-Docs. Epoch observes local index motion and is NOT comparable
// across processes; (Generation, NumDocs) is the token replication
// compares.
type EpochReporter interface {
	Epoch() uint64
	Generation() uint64
}

// FanoutSearcher is the optional distributed-query capability of the
// cluster router: searches that may be answered from a degraded quorum
// report partial=true, which the handler surfaces as the
// X-Partial-Results response header. When the retriever implements it,
// text searches prefer it over plain Search.
type FanoutSearcher interface {
	SearchPartial(ctx context.Context, query string, topN int) (results []retrieval.Result, partial bool, err error)
	SearchBatchPartial(ctx context.Context, queries []string, topN int) (results [][]retrieval.Result, partial bool, err error)
}

// ProbeSearcher is the optional ANN probe-override capability: the
// concrete *retrieval.Index implements it (meaningfully when built or
// opened with retrieval.WithANN; without an ANN tier every budget is
// served exhaustively). A search request carrying "nprobe" routes
// through it — bypassing the query cache, whose keys assume the
// configured default budget. Handlers reject nprobe requests with 400
// when the retriever lacks the capability (e.g. the cluster router).
type ProbeSearcher interface {
	SearchProbe(ctx context.Context, query string, topN, nprobe int) ([]retrieval.Result, error)
	SearchVectorProbe(ctx context.Context, q []float64, topN, nprobe int) ([]retrieval.Result, error)
}

// WALTailer is the optional replication catch-up capability behind GET
// /v1/replicate/wal: a *retrieval.Index with an attached WAL implements
// it usefully (WALAttached reports whether a log is armed).
type WALTailer interface {
	WALAttached() bool
	TailWAL(from int) ([]retrieval.Document, error)
}

// SearchRequest is the body of POST /v1/search. Exactly one of Query and
// Vector must be set.
type SearchRequest struct {
	Query  string    `json:"query,omitempty"`
	Vector []float64 `json:"vector,omitempty"`
	TopN   int       `json:"topN,omitempty"`
	// NProbe, when present, overrides the ANN tier's probe budget for
	// this request: > 0 scores that many cells per quantizer (clamped to
	// nlist), 0 forces the exhaustive scan. Absent means the configured
	// default. Requires a ProbeSearcher retriever (400 otherwise).
	NProbe *int `json:"nprobe,omitempty"`
}

// SearchResponse is the body of a successful POST /v1/search.
type SearchResponse struct {
	Results []retrieval.Result `json:"results"`
}

// BatchSearchRequest is the body of POST /v1/search:batch.
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	TopN    int      `json:"topN,omitempty"`
}

// BatchSearchResponse is the body of a successful POST /v1/search:batch;
// Results[i] answers Queries[i].
type BatchSearchResponse struct {
	Results [][]retrieval.Result `json:"results"`
}

// AddDocRequest is the body of POST /v1/docs.
type AddDocRequest struct {
	ID   string `json:"id,omitempty"`
	Text string `json:"text"`
}

// AddDocsRequest is the body of POST /v1/docs:batch.
type AddDocsRequest struct {
	Docs []AddDocRequest `json:"docs"`
}

// AddDocsResponse is the body of a successful docs call: the appended
// documents occupy positions [First, First+Count) and are immediately
// searchable.
type AddDocsResponse struct {
	First int `json:"first"`
	Count int `json:"count"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ShedError reports that a backend shed the request under overload
// (429 queue-full or 503 compaction-debt) rather than failing it. The
// cluster router returns it when every candidate node shed, preserving
// the nodes' Retry-After hint; the handler maps it back to the shed
// status with the hint intact, so backpressure propagates through the
// router hop to the end client instead of flattening into a 500.
type ShedError struct {
	// StatusCode is the shedding backend's status (429 or 503).
	StatusCode int
	// RetryAfter is the backend's backoff hint (0 = none given).
	RetryAfter time.Duration
	// Msg is the backend's error body.
	Msg string
}

// Error implements error.
func (e *ShedError) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return fmt.Sprintf("backend shed the request (%d)", e.StatusCode)
}

// writeShed answers with the backend's shed status and Retry-After
// hint, reporting whether err was a ShedError.
func writeShed(w http.ResponseWriter, err error) bool {
	var se *ShedError
	if !errors.As(err, &se) {
		return false
	}
	status := se.StatusCode
	if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
		status = http.StatusServiceUnavailable
	}
	if se.RetryAfter > 0 {
		secs := int(se.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeError(w, status, "%v", se)
	return true
}

type handler struct {
	ret  retrieval.Retriever
	opts Options
	obs  *observer
	gate *gate
	repl drainGroup
}

// Handler is the assembled API handler: a plain http.Handler plus the
// lifecycle hook graceful shutdown needs. Serve it like any handler;
// on shutdown call DrainReplication before closing the listener.
type Handler struct {
	mux *http.ServeMux
	h   *handler
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// DrainReplication stops admitting new replication requests
// (/v1/replicate/*; they get 503 + Retry-After, pointing the replica
// at another node) and waits for the in-flight ones — snapshot
// downloads and WAL tails — to finish, so a routine deploy never
// presents a torn snapshot to a bootstrapping replica. It returns
// ctx's error if the context expires first. Call before closing the
// listener; ordinary requests are unaffected (http.Server.Shutdown
// already waits for those).
func (h *Handler) DrainReplication(ctx context.Context) error { return h.h.repl.drain(ctx) }

// NewHandler wraps a Retriever in the HTTP/JSON API. Every route runs
// through the observability + admission middleware (see observe.go);
// the expensive routes (search, docs) are additionally bounded by the
// admission gate when Options.MaxInFlight is set.
func NewHandler(ret retrieval.Retriever, opts Options) *Handler {
	h := &handler{ret: ret, opts: opts.withDefaults()}
	h.obs = newObserver(h.opts.Metrics, ret)
	h.gate = newGate(h.opts.MaxInFlight, h.opts.MaxQueue)
	if h.gate != nil {
		h.obs.reg.GaugeFunc("lsi_http_queued_requests",
			"Requests waiting for an in-flight slot (shed once MaxQueue is exceeded).",
			func() float64 { return float64(h.gate.queued.Load()) })
	}
	h.obs.reg.GaugeFunc("lsi_http_replication_inflight",
		"In-flight replication requests (snapshot files and WAL tails); drained before shutdown.",
		func() float64 { return float64(h.repl.inflightNow()) })
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", h.route("search", gateQuery, h.search))
	mux.HandleFunc("POST /v1/search:batch", h.route("search_batch", gateQuery, h.searchBatch))
	mux.HandleFunc("POST /v1/docs", h.route("docs", gateIngest, h.addDoc))
	mux.HandleFunc("POST /v1/docs:batch", h.route("docs_batch", gateIngest, h.addDocs))
	mux.HandleFunc("GET /v1/stats", h.route("stats", gateNone, h.stats))
	mux.HandleFunc("GET /v1/replicate/manifest", h.route("replicate_manifest", gateNone, h.replicateManifest))
	mux.HandleFunc("GET /v1/replicate/file", h.route("replicate_file", gateNone, h.replicateFile))
	mux.HandleFunc("GET /v1/replicate/wal", h.route("replicate_wal", gateNone, h.replicateWAL))
	mux.HandleFunc("GET /healthz", h.route("healthz", gateNone, h.healthz))
	mux.HandleFunc("GET /readyz", h.route("readyz", gateNone, h.readyz))
	mux.HandleFunc("GET /metrics", h.route("metrics", gateNone, h.metricsHandler))
	if h.opts.EnablePprof {
		registerPprof(mux)
	}
	return &Handler{mux: mux, h: h}
}

// indexHeaders stamps the freshness headers on a response. Call it
// after the handler's index work is done (post-append for the docs
// endpoints) and before the body is written, so the headers describe
// the state the response reflects.
func (h *handler) indexHeaders(w http.ResponseWriter) {
	if er, ok := h.ret.(EpochReporter); ok {
		w.Header().Set("X-Index-Epoch", strconv.FormatUint(er.Epoch(), 10))
		w.Header().Set("X-Index-Generation", strconv.FormatUint(er.Generation(), 10))
	}
	w.Header().Set("X-Index-Docs", strconv.Itoa(h.ret.NumDocs()))
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

// clampTopN validates a requested topN, reporting ok=false after writing
// the 400.
func (h *handler) clampTopN(w http.ResponseWriter, topN int) (int, bool) {
	if topN < 0 {
		writeError(w, http.StatusBadRequest, "topN must be >= 0, got %d", topN)
		return 0, false
	}
	if topN == 0 {
		return h.opts.DefaultTopN, true
	}
	if topN > h.opts.MaxTopN {
		return h.opts.MaxTopN, true
	}
	return topN, true
}

// writeSearchError maps retrieval errors to HTTP statuses. Unknown-
// vocabulary queries are not errors at this layer (handled by callers);
// everything else is a client error except timeouts.
func writeSearchError(w http.ResponseWriter, err error) {
	if writeShed(w, err) {
		return
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "search timed out: %v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled: %v", err)
	case errors.Is(err, retrieval.ErrVectorLength),
		errors.Is(err, retrieval.ErrNoVocabulary):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (h *handler) search(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !h.decode(w, r, &req) {
		return
	}
	hasQuery, hasVector := req.Query != "", len(req.Vector) > 0
	if hasQuery == hasVector {
		writeError(w, http.StatusBadRequest, "exactly one of \"query\" and \"vector\" must be set")
		return
	}
	topN, ok := h.clampTopN(w, req.TopN)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.Timeout)
	defer cancel()

	var results []retrieval.Result
	var err error
	if req.NProbe != nil {
		if *req.NProbe < 0 {
			writeError(w, http.StatusBadRequest, "nprobe must be >= 0, got %d", *req.NProbe)
			return
		}
		ps, ok := h.ret.(ProbeSearcher)
		if !ok {
			writeError(w, http.StatusBadRequest, "this index does not accept per-request probe budgets")
			return
		}
		if hasVector {
			results, err = ps.SearchVectorProbe(ctx, req.Vector, topN, *req.NProbe)
		} else {
			results, err = ps.SearchProbe(ctx, req.Query, topN, *req.NProbe)
			if errors.Is(err, retrieval.ErrNoQueryTerms) {
				results, err = []retrieval.Result{}, nil
			}
		}
	} else if hasVector {
		vs, ok := h.ret.(VectorSearcher)
		if !ok {
			writeError(w, http.StatusBadRequest, "this index does not accept vector queries")
			return
		}
		results, err = vs.SearchVector(ctx, req.Vector, topN)
	} else {
		if fs, ok := h.ret.(FanoutSearcher); ok {
			var partial bool
			results, partial, err = fs.SearchPartial(ctx, req.Query, topN)
			if partial {
				w.Header().Set("X-Partial-Results", "true")
			}
		} else if ss, ok := h.ret.(StatusSearcher); ok {
			var st cache.Status
			results, st, err = ss.SearchStatus(ctx, req.Query, topN)
			if st != cache.StatusBypass {
				w.Header().Set("Cache-Status", st.String())
			}
		} else {
			results, err = h.ret.Search(ctx, req.Query, topN)
		}
		if errors.Is(err, retrieval.ErrNoQueryTerms) {
			// A valid query that matches nothing, not a client error.
			results, err = []retrieval.Result{}, nil
		}
	}
	if err != nil {
		writeSearchError(w, err)
		return
	}
	if results == nil {
		results = []retrieval.Result{}
	}
	h.indexHeaders(w)
	writeJSON(w, http.StatusOK, SearchResponse{Results: results})
}

func (h *handler) searchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !h.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "\"queries\" must contain at least one query")
		return
	}
	if len(req.Queries) > h.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d queries exceeds the limit of %d", len(req.Queries), h.opts.MaxBatch)
		return
	}
	topN, ok := h.clampTopN(w, req.TopN)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.Timeout)
	defer cancel()
	var results [][]retrieval.Result
	var err error
	if fs, ok := h.ret.(FanoutSearcher); ok {
		var partial bool
		results, partial, err = fs.SearchBatchPartial(ctx, req.Queries, topN)
		if partial {
			w.Header().Set("X-Partial-Results", "true")
		}
	} else {
		results, err = h.ret.SearchBatch(ctx, req.Queries, topN)
	}
	if err != nil {
		writeSearchError(w, err)
		return
	}
	h.indexHeaders(w)
	writeJSON(w, http.StatusOK, BatchSearchResponse{Results: results})
}

// addInto runs the shared append path for both docs endpoints.
func (h *handler) addInto(w http.ResponseWriter, r *http.Request, docs []retrieval.Document) {
	adder, ok := h.ret.(DocAdder)
	if !ok {
		writeError(w, http.StatusNotImplemented, "this index is immutable; build with sharding (WithShards / lsiserve -shards) to accept live documents")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.Timeout)
	defer cancel()
	first, err := adder.Add(ctx, docs)
	if err != nil {
		if writeShed(w, err) {
			return
		}
		switch {
		case errors.Is(err, retrieval.ErrImmutableIndex):
			// Every *retrieval.Index has the Add method; immutability
			// surfaces as this error rather than a missing interface.
			writeError(w, http.StatusNotImplemented, "this index is immutable; build with sharding (WithShards / lsiserve -shards) to accept live documents")
		case errors.Is(err, retrieval.ErrIndexClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, retrieval.ErrNoVocabulary):
			writeError(w, http.StatusBadRequest, "%v", err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "append timed out: %v", err)
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "request canceled: %v", err)
		default:
			// Remaining append failures are server-side (fold or
			// decomposition errors), not malformed requests.
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	h.indexHeaders(w) // post-append: the headers include this batch
	writeJSON(w, http.StatusOK, AddDocsResponse{First: first, Count: len(docs)})
}

func (h *handler) addDoc(w http.ResponseWriter, r *http.Request) {
	var req AddDocRequest
	if !h.decode(w, r, &req) {
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, "\"text\" must be set")
		return
	}
	h.addInto(w, r, []retrieval.Document{{ID: req.ID, Text: req.Text}})
}

func (h *handler) addDocs(w http.ResponseWriter, r *http.Request) {
	var req AddDocsRequest
	if !h.decode(w, r, &req) {
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, "\"docs\" must contain at least one document")
		return
	}
	if len(req.Docs) > h.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d documents exceeds the limit of %d", len(req.Docs), h.opts.MaxBatch)
		return
	}
	docs := make([]retrieval.Document, len(req.Docs))
	for i, d := range req.Docs {
		if d.Text == "" {
			writeError(w, http.StatusBadRequest, "document %d: \"text\" must be set", i)
			return
		}
		docs[i] = retrieval.Document{ID: d.ID, Text: d.Text}
	}
	h.addInto(w, r, docs)
}

func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ready", "numDocs": h.ret.NumDocs()}
	if er, ok := h.ret.(EpochReporter); ok {
		body["epoch"] = er.Epoch()
		body["generation"] = er.Generation()
	}
	h.indexHeaders(w)
	if rr, ok := h.ret.(ReadyReporter); ok && !rr.Ready() {
		body["status"] = "not-ready"
		body["reason"] = "index is warming: compaction pending or in flight"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	h.indexHeaders(w)
	writeJSON(w, http.StatusOK, h.ret.Stats())
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"numDocs": h.ret.NumDocs(),
	})
}
