// Package httpapi exposes a retrieval.Retriever over HTTP/JSON — the
// handler behind cmd/lsiserve. Endpoints:
//
//	POST /v1/search        {"query":"car engine","topN":10} or {"vector":[...],"topN":10}
//	POST /v1/search:batch  {"queries":["car","galaxy"],"topN":10}
//	GET  /v1/stats
//	GET  /healthz
//
// Malformed requests get a 400 with {"error": "..."}; a query whose
// terms all miss the vocabulary is a valid request with zero matches
// (200, empty results). Every search runs under a per-request timeout,
// checked at query boundaries (an in-flight backend scan is not
// interrupted mid-kernel); overruns surface as 504.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/retrieval"
)

// Options configures the handler; zero values pick the documented
// defaults.
type Options struct {
	// Timeout bounds each request's search work (default 10s).
	Timeout time.Duration
	// MaxTopN caps the per-query result count; larger requests are
	// clamped, not rejected (default 100). Requests with topN <= 0 get
	// DefaultTopN.
	MaxTopN int
	// DefaultTopN is used when a request omits topN (default 10).
	DefaultTopN int
	// MaxBatch caps the number of queries in one batch call (default 256).
	MaxBatch int
	// MaxBodyBytes caps the request body size (default 1 MiB).
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.MaxTopN <= 0 {
		o.MaxTopN = 100
	}
	if o.DefaultTopN <= 0 {
		o.DefaultTopN = 10
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	return o
}

// VectorSearcher is the optional raw-vector query capability; the
// concrete *retrieval.Index implements it. Handlers reject vector
// requests with 400 when the retriever does not.
type VectorSearcher interface {
	SearchVector(ctx context.Context, q []float64, topN int) ([]retrieval.Result, error)
}

// SearchRequest is the body of POST /v1/search. Exactly one of Query and
// Vector must be set.
type SearchRequest struct {
	Query  string    `json:"query,omitempty"`
	Vector []float64 `json:"vector,omitempty"`
	TopN   int       `json:"topN,omitempty"`
}

// SearchResponse is the body of a successful POST /v1/search.
type SearchResponse struct {
	Results []retrieval.Result `json:"results"`
}

// BatchSearchRequest is the body of POST /v1/search:batch.
type BatchSearchRequest struct {
	Queries []string `json:"queries"`
	TopN    int      `json:"topN,omitempty"`
}

// BatchSearchResponse is the body of a successful POST /v1/search:batch;
// Results[i] answers Queries[i].
type BatchSearchResponse struct {
	Results [][]retrieval.Result `json:"results"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

type handler struct {
	ret  retrieval.Retriever
	opts Options
}

// NewHandler wraps a Retriever in the HTTP/JSON API.
func NewHandler(ret retrieval.Retriever, opts Options) http.Handler {
	h := &handler{ret: ret, opts: opts.withDefaults()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/search", h.search)
	mux.HandleFunc("POST /v1/search:batch", h.searchBatch)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /healthz", h.healthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (h *handler) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, h.opts.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

// clampTopN validates a requested topN, reporting ok=false after writing
// the 400.
func (h *handler) clampTopN(w http.ResponseWriter, topN int) (int, bool) {
	if topN < 0 {
		writeError(w, http.StatusBadRequest, "topN must be >= 0, got %d", topN)
		return 0, false
	}
	if topN == 0 {
		return h.opts.DefaultTopN, true
	}
	if topN > h.opts.MaxTopN {
		return h.opts.MaxTopN, true
	}
	return topN, true
}

// writeSearchError maps retrieval errors to HTTP statuses. Unknown-
// vocabulary queries are not errors at this layer (handled by callers);
// everything else is a client error except timeouts.
func writeSearchError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "search timed out: %v", err)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request canceled: %v", err)
	case errors.Is(err, retrieval.ErrVectorLength),
		errors.Is(err, retrieval.ErrNoVocabulary):
		writeError(w, http.StatusBadRequest, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (h *handler) search(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !h.decode(w, r, &req) {
		return
	}
	hasQuery, hasVector := req.Query != "", len(req.Vector) > 0
	if hasQuery == hasVector {
		writeError(w, http.StatusBadRequest, "exactly one of \"query\" and \"vector\" must be set")
		return
	}
	topN, ok := h.clampTopN(w, req.TopN)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.Timeout)
	defer cancel()

	var results []retrieval.Result
	var err error
	if hasVector {
		vs, ok := h.ret.(VectorSearcher)
		if !ok {
			writeError(w, http.StatusBadRequest, "this index does not accept vector queries")
			return
		}
		results, err = vs.SearchVector(ctx, req.Vector, topN)
	} else {
		results, err = h.ret.Search(ctx, req.Query, topN)
		if errors.Is(err, retrieval.ErrNoQueryTerms) {
			// A valid query that matches nothing, not a client error.
			results, err = []retrieval.Result{}, nil
		}
	}
	if err != nil {
		writeSearchError(w, err)
		return
	}
	if results == nil {
		results = []retrieval.Result{}
	}
	writeJSON(w, http.StatusOK, SearchResponse{Results: results})
}

func (h *handler) searchBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchSearchRequest
	if !h.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "\"queries\" must contain at least one query")
		return
	}
	if len(req.Queries) > h.opts.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch of %d queries exceeds the limit of %d", len(req.Queries), h.opts.MaxBatch)
		return
	}
	topN, ok := h.clampTopN(w, req.TopN)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), h.opts.Timeout)
	defer cancel()
	results, err := h.ret.SearchBatch(ctx, req.Queries, topN)
	if err != nil {
		writeSearchError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, BatchSearchResponse{Results: results})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.ret.Stats())
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"numDocs": h.ret.NumDocs(),
	})
}
