package httpapi

// Replication endpoints: the pull side of retrieval/cluster's
// snapshot + WAL-tail catch-up. A replica bootstraps by fetching the
// primary's manifest, then every file the manifest names, then tails
// the WAL from its own document count. The endpoints are deliberately
// dumb — byte-serve checkpoint files, JSON-serve the log suffix — so
// all replication policy (retries, generation checks, re-snapshot on
// 410) lives in the replica, where it can be tested in-process.
//
// Safety: /v1/replicate/file serves only bare names matching the
// checkpoint vocabulary (manifest.json, text.json, ids-<n>.json,
// seg-<a>-<b>-<c>.idx) out of Options.ReplicateDir — no separators, no
// traversal, nothing outside the checkpoint. A 404 for a name the
// manifest listed means a newer checkpoint retired that generation
// mid-pull; the replica re-fetches the manifest and starts over.

import (
	"errors"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"repro/retrieval"
)

// ReplicateWALResponse is the body of GET /v1/replicate/wal: every
// logged document with global position >= From, in global order. Apply
// it to a replica holding [0, From) and the replica is caught up to the
// primary's acked writes at the time of the call (the X-Index-Docs
// header on the response).
type ReplicateWALResponse struct {
	From int                  `json:"from"`
	Docs []retrieval.Document `json:"docs"`
}

// replicaFilePat is the complete vocabulary of checkpoint file names a
// replica may fetch (see retrieval/shard's manifest layout).
var replicaFilePat = regexp.MustCompile(`^(manifest\.json|text\.json|ids-[0-9]+\.json|seg-[0-9]+-[0-9]+-[0-9]+\.idx)$`)

func (h *handler) replicateManifest(w http.ResponseWriter, r *http.Request) {
	h.serveReplicaFile(w, r, "manifest.json")
}

func (h *handler) replicateFile(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if !replicaFilePat.MatchString(name) {
		writeError(w, http.StatusBadRequest, "%q is not a checkpoint file name", name)
		return
	}
	h.serveReplicaFile(w, r, name)
}

// serveReplicaFile streams one checkpoint file from ReplicateDir. The
// freshness headers ride along so a replica can detect a checkpoint
// racing its pull without an extra round trip. Files are served via
// http.ServeContent, so Range requests work: a replica whose download
// was cut mid-file resumes from its last byte instead of restarting a
// multi-GB fetch (generation-stamped data files never mutate in place,
// making a resumed range safe; for the mutable manifest.json/text.json
// the replica checks X-Index-Generation instead).
func (h *handler) serveReplicaFile(w http.ResponseWriter, r *http.Request, name string) {
	if h.opts.ReplicateDir == "" {
		writeError(w, http.StatusNotFound, "replication is not enabled on this server (no checkpoint directory)")
		return
	}
	if !h.enterReplication(w) {
		return
	}
	defer h.repl.leave()
	f, err := os.Open(filepath.Join(h.opts.ReplicateDir, name))
	if errors.Is(err, fs.ErrNotExist) {
		writeError(w, http.StatusNotFound, "checkpoint file %q does not exist (a newer checkpoint may have retired it; re-fetch the manifest)", name)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "opening checkpoint file: %v", err)
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "stat checkpoint file: %v", err)
		return
	}
	h.indexHeaders(w)
	if filepath.Ext(name) == ".json" {
		w.Header().Set("Content-Type", "application/json")
	} else {
		w.Header().Set("Content-Type", "application/octet-stream")
	}
	http.ServeContent(w, r, name, st.ModTime(), f)
}

func (h *handler) replicateWAL(w http.ResponseWriter, r *http.Request) {
	wt, ok := h.ret.(WALTailer)
	if !ok || !wt.WALAttached() {
		writeError(w, http.StatusNotFound, "this server has no write-ahead log attached")
		return
	}
	if !h.enterReplication(w) {
		return
	}
	defer h.repl.leave()
	fromStr := r.URL.Query().Get("from")
	from, err := strconv.Atoi(fromStr)
	if err != nil || from < 0 {
		writeError(w, http.StatusBadRequest, "\"from\" must be a non-negative document position, got %q", fromStr)
		return
	}
	docs, err := wt.TailWAL(from)
	switch {
	case errors.Is(err, retrieval.ErrWALGone):
		// The replica is behind the last rotation: it must re-pull a
		// snapshot and tail from the snapshot's document count.
		writeError(w, http.StatusGone, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if docs == nil {
		docs = []retrieval.Document{}
	}
	h.indexHeaders(w)
	writeJSON(w, http.StatusOK, ReplicateWALResponse{From: from, Docs: docs})
}
