package retrieval

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/ir"
)

func searchEqual(t *testing.T, a, b *Index, query string, topN int) {
	t.Helper()
	ctx := context.Background()
	ra, err := a.Search(ctx, query, topN)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Search(ctx, query, topN)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra) != len(rb) {
		t.Fatalf("%q: %d vs %d results", query, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("%q result %d: %+v vs %+v", query, i, ra[i], rb[i])
		}
	}
}

func TestSaveLoadRoundTripLSI(t *testing.T) {
	ix := demoLSI(t)
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := loaded.Stats()
	if s.Backend != "lsi" || !s.TextQueries || s.Weighting != "log" || s.Rank != 3 {
		t.Fatalf("loaded stats = %+v", s)
	}
	// The loaded index is self-contained: text queries answer identically
	// with no access to the corpus, and IDs survive.
	searchEqual(t, ix, loaded, "car engine", 4)
	searchEqual(t, ix, loaded, "telescope galaxy", 4)
	res, err := loaded.Search(context.Background(), "automobile", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(res[0].ID, "demo-") {
		t.Fatalf("doc IDs lost through save/load: %+v", res[0])
	}
}

func TestSaveLoadRoundTripVSM(t *testing.T) {
	ix, err := Build(DemoCorpus(), WithBackend(BackendVSM), WithWeighting(WeightingTFIDF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := loaded.Stats()
	if s.Backend != "vsm" || !s.TextQueries || s.Weighting != "tfidf" {
		t.Fatalf("loaded stats = %+v", s)
	}
	searchEqual(t, ix, loaded, "pasta sauce", 0)
	searchEqual(t, ix, loaded, "stars planets", 0)
}

// testdata/index_v1.gob was written by the pre-v2 code (`lsi.Save`) over
// the demo corpus: rank-3 dense-engine LSI, log weighting. It proves the
// acceptance path: a v1-format index saved before the format bump loads
// and serves text queries after it (v1 carries no vocabulary, so the
// text layer comes in via WithTextConfig).
func TestLoadV1GoldenServesTextQueries(t *testing.T) {
	data, err := os.ReadFile("testdata/index_v1.gob")
	if err != nil {
		t.Fatal(err)
	}

	// Without a text config the numeric index loads but text queries are
	// cleanly refused.
	bare, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 index failed to load: %v", err)
	}
	if bare.Stats().TextQueries {
		t.Fatal("v1 stream cannot carry a vocabulary")
	}
	if _, err := bare.Search(context.Background(), "car", 3); !errors.Is(err, ErrNoVocabulary) {
		t.Fatalf("text query on bare v1 index = %v, want ErrNoVocabulary", err)
	}
	if _, err := bare.SearchVector(context.Background(), make([]float64, bare.NumTerms()), 3); err != nil {
		t.Fatalf("vector query on bare v1 index: %v", err)
	}

	// Reconstruct the build-time vocabulary by rerunning the pipeline the
	// v1 index was built with, and attach it.
	pipe := ir.NewPipeline()
	texts := make([]string, len(DemoCorpus()))
	ids := make([]string, len(DemoCorpus()))
	for i, d := range DemoCorpus() {
		texts[i] = d.Text
		ids[i] = d.ID
	}
	pipe.ProcessAll(texts)
	loaded, err := Load(bytes.NewReader(data), WithTextConfig(TextConfig{
		Vocab:           pipe.Vocab.Terms(),
		Weighting:       WeightingLog,
		RemoveStopwords: true,
		Stemming:        true,
		DocIDs:          ids,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Stats().TextQueries {
		t.Fatal("text config not attached")
	}

	// The migrated v1 index must behave exactly like a fresh build with
	// the same parameters — including the synonymy effect.
	fresh := demoLSI(t)
	searchEqual(t, fresh, loaded, "car engine repair", 4)
	res, err := loaded.Search(context.Background(), "car", 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, r := range res {
		seen[r.Doc] = true
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("migrated v1 index lost the synonymy effect: %+v", res)
	}

	// Re-save: the index upgrades to the self-contained v2 format.
	var buf bytes.Buffer
	if err := loaded.Save(&buf); err != nil {
		t.Fatal(err)
	}
	upgraded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !upgraded.Stats().TextQueries {
		t.Fatal("re-saved v1 index is not self-contained")
	}
	searchEqual(t, loaded, upgraded, "car", 4)
}

func TestLoadV1TextConfigValidation(t *testing.T) {
	data, err := os.ReadFile("testdata/index_v1.gob")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Load(bytes.NewReader(data), WithTextConfig(TextConfig{Vocab: []string{"too", "short"}}))
	if err == nil {
		t.Fatal("expected vocabulary-size mismatch error")
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(vsmWire{Version: 7, Backend: "vsm"}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("future version should fail to load")
	}
	if !strings.Contains(err.Error(), "version 7") {
		t.Fatalf("error %q does not name the offending version", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not an index")); err == nil {
		t.Fatal("garbage stream should fail to load")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Fatal("empty stream should fail to load")
	}
}
