package cache

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The freshness contract the retrieval layer builds on, distilled to the
// cache's own vocabulary: a "world" advances as publish-then-bump
// (state, then epoch — the order retrieval/shard uses), computes
// validate the epoch around the read, and keys embed the epoch. The
// invariant under any interleaving of readers and mutators: a reader
// that observed epoch >= e before looking up must never receive a value
// computed from state < e — i.e. the cache can serve *newer* data than
// the key's epoch (benign, the same race an uncached lock-free search
// has) but never older.
func TestEpochKeyedFreshnessUnderStress(t *testing.T) {
	const (
		mutations = 300
		readers   = 8
	)
	c := New[uint64](Config{MaxBytes: 1 << 20}, nil)

	var state atomic.Uint64 // the published "index contents"
	var epoch atomic.Uint64 // bumped after each publish

	lookup := func(topN int) (uint64, uint64) {
		e := epoch.Load()
		key := AppendQueryKey(nil, e, topN, []int{1}, []float64{1})
		v, _ := c.Do(key, func() (uint64, bool) {
			v := state.Load()
			return v, epoch.Load() == e
		})
		return v, e
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				eBefore := epoch.Load()
				v, _ := lookup(r%3 + 1) // a few distinct topN keys per epoch
				// state is stored before epoch is bumped, so any value
				// computed at epoch >= eBefore satisfies v >= eBefore.
				if v < eBefore {
					t.Errorf("reader %d: got state %d after observing epoch %d (stale cache hit)", r, v, eBefore)
					return
				}
			}
		}(r)
	}

	for m := uint64(1); m <= mutations; m++ {
		state.Store(m) // publish...
		epoch.Store(m) // ...then bump, exactly like shard ingest/compaction
		if m%16 == 0 {
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced == 0 {
		t.Fatal("stress loop performed no lookups")
	}
}

// TestConcurrentMixedOps hammers every public method from many
// goroutines; run under -race this is the cache's data-race gate, and
// the byte-bound assertions catch accounting corruption.
func TestConcurrentMixedOps(t *testing.T) {
	c := New[int](Config{MaxBytes: 64 << 10, Shards: 4}, func(int) int64 { return 64 })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := []byte(fmt.Sprintf("key-%d", (g*31+i)%500))
				switch i % 4 {
				case 0:
					c.Do(k, func() (int, bool) { return i, true })
				case 1:
					c.Do(k, func() (int, bool) { return i, false })
				case 2:
					c.Get(k)
				case 3:
					c.Put(k, i)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.CapBytes {
		t.Fatalf("bytes %d exceed cap %d after concurrent churn", st.Bytes, st.CapBytes)
	}
	if st.Entries == 0 {
		t.Fatal("cache empty after churn")
	}
	// Re-derive the byte accounting from scratch (map sum and LRU-list
	// walk): both must match the incrementally maintained total exactly.
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var mapSum, walk int64
		listLen := 0
		for _, e := range s.entries {
			mapSum += e.cost
		}
		for e := s.mru; e != nil; e = e.next {
			walk += e.cost
			listLen++
		}
		if mapSum != s.bytes || walk != s.bytes || listLen != len(s.entries) {
			s.mu.Unlock()
			t.Fatalf("shard %d: map cost %d, list cost %d (len %d) vs accounted %d bytes (%d entries)",
				i, mapSum, walk, listLen, s.bytes, len(s.entries))
		}
		s.mu.Unlock()
	}
}
