package cache

import (
	"bytes"
	"math"
	"testing"
)

func TestQueryKeyDeterministicAndDistinct(t *testing.T) {
	terms := []int{3, 57, 211}
	weights := []float64{1, 2, 1}
	k1 := AppendQueryKey(nil, 5, 10, terms, weights)
	k2 := AppendQueryKey(nil, 5, 10, terms, weights)
	if !bytes.Equal(k1, k2) {
		t.Fatal("same query encoded to different keys")
	}
	distinct := [][]byte{
		k1,
		AppendQueryKey(nil, 6, 10, terms, weights),                // epoch differs
		AppendQueryKey(nil, 5, 11, terms, weights),                // topN differs
		AppendQueryKey(nil, 5, 10, []int{3, 57, 212}, weights),    // term differs
		AppendQueryKey(nil, 5, 10, terms, []float64{1, 2, 1.5}),   // weight differs
		AppendQueryKey(nil, 5, 10, []int{3, 57}, []float64{1, 2}), // shorter
		AppendQueryKey(nil, 5, 10, []int{0}, []float64{1}),        // term 0 alone
		AppendQueryKey(nil, 5, 10, []int{0, 1}, []float64{1, 1}),  // adjacent terms
		AppendQueryKey(nil, 5, 0, terms, weights),                 // all-docs topN
		AppendQueryKey(nil, 5, 10, []int{}, []float64{}),          // empty query
	}
	for i := range distinct {
		for j := i + 1; j < len(distinct); j++ {
			if bytes.Equal(distinct[i], distinct[j]) {
				t.Fatalf("keys %d and %d collide: %x", i, j, distinct[i])
			}
		}
	}
}

func TestQueryKeyNormalizesTopN(t *testing.T) {
	terms, weights := []int{1}, []float64{1}
	if !bytes.Equal(AppendQueryKey(nil, 0, 0, terms, weights), AppendQueryKey(nil, 0, -3, terms, weights)) {
		t.Fatal("topN 0 and negative topN should share a key (both mean all documents)")
	}
}

func TestQueryKeyRoundTrip(t *testing.T) {
	terms := []int{0, 7, 300000}
	weights := []float64{0.5, -1, math.Inf(1)}
	k := AppendQueryKey(nil, 42, 17, terms, weights)
	epoch, topN, gotT, gotW, err := DecodeQueryKey(k)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 || topN != 17 {
		t.Fatalf("decoded (epoch=%d, topN=%d), want (42, 17)", epoch, topN)
	}
	for i := range terms {
		if gotT[i] != terms[i] || gotW[i] != weights[i] {
			t.Fatalf("pair %d: got (%d, %v), want (%d, %v)", i, gotT[i], gotW[i], terms[i], weights[i])
		}
	}
}

func TestNormalizeQuery(t *testing.T) {
	// Canonical input comes back as-is, no copies.
	terms, weights := []int{1, 5, 9}, []float64{1, 2, 3}
	nt, nw := NormalizeQuery(terms, weights)
	if &nt[0] != &terms[0] || &nw[0] != &weights[0] {
		t.Fatal("canonical input should pass through without copying")
	}
	// Unsorted input sorts; duplicates merge by summing; negatives drop;
	// mismatched lengths truncate to the shorter side.
	nt, nw = NormalizeQuery([]int{9, 1, 9, -4, 5}, []float64{1, 2, 3, 4, 5, 99})
	wantT := []int{1, 5, 9}
	wantW := []float64{2, 5, 4}
	if len(nt) != len(wantT) {
		t.Fatalf("normalized to %v / %v", nt, nw)
	}
	for i := range wantT {
		if nt[i] != wantT[i] || nw[i] != wantW[i] {
			t.Fatalf("pair %d: got (%d, %v), want (%d, %v)", i, nt[i], nw[i], wantT[i], wantW[i])
		}
	}
	// The key of arbitrary input equals the key of its normal form.
	k1 := AppendQueryKey(nil, 1, 5, []int{9, 1, 9, -4, 5}, []float64{1, 2, 3, 4, 5, 99})
	k2 := AppendQueryKey(nil, 1, 5, wantT, wantW)
	if !bytes.Equal(k1, k2) {
		t.Fatal("key of raw input differs from key of its normal form")
	}
}

func TestDecodeQueryKeyRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"bad version":       {99, 1, 1, 0},
		"truncated epoch":   {keyVersion},
		"truncated weights": AppendQueryKey(nil, 1, 1, []int{1, 2}, []float64{1, 2})[:12],
		"huge count":        append([]byte{keyVersion, 0, 0}, 0xff, 0xff, 0xff, 0xff, 0x0f),
		"trailing bytes":    append(AppendQueryKey(nil, 1, 1, []int{1}, []float64{1}), 0),
	}
	for name, key := range cases {
		if _, _, _, _, err := DecodeQueryKey(key); err == nil {
			t.Errorf("%s: decode accepted %x", name, key)
		}
	}
}

// FuzzQueryKeyNormalizer is the nightly fuzz target for the cache key
// normalizer: DecodeQueryKey must never panic or over-allocate on
// arbitrary bytes, and every key it accepts must be a fixed point of
// AppendQueryKey (i.e. the canonical encoding of what it decoded —
// otherwise two encodings of one query could cache independently, or
// worse, one encoding could alias two queries).
func FuzzQueryKeyNormalizer(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendQueryKey(nil, 0, 0, nil, nil))
	f.Add(AppendQueryKey(nil, 5, 10, []int{3, 57, 211, 402}, []float64{1, 2, 1, 1}))
	f.Add(AppendQueryKey(nil, math.MaxUint64, 1, []int{0}, []float64{math.NaN()}))
	f.Add([]byte{keyVersion, 0, 0, 3, 1, 1, 1})
	f.Fuzz(func(t *testing.T, key []byte) {
		epoch, topN, terms, weights, err := DecodeQueryKey(key)
		if err != nil {
			return
		}
		if !canonicalQuery(terms, weights) {
			t.Fatalf("decode accepted non-canonical query %v", terms)
		}
		re := AppendQueryKey(nil, epoch, topN, terms, weights)
		if !bytes.Equal(re, key) {
			t.Fatalf("accepted key is not canonical: %x re-encodes to %x", key, re)
		}
	})
}

// FuzzNormalizeQuery fuzzes the arbitrary-input half of the normalizer:
// for any terms/weights soup, NormalizeQuery must return a canonical
// query, be idempotent, and agree with AppendQueryKey's implicit
// normalization.
func FuzzNormalizeQuery(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{8, 8, 8})
	f.Add([]byte{255, 0, 255}, []byte{1})
	f.Fuzz(func(t *testing.T, rawTerms, rawWeights []byte) {
		terms := make([]int, len(rawTerms))
		for i, b := range rawTerms {
			terms[i] = int(b) - 5 // include negatives and duplicates
		}
		weights := make([]float64, len(rawWeights))
		for i, b := range rawWeights {
			weights[i] = float64(b) / 3
		}
		nt, nw := NormalizeQuery(terms, weights)
		if !canonicalQuery(nt, nw) {
			t.Fatalf("normalize returned non-canonical %v / %v", nt, nw)
		}
		nt2, nw2 := NormalizeQuery(nt, nw)
		if len(nt2) != len(nt) || len(nw2) != len(nw) {
			t.Fatal("normalize is not idempotent")
		}
		for i := range nt2 {
			if nt2[i] != nt[i] || nw2[i] != nw[i] {
				t.Fatal("normalize is not idempotent")
			}
		}
		k1 := AppendQueryKey(nil, 7, 3, terms, weights)
		k2 := AppendQueryKey(nil, 7, 3, nt, nw)
		if !bytes.Equal(k1, k2) {
			t.Fatalf("raw and normalized input disagree on the key")
		}
	})
}
