package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(s string) []byte { return []byte(s) }

func TestDoHitMissAndCounters(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20}, nil)
	calls := 0
	compute := func(v int) func() (int, bool) {
		return func() (int, bool) { calls++; return v, true }
	}

	v, st := c.Do(key("a"), compute(1))
	if v != 1 || st != StatusMiss {
		t.Fatalf("first lookup: got (%d, %v), want (1, miss)", v, st)
	}
	v, st = c.Do(key("a"), compute(99))
	if v != 1 || st != StatusHit {
		t.Fatalf("second lookup: got (%d, %v), want cached (1, hit)", v, st)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	v, st = c.Do(key("b"), compute(2))
	if v != 2 || st != StatusMiss {
		t.Fatalf("distinct key: got (%d, %v), want (2, miss)", v, st)
	}
	st2 := c.Stats()
	if st2.Hits != 1 || st2.Misses != 2 || st2.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 2 entries", st2)
	}
}

func TestUncacheableValueIsDeliveredButNotStored(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20}, nil)
	v, st := c.Do(key("k"), func() (int, bool) { return 7, false })
	if v != 7 || st != StatusMiss {
		t.Fatalf("got (%d, %v), want (7, miss)", v, st)
	}
	if c.Len() != 0 {
		t.Fatalf("uncacheable value was stored (%d entries)", c.Len())
	}
	if got := c.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// The next lookup recomputes.
	v, st = c.Do(key("k"), func() (int, bool) { return 8, true })
	if v != 8 || st != StatusMiss {
		t.Fatalf("recompute: got (%d, %v), want (8, miss)", v, st)
	}
}

func TestNilCacheBypasses(t *testing.T) {
	var c *Cache[int]
	v, st := c.Do(key("k"), func() (int, bool) { return 5, true })
	if v != 5 || st != StatusBypass {
		t.Fatalf("nil Do: got (%d, %v), want (5, bypass)", v, st)
	}
	if _, ok := c.Get(key("k")); ok {
		t.Fatal("nil Get reported a hit")
	}
	c.Put(key("k"), 1)
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache accumulated state")
	}
	if New[int](Config{MaxBytes: 0}, nil) != nil {
		t.Fatal("MaxBytes <= 0 should construct the nil (disabled) cache")
	}
}

func TestLRUEvictionBound(t *testing.T) {
	// One shard so the LRU order is observable; budget fits ~4 entries.
	costPer := int64(entryOverhead + 3) // 3-byte keys, zero-cost values
	c := New[int](Config{MaxBytes: 4 * costPer, Shards: 1}, nil)
	for i := 0; i < 8; i++ {
		c.Put(key(fmt.Sprintf("k%02d", i)), i)
	}
	st := c.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4 (bounded)", st.Entries)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
	if st.Bytes > st.CapBytes {
		t.Fatalf("bytes %d exceed cap %d", st.Bytes, st.CapBytes)
	}
	// Oldest entries are gone, newest survive.
	if _, ok := c.Get(key("k00")); ok {
		t.Fatal("k00 should have been evicted")
	}
	if v, ok := c.Get(key("k07")); !ok || v != 7 {
		t.Fatalf("k07: got (%d, %v), want (7, true)", v, ok)
	}
	// Touch k04 (now LRU-warm), insert one more: k05 is the coldest and
	// must be the one evicted.
	if _, ok := c.Get(key("k04")); !ok {
		t.Fatal("k04 missing before touch test")
	}
	c.Put(key("new"), 100)
	if _, ok := c.Get(key("k04")); !ok {
		t.Fatal("recently touched k04 was evicted before colder entries")
	}
	if _, ok := c.Get(key("k05")); ok {
		t.Fatal("coldest entry k05 survived past the bound")
	}
}

func TestPutReplacesAndGetProbes(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20}, nil)
	c.Put(key("k"), 1)
	c.Put(key("k"), 2)
	if c.Len() != 1 {
		t.Fatalf("replace grew the cache to %d entries", c.Len())
	}
	if v, ok := c.Get(key("k")); !ok || v != 2 {
		t.Fatalf("got (%d, %v), want (2, true)", v, ok)
	}
	if _, ok := c.Get(key("absent")); ok {
		t.Fatal("probe of absent key hit")
	}
}

func TestValueCostDrivesEviction(t *testing.T) {
	c := New[[]byte](Config{MaxBytes: 4096, Shards: 1}, func(v []byte) int64 { return int64(len(v)) })
	big := make([]byte, 3000)
	c.Put(key("big1"), big)
	c.Put(key("big2"), big) // cannot coexist with big1 under 4096
	if got := c.Len(); got != 1 {
		t.Fatalf("entries = %d, want 1 (value cost must count)", got)
	}
}

func TestCoalescingSharesOneCompute(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20}, nil)
	const waiters = 16
	var calls atomic.Int32
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, waiters)
	statuses := make([]Status, waiters)
	// Leader occupies the flight until gate opens.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], statuses[0] = c.Do(key("k"), func() (int, bool) {
			calls.Add(1)
			close(started)
			<-gate
			return 42, true
		})
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], statuses[i] = c.Do(key("k"), func() (int, bool) {
				calls.Add(1)
				return 42, true
			})
		}(i)
	}
	// The flight was registered before started closed, so every waiter
	// joins it rather than computing.
	close(gate)
	wg.Wait()

	if got := calls.Load(); got < 1 {
		t.Fatalf("compute ran %d times", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42", i, v)
		}
	}
	if statuses[0] != StatusMiss {
		t.Fatalf("leader status %v, want miss", statuses[0])
	}
	st := c.Stats()
	if st.Coalesced+st.Hits != waiters-1 {
		t.Fatalf("%d coalesced + %d hits, want %d waiters accounted", st.Coalesced, st.Hits, waiters-1)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want exactly 1 (coalesced)", calls.Load())
	}
}

func TestShardRoundingAndDistribution(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20, Shards: 5}, nil)
	if got := len(c.shards); got != 8 {
		t.Fatalf("5 shards rounded to %d, want 8", got)
	}
	for i := 0; i < 1000; i++ {
		c.Put(key(fmt.Sprintf("key-%d", i)), i)
	}
	if got := c.Len(); got != 1000 {
		t.Fatalf("entries = %d, want 1000", got)
	}
	// No shard should hold everything (FNV should spread keys).
	for i := range c.shards {
		if n := len(c.shards[i].entries); n == 1000 {
			t.Fatalf("all entries landed in shard %d", i)
		}
	}
}

// TestPanickingComputeReleasesTheFlight pins the flight-cleanup defer:
// a compute that panics must unregister its flight and release waiters,
// or one poisoned query would deadlock every future identical lookup.
func TestPanickingComputeReleasesTheFlight(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20}, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Do")
			}
		}()
		c.Do(key("k"), func() (int, bool) { panic("poisoned query") })
	}()
	// The key must be fully usable again: no dead flight to block on,
	// nothing stored, no rejected/miss accounting for the aborted call.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if v, st := c.Do(key("k"), func() (int, bool) { return 9, true }); v != 9 || st != StatusMiss {
			t.Errorf("post-panic lookup: got (%d, %v), want (9, miss)", v, st)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-panic lookup blocked on a leaked flight")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Rejected != 0 {
		t.Fatalf("counters after panic+retry = %+v, want 1 miss, 0 rejected", st)
	}
}

// TestPutDuringInFlightComputeKeepsOneEntry pins the store-vs-insert
// collision: a Put landing while a Do for the same key is mid-compute
// must leave exactly one live, reachable entry with consistent
// accounting (a blind insert would orphan the Put's entry in the LRU
// list and later evict the live entry out of the map).
func TestPutDuringInFlightComputeKeepsOneEntry(t *testing.T) {
	c := New[int](Config{MaxBytes: 1 << 20, Shards: 1}, nil)
	started := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(key("k"), func() (int, bool) {
			close(started)
			<-gate
			return 1, true
		})
	}()
	<-started
	c.Put(key("k"), 2) // racing store for the same key
	close(gate)
	<-done

	if got := c.Len(); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	// Do's store ran last, replacing Put's value in place.
	if v, ok := c.Get(key("k")); !ok || v != 1 {
		t.Fatalf("got (%d, %v), want (1, true)", v, ok)
	}
	// Map, LRU list, and byte accounting must agree exactly.
	s := &c.shards[0]
	s.mu.Lock()
	defer s.mu.Unlock()
	var walk int64
	listLen := 0
	for e := s.mru; e != nil; e = e.next {
		walk += e.cost
		listLen++
	}
	if listLen != len(s.entries) || walk != s.bytes {
		t.Fatalf("list has %d entries / %d bytes, map has %d entries / %d accounted bytes (orphaned entry)",
			listLen, walk, len(s.entries), s.bytes)
	}
}
