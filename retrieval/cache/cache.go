// Package cache implements the query result cache behind
// retrieval.WithQueryCache: a sharded, byte-bounded LRU keyed by opaque
// byte strings, with singleflight request coalescing so concurrent
// identical lookups compute once.
//
// The cache itself knows nothing about queries or epochs — keys are
// whatever the caller encodes (see AppendQueryKey for the canonical
// query encoding the retrieval layer uses). Invalidation falls out of
// the keying discipline: the retrieval layer includes the index epoch in
// every key, so a mutation that bumps the epoch makes the entire old
// working set unreachable in O(1) — no scan, no lock on the read path —
// and the stale entries age out through the LRU bound. An immutable
// index uses a constant epoch and caches forever.
//
// Correctness under concurrent mutation is the compute callback's
// responsibility: it returns (value, cacheable) and reports cacheable =
// false when the world changed while it ran (the retrieval layer
// re-reads the epoch after the search and compares). An uncacheable
// value is still delivered to the caller and any coalesced waiters —
// it is exactly as fresh as an uncached search — it just is not stored.
//
// Values are shared: a stored value is returned to every future hit, so
// callers must treat returned values as read-only (the retrieval layer
// copies result slices before handing them out). Every method is safe
// for concurrent use; all methods on a nil *Cache are no-ops that report
// StatusBypass, so call sites need no nil checks.
package cache

import (
	"sync"
	"sync/atomic"
)

// Status is the disposition of one cache lookup.
type Status uint8

const (
	// StatusBypass reports that no cache was consulted (nil cache).
	StatusBypass Status = iota
	// StatusHit reports the value was served from the cache.
	StatusHit
	// StatusMiss reports the value was computed (and stored, if the
	// compute callback reported it cacheable).
	StatusMiss
	// StatusCoalesced reports the lookup joined an identical in-flight
	// compute and shared its result.
	StatusCoalesced
)

// String names the status in the form the Cache-Status HTTP header uses.
func (s Status) String() string {
	switch s {
	case StatusHit:
		return "hit"
	case StatusMiss:
		return "miss"
	case StatusCoalesced:
		return "coalesced"
	default:
		return "bypass"
	}
}

// Config configures New. The zero value of every optional field picks
// the documented default.
type Config struct {
	// MaxBytes bounds the cache's estimated memory footprint (keys +
	// values + bookkeeping). Required > 0.
	MaxBytes int64
	// Shards is the number of independently locked shards (rounded up to
	// a power of two; default 16). More shards means less lock contention
	// under concurrent load; the byte budget is split evenly.
	Shards int
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits, Misses, Coalesced count lookups by disposition; Hits+Misses+
	// Coalesced is the total lookup count.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries removed by the LRU byte bound; Rejected
	// counts computed values not stored because the compute callback
	// reported them uncacheable (epoch changed mid-compute).
	Evictions int64 `json:"evictions"`
	Rejected  int64 `json:"rejected"`
	// Entries and Bytes describe the current working set; CapBytes is the
	// configured bound.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	CapBytes int64 `json:"capBytes"`
}

// entry is one cached key/value pair, linked into its shard's LRU list
// (front = most recently used).
type entry[V any] struct {
	key        string
	val        V
	cost       int64
	prev, next *entry[V]
}

// flight is one in-progress compute that identical lookups coalesce on.
type flight[V any] struct {
	done chan struct{}
	val  V
}

// shard is one lock domain: a hash-addressed LRU with its own byte
// budget plus the in-flight compute table.
type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	flights  map[string]*flight[V]
	lru, mru *entry[V] // lru = eviction end, mru = most recently used
	bytes    int64
	maxBytes int64

	evictions atomic.Int64
}

// Cache is a sharded, byte-bounded LRU with request coalescing. Create
// with New; the zero value and nil are valid "no cache" instances whose
// lookups all report StatusBypass.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64
	cost   func(V) int64

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	rejected  atomic.Int64
}

// New builds a cache bounded at cfg.MaxBytes. cost estimates the bytes a
// value holds (key bytes and entry bookkeeping are accounted
// automatically); nil means values are costed at 0 and only keys and
// bookkeeping count against the bound. A cfg.MaxBytes <= 0 returns nil —
// the valid "caching disabled" instance.
func New[V any](cfg Config, cost func(V) int64) *Cache[V] {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	c := &Cache[V]{
		shards: make([]shard[V], p),
		mask:   uint64(p - 1),
		cost:   cost,
	}
	per := cfg.MaxBytes / int64(p)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]*entry[V])
		c.shards[i].flights = make(map[string]*flight[V])
		c.shards[i].maxBytes = per
	}
	return c
}

// entryOverhead approximates the bookkeeping bytes per entry: the entry
// struct, its map slot, and the key string header.
const entryOverhead = 96

// hashKey is FNV-1a over the key bytes — deterministic, allocation-free,
// and plenty uniform for shard selection and map pre-hashing.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// Do looks key up, computing the value on a miss via compute. Identical
// concurrent Do calls coalesce: one runs compute, the rest wait and
// share its result. compute returns (value, cacheable); an uncacheable
// value is returned to every waiter but not stored. The returned value
// may be shared with the cache and other callers — treat it as
// read-only.
func (c *Cache[V]) Do(key []byte, compute func() (V, bool)) (V, Status) {
	if c == nil {
		v, _ := compute()
		return v, StatusBypass
	}
	s := &c.shards[hashKey(key)&c.mask]

	s.mu.Lock()
	if e, ok := s.entries[string(key)]; ok {
		s.touch(e)
		v := e.val // copy under the lock: a concurrent Put may replace e.val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, StatusHit
	}
	if f, ok := s.flights[string(key)]; ok {
		s.mu.Unlock()
		<-f.done
		c.coalesced.Add(1)
		return f.val, StatusCoalesced
	}
	f := &flight[V]{done: make(chan struct{})}
	ks := string(key) // one allocation, reused for the flight and the entry
	s.flights[ks] = f
	s.mu.Unlock()

	// The flight MUST be unregistered and its waiters released on every
	// exit, including a panicking compute — otherwise one poisoned
	// query would leave a dead flight that every future identical
	// lookup blocks on forever.
	var v V
	var cacheable bool
	completed := false
	defer func() {
		s.mu.Lock()
		delete(s.flights, ks)
		switch {
		case completed && cacheable:
			s.store(ks, v, c.valCost(v))
		case completed:
			c.rejected.Add(1)
		}
		s.mu.Unlock()
		close(f.done)
		if completed {
			c.misses.Add(1)
		}
	}()
	v, cacheable = compute()
	f.val = v
	completed = true
	return v, StatusMiss
}

// valCost applies the configured value-cost estimator.
func (c *Cache[V]) valCost(v V) int64 {
	if c.cost == nil {
		return 0
	}
	return c.cost(v)
}

// Get looks key up without computing; the boolean reports a hit. The
// returned value may be shared — treat it as read-only. Misses are
// counted (Get is the probe half of the batch path, whose computes
// land via Put).
func (c *Cache[V]) Get(key []byte) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := &c.shards[hashKey(key)&c.mask]
	s.mu.Lock()
	if e, ok := s.entries[string(key)]; ok {
		s.touch(e)
		v := e.val // copy under the lock: a concurrent Put may replace e.val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	s.mu.Unlock()
	c.misses.Add(1)
	return zero, false
}

// Put stores a computed value (the batch path's store half; single
// lookups should prefer Do, which also coalesces). An existing entry for
// key is replaced. The value may be returned to future hits — the caller
// must not mutate it after Put.
func (c *Cache[V]) Put(key []byte, v V) {
	if c == nil {
		return
	}
	s := &c.shards[hashKey(key)&c.mask]
	s.mu.Lock()
	s.store(string(key), v, c.valCost(v))
	s.mu.Unlock()
}

// store inserts or replaces the entry for ks under the shard lock and
// evicts past the bound. Replacement must go through the existing entry
// (never a second insert of the same key): a blind insert would leave
// the old entry linked in the LRU list but absent from the map, and its
// eventual eviction would delete the live entry from the map. ks must
// be an owned string (not an aliased []byte conversion).
func (s *shard[V]) store(ks string, v V, vcost int64) {
	if e, ok := s.entries[ks]; ok {
		s.bytes -= e.cost
		e.val = v
		e.cost = vcost + int64(len(e.key)) + entryOverhead
		s.bytes += e.cost
		s.touch(e)
		s.evictOver()
		return
	}
	e := &entry[V]{key: ks, val: v, cost: vcost + int64(len(ks)) + entryOverhead}
	s.entries[ks] = e
	s.bytes += e.cost
	// Link at MRU end.
	e.prev = nil
	e.next = s.mru
	if s.mru != nil {
		s.mru.prev = e
	}
	s.mru = e
	if s.lru == nil {
		s.lru = e
	}
	s.evictOver()
}

// touch moves e to the MRU end. Caller holds the shard lock.
func (s *shard[V]) touch(e *entry[V]) {
	if s.mru == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.lru == e {
		s.lru = e.prev
	}
	// Relink at front.
	e.prev = nil
	e.next = s.mru
	if s.mru != nil {
		s.mru.prev = e
	}
	s.mru = e
}

// evictOver removes LRU entries until the shard is within budget.
// Caller holds the shard lock.
func (s *shard[V]) evictOver() {
	for s.bytes > s.maxBytes && s.lru != nil {
		e := s.lru
		delete(s.entries, e.key)
		s.bytes -= e.cost
		s.lru = e.prev
		if s.lru != nil {
			s.lru.next = nil
		} else {
			s.mru = nil
		}
		e.prev, e.next = nil, nil
		s.evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters and working-set size.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Rejected:  c.rejected.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		st.Evictions += s.evictions.Load()
		s.mu.Lock()
		st.Entries += len(s.entries)
		st.Bytes += s.bytes
		st.CapBytes += s.maxBytes
		s.mu.Unlock()
	}
	return st
}
