package cache

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Query-key encoding. The retrieval layer caches by the *normalized
// sparse query* — the projected form both backends consume — not by the
// raw text, so "car engine" and "engine car" (or any two texts that
// stem and weight to the same term vector) share one entry. A key is
// the canonical byte encoding of (epoch, topN, terms, weights):
//
//	key := version(1B) | uvarint(epoch) | uvarint(topN) |
//	       uvarint(len) | uvarint-delta(terms...) | float64-bits(weights...)
//
// Terms are delta-encoded in strictly ascending order, so every
// canonical query has exactly one encoding and two different canonical
// queries never collide (the encoding is injective given the length
// prefix). The epoch lives inside the key: bumping it makes every old
// key unreachable at once, which is the whole invalidation story.
//
// topN <= 0 ("all documents") normalizes to 0. Weights are raw IEEE-754
// bits — NaN payloads and signed zeros produce distinct keys, which is
// harmless (distinct keys can only cost a duplicate entry, never a
// wrong hit).

// keyVersion tags the encoding so a future layout change cannot be
// confused with the current one in persisted traces or tests.
const keyVersion = 1

// uvarintLen returns the number of bytes the minimal uvarint encoding
// of v occupies.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// canonicalQuery reports whether terms are strictly ascending,
// non-negative, and paired one-to-one with weights — the form
// retrieval.querySparse produces and the fast path requires.
func canonicalQuery(terms []int, weights []float64) bool {
	if len(terms) != len(weights) {
		return false
	}
	prev := -1
	for _, t := range terms {
		if t <= prev {
			return false
		}
		prev = t
	}
	return true
}

// NormalizeQuery canonicalizes an arbitrary sparse query: pairs are
// matched index-wise (extra terms or weights beyond the shorter slice
// are dropped), negative term IDs are dropped, duplicates are merged by
// summing their weights, and the result is sorted strictly ascending.
// Canonical input is returned as-is with no allocation; non-canonical
// input allocates the normalized copies.
func NormalizeQuery(terms []int, weights []float64) ([]int, []float64) {
	if canonicalQuery(terms, weights) {
		return terms, weights
	}
	n := min(len(terms), len(weights))
	type pair struct {
		t int
		w float64
	}
	pairs := make([]pair, 0, n)
	for i := 0; i < n; i++ {
		if terms[i] >= 0 {
			pairs = append(pairs, pair{terms[i], weights[i]})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].t < pairs[j].t })
	outT := make([]int, 0, len(pairs))
	outW := make([]float64, 0, len(pairs))
	for _, p := range pairs {
		if len(outT) > 0 && outT[len(outT)-1] == p.t {
			outW[len(outW)-1] += p.w
			continue
		}
		outT = append(outT, p.t)
		outW = append(outW, p.w)
	}
	return outT, outW
}

// AppendQueryKey appends the canonical cache key for a sparse query at
// a given index epoch to dst and returns the extended slice. Queries
// already in canonical form (strictly ascending terms, parallel
// weights — what the retrieval layer produces) encode without
// normalization allocations; anything else is normalized first via
// NormalizeQuery.
func AppendQueryKey(dst []byte, epoch uint64, topN int, terms []int, weights []float64) []byte {
	if !canonicalQuery(terms, weights) {
		terms, weights = NormalizeQuery(terms, weights)
	}
	if topN < 0 {
		topN = 0
	}
	dst = append(dst, keyVersion)
	dst = binary.AppendUvarint(dst, epoch)
	dst = binary.AppendUvarint(dst, uint64(topN))
	dst = binary.AppendUvarint(dst, uint64(len(terms)))
	prev := 0
	for _, t := range terms {
		dst = binary.AppendUvarint(dst, uint64(t-prev))
		prev = t
	}
	var buf [8]byte
	for _, w := range weights {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// DecodeQueryKey parses a key produced by AppendQueryKey back into its
// parts, rejecting anything that is not the canonical encoding (wrong
// version, truncation, trailing bytes, non-ascending terms, or a length
// prefix larger than the bytes behind it — the last makes adversarial
// keys unable to force unbounded allocation). It exists for tests and
// the fuzz harness; the serving path never decodes.
func DecodeQueryKey(key []byte) (epoch uint64, topN int, terms []int, weights []float64, err error) {
	fail := func(format string, args ...any) (uint64, int, []int, []float64, error) {
		return 0, 0, nil, nil, fmt.Errorf("cache: decode key: "+format, args...)
	}
	if len(key) == 0 || key[0] != keyVersion {
		return fail("missing or unknown version")
	}
	rest := key[1:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		// Reject non-minimal varints (e.g. 0x80 0x00 for zero): the
		// encoder only emits minimal forms, and accepting a padded
		// alias would let two byte strings decode to one query.
		if n <= 0 || n != uvarintLen(v) {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	epoch, ok := next()
	if !ok {
		return fail("truncated epoch")
	}
	tn, ok := next()
	if !ok || tn > math.MaxInt32 {
		return fail("bad topN")
	}
	topN = int(tn)
	count, ok := next()
	// Each term costs >= 1 byte and each weight exactly 8, so a valid
	// length prefix can never exceed the remaining byte budget / 9.
	if !ok || count > uint64(len(rest))/9 {
		return fail("bad term count")
	}
	terms = make([]int, count)
	prev := 0
	for i := range terms {
		d, ok := next()
		if !ok {
			return fail("truncated term %d", i)
		}
		if i > 0 && d == 0 {
			return fail("term %d not strictly ascending", i)
		}
		t := uint64(prev) + d
		if t > math.MaxInt32 {
			return fail("term %d overflows", i)
		}
		terms[i] = int(t)
		prev = int(t)
	}
	if uint64(len(rest)) != 8*count {
		return fail("weight block is %d bytes, want %d", len(rest), 8*count)
	}
	weights = make([]float64, count)
	for i := range weights {
		weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[8*i:]))
	}
	return epoch, topN, terms, weights, nil
}
