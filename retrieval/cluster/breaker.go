package cluster

// Per-node circuit breakers, the retry budget, and jittered backoff —
// the control loops that keep a degraded cluster degraded instead of
// melting. A breaker stops the router from burning timeouts against a
// node that keeps failing (closed → open on consecutive failures or
// windowed failure rate; open → half-open after a cooldown; one probe
// re-closes or re-opens it). The budget bounds retry amplification:
// retries spend from a bucket that refills at a fixed fraction of
// request traffic, so under total failure retries stay ≤ ~that
// fraction of attempts instead of multiplying load. Everything runs on
// an injected clock (internal/faultinject), so every transition is
// testable without a wall-clock sleep.

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes requests and watches outcomes.
	BreakerClosed BreakerState = iota
	// BreakerOpen fails fast until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe request to test recovery.
	BreakerHalfOpen
)

// String names the state for logs and metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerOptions configures a Breaker; zero values pick the documented
// defaults.
type BreakerOptions struct {
	// ConsecutiveFailures trips the breaker after this many failures in
	// a row (default 5).
	ConsecutiveFailures int
	// FailureRate trips the breaker when the rolling window's failure
	// fraction reaches it (default 0.5).
	FailureRate float64
	// Window is the rolling outcome window length (default 20).
	Window int
	// MinSamples is how full the window must be before FailureRate can
	// trip (default 10) — a single early failure is not a 100% rate.
	MinSamples int
	// OpenFor is the fail-fast cooldown before half-open (default 5s).
	OpenFor time.Duration
	// Clock is the breaker's time source (default faultinject.Real).
	Clock faultinject.Clock
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.ConsecutiveFailures <= 0 {
		o.ConsecutiveFailures = 5
	}
	if o.FailureRate <= 0 {
		o.FailureRate = 0.5
	}
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 10
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 5 * time.Second
	}
	if o.Clock == nil {
		o.Clock = faultinject.Real
	}
	return o
}

// Breaker is one node's circuit breaker. Allow asks whether a request
// may proceed; Record reports how an allowed request went. A denied
// request must NOT be recorded — fail-fast outcomes would keep the
// window saturated and the breaker could never observe recovery.
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	consec   int    // consecutive failures while closed
	window   []bool // rolling outcomes; true = failure
	wIdx     int
	wLen     int
	wFails   int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	trips int64
}

// NewBreaker returns a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	o := opts.withDefaults()
	return &Breaker{opts: o, window: make([]bool, o.Window)}
}

// Allow reports whether a request may proceed now. An open breaker
// whose cooldown has elapsed moves to half-open and grants exactly one
// probe; further requests are denied until that probe is recorded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.opts.Clock.Now().Sub(b.openedAt) < b.opts.OpenFor {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports an allowed request's outcome and drives the state
// machine: a half-open probe success re-closes (resetting the window),
// a probe failure re-opens for a fresh cooldown; while closed, either
// trip condition opens.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.toClosed()
		} else {
			b.toOpen()
		}
	case BreakerClosed:
		// Rolling window for the rate condition.
		if b.window[b.wIdx] && b.wLen == len(b.window) {
			b.wFails--
		}
		b.window[b.wIdx] = !ok
		b.wIdx = (b.wIdx + 1) % len(b.window)
		if b.wLen < len(b.window) {
			b.wLen++
		}
		if !ok {
			b.wFails++
			b.consec++
		} else {
			b.consec = 0
		}
		tripRate := b.wLen >= b.opts.MinSamples &&
			float64(b.wFails)/float64(b.wLen) >= b.opts.FailureRate
		if b.consec >= b.opts.ConsecutiveFailures || tripRate {
			b.toOpen()
		}
	case BreakerOpen:
		// A request allowed before the trip finishing late; outcome is
		// stale, ignore it.
	}
}

// toOpen transitions to open (caller holds b.mu).
func (b *Breaker) toOpen() {
	b.state = BreakerOpen
	b.openedAt = b.opts.Clock.Now()
	b.probing = false
	b.trips++
}

// toClosed transitions to closed with a clean window (caller holds b.mu).
func (b *Breaker) toClosed() {
	b.state = BreakerClosed
	b.consec, b.wIdx, b.wLen, b.wFails = 0, 0, 0, 0
	b.probing = false
}

// Cancel releases a claimed half-open probe slot when the probe's
// outcome is unknowable — the request was canceled mid-flight. The
// slot must be returned or the breaker wedges: half-open admits
// nothing while a probe is outstanding, and a probe that never
// records would deny every future request. No outcome is recorded;
// the next request may claim a fresh probe. Harmless in any other
// state.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// Ready reports whether Allow would currently admit a request, with no
// side effects: no open → half-open transition, no probe slot claimed.
// For pre-flight checks that must not consume the probe — a claim the
// checker might never settle would wedge the breaker half-open.
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.opts.Clock.Now().Sub(b.openedAt) >= b.opts.OpenFor
	default: // half-open
		return !b.probing
	}
}

// State returns the breaker's position. An open breaker past its
// cooldown still reports open — only an Allow moves it to half-open.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// RetryBudget is a token bucket bounding retry amplification: each
// request deposits Ratio tokens (capped at Burst), each retry
// withdraws one. Under 100% failure, retries converge to ≤ Ratio of
// attempts (+ the initial Burst), so a retry storm cannot multiply
// load onto an already-degraded cluster.
type RetryBudget struct {
	mu     sync.Mutex
	ratio  float64
	burst  float64
	tokens float64

	retries   int64
	exhausted int64
}

// NewRetryBudget returns a budget depositing ratio per request, capped
// at (and starting with) burst tokens.
func NewRetryBudget(ratio, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{ratio: ratio, burst: burst, tokens: burst}
}

// OnRequest deposits one request's worth of budget.
func (b *RetryBudget) OnRequest() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// TryRetry withdraws one retry if the budget allows, reporting whether
// the caller may retry.
func (b *RetryBudget) TryRetry() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.exhausted++
		return false
	}
	b.tokens--
	b.retries++
	return true
}

// Retries and Exhausted report granted retries and budget denials.
func (b *RetryBudget) Retries() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.retries
}

// Exhausted reports how many retries the budget refused.
func (b *RetryBudget) Exhausted() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.exhausted
}

// backoff computes the jittered exponential delay before retry attempt
// (0-based): full jitter over base·2^attempt, capped at max — the
// spread that keeps synchronized retriers from re-stampeding a
// recovering node.
func backoff(attempt int, base, max time.Duration, rng *rand.Rand) time.Duration {
	d := base << attempt
	if d > max || d <= 0 {
		d = max
	}
	return time.Duration(rng.Int63n(int64(d))) + 1
}
