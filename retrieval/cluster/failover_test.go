package cluster_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/retrieval"
	"repro/retrieval/cluster"
	"repro/retrieval/httpapi"
)

// TestClusterFailoverEndToEnd is the acceptance scenario: a 2-shard
// cluster with a replica on shard 1 serves a concurrent query trace
// while nodes are killed and restarted around it.
//
//  1. The replica is killed mid-trace: zero failed queries (the
//     primary owns the shard), then it rejoins and catches up over the
//     WAL tail.
//  2. The primary is killed mid-trace: zero failed queries again — the
//     router hedges shard 1 to the replica. Partial responses are
//     allowed but must not occur while the replica covers the shard.
//  3. After a checkpoint rotates the primary's WAL past the replica,
//     catch-up re-snapshots: the replica converges to the primary's
//     (generation, numDocs).
func TestClusterFailoverEndToEnd(t *testing.T) {
	docs := corpus(24)
	central, err := retrieval.Build(docs,
		retrieval.WithRank(3), retrieval.WithShards(2),
		retrieval.WithAutoCompact(false), retrieval.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()
	root := t.TempDir()
	if err := central.SaveShardDirs(root); err != nil {
		t.Fatal(err)
	}

	// Two primaries, WAL'd and replication-enabled.
	nodes := make([]*retrieval.Index, 2)
	servers := make([]*httptest.Server, 2)
	dirs := make([]string, 2)
	for s := 0; s < 2; s++ {
		dirs[s] = filepath.Join(root, fmt.Sprintf("shard-%d", s))
		nodes[s], err = retrieval.OpenDir(dirs[s], retrieval.WithAutoCompact(false))
		if err != nil {
			t.Fatal(err)
		}
		defer nodes[s].Close()
		if _, err := nodes[s].AttachWAL(filepath.Join(root, fmt.Sprintf("wal-%d", s))); err != nil {
			t.Fatal(err)
		}
		servers[s] = httptest.NewServer(httpapi.NewHandler(nodes[s], httpapi.Options{ReplicateDir: dirs[s]}))
		defer servers[s].Close()
	}

	// A replica of shard 1, bootstrapped from the primary's checkpoint.
	ctx := context.Background()
	rep := cluster.NewReplica(servers[1].URL, filepath.Join(root, "replica"), cluster.ReplicaOptions{})
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.Generation() != nodes[1].Generation() || rep.NumDocs() != nodes[1].NumDocs() {
		t.Fatalf("bootstrap: replica at (gen %d, %d docs), primary at (gen %d, %d docs)",
			rep.Generation(), rep.NumDocs(), nodes[1].Generation(), nodes[1].NumDocs())
	}
	repSrv := httptest.NewServer(httpapi.NewHandler(rep, httpapi.Options{}))
	defer repSrv.Close()

	man := &cluster.Manifest{Version: 1, Shards: 2, Nodes: []cluster.Node{
		{Name: "n0", URL: servers[0].URL, Shard: 0},
		{Name: "n1", URL: servers[1].URL, Shard: 1},
		{Name: "n1-replica", URL: repSrv.URL, Shard: 1, Replica: true},
	}}
	router, err := cluster.NewRouter(man, cluster.RouterOptions{HedgeAfter: 25 * time.Millisecond, NodeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	// trace runs queries through the router until stopped, failing the
	// test on any errored query, and reports how many were served.
	trace := func(kill func()) (served int64) {
		var wg sync.WaitGroup
		var count int64
		stop := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					q := testQueries[(w+i)%len(testQueries)]
					res, _, err := router.SearchPartial(ctx, q, 10)
					if err != nil {
						t.Errorf("query %q failed during failover: %v", q, err)
						return
					}
					if len(res) == 0 {
						t.Errorf("query %q returned nothing during failover", q)
						return
					}
					atomic.AddInt64(&count, 1)
				}
			}(w)
		}
		// Let the trace get going, strike, then let it run on the
		// degraded cluster before stopping.
		time.Sleep(50 * time.Millisecond)
		kill()
		time.Sleep(150 * time.Millisecond)
		close(stop)
		wg.Wait()
		return atomic.LoadInt64(&count)
	}

	// Phase 1: kill the replica mid-trace. The primary owns the shard,
	// so nothing fails and nothing is partial.
	before := router.RouterStats()
	if served := trace(repSrv.Close); served == 0 {
		t.Fatal("phase 1 trace served nothing")
	}
	if st := router.RouterStats(); st.Partials != before.Partials {
		t.Fatalf("replica death degraded the quorum: %+v", st)
	}

	// The replica rejoins (same state, new listener) and catches up on
	// writes that happened while it was down.
	live := []retrieval.Document{
		{ID: "f-0", Text: "a shiny new car with a powerful engine"},
		{ID: "f-1", Text: "stars and galaxies in deep space"},
		{ID: "f-2", Text: "the car engine roared across the galaxy"},
	}
	if _, err := central.Add(ctx, live); err != nil {
		t.Fatal(err)
	}
	if _, err := router.Add(ctx, live); err != nil {
		t.Fatal(err)
	}
	if _, err := rep.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.NumDocs() != nodes[1].NumDocs() {
		t.Fatalf("replica caught up to %d docs, primary holds %d", rep.NumDocs(), nodes[1].NumDocs())
	}
	repSrv = httptest.NewServer(httpapi.NewHandler(rep, httpapi.Options{}))
	defer repSrv.Close()
	man2 := *man
	man2.Version = 2
	man2.Nodes = append([]cluster.Node(nil), man.Nodes...)
	man2.Nodes[2].URL = repSrv.URL
	if err := router.Reload(&man2); err != nil {
		t.Fatal(err)
	}

	// The rejoined cluster still merges bitwise with the reference.
	for _, q := range testQueries {
		want, err := central.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, partial, err := router.SearchPartial(ctx, q, 10)
		if err != nil || partial {
			t.Fatalf("post-rejoin %q: partial=%v err=%v", q, partial, err)
		}
		sameResults(t, got, want, "post-rejoin "+q)
	}

	// Phase 2: kill the primary mid-trace. The router hedges shard 1 to
	// the caught-up replica; zero queries fail. (The X-Partial-Results
	// contract allows partial answers here, but with a live replica the
	// quorum never actually degrades — assert served > 0, not partial
	// counts, since whether any search raced the kill is timing.)
	if served := trace(servers[1].Close); served == 0 {
		t.Fatal("phase 2 trace served nothing")
	}
	if st := router.RouterStats(); st.NodeErrors == 0 {
		t.Fatalf("primary death left no trace in stats: %+v", st)
	}

	// Phase 3: the primary returns; a checkpoint rotates its WAL while
	// the replica is behind, forcing the 410 re-snapshot path.
	servers[1] = httptest.NewServer(httpapi.NewHandler(nodes[1], httpapi.Options{ReplicateDir: dirs[1]}))
	defer servers[1].Close()
	rep.SetPrimary(servers[1].URL)
	man3 := man2
	man3.Version = 3
	man3.Nodes = append([]cluster.Node(nil), man2.Nodes...)
	man3.Nodes[1].URL = servers[1].URL
	if err := router.Reload(&man3); err != nil {
		t.Fatal(err)
	}
	if err := router.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	more := []retrieval.Document{
		{ID: "g-0", Text: "telescopes observing distant galaxies"},
		{ID: "g-1", Text: "cooking recipes with fresh tomatoes"},
	}
	if _, err := central.Add(ctx, more); err != nil {
		t.Fatal(err)
	}
	if _, err := router.Add(ctx, more); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Checkpoint(dirs[1]); err != nil {
		t.Fatal(err)
	}
	repBefore := rep.ReplicaStats().Snapshots
	if _, err := rep.CatchUp(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rep.ReplicaStats().Snapshots; got != repBefore+1 {
		t.Fatalf("rotated WAL did not force a re-snapshot (snapshots %d -> %d)", repBefore, got)
	}
	if rep.Generation() != nodes[1].Generation() || rep.NumDocs() != nodes[1].NumDocs() {
		t.Fatalf("after re-snapshot: replica at (gen %d, %d docs), primary at (gen %d, %d docs)",
			rep.Generation(), rep.NumDocs(), nodes[1].Generation(), nodes[1].NumDocs())
	}

	// And the full cluster — primary restored, replica re-snapshotted —
	// still matches the reference bitwise.
	for _, q := range testQueries {
		want, err := central.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, partial, err := router.SearchPartial(ctx, q, 10)
		if err != nil || partial {
			t.Fatalf("final %q: partial=%v err=%v", q, partial, err)
		}
		sameResults(t, got, want, "final "+q)
	}
}

// TestReplicaServesBitwise: a bootstrapped replica answers text
// queries bit-for-bit like its primary.
func TestReplicaServesBitwise(t *testing.T) {
	tc := startCluster(t, 18, 2)
	ctx := context.Background()
	rep := cluster.NewReplica(tc.servers[0].URL, t.TempDir(), cluster.ReplicaOptions{})
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	if !rep.Ready() {
		t.Fatal("bootstrapped replica not ready")
	}
	for _, q := range testQueries {
		want, err := tc.nodes[0].Search(ctx, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rep.Search(ctx, q, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want, "replica query "+q)
	}
	st := rep.ReplicaStats()
	if st.Snapshots != 1 {
		t.Fatalf("bootstrap took %d snapshots, want 1", st.Snapshots)
	}
}

// TestReplicaRunLoop: the background loop converges a replica onto
// live primary writes without explicit CatchUp calls.
func TestReplicaRunLoop(t *testing.T) {
	tc := startCluster(t, 12, 2)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep := cluster.NewReplica(tc.servers[1].URL, t.TempDir(), cluster.ReplicaOptions{PollInterval: 10 * time.Millisecond})
	if err := rep.Bootstrap(ctx); err != nil {
		t.Fatal(err)
	}
	go rep.Run(ctx)

	if err := tc.router.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.router.Add(ctx, corpus(6)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rep.NumDocs() != tc.nodes[1].NumDocs() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d docs, primary holds %d", rep.NumDocs(), tc.nodes[1].NumDocs())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
