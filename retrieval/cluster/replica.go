package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/retrieval"
	"repro/retrieval/httpapi"
	"repro/retrieval/shard"
)

// ReplicaOptions configures a Replica; zero values pick the documented
// defaults.
type ReplicaOptions struct {
	// PollInterval is the WAL-tail cadence of Run (default 500ms).
	PollInterval time.Duration
	// NodeTimeout bounds each request to the primary (default 10s — a
	// snapshot file pull moves real bytes).
	NodeTimeout time.Duration
	// Client is the HTTP client for primary requests.
	Client *http.Client
	// Clock is the replica's time source for the tail loop and pull
	// backoff (default faultinject.Real); chaos tests inject a
	// FakeClock.
	Clock faultinject.Clock
	// PullAttempts caps transfer attempts per snapshot file (default 4).
	// A cut connection resumes with a Range request from the last byte
	// that landed, so each attempt makes forward progress.
	PullAttempts int
	// PullBackoff is the base delay between resumed pull attempts
	// (default 100ms, doubling per attempt).
	PullBackoff time.Duration
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.PollInterval <= 0 {
		o.PollInterval = 500 * time.Millisecond
	}
	if o.NodeTimeout <= 0 {
		o.NodeTimeout = 10 * time.Second
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Clock == nil {
		o.Clock = faultinject.Real
	}
	if o.PullAttempts <= 0 {
		o.PullAttempts = 4
	}
	if o.PullBackoff <= 0 {
		o.PullBackoff = 100 * time.Millisecond
	}
	return o
}

// Replica mirrors one cluster node: it bootstraps by pulling the
// primary's checkpoint over GET /v1/replicate/{manifest,file}, then
// keeps up by tailing the primary's write-ahead log
// (GET /v1/replicate/wal?from=<its own document count>). When the tail
// answers 410 Gone — a checkpoint on the primary rotated the records
// the replica still needed — it re-pulls a whole snapshot and resumes
// tailing from there.
//
// A Replica is also a serving node: it implements retrieval.Retriever
// (plus the readiness and freshness capabilities httpapi looks for) by
// delegating to its current local index, which is swapped atomically
// after a re-snapshot so queries never observe a half-applied state.
// Replayed documents flow through the ordinary ingest path of the
// local 1-shard index, so a caught-up replica serves bit-for-bit the
// scores its primary serves.
//
// Catch-up is deliberately pull-based and stateless on the primary: a
// replica that dies just falls behind; when it returns it either tails
// from where it stopped or, if too far behind, re-snapshots. Nothing
// on the primary tracks replica positions.
type Replica struct {
	primary atomic.Pointer[string]
	dir     string
	opts    ReplicaOptions
	client  *http.Client
	clock   faultinject.Clock

	cur   atomic.Pointer[retrieval.Index]
	snaps atomic.Int64 // snapshot pulls performed (names the snap dirs)

	batches atomic.Int64
	applied atomic.Int64
	resumes atomic.Int64 // ranged re-fetches after a cut transfer
	lastErr atomic.Pointer[string]
}

// NewReplica prepares a replica of the node at primaryURL, keeping its
// local snapshots under dir. Call Bootstrap before serving.
func NewReplica(primaryURL, dir string, opts ReplicaOptions) *Replica {
	r := &Replica{dir: dir, opts: opts.withDefaults()}
	r.primary.Store(&primaryURL)
	r.client = r.opts.Client
	r.clock = r.opts.Clock
	return r
}

// SetPrimary re-points the replica at a primary that moved (a restart
// on a new address, or a manifest change). Safe under a running tail
// loop; the next round uses the new address.
func (r *Replica) SetPrimary(url string) { r.primary.Store(&url) }

// Primary returns the primary base URL the replica follows.
func (r *Replica) Primary() string { return *r.primary.Load() }

// get runs one GET against the primary, returning the response body.
// A non-2xx status is returned as errStatus so callers can branch on
// the replication protocol's meaningful codes (404 mid-pull, 410 on a
// rotated tail).
func (r *Replica) get(ctx context.Context, path string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.NodeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.Primary()+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: replica: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return nil, &errStatus{path: path, code: resp.StatusCode}
	}
	return io.ReadAll(resp.Body)
}

// errStatus is a non-2xx replication response.
type errStatus struct {
	path string
	code int
}

func (e *errStatus) Error() string {
	return fmt.Sprintf("cluster: replica: %s: status %d", e.path, e.code)
}

func statusOf(err error) int {
	var es *errStatus
	if errors.As(err, &es) {
		return es.code
	}
	return 0
}

// Bootstrap pulls a full snapshot from the primary and opens it for
// serving. It retries a bounded number of times when a checkpoint on
// the primary races the pull (a manifest-named file answering 404).
func (r *Replica) Bootstrap(ctx context.Context) error {
	const attempts = 3
	var err error
	for i := 0; i < attempts; i++ {
		if err = r.pullSnapshot(ctx); err == nil {
			return nil
		}
		if statusOf(err) != http.StatusNotFound {
			break // only a raced checkpoint is worth retrying
		}
	}
	r.noteErr(err)
	return err
}

// pullSnapshot fetches the primary's checkpoint into a fresh local
// directory — every data file first, the manifest last, so a torn pull
// is never openable — then opens it and swaps it in as the serving
// index. The previous index (if any) is left to the garbage collector
// rather than closed: queries may still be draining on it, and a
// snapshot opens with compaction disabled, so it holds no goroutines.
func (r *Replica) pullSnapshot(ctx context.Context) error {
	manBytes, err := r.get(ctx, "/v1/replicate/manifest")
	if err != nil {
		return err
	}
	man, err := shard.ParseManifest(manBytes)
	if err != nil {
		return fmt.Errorf("cluster: replica: primary manifest: %w", err)
	}
	if man.Shards != 1 {
		return fmt.Errorf("cluster: replica: primary serves a %d-shard index; replicas mirror 1-shard exports", man.Shards)
	}
	snap := filepath.Join(r.dir, fmt.Sprintf("snap-%d", r.snaps.Add(1)))
	if err := os.MkdirAll(snap, 0o777); err != nil {
		return err
	}
	files := []string{man.IDsFile, "text.json"}
	for _, segs := range man.Segments {
		for _, seg := range segs {
			files = append(files, seg.File)
		}
	}
	for _, name := range files {
		if err := r.pullFile(ctx, name, filepath.Join(snap, name), uint64(man.Generation)); err != nil {
			return err
		}
	}
	if err := os.WriteFile(filepath.Join(snap, shard.ManifestName), manBytes, 0o666); err != nil {
		return err
	}
	ix, err := retrieval.OpenDir(snap, retrieval.WithAutoCompact(false))
	if err != nil {
		return fmt.Errorf("cluster: replica: opening snapshot: %w", err)
	}
	old := r.cur.Swap(ix)
	_ = old // see the doc comment: never closed under draining queries
	return nil
}

// pullFile streams one checkpoint file from the primary to dst,
// resuming a cut transfer with a Range request from the last byte that
// landed instead of restarting the whole file. Safe because
// generation-stamped data files never mutate in place; the mutable
// manifest.json/text.json are guarded by the X-Index-Generation header,
// which must keep matching wantGen across attempts — a change means a
// checkpoint raced the pull, and the whole snapshot restarts (the 404
// path Bootstrap already retries).
func (r *Replica) pullFile(ctx context.Context, name, dst string, wantGen uint64) error {
	f, err := os.Create(dst)
	if err != nil {
		return err
	}
	defer f.Close()
	var got int64
	var lastErr error
	for attempt := 0; attempt < r.opts.PullAttempts; attempt++ {
		if attempt > 0 {
			// Linear-doubling backoff on the injected clock; ctx still
			// bounds the whole pull.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-r.clock.After(r.opts.PullBackoff << (attempt - 1)):
			}
			if got > 0 {
				r.resumes.Add(1)
			}
		}
		var err error
		got, err = r.fetchInto(ctx, f, name, got, wantGen)
		if err == nil {
			return nil
		}
		// Status errors are protocol answers (404 raced checkpoint, 416
		// bad resume already handled below) — no retry here; transport
		// errors retry from the offset reached.
		if statusOf(err) != 0 {
			return err
		}
		lastErr = err
	}
	return fmt.Errorf("cluster: replica: pulling %s: %w", name, lastErr)
}

// fetchInto runs one (possibly ranged) GET for a checkpoint file and
// appends the response to f, returning the new local offset. A 200
// answer to a ranged request (server without Range support, or the
// file changed) restarts the file from zero; a 416 means the local
// offset is past the primary's EOF — also a restart.
func (r *Replica) fetchInto(ctx context.Context, f *os.File, name string, got int64, wantGen uint64) (int64, error) {
	path := "/v1/replicate/file?name=" + name
	ctx, cancel := context.WithTimeout(ctx, r.opts.NodeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.Primary()+path, nil)
	if err != nil {
		return got, err
	}
	if got > 0 {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", got))
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return got, fmt.Errorf("cluster: replica: %s: %w", path, err)
	}
	defer resp.Body.Close()
	if g, err := strconv.ParseUint(resp.Header.Get("X-Index-Generation"), 10, 64); err == nil && wantGen > 0 && g != wantGen {
		// A checkpoint replaced the one we are pulling: surface the same
		// status Bootstrap retries with a fresh manifest.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return got, &errStatus{path: path, code: http.StatusNotFound}
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusRequestedRangeNotSatisfiable:
		// Full body (or an unsatisfiable resume offset): restart the file.
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return 0, err
		}
		got = 0
		if resp.StatusCode == http.StatusRequestedRangeNotSatisfiable {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
			return 0, fmt.Errorf("cluster: replica: %s: resume offset past EOF; restarting", path)
		}
	case http.StatusPartialContent:
		// Appending at got, exactly where the Range asked.
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		return got, &errStatus{path: path, code: resp.StatusCode}
	}
	n, err := io.Copy(f, resp.Body)
	return got + n, err
}

// CatchUp performs one tail round: ask the primary for every document
// past the replica's current count and apply them through the local
// ingest path. A 410 means the primary's checkpoint rotated past us —
// re-snapshot and report how that went. Returns the number of
// documents applied.
func (r *Replica) CatchUp(ctx context.Context) (int, error) {
	ix := r.cur.Load()
	if ix == nil {
		return 0, fmt.Errorf("cluster: replica: not bootstrapped")
	}
	from := ix.NumDocs()
	body, err := r.get(ctx, fmt.Sprintf("/v1/replicate/wal?from=%d", from))
	if statusOf(err) == http.StatusGone {
		if err := r.Bootstrap(ctx); err != nil {
			return 0, err
		}
		applied := r.cur.Load().NumDocs() - from
		if applied < 0 {
			applied = 0
		}
		r.applied.Add(int64(applied))
		return applied, nil
	}
	if err != nil {
		r.noteErr(err)
		return 0, err
	}
	var resp httpapi.ReplicateWALResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		r.noteErr(err)
		return 0, fmt.Errorf("cluster: replica: decoding wal tail: %w", err)
	}
	if len(resp.Docs) == 0 {
		return 0, nil
	}
	got, err := ix.Add(ctx, resp.Docs)
	if err != nil {
		r.noteErr(err)
		return 0, fmt.Errorf("cluster: replica: applying wal tail: %w", err)
	}
	if got != from {
		return 0, fmt.Errorf("cluster: replica: tail landed at %d, want %d", got, from)
	}
	r.batches.Add(1)
	r.applied.Add(int64(len(resp.Docs)))
	return len(resp.Docs), nil
}

// Run tails the primary until ctx ends, sleeping PollInterval between
// rounds on the replica's clock. Errors are recorded (see
// ReplicaStats.LastError) and retried on the next round; only ctx
// cancellation stops the loop.
func (r *Replica) Run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.clock.After(r.opts.PollInterval):
			r.CatchUp(ctx)
		}
	}
}

func (r *Replica) noteErr(err error) {
	if err == nil {
		return
	}
	s := err.Error()
	r.lastErr.Store(&s)
}

// Index returns the replica's current serving index (nil before
// Bootstrap).
func (r *Replica) Index() *retrieval.Index { return r.cur.Load() }

// --- retrieval.Retriever and httpapi capabilities, by delegation ---

var errNotBootstrapped = fmt.Errorf("cluster: replica: not bootstrapped")

// Search implements retrieval.Retriever against the current snapshot.
func (r *Replica) Search(ctx context.Context, query string, topN int) ([]retrieval.Result, error) {
	ix := r.cur.Load()
	if ix == nil {
		return nil, errNotBootstrapped
	}
	return ix.Search(ctx, query, topN)
}

// SearchBatch implements retrieval.Retriever.
func (r *Replica) SearchBatch(ctx context.Context, queries []string, topN int) ([][]retrieval.Result, error) {
	ix := r.cur.Load()
	if ix == nil {
		return nil, errNotBootstrapped
	}
	return ix.SearchBatch(ctx, queries, topN)
}

// NumDocs implements retrieval.Retriever (0 before Bootstrap).
func (r *Replica) NumDocs() int {
	if ix := r.cur.Load(); ix != nil {
		return ix.NumDocs()
	}
	return 0
}

// Stats implements retrieval.Retriever.
func (r *Replica) Stats() retrieval.Stats {
	if ix := r.cur.Load(); ix != nil {
		return ix.Stats()
	}
	return retrieval.Stats{Backend: "replica"}
}

// Ready reports whether the replica has a serving snapshot — the
// httpapi readiness capability.
func (r *Replica) Ready() bool { return r.cur.Load() != nil }

// Epoch implements the httpapi freshness capability. A replica's epoch
// is its local index's and is not comparable to the primary's; compare
// (Generation, NumDocs) instead.
func (r *Replica) Epoch() uint64 {
	if ix := r.cur.Load(); ix != nil {
		return ix.Epoch()
	}
	return 0
}

// Generation returns the manifest generation of the snapshot the
// replica serves — the primary checkpoint it descends from.
func (r *Replica) Generation() uint64 {
	if ix := r.cur.Load(); ix != nil {
		return ix.Generation()
	}
	return 0
}

// ReplicaStats is the replica's observability snapshot.
type ReplicaStats struct {
	// Snapshots counts full snapshot pulls (bootstrap + every 410).
	Snapshots int64
	// Batches and DocsApplied count WAL-tail rounds that applied
	// documents, and the documents they applied (re-snapshot documents
	// included in DocsApplied).
	Batches     int64
	DocsApplied int64
	// ResumedPulls counts snapshot-file transfers resumed with a Range
	// request after a cut connection.
	ResumedPulls int64
	// LastError is the most recent catch-up error ("" when none has
	// occurred); it does not reset on success — it is a debugging
	// breadcrumb, not a health signal. Health is Ready + staleness.
	LastError string
}

// ReplicaStats snapshots the replica's counters.
func (r *Replica) ReplicaStats() ReplicaStats {
	st := ReplicaStats{
		Snapshots:    r.snaps.Load(),
		Batches:      r.batches.Load(),
		DocsApplied:  r.applied.Load(),
		ResumedPulls: r.resumes.Load(),
	}
	if p := r.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}

// RegisterMetrics exports the replica's counters on reg under the
// lsi_replica_* namespace.
func (r *Replica) RegisterMetrics(reg *metrics.Registry) {
	reg.CounterFunc("lsi_replica_snapshots_total", "Full snapshot pulls (bootstrap and every 410-triggered re-snapshot).",
		func() float64 { return float64(r.snaps.Load()) })
	reg.CounterFunc("lsi_replica_batches_total", "WAL-tail rounds that applied documents.",
		func() float64 { return float64(r.batches.Load()) })
	reg.CounterFunc("lsi_replica_docs_applied_total", "Documents applied from the primary's WAL tail and re-snapshots.",
		func() float64 { return float64(r.applied.Load()) })
	reg.CounterFunc("lsi_replica_resumed_pulls_total", "Snapshot-file transfers resumed with a Range request.",
		func() float64 { return float64(r.resumes.Load()) })
	reg.GaugeFunc("lsi_replica_generation", "Manifest generation of the serving snapshot.",
		func() float64 { return float64(r.Generation()) })
	reg.GaugeFunc("lsi_replica_docs", "Documents in the serving snapshot.",
		func() float64 { return float64(r.NumDocs()) })
}
