package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/retrieval"
	"repro/retrieval/cluster"
	"repro/retrieval/httpapi"
)

func corpus(n int) []retrieval.Document {
	demo := retrieval.DemoCorpus()
	docs := make([]retrieval.Document, n)
	for i := range docs {
		d := demo[i%len(demo)]
		docs[i] = retrieval.Document{ID: fmt.Sprintf("%s-v%d", d.ID, i/len(demo)), Text: d.Text}
	}
	return docs
}

// testCluster is an in-process cluster: a central single-process index
// (the bitwise reference), one serving node per shard opened from the
// central index's per-shard exports, and a router fanning over them.
type testCluster struct {
	central *retrieval.Index
	nodes   []*retrieval.Index
	servers []*httptest.Server
	dirs    []string
	man     *cluster.Manifest
	router  *cluster.Router
}

// startCluster builds the reference index, exports each shard, and
// serves every export behind a real HTTP listener with replication
// enabled and a WAL attached.
func startCluster(t *testing.T, nDocs, shards int) *testCluster {
	t.Helper()
	docs := corpus(nDocs)
	central, err := retrieval.Build(docs,
		retrieval.WithRank(3), retrieval.WithShards(shards),
		retrieval.WithAutoCompact(false), retrieval.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { central.Close() })
	root := t.TempDir()
	if err := central.SaveShardDirs(root); err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{central: central}
	man := &cluster.Manifest{Version: 1, Shards: shards}
	for s := 0; s < shards; s++ {
		dir := filepath.Join(root, fmt.Sprintf("shard-%d", s))
		node, err := retrieval.OpenDir(dir, retrieval.WithAutoCompact(false))
		if err != nil {
			t.Fatalf("open shard %d export: %v", s, err)
		}
		t.Cleanup(func() { node.Close() })
		if _, err := node.AttachWAL(filepath.Join(root, fmt.Sprintf("wal-%d", s))); err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(httpapi.NewHandler(node, httpapi.Options{ReplicateDir: dir}))
		t.Cleanup(srv.Close)
		tc.nodes = append(tc.nodes, node)
		tc.servers = append(tc.servers, srv)
		tc.dirs = append(tc.dirs, dir)
		man.Nodes = append(man.Nodes, cluster.Node{Name: fmt.Sprintf("n%d", s), URL: srv.URL, Shard: s})
	}
	tc.man = man
	r, err := cluster.NewRouter(man, cluster.RouterOptions{HedgeAfter: 30 * time.Millisecond, NodeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tc.router = r
	return tc
}

func sameResults(t *testing.T, got, want []retrieval.Result, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", context, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, want %+v (bitwise)", context, i, got[i], want[i])
		}
	}
}

var testQueries = []string{
	"car engine", "stars and galaxies", "fresh tomatoes", "car", "space telescope engine",
}

// TestRouterMergeBitwise: the router's fan-out merge over per-shard
// nodes — JSON round trip and all — is bit-for-bit the single-process
// sharded index's answer, for single and batch searches.
func TestRouterMergeBitwise(t *testing.T) {
	tc := startCluster(t, 31, 3)
	ctx := context.Background()
	for _, q := range testQueries {
		want, err := tc.central.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, partial, err := tc.router.SearchPartial(ctx, q, 10)
		if err != nil || partial {
			t.Fatalf("router search %q: partial=%v err=%v", q, partial, err)
		}
		sameResults(t, got, want, "query "+q)
	}

	wantB, err := tc.central.SearchBatch(ctx, testQueries, 7)
	if err != nil {
		t.Fatal(err)
	}
	gotB, partial, err := tc.router.SearchBatchPartial(ctx, testQueries, 7)
	if err != nil || partial {
		t.Fatalf("router batch: partial=%v err=%v", partial, err)
	}
	for i := range wantB {
		sameResults(t, gotB[i], wantB[i], fmt.Sprintf("batch query %d", i))
	}

	// A query with no in-vocabulary terms is a clean empty answer, as it
	// is on the nodes.
	if res, partial, err := tc.router.SearchPartial(ctx, "zzzz qqqq", 5); err != nil || partial || len(res) != 0 {
		t.Fatalf("unknown-vocabulary query: %d results, partial=%v, err=%v", len(res), partial, err)
	}
}

// TestRouterIngestRouting: documents added through the router land on
// the shard global numbering dictates, so after identical live adds
// the cluster still merges bitwise-identically to the central index.
func TestRouterIngestRouting(t *testing.T) {
	tc := startCluster(t, 20, 3)
	ctx := context.Background()
	if err := tc.router.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := tc.router.NumDocs(), tc.central.NumDocs(); got != want {
		t.Fatalf("synced NumDocs = %d, want %d", got, want)
	}

	live := []retrieval.Document{
		{ID: "live-0", Text: "a shiny new car with a powerful engine"},
		{ID: "live-1", Text: "stars and galaxies in deep space"},
		{ID: "live-2", Text: "cooking recipes with fresh tomatoes"},
		{ID: "live-3", Text: "the car engine roared across the galaxy"},
		{ID: "live-4", Text: "telescopes observing distant galaxies"},
	}
	wantFirst := tc.central.NumDocs()
	if _, err := tc.central.Add(ctx, live); err != nil {
		t.Fatal(err)
	}
	first, err := tc.router.Add(ctx, live[:2])
	if err != nil {
		t.Fatal(err)
	}
	if first != wantFirst {
		t.Fatalf("router add landed at %d, want %d", first, wantFirst)
	}
	if _, err := tc.router.Add(ctx, live[2:]); err != nil {
		t.Fatal(err)
	}
	if got, want := tc.router.NumDocs(), tc.central.NumDocs(); got != want {
		t.Fatalf("post-add NumDocs = %d, want %d", got, want)
	}

	for _, q := range testQueries {
		want, err := tc.central.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, partial, err := tc.router.SearchPartial(ctx, q, 10)
		if err != nil || partial {
			t.Fatalf("router search %q after adds: partial=%v err=%v", q, partial, err)
		}
		sameResults(t, got, want, "post-add query "+q)
	}
}

// TestRouterPartialResults: with one shard down the router still
// answers — correctly merged over the shards that responded, and
// honestly marked partial. With every shard down it errors.
func TestRouterPartialResults(t *testing.T) {
	tc := startCluster(t, 20, 2)
	ctx := context.Background()
	tc.servers[1].Close()

	res, partial, err := tc.router.SearchPartial(ctx, "car engine", 10)
	if err != nil {
		t.Fatal(err)
	}
	if !partial {
		t.Fatal("one shard down: response not marked partial")
	}
	if len(res) == 0 {
		t.Fatal("surviving shard contributed nothing")
	}
	for _, r := range res {
		if r.Doc%2 != 0 {
			t.Fatalf("result %+v belongs to the dead shard", r)
		}
	}
	if st := tc.router.RouterStats(); st.Partials == 0 || st.NodeErrors == 0 {
		t.Fatalf("stats do not reflect the degraded quorum: %+v", st)
	}

	tc.servers[0].Close()
	if _, _, err := tc.router.SearchPartial(ctx, "car engine", 10); err == nil {
		t.Fatal("whole cluster down: search succeeded")
	}
}

// TestRouterIngestFreezesOnFailure: a write that cannot reach a shard
// primary fails, freezes ingest, and Sync against a healed cluster
// unfreezes it.
func TestRouterIngestFreezesOnFailure(t *testing.T) {
	tc := startCluster(t, 20, 2)
	ctx := context.Background()
	if err := tc.router.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if !tc.router.Ready() {
		t.Fatal("synced router not ready")
	}
	url1 := tc.servers[1].URL
	tc.servers[1].Close()

	// A 2-doc batch spans both shards; shard 1 is dead.
	_, err := tc.router.Add(ctx, corpus(2))
	if err == nil {
		t.Fatal("add with a dead primary succeeded")
	}
	if tc.router.Ready() {
		t.Fatal("failed add left ingest live")
	}

	// Heal: serve shard 1 again on the old node, reload the manifest
	// with its new address, and sync.
	srv := httptest.NewServer(httpapi.NewHandler(tc.nodes[1], httpapi.Options{ReplicateDir: tc.dirs[1]}))
	t.Cleanup(srv.Close)
	man2 := *tc.man
	man2.Version = 2
	man2.Nodes = append([]cluster.Node(nil), tc.man.Nodes...)
	for i := range man2.Nodes {
		if man2.Nodes[i].URL == url1 {
			man2.Nodes[i].URL = srv.URL
		}
	}
	if err := tc.router.Reload(&man2); err != nil {
		t.Fatal(err)
	}
	if err := tc.router.Sync(ctx); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
	if _, err := tc.router.Add(ctx, corpus(3)); err != nil {
		t.Fatalf("add after heal: %v", err)
	}
}

// TestManifestValidate is the manifest validation table.
func TestManifestValidate(t *testing.T) {
	ok := cluster.Manifest{Version: 1, Shards: 2, Nodes: []cluster.Node{
		{Name: "a", URL: "http://h1:8080", Shard: 0},
		{Name: "b", URL: "http://h2:8080", Shard: 1},
		{Name: "b2", URL: "http://h3:8080", Shard: 1, Replica: true},
	}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(m *cluster.Manifest)
		want   string
	}{
		{"zero version", func(m *cluster.Manifest) { m.Version = 0 }, "version"},
		{"no shards", func(m *cluster.Manifest) { m.Shards = 0 }, "shards"},
		{"dup name", func(m *cluster.Manifest) { m.Nodes[1].Name = "a" }, "duplicate"},
		{"bad url", func(m *cluster.Manifest) { m.Nodes[0].URL = "h1:8080:x" }, "URL"},
		{"shard out of range", func(m *cluster.Manifest) { m.Nodes[0].Shard = 2 }, "out of range"},
		{"unnamed", func(m *cluster.Manifest) { m.Nodes[0].Name = "" }, "no name"},
		{"orphan shard", func(m *cluster.Manifest) { m.Nodes[1].Replica = true }, "primaries"},
		{"two primaries", func(m *cluster.Manifest) { m.Nodes[2].Replica = false }, "primaries"},
	}
	for _, c := range cases {
		m := ok
		m.Nodes = append([]cluster.Node(nil), ok.Nodes...)
		c.mutate(&m)
		err := m.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestReloadVersioning: reloads must strictly increase the version and
// keep the shard count.
func TestReloadVersioning(t *testing.T) {
	man := &cluster.Manifest{Version: 3, Shards: 1, Nodes: []cluster.Node{{Name: "a", URL: "http://h:1", Shard: 0}}}
	r, err := cluster.NewRouter(man, cluster.RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stale := *man
	stale.Version = 3
	if err := r.Reload(&stale); err == nil {
		t.Fatal("same-version reload accepted")
	}
	resharded := *man
	resharded.Version = 4
	resharded.Shards = 2
	resharded.Nodes = []cluster.Node{{Name: "a", URL: "http://h:1", Shard: 0}, {Name: "b", URL: "http://h:2", Shard: 1}}
	if err := r.Reload(&resharded); err == nil {
		t.Fatal("shard-count-changing reload accepted")
	}
	next := *man
	next.Version = 4
	if err := r.Reload(&next); err != nil {
		t.Fatalf("valid reload rejected: %v", err)
	}
	if got := r.Manifest().Version; got != 4 {
		t.Fatalf("serving version %d, want 4", got)
	}
	if st := r.RouterStats(); st.StaleReloads != 1 || st.Reloads != 1 {
		t.Fatalf("reload counters: %+v", st)
	}
}

// TestRouterStatsAndReadyz: the router behind an httpapi handler
// serves cluster-level stats and readiness.
func TestRouterStatsAndReadyz(t *testing.T) {
	tc := startCluster(t, 14, 2)
	h := httpapi.NewHandler(tc.router, httpapi.Options{})
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced router readyz = %d, want 503", resp.StatusCode)
	}
	if err := tc.router.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("synced router readyz = %d", resp.StatusCode)
	}
	// A search through the full HTTP stack answers with the cluster's
	// document count in the freshness header.
	sresp, err := http.Post(srv.URL+"/v1/search", "application/json", strings.NewReader(`{"query":"car engine","topN":3}`))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if got := sresp.Header.Get("X-Index-Docs"); got != fmt.Sprint(tc.central.NumDocs()) {
		t.Fatalf("X-Index-Docs %q, want %d", got, tc.central.NumDocs())
	}
}
