package cluster_test

// Chaos suite: the router driven against live nodes through a
// faultinject.Transport with seeded, scripted fault schedules — node
// flaps, partitions, slow nodes, write-path faults — on an injected
// clock. Every scenario asserts the resilience invariants from the
// operator's point of view:
//
//   - no acked write is lost, and no unacked write is counted;
//   - no request gets stuck: every call returns within its bounds;
//   - degraded answers are marked partial, never silently wrong;
//   - breakers trip on sustained failure and recover after cooldown.
//
// No assertion is calibrated by a wall-clock sleep: timing-sensitive
// transitions run on a faultinject.FakeClock advanced explicitly, and
// the only wall-clock waits are request timeouts bounding blackholed
// calls.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/retrieval"
	"repro/retrieval/cluster"
	"repro/retrieval/httpapi"
)

// hostOf extracts the "host:port" a faultinject.Rule selects on.
func hostOf(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// mirrorPair serves one shard from two nodes — a primary and a replica
// opened from the same export — behind a router whose client routes
// through the given Transport. The pair is the smallest cluster where
// single-node faults must not cost availability.
type mirrorPair struct {
	central          *retrieval.Index
	router           *cluster.Router
	priHost, repHost string
}

func startMirrorPair(t *testing.T, ft *faultinject.Transport, opts cluster.RouterOptions) *mirrorPair {
	t.Helper()
	central, err := retrieval.Build(corpus(18),
		retrieval.WithRank(3), retrieval.WithShards(1),
		retrieval.WithAutoCompact(false), retrieval.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { central.Close() })
	root := t.TempDir()
	if err := central.SaveShardDirs(root); err != nil {
		t.Fatal(err)
	}
	dir := root + "/shard-0"
	var servers [2]*httptest.Server
	for i := range servers {
		node, err := retrieval.OpenDir(dir, retrieval.WithAutoCompact(false))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		servers[i] = httptest.NewServer(httpapi.NewHandler(node, httpapi.Options{}))
		t.Cleanup(servers[i].Close)
	}
	man := &cluster.Manifest{Version: 1, Shards: 1, Nodes: []cluster.Node{
		{Name: "pri", URL: servers[0].URL, Shard: 0},
		{Name: "rep", URL: servers[1].URL, Shard: 0, Replica: true},
	}}
	opts.Client = httpClient(ft)
	router, err := cluster.NewRouter(man, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &mirrorPair{
		central: central,
		router:  router,
		priHost: hostOf(t, servers[0].URL),
		repHost: hostOf(t, servers[1].URL),
	}
}

func httpClient(ft *faultinject.Transport) *http.Client {
	return &http.Client{Transport: ft}
}

// TestChaosFlappingNodeBreakerTripsAndRecovers: a primary that starts
// failing every request costs latency, never availability — the
// replica covers, the primary's breaker trips to fail-fast, and after
// the flap ends one cooldown probe re-closes it.
func TestChaosFlappingNodeBreakerTripsAndRecovers(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	ft := &faultinject.Transport{Clock: clk}
	mp := startMirrorPair(t, ft, cluster.RouterOptions{
		Clock:            clk,
		Breaker:          cluster.BreakerOptions{ConsecutiveFailures: 3, OpenFor: time.Second},
		RetryBudgetRatio: 0.01, RetryBudgetBurst: 0.5, // no same-node retries: pure failover
	})
	ctx := context.Background()

	want, err := mp.central.Search(ctx, "car engine", 8)
	if err != nil {
		t.Fatal(err)
	}
	assertServes := func(phase string) {
		t.Helper()
		got, partial, err := mp.router.SearchPartial(ctx, "car engine", 8)
		if err != nil || partial {
			t.Fatalf("%s: partial=%v err=%v", phase, partial, err)
		}
		sameResults(t, got, want, phase)
	}
	assertServes("healthy")

	// The primary begins failing every request at the connection level.
	ft.SetRules(&faultinject.Rule{Host: mp.priHost, Err: errors.New("chaos: flap")})
	for i := 0; i < 6; i++ {
		assertServes(fmt.Sprintf("during flap, query %d", i))
	}
	st := mp.router.RouterStats()
	if st.BreakerTrips != 1 || st.BreakersOpen != 1 {
		t.Fatalf("flapping primary: trips=%d open=%d, want 1 and 1 (%+v)", st.BreakerTrips, st.BreakersOpen, st)
	}
	if st.NodeErrors < 3 {
		t.Fatalf("flap produced only %d node errors, want >= 3", st.NodeErrors)
	}
	if st.BreakerDenied == 0 {
		t.Fatal("open breaker never failed fast — every request still hit the dead node")
	}
	if st.Retries != 0 {
		t.Fatalf("retry budget of 0.5 granted %d retries", st.Retries)
	}

	// Flap ends; after the cooldown the next request is the half-open
	// probe and re-closes the breaker.
	ft.Clear()
	clk.Advance(time.Second)
	assertServes("after recovery")
	if st := mp.router.RouterStats(); st.BreakersOpen != 0 || st.BreakersHalfOpen != 0 {
		t.Fatalf("breaker did not re-close: %+v", st)
	}
}

// TestChaosCanceledProbeReleasesBreaker: a request canceled while it
// holds the half-open probe slot must hand the slot back. The outcome
// is rightly unrecorded (cancellation says nothing about the node),
// but an unsettled claim would wedge the breaker half-open — denying
// every future request with no probe left to re-close it, a permanent
// outage of a healthy node.
func TestChaosCanceledProbeReleasesBreaker(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	ft := &faultinject.Transport{Clock: clk}
	mp := startMirrorPair(t, ft, cluster.RouterOptions{
		Clock:            clk,
		HedgeAfter:       100 * time.Millisecond,
		Breaker:          cluster.BreakerOptions{ConsecutiveFailures: 3, OpenFor: time.Second},
		RetryBudgetRatio: 0.01, RetryBudgetBurst: 0.5,
	})
	ctx := context.Background()
	want, err := mp.central.Search(ctx, "car engine", 8)
	if err != nil {
		t.Fatal(err)
	}

	// Trip the primary's breaker, then heal the node and let the
	// cooldown elapse: the next request is the half-open probe.
	ft.SetRules(&faultinject.Rule{Host: mp.priHost, Err: errors.New("chaos: flap")})
	for i := 0; i < 3; i++ {
		if _, _, err := mp.router.SearchPartial(ctx, "car engine", 8); err != nil {
			t.Fatalf("query %d during flap: %v", i, err)
		}
	}
	if st := mp.router.RouterStats(); st.BreakersOpen != 1 {
		t.Fatalf("breaker did not trip: %+v", st)
	}
	// Healed, but slow: the half-open probe will hang in injected
	// latency while the hedge races past it — the winner's return
	// cancels the probe while it holds the slot.
	ft.SetRules(&faultinject.Rule{Host: mp.priHost, Class: faultinject.ClassSearch, Latency: time.Hour})
	clk.Advance(time.Second)

	done := make(chan error, 1)
	go func() {
		_, partial, err := mp.router.SearchPartial(ctx, "car engine", 8)
		if err == nil && partial {
			err = errors.New("hedged answer marked partial")
		}
		done <- err
	}()
	// Two timers pending — the hedge and the probe's injected latency —
	// means the probe slot is already claimed. Fire the hedge: the
	// replica wins and the returning call cancels the in-flight probe.
	clk.BlockUntil(2)
	clk.Advance(100 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("search while probe hangs: %v", err)
	}
	ft.Clear()

	// The canceled attempt settles asynchronously (its goroutine may
	// outlive the caller), so the re-close is polled — a bounded wait,
	// not a calibrated one: with the slot released, the first search
	// that reaches the primary re-closes the breaker.
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, partial, err := mp.router.SearchPartial(ctx, "car engine", 8)
		if err != nil || partial {
			t.Fatalf("healed pair answered partial=%v err=%v", partial, err)
		}
		sameResults(t, got, want, "after canceled probe")
		st := mp.router.RouterStats()
		if st.BreakersOpen == 0 && st.BreakersHalfOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker wedged by the canceled probe: %+v", st)
		}
	}
}

// TestChaosPartitionMarksPartial: a blackholed shard degrades the
// answer — bounded by the node timeout, honestly marked partial — and
// heals completely when the partition does.
func TestChaosPartitionMarksPartial(t *testing.T) {
	tc := startCluster(t, 20, 2)
	ft := &faultinject.Transport{}
	router, err := cluster.NewRouter(tc.man, cluster.RouterOptions{
		Client:           httpClient(ft),
		NodeTimeout:      150 * time.Millisecond,
		HedgeAfter:       30 * time.Millisecond,
		RetryBudgetRatio: 0.01, RetryBudgetBurst: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	ft.SetRules(&faultinject.Rule{Host: hostOf(t, tc.servers[1].URL), Drop: true})
	start := time.Now()
	res, partial, err := router.SearchPartial(ctx, "car engine", 10)
	if err != nil {
		t.Fatalf("partitioned search errored: %v", err)
	}
	if !partial {
		t.Fatal("partitioned search not marked partial")
	}
	if len(res) == 0 {
		t.Fatal("surviving shard contributed nothing")
	}
	for _, r := range res {
		if r.Doc%2 != 0 {
			t.Fatalf("result %+v belongs to the partitioned shard", r)
		}
	}
	// "No stuck request": the call returned within a small multiple of
	// the node timeout, not the test's deadline.
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("partitioned search took %v — request effectively stuck", took)
	}
	if st := router.RouterStats(); st.Partials == 0 || st.NodeErrors == 0 {
		t.Fatalf("partition left no stats trace: %+v", st)
	}

	ft.Clear()
	want, err := tc.central.Search(ctx, "car engine", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, partial, err := router.SearchPartial(ctx, "car engine", 10)
	if err != nil || partial {
		t.Fatalf("healed search: partial=%v err=%v", partial, err)
	}
	sameResults(t, got, want, "after partition heals")
}

// TestChaosWritePathNoAckedWriteLost: scripted write-path faults make
// some Adds fail; the ledger of acks must match the cluster exactly —
// every acked document present, every refused one absent — and a
// pre-write breaker denial must not freeze ingest.
func TestChaosWritePathNoAckedWriteLost(t *testing.T) {
	tc := startCluster(t, 10, 1)
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	ft := &faultinject.Transport{} // faults are connection-level; no latency, real inner
	router, err := cluster.NewRouter(tc.man, cluster.RouterOptions{
		Client:           httpClient(ft),
		Clock:            clk,
		Breaker:          cluster.BreakerOptions{ConsecutiveFailures: 3, OpenFor: time.Second},
		RetryBudgetRatio: 0.01, RetryBudgetBurst: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := router.Sync(ctx); err != nil {
		t.Fatal(err)
	}

	var acked, refused int
	addOne := func(i int) {
		t.Helper()
		_, err := router.Add(ctx, []retrieval.Document{
			{ID: fmt.Sprintf("chaos-%d", i), Text: "car engine maintenance under chaos"},
		})
		if err != nil {
			refused++
		} else {
			acked++
		}
		if !router.Ready() {
			t.Fatalf("add %d (err=%v): ingest froze although nothing landed partially", i, err)
		}
	}

	// Every third write is refused at the connection level (Remaining: 1
	// so the fault hits exactly one request; the breaker sees isolated
	// failures and stays closed).
	for i := 0; i < 12; i++ {
		if i%3 == 0 {
			ft.SetRules(&faultinject.Rule{Class: faultinject.ClassDocs, Err: errors.New("chaos: write fault"), Remaining: 1})
		}
		addOne(i)
	}
	if refused == 0 || acked == 0 {
		t.Fatalf("schedule produced acked=%d refused=%d; want both > 0", acked, refused)
	}

	// Sustained write faults trip the primary's breaker; the next write
	// is denied BEFORE any byte lands, so ingest must stay live.
	ft.SetRules(&faultinject.Rule{Class: faultinject.ClassDocs, Err: errors.New("chaos: sustained"), Remaining: 3})
	for i := 12; i < 15; i++ {
		addOne(i)
	}
	_, err = router.Add(ctx, []retrieval.Document{{ID: "denied", Text: "never sent"}})
	if err == nil {
		t.Fatal("add through an open breaker succeeded")
	}
	refused++
	if !router.Ready() {
		t.Fatal("breaker denial froze ingest")
	}
	if st := router.RouterStats(); st.BreakerTrips != 1 || st.BreakerDenied == 0 {
		t.Fatalf("sustained write faults: %+v", st)
	}

	// Chaos over: cooldown, recover, and write once more.
	ft.Clear()
	clk.Advance(time.Second)
	addOne(99)

	// The ledger must match the cluster exactly: acked in, refused out.
	if got, want := tc.nodes[0].NumDocs(), 10+acked; got != want {
		t.Fatalf("node holds %d docs after chaos; %d acked over base 10", got, want-10)
	}
	if err := router.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	if got, want := router.NumDocs(), 10+acked; got != want {
		t.Fatalf("cluster count %d, want %d", got, want)
	}
}

// TestChaosSlowNodeHedgesDeterministically: a slow (not failing)
// primary is raced after HedgeAfter and the replica's answer wins —
// driven entirely by explicit clock advances — and the canceled
// straggler is not punished as a node failure.
func TestChaosSlowNodeHedgesDeterministically(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	ft := &faultinject.Transport{Clock: clk}
	mp := startMirrorPair(t, ft, cluster.RouterOptions{
		Clock:      clk,
		HedgeAfter: 100 * time.Millisecond,
	})
	ctx := context.Background()
	want, err := mp.central.Search(ctx, "stars and galaxies", 8)
	if err != nil {
		t.Fatal(err)
	}

	ft.SetRules(&faultinject.Rule{Host: mp.priHost, Class: faultinject.ClassSearch, Latency: time.Hour})
	type answer struct {
		res     []retrieval.Result
		partial bool
		err     error
	}
	done := make(chan answer, 1)
	go func() {
		res, partial, err := mp.router.SearchPartial(ctx, "stars and galaxies", 8)
		done <- answer{res, partial, err}
	}()
	// Two timers must be pending: the router's hedge timer and the
	// injected latency. Fire the hedge; the replica answers and wins.
	clk.BlockUntil(2)
	clk.Advance(100 * time.Millisecond)
	a := <-done
	if a.err != nil || a.partial {
		t.Fatalf("hedged search: partial=%v err=%v", a.partial, a.err)
	}
	sameResults(t, a.res, want, "hedged answer")
	st := mp.router.RouterStats()
	if st.Hedges != 1 {
		t.Fatalf("hedges = %d, want 1", st.Hedges)
	}
	// The straggler was canceled, not failed: no breaker movement, no
	// error counted against the slow-but-healthy primary.
	if st.NodeErrors != 0 || st.BreakerTrips != 0 || st.BreakersOpen != 0 {
		t.Fatalf("canceled straggler punished: %+v", st)
	}
}

// TestChaosProbeEjectionReordersCandidates: a primary whose health
// probe fails is deprioritized (the replica serves first) but never
// banned, and rejoins the preference order when probes recover.
func TestChaosProbeEjectionReordersCandidates(t *testing.T) {
	ft := &faultinject.Transport{}
	mp := startMirrorPair(t, ft, cluster.RouterOptions{})
	ctx := context.Background()

	ft.SetRules(&faultinject.Rule{Host: mp.priHost, Class: faultinject.ClassProbe, Err: errors.New("chaos: probe blackout")})
	mp.router.ProbeOnce(ctx)
	st := mp.router.RouterStats()
	if st.NodesEjected != 1 || st.ProbeFailures == 0 {
		t.Fatalf("failed probe: ejected=%d probeFailures=%d, want 1 and > 0", st.NodesEjected, st.ProbeFailures)
	}
	// Ejection is advisory: the search never touches the (healthy)
	// primary's request path, and still answers in full.
	if _, partial, err := mp.router.SearchPartial(ctx, "car engine", 5); err != nil || partial {
		t.Fatalf("search with ejected primary: partial=%v err=%v", partial, err)
	}

	ft.Clear()
	mp.router.ProbeOnce(ctx)
	if st := mp.router.RouterStats(); st.NodesEjected != 0 {
		t.Fatalf("recovered probe left %d nodes ejected", st.NodesEjected)
	}
}

// TestRouterReloadRaceWithTraffic: manifest hot-reloads racing a query
// storm (run under -race in CI) — every query answers correctly on
// whichever manifest it started with, and the router converges to the
// last version.
func TestRouterReloadRaceWithTraffic(t *testing.T) {
	tc := startCluster(t, 20, 2)
	ctx := context.Background()
	want, err := tc.central.Search(ctx, "car engine", 10)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, partial, err := tc.router.SearchPartial(ctx, "car engine", 10)
				if err != nil || partial {
					t.Errorf("query during reloads: partial=%v err=%v", partial, err)
					return
				}
				sameResults(t, got, want, "during reloads")
			}
		}()
	}
	// Stats readers and probe rounds race the reloads too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tc.router.RouterStats()
			tc.router.ProbeOnce(ctx)
		}
	}()

	const lastVersion = 40
	for v := 2; v <= lastVersion; v++ {
		m := *tc.man
		m.Version = v
		m.Nodes = append([]cluster.Node(nil), tc.man.Nodes...)
		if err := tc.router.Reload(&m); err != nil {
			t.Fatalf("reload v%d: %v", v, err)
		}
	}
	close(stop)
	wg.Wait()
	if got := tc.router.Manifest().Version; got != lastVersion {
		t.Fatalf("router converged to version %d, want %d", got, lastVersion)
	}
}

// TestRouterBreakerMetricsExposition: the breaker/health series render
// in the Prometheus exposition with the values the incident produced —
// what the failure-modes matrix in OPERATIONS.md points operators at.
func TestRouterBreakerMetricsExposition(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	ft := &faultinject.Transport{Clock: clk}
	mp := startMirrorPair(t, ft, cluster.RouterOptions{
		Clock:            clk,
		Breaker:          cluster.BreakerOptions{ConsecutiveFailures: 3, OpenFor: time.Second},
		RetryBudgetRatio: 0.01, RetryBudgetBurst: 0.5,
	})
	ctx := context.Background()

	// Trip the primary's breaker, fail one probe round, and take one
	// shed, so every series has something to say.
	ft.SetRules(
		&faultinject.Rule{Host: mp.priHost, Class: faultinject.ClassProbe, Err: errors.New("chaos: probe out")},
		&faultinject.Rule{Host: mp.priHost, Err: errors.New("chaos: down")},
	)
	for i := 0; i < 4; i++ {
		if _, _, err := mp.router.SearchPartial(ctx, "car engine", 5); err != nil {
			t.Fatalf("query %d during incident: %v", i, err)
		}
	}
	mp.router.ProbeOnce(ctx)

	reg := metrics.NewRegistry()
	mp.router.RegisterMetrics(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"lsi_cluster_breakers_open 1",
		"lsi_cluster_breakers_half_open 0",
		"lsi_cluster_breaker_trips_total 1",
		"lsi_cluster_nodes_ejected 1",
		"lsi_cluster_node_sheds_total 0",
		"lsi_cluster_retries_total 0",
		"lsi_cluster_retry_budget_exhausted_total",
		"lsi_cluster_breaker_denied_total 1",
		"lsi_cluster_probe_failures_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}
}
