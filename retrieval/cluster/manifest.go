// Package cluster is the shard-per-node distributed serving tier: a
// Router that fans text queries out to shard-owning nodes over the
// httpapi JSON protocol and merges the partials deterministically, and
// a Replica that mirrors a node by pulling its checkpoint over the
// /v1/replicate endpoints and tailing its write-ahead log.
//
// The topology contract is the one the sharded index already keeps
// in-process (retrieval/shard): global document g lives on shard
// g mod S as local document g div S. Each node serves a standalone
// 1-shard export of its shard (retrieval.Index.SaveShardDir), so a
// node's local result (l, score) is the cluster result
// (l*S + s, score) — the score bit-for-bit, because per-shard latent
// spaces and fold-in are independent of which process hosts them and
// JSON round-trips float64 exactly. Merging per-node top-N lists with
// the same (score desc, global asc) comparator the single-process
// index uses therefore reproduces the single-process answer bitwise
// whenever every shard responds; see router.go for what happens when
// one does not (partial results, surfaced honestly).
//
// Freshness across processes is tracked as (manifest generation,
// document count) — NOT the in-process epoch, which advances on
// compaction timing no two processes share. See retrieval.Index.Epoch.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
)

// ManifestVersionFloor is the smallest version a manifest may declare;
// Router.Reload additionally requires each reload to strictly increase
// the version, so a stale file left behind by an older deploy can never
// roll the topology back.
const ManifestVersionFloor = 1

// Node is one serving process in the cluster manifest.
type Node struct {
	// Name identifies the node in logs, errors, and metrics; unique
	// within a manifest.
	Name string `json:"name"`
	// URL is the node's httpapi base URL (scheme + host[:port]).
	URL string `json:"url"`
	// Shard is the shard this node serves, in [0, Manifest.Shards).
	Shard int `json:"shard"`
	// Replica marks a catch-up mirror: eligible for reads (the router
	// hedges to it when the primary is slow or down), never for writes.
	Replica bool `json:"replica,omitempty"`
}

// Manifest is the versioned cluster topology: which node serves which
// shard. It is deliberately dumb data — a JSON file an operator edits
// (or a control loop rewrites) and the router hot-reloads; there is no
// consensus protocol underneath it, so correctness of a reload is the
// operator's contract: version strictly increases, every shard keeps
// exactly one primary.
type Manifest struct {
	Version int    `json:"version"`
	Shards  int    `json:"shards"`
	Nodes   []Node `json:"nodes"`
}

// Validate checks the manifest is a servable topology: a positive
// version and shard count, unique node names, parseable URLs, every
// node's shard in range, and exactly one primary (non-replica node) per
// shard. Replicas are optional, any number per shard.
func (m *Manifest) Validate() error {
	if m.Version < ManifestVersionFloor {
		return fmt.Errorf("cluster: manifest version %d, want >= %d", m.Version, ManifestVersionFloor)
	}
	if m.Shards < 1 {
		return fmt.Errorf("cluster: manifest declares %d shards, want >= 1", m.Shards)
	}
	names := make(map[string]bool, len(m.Nodes))
	primaries := make([]int, m.Shards)
	for i, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", i)
		}
		if names[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: node %q: URL %q is not a base URL", n.Name, n.URL)
		}
		if n.Shard < 0 || n.Shard >= m.Shards {
			return fmt.Errorf("cluster: node %q: shard %d out of range [0, %d)", n.Name, n.Shard, m.Shards)
		}
		if !n.Replica {
			primaries[n.Shard]++
		}
	}
	for s, c := range primaries {
		if c != 1 {
			return fmt.Errorf("cluster: shard %d has %d primaries, want exactly 1", s, c)
		}
	}
	return nil
}

// ParseManifest decodes and validates manifest bytes; arbitrary input
// yields a valid *Manifest or a descriptive error, never a panic.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadManifest reads and validates a manifest file — the boot and
// hot-reload entry point for cmd/lsiserve -cluster.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: manifest: %w", err)
	}
	return ParseManifest(data)
}

// byShard compiles the manifest into per-shard candidate lists, primary
// first — the order the router tries (and hedges) nodes in.
func (m *Manifest) byShard() [][]Node {
	out := make([][]Node, m.Shards)
	for _, n := range m.Nodes {
		if !n.Replica {
			out[n.Shard] = append([]Node{n}, out[n.Shard]...)
		} else {
			out[n.Shard] = append(out[n.Shard], n)
		}
	}
	return out
}
