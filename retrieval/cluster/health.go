package cluster

// Active health: the router probes every manifest node in the
// background (GET /readyz + the freshness headers) and folds the
// answers into an outlier-ejection view that hedging and write-routing
// consult before picking candidates. Probes are cheap and advisory —
// an ejected node is deprioritized, not banned: it stays last in the
// candidate order so a wrong ejection costs latency, never
// availability, and the per-node breakers (breaker.go) remain the
// authoritative fail-fast mechanism.

import (
	"context"
	"net/http"
	"strconv"
	"sync"
)

// nodeHealth is the router's per-node view: the circuit breaker plus
// the latest probe observations.
type nodeHealth struct {
	breaker *Breaker

	mu         sync.Mutex
	probed     bool // at least one probe has completed
	ready      bool // last probe answered 200 /readyz
	docs       int  // X-Index-Docs from the last successful probe
	generation uint64
	probeFails int // consecutive probe failures
}

// health returns (creating on first use) the node's health record.
// Records are keyed by URL, so a node that moves addresses starts
// fresh — exactly right, since the old address's failures say nothing
// about the new one.
func (r *Router) health(node Node) *nodeHealth {
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	h, ok := r.nodeHealth[node.URL]
	if !ok {
		h = &nodeHealth{breaker: NewBreaker(r.opts.Breaker)}
		r.nodeHealth[node.URL] = h
	}
	return h
}

// ejected reports whether the node is currently an outlier: its last
// probe failed or answered not-ready, or its document count lags the
// freshest candidate of the same shard by more than FreshnessLagDocs.
// A node never probed is not ejected — ejection is evidence-based.
func (h *nodeHealth) ejectedAgainst(shardMaxDocs, lagLimit int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.probed {
		return false
	}
	if h.probeFails > 0 || !h.ready {
		return true
	}
	return lagLimit > 0 && shardMaxDocs-h.docs > lagLimit
}

// orderCandidates reorders one shard's candidate list for a fan-out or
// write: non-ejected nodes first (stable, so the manifest's
// primary-first preference is preserved within each class), ejected
// ones last. The slice is fresh; the manifest's is never mutated.
func (r *Router) orderCandidates(nodes []Node) []Node {
	shardMax := 0
	for _, n := range nodes {
		h := r.health(n)
		h.mu.Lock()
		if h.probed && h.probeFails == 0 && h.docs > shardMax {
			shardMax = h.docs
		}
		h.mu.Unlock()
	}
	out := make([]Node, 0, len(nodes))
	var ejected []Node
	for _, n := range nodes {
		if r.health(n).ejectedAgainst(shardMax, r.opts.FreshnessLagDocs) {
			ejected = append(ejected, n)
		} else {
			out = append(out, n)
		}
	}
	return append(out, ejected...)
}

// ProbeOnce probes every node of the serving manifest once,
// concurrently, and updates the health view. It returns when every
// probe has completed or failed; errors are folded into the view, not
// returned — probing is a background activity.
func (r *Router) ProbeOnce(ctx context.Context) {
	ms := r.man.Load()
	var wg sync.WaitGroup
	for _, node := range ms.man.Nodes {
		wg.Add(1)
		go func(node Node) {
			defer wg.Done()
			r.probeNode(ctx, node)
		}(node)
	}
	wg.Wait()
}

// probeNode runs one /readyz probe and records the observation. The
// probe deliberately bypasses the breaker: it is the recovery signal
// for the ejection view and must keep flowing while requests fail
// fast. (Breaker recovery has its own half-open probe.)
func (r *Router) probeNode(ctx context.Context, node Node) {
	h := r.health(node)
	ctx, cancel := context.WithTimeout(ctx, r.opts.NodeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, node.URL+"/readyz", nil)
	if err != nil {
		r.recordProbe(h, nil, err)
		return
	}
	resp, err := r.client.Do(req)
	r.recordProbe(h, resp, err)
}

// recordProbe folds one probe outcome into the node's health record.
func (r *Router) recordProbe(h *nodeHealth, resp *http.Response, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.probed = true
	if err != nil {
		h.probeFails++
		h.ready = false
		r.probeFails.Add(1)
		return
	}
	defer resp.Body.Close()
	h.probeFails = 0
	h.ready = resp.StatusCode == http.StatusOK
	if d, err := strconv.Atoi(resp.Header.Get("X-Index-Docs")); err == nil {
		h.docs = d
	}
	if g, err := strconv.ParseUint(resp.Header.Get("X-Index-Generation"), 10, 64); err == nil {
		h.generation = g
	}
}

// RunProbes probes every manifest node each ProbeInterval until ctx
// ends — the router's background health loop. Waits run on the
// router's clock, so chaos tests drive the loop deterministically.
func (r *Router) RunProbes(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-r.clock.After(r.opts.ProbeInterval):
			r.ProbeOnce(ctx)
		}
	}
}

// healthSnapshot counts breaker and ejection states across the known
// nodes, for stats and metrics.
func (r *Router) healthSnapshot() (open, halfOpen, ejected int, trips int64) {
	r.healthMu.Lock()
	defer r.healthMu.Unlock()
	for _, h := range r.nodeHealth {
		switch h.breaker.State() {
		case BreakerOpen:
			open++
		case BreakerHalfOpen:
			halfOpen++
		}
		trips += h.breaker.Trips()
		h.mu.Lock()
		if h.probed && (h.probeFails > 0 || !h.ready) {
			ejected++
		}
		h.mu.Unlock()
	}
	return
}
