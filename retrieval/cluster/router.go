package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/retrieval"
	"repro/retrieval/httpapi"
)

// RouterOptions configures a Router; zero values pick the documented
// defaults.
type RouterOptions struct {
	// NodeTimeout bounds each per-node request (default 2s). The
	// caller's context still applies on top.
	NodeTimeout time.Duration
	// HedgeAfter is how long the router waits on a node before also
	// trying the shard's next candidate (default 150ms). A node that
	// fails outright is hedged immediately, without waiting. The first
	// success wins; stragglers are canceled.
	HedgeAfter time.Duration
	// Client is the HTTP client for node requests (default: a dedicated
	// client with sane connection reuse).
	Client *http.Client

	// Clock is the router's time source for hedge timers, retry
	// backoff, breaker cooldowns, and the probe loop (default
	// faultinject.Real); chaos tests inject a FakeClock and drive every
	// timing decision deterministically.
	Clock faultinject.Clock
	// Breaker configures the per-node circuit breakers; its Clock
	// defaults to the router's.
	Breaker BreakerOptions
	// MaxRetries caps same-node retries of a transport-level failure
	// (default 2); HTTP status errors fail over via hedging instead of
	// retrying. Every retry also needs retry-budget approval.
	MaxRetries int
	// RetryBase and RetryMaxDelay bound the jittered exponential
	// backoff between retries (defaults 25ms and 500ms).
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// RetryBudgetRatio is the retry budget's refill per logical node
	// request (default 0.1): across the router, retries cannot exceed
	// ~this fraction of traffic, so a dead cluster sees failing
	// requests, not a retry storm. RetryBudgetBurst caps (and seeds)
	// the saved-up budget (default 10).
	RetryBudgetRatio float64
	RetryBudgetBurst float64
	// RetrySeed seeds the backoff jitter (default 1); chaos tests pin
	// it so retry schedules are reproducible.
	RetrySeed int64
	// ProbeInterval is RunProbes' background health-probe cadence
	// (default 2s).
	ProbeInterval time.Duration
	// FreshnessLagDocs ejects a node whose probed document count lags
	// the freshest same-shard candidate by more than this (0 =
	// freshness never ejects; probe failures and not-ready still do).
	FreshnessLagDocs int
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.NodeTimeout <= 0 {
		o.NodeTimeout = 2 * time.Second
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 150 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	if o.Clock == nil {
		o.Clock = faultinject.Real
	}
	if o.Breaker.Clock == nil {
		o.Breaker.Clock = o.Clock
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 2
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 25 * time.Millisecond
	}
	if o.RetryMaxDelay <= 0 {
		o.RetryMaxDelay = 500 * time.Millisecond
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	return o
}

// manifestState is the router's compiled topology, swapped atomically
// on Reload so queries in flight keep the manifest they started with.
type manifestState struct {
	man     *Manifest
	byShard [][]Node
}

// Router fans queries out to the shard-owning nodes of a cluster
// manifest and merges their answers into the single-process result
// order. It implements retrieval.Retriever (plus the httpapi
// FanoutSearcher, DocAdder, and ReadyReporter capabilities), so
// httpapi.NewHandler(router, ...) is a complete cluster front door.
//
// Reads degrade, writes don't: a shard whose every candidate node
// failed is simply absent from a search's merge — the response is
// marked partial (X-Partial-Results through httpapi) and counted — but
// an Add that cannot reach a shard primary fails and freezes ingest
// until Sync re-derives the cluster's document count, because global
// numbering (g mod S owns g) leaves no correct place to put a skipped
// document.
type Router struct {
	opts   RouterOptions
	client *http.Client
	clock  faultinject.Clock
	man    atomic.Pointer[manifestState]

	// ingestMu serializes writers: round-robin numbering means each
	// batch's shard split depends on the exact global position where the
	// batch starts.
	ingestMu   sync.Mutex
	nextGlobal int
	synced     bool

	// Health view: per-node breakers + probe observations (health.go),
	// and the router-wide retry budget.
	healthMu   sync.Mutex
	nodeHealth map[string]*nodeHealth
	budget     *RetryBudget
	rngMu      sync.Mutex
	rng        *rand.Rand // backoff jitter; guarded by rngMu

	docs       atomic.Int64 // published nextGlobal, for lock-free NumDocs
	partials   atomic.Int64
	hedges     atomic.Int64
	nodeErrs   atomic.Int64
	nodeSheds  atomic.Int64
	denied     atomic.Int64 // requests failed fast by an open breaker
	probeFails atomic.Int64
	reloads    atomic.Int64
	staleRels  atomic.Int64
}

// NewRouter compiles a validated manifest into a Router. Call Sync
// before ingesting (Add also syncs lazily); searches need no sync.
func NewRouter(m *Manifest, opts RouterOptions) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	r := &Router{opts: opts.withDefaults()}
	r.client = r.opts.Client
	r.clock = r.opts.Clock
	r.nodeHealth = make(map[string]*nodeHealth)
	r.budget = NewRetryBudget(r.opts.RetryBudgetRatio, r.opts.RetryBudgetBurst)
	r.rng = rand.New(rand.NewSource(r.opts.RetrySeed))
	r.man.Store(&manifestState{man: m, byShard: m.byShard()})
	return r, nil
}

// Reload hot-swaps the cluster topology. The new manifest must validate,
// keep the shard count (resharding is a rebuild, not a reload), and
// strictly increase the version — a stale file can never roll the
// topology back. Queries in flight finish on the manifest they started
// with.
func (r *Router) Reload(m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cur := r.man.Load()
	if m.Version <= cur.man.Version {
		r.staleRels.Add(1)
		return fmt.Errorf("cluster: reload version %d is not newer than the serving version %d", m.Version, cur.man.Version)
	}
	if m.Shards != cur.man.Shards {
		return fmt.Errorf("cluster: reload changes the shard count %d -> %d; resharding requires a rebuild", cur.man.Shards, m.Shards)
	}
	r.man.Store(&manifestState{man: m, byShard: m.byShard()})
	r.reloads.Add(1)
	return nil
}

// Manifest returns the serving topology.
func (r *Router) Manifest() *Manifest { return r.man.Load().man }

// nodeStatusError is a non-2xx node response: the node answered, so
// the failure carries HTTP semantics the router branches on — a shed
// (429/503 + Retry-After) propagates backpressure, anything else is a
// plain failure handled by hedging.
type nodeStatusError struct {
	node, path string
	code       int
	retryAfter time.Duration
	msg        string
}

func (e *nodeStatusError) Error() string {
	return fmt.Sprintf("cluster: node %q: %s: status %d: %s", e.node, e.path, e.code, e.msg)
}

// shed reports whether the response was load shedding (queue-full 429
// or debt/drain 503) rather than a malfunction.
func (e *nodeStatusError) shed() bool {
	return e.code == http.StatusTooManyRequests || e.code == http.StatusServiceUnavailable
}

// shedOf extracts a shed from an error chain (nil when the error is
// not a shed).
func shedOf(err error) *nodeStatusError {
	var nse *nodeStatusError
	if errors.As(err, &nse) && nse.shed() {
		return nse
	}
	return nil
}

// breakerDeniedError is a request failed fast by an open breaker — no
// bytes hit the network.
type breakerDeniedError struct{ node string }

func (e *breakerDeniedError) Error() string {
	return fmt.Sprintf("cluster: node %q: circuit breaker open", e.node)
}

// post runs one JSON request against one node, decoding a 2xx body
// into out. Non-2xx responses become *nodeStatusError carrying the
// node's name, the status, the Retry-After hint, and the body's error
// message.
func (r *Router) post(ctx context.Context, node Node, path string, body, out any) error {
	ctx, cancel := context.WithTimeout(ctx, r.opts.NodeTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encoding request for node %q: %w", node.Name, err)
		}
		rd = bytes.NewReader(b)
	}
	method := http.MethodPost
	if body == nil {
		method = http.MethodGet
	}
	req, err := http.NewRequestWithContext(ctx, method, node.URL+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: node %q: %w", node.Name, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: node %q: %w", node.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e httpapi.ErrorResponse
		json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&e)
		var after time.Duration
		if secs, aerr := strconv.Atoi(resp.Header.Get("Retry-After")); aerr == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		return &nodeStatusError{node: node.Name, path: path, code: resp.StatusCode, retryAfter: after, msg: e.Error}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: node %q: decoding %s response: %w", node.Name, path, err)
	}
	return nil
}

// jitter draws one backoff delay for a retry attempt from the seeded
// jitter source.
func (r *Router) jitter(attempt int) time.Duration {
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	return backoff(attempt, r.opts.RetryBase, r.opts.RetryMaxDelay, r.rng)
}

// do is post behind the resilience controls: the node's breaker gates
// admission (denied requests fail fast without touching the network
// and are NOT recorded as breaker outcomes), every allowed outcome is
// recorded, and transport-level failures — the node never answered —
// are retried against the same node with jittered exponential backoff,
// each retry approved by the router-wide retry budget. Status errors
// are not retried here: the node is alive and said no; hedging decides
// whether another candidate should be tried.
func (r *Router) do(ctx context.Context, node Node, path string, body, out any) error {
	h := r.health(node)
	r.budget.OnRequest()
	for attempt := 0; ; attempt++ {
		if !h.breaker.Allow() {
			r.denied.Add(1)
			return &breakerDeniedError{node: node.Name}
		}
		err := r.post(ctx, node, path, body, out)
		var nse *nodeStatusError
		isStatus := errors.As(err, &nse)
		if err != nil && !isStatus && ctx.Err() != nil {
			// Canceled mid-flight — a hedge winner elsewhere, or the
			// caller gave up. Says nothing about the node: don't record
			// a breaker outcome, don't count an error. But if Allow
			// claimed the half-open probe slot, hand it back — an
			// unsettled probe would deny every future request.
			h.breaker.Cancel()
			return err
		}
		// A shed or client-level status is a healthy node answering;
		// only transport failures and 5xx malfunctions feed the breaker.
		h.breaker.Record(err == nil || (isStatus && (nse.code < 500 || nse.shed())))
		if err != nil {
			// Counted at the source so hedge losers and retries show up
			// even when a winner returns before their outcome drains.
			if shedOf(err) != nil {
				r.nodeSheds.Add(1)
			} else {
				r.nodeErrs.Add(1)
			}
		}
		if err == nil || isStatus {
			return err
		}
		if attempt >= r.opts.MaxRetries || !r.budget.TryRetry() {
			return err
		}
		select {
		case <-r.clock.After(r.jitter(attempt)):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// hedged runs call against a shard's candidates, primary first. A
// candidate that errors is replaced immediately; one that is merely
// slow is raced against the next candidate after HedgeAfter. The first
// success wins and cancels the stragglers; when every candidate has
// failed the last error is returned.
func hedged[T any](r *Router, ctx context.Context, nodes []Node, call func(context.Context, Node) (T, error)) (T, error) {
	var zero T
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, len(nodes))
	launched, pending := 0, 0
	launch := func() {
		node := nodes[launched]
		launched++
		pending++
		go func() {
			v, err := call(hctx, node)
			ch <- outcome{v, err}
		}()
	}
	launch()
	hedge := r.clock.After(r.opts.HedgeAfter)
	var lastErr error
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				return out.v, nil
			}
			// Counting happens in do (sheds/errors) and at the breaker
			// (denied), so outcomes draining after a winner still show
			// up in stats. A shed outranks transport noise as the error
			// to surface: it carries the backpressure hint.
			if lastErr == nil || shedOf(lastErr) == nil {
				lastErr = out.err
			}
			if launched < len(nodes) {
				launch()
			} else if pending == 0 {
				return zero, lastErr
			}
		case <-hedge:
			if launched < len(nodes) {
				r.hedges.Add(1)
				launch()
				hedge = r.clock.After(r.opts.HedgeAfter)
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// shardResults is one shard's answer to a fan-out, remapped to global
// document numbers.
type shardResults struct {
	shard   int
	perQ    [][]retrieval.Result
	failed  bool
	lastErr error
}

// fanout runs one batch of queries against every shard concurrently
// and returns the per-shard outcomes. Queries and merge stay strictly
// deterministic; only availability varies.
func (r *Router) fanout(ctx context.Context, queries []string, topN int) ([]shardResults, *manifestState) {
	ms := r.man.Load()
	S := ms.man.Shards
	out := make([]shardResults, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// The health view orders candidates (outliers last) before
			// hedging walks them.
			perQ, err := hedged(r, ctx, r.orderCandidates(ms.byShard[s]), func(ctx context.Context, node Node) ([][]retrieval.Result, error) {
				if len(queries) == 1 {
					var resp httpapi.SearchResponse
					if err := r.do(ctx, node, "/v1/search", httpapi.SearchRequest{Query: queries[0], TopN: topN}, &resp); err != nil {
						return nil, err
					}
					return [][]retrieval.Result{resp.Results}, nil
				}
				var resp httpapi.BatchSearchResponse
				if err := r.do(ctx, node, "/v1/search:batch", httpapi.BatchSearchRequest{Queries: queries, TopN: topN}, &resp); err != nil {
					return nil, err
				}
				if len(resp.Results) != len(queries) {
					return nil, fmt.Errorf("cluster: node %q answered %d of %d queries", node.Name, len(resp.Results), len(queries))
				}
				return resp.Results, nil
			})
			out[s] = shardResults{shard: s, perQ: perQ, failed: err != nil, lastErr: err}
		}(s)
	}
	wg.Wait()
	return out, ms
}

// mergeQuery merges one query's per-shard answers into the
// single-process result order: remap each shard-local document l to
// global l*S + s, then sort with the exact comparator the in-process
// index uses (internal/topk: score desc, global asc) and truncate to
// topN. Because each node returns its own top-topN superset of the
// global top-topN's members on that shard, the merge is exact — not an
// approximation.
func mergeQuery(parts []shardResults, q, topN, S int) []retrieval.Result {
	var ms []topk.Match
	ids := make(map[int]string)
	for _, p := range parts {
		if p.failed {
			continue
		}
		for _, res := range p.perQ[q] {
			g := res.Doc*S + p.shard
			ms = append(ms, topk.Match{Doc: g, Score: res.Score})
			ids[g] = res.ID
		}
	}
	topk.SortMatches(ms)
	if topN > 0 && len(ms) > topN {
		ms = ms[:topN]
	}
	out := make([]retrieval.Result, len(ms))
	for i, m := range ms {
		out[i] = retrieval.Result{Doc: m.Doc, ID: ids[m.Doc], Score: m.Score}
	}
	return out
}

// allFailedErr shapes the no-shard-reachable error. When the decisive
// failure was a shed, it propagates as httpapi.ShedError, so the
// router's client receives the nodes' 429/503 and Retry-After hint
// instead of a flattened 500 — backpressure survives the router hop.
func allFailedErr(lastErr error) error {
	if nse := shedOf(lastErr); nse != nil {
		return &httpapi.ShedError{StatusCode: nse.code, RetryAfter: nse.retryAfter, Msg: nse.Error()}
	}
	return fmt.Errorf("cluster: no shard reachable: %w", lastErr)
}

// SearchPartial fans one query across the cluster. partial reports a
// degraded quorum: at least one shard answered and at least one did
// not, so the results are a correct merge of the shards that did.
// When no shard answers, the error of the last failure is returned.
func (r *Router) SearchPartial(ctx context.Context, query string, topN int) ([]retrieval.Result, bool, error) {
	parts, ms := r.fanout(ctx, []string{query}, topN)
	failed := 0
	var lastErr error
	for _, p := range parts {
		if p.failed {
			failed++
			if lastErr == nil || shedOf(lastErr) == nil {
				lastErr = p.lastErr
			}
		}
	}
	if failed == len(parts) {
		return nil, false, allFailedErr(lastErr)
	}
	partial := failed > 0
	if partial {
		r.partials.Add(1)
	}
	return mergeQuery(parts, 0, topN, ms.man.Shards), partial, nil
}

// SearchBatchPartial is SearchPartial for a query batch; one fan-out
// round trip per shard regardless of batch size.
func (r *Router) SearchBatchPartial(ctx context.Context, queries []string, topN int) ([][]retrieval.Result, bool, error) {
	parts, ms := r.fanout(ctx, queries, topN)
	failed := 0
	var lastErr error
	for _, p := range parts {
		if p.failed {
			failed++
			if lastErr == nil || shedOf(lastErr) == nil {
				lastErr = p.lastErr
			}
		}
	}
	if failed == len(parts) {
		return nil, false, allFailedErr(lastErr)
	}
	partial := failed > 0
	if partial {
		r.partials.Add(1)
	}
	out := make([][]retrieval.Result, len(queries))
	for q := range queries {
		out[q] = mergeQuery(parts, q, topN, ms.man.Shards)
	}
	return out, partial, nil
}

// Search implements retrieval.Retriever. Partiality is not visible
// through this narrow interface; callers that must distinguish a
// degraded answer use SearchPartial (httpapi does, surfacing the
// X-Partial-Results header).
func (r *Router) Search(ctx context.Context, query string, topN int) ([]retrieval.Result, error) {
	res, _, err := r.SearchPartial(ctx, query, topN)
	return res, err
}

// SearchBatch implements retrieval.Retriever.
func (r *Router) SearchBatch(ctx context.Context, queries []string, topN int) ([][]retrieval.Result, error) {
	res, _, err := r.SearchBatchPartial(ctx, queries, topN)
	return res, err
}

// NumDocs returns the cluster's document count as of the last
// Sync/Add (0 before the first sync).
func (r *Router) NumDocs() int { return int(r.docs.Load()) }

// Stats implements retrieval.Retriever with a cluster-level summary.
func (r *Router) Stats() retrieval.Stats {
	ms := r.man.Load()
	return retrieval.Stats{
		Backend:     "cluster",
		Sharded:     true,
		Shards:      ms.man.Shards,
		NumDocs:     r.NumDocs(),
		TextQueries: true,
	}
}

// Ready implements the httpapi readiness capability: the router is
// ready once ingest is synced (searches work regardless; readiness
// gates traffic that may include writes).
func (r *Router) Ready() bool {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.synced
}

// docsOnShard is the round-robin partition arithmetic: how many of N
// global documents shard s of S holds.
func docsOnShard(s, N, S int) int {
	if N <= s {
		return 0
	}
	return (N - s + S - 1) / S
}

// Sync derives the cluster's next global document position from the
// shard primaries' document counts and verifies they form a consistent
// round-robin prefix (shard s of S holding ceil((N-s)/S) documents).
// Inconsistent counts — the wreckage of a partially failed write —
// leave ingest frozen with a descriptive error; searches still work.
func (r *Router) Sync(ctx context.Context) error {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.syncLocked(ctx)
}

func (r *Router) syncLocked(ctx context.Context) error {
	r.synced = false
	ms := r.man.Load()
	S := ms.man.Shards
	counts := make([]int, S)
	total := 0
	for s := 0; s < S; s++ {
		primary := ms.byShard[s][0]
		var st retrieval.Stats
		if err := r.post(ctx, primary, "/v1/stats", nil, &st); err != nil {
			return fmt.Errorf("cluster: sync: %w", err)
		}
		counts[s] = st.NumDocs
		total += st.NumDocs
	}
	for s := 0; s < S; s++ {
		if want := docsOnShard(s, total, S); counts[s] != want {
			return fmt.Errorf("cluster: sync: shard %d holds %d documents, want %d of a consistent %d-document round-robin — a write landed partially; see OPERATIONS.md",
				s, counts[s], want, total)
		}
	}
	r.nextGlobal = total
	r.docs.Store(int64(total))
	r.synced = true
	return nil
}

// Add implements live ingest through the router: documents are
// numbered from the cluster's next global position and routed to their
// owning shards (global g to shard g mod S), preserving the exact
// placement a single-process sharded index would have chosen. Writes
// go to primaries only. Any failure freezes ingest (synced=false)
// until Sync verifies what actually landed, because a partially
// applied batch would otherwise shift every later document's shard.
func (r *Router) Add(ctx context.Context, docs []retrieval.Document) (int, error) {
	if len(docs) == 0 {
		return 0, fmt.Errorf("cluster: empty add batch")
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	if !r.synced {
		if err := r.syncLocked(ctx); err != nil {
			return 0, err
		}
	}
	ms := r.man.Load()
	S := ms.man.Shards
	first := r.nextGlobal

	// Split the batch by owning shard. Globals are assigned in order, so
	// each shard's sub-batch lands at consecutive locals starting at the
	// local position of its first global.
	type sub struct {
		docs       []httpapi.AddDocRequest
		firstLocal int
	}
	subs := make([]sub, S)
	for i, d := range docs {
		g := first + i
		s := g % S
		if subs[s].docs == nil {
			subs[s].firstLocal = g / S
		}
		subs[s].docs = append(subs[s].docs, httpapi.AddDocRequest{ID: d.ID, Text: d.Text})
	}
	// Consult the health view BEFORE the first byte lands: a primary
	// whose breaker is open would fail this batch anyway, but failing it
	// now — with no shard written — means ingest need not freeze.
	for s := 0; s < S; s++ {
		if subs[s].docs == nil {
			continue
		}
		primary := ms.byShard[s][0]
		if !r.health(primary).breaker.Ready() {
			r.denied.Add(1)
			return 0, &breakerDeniedError{node: primary.Name}
		}
		// Ready is a side-effect-free check: the real request below
		// claims (and settles) any half-open probe slot itself. A claim
		// here could leak — a later shard's denial returns before this
		// shard's request ever runs.
	}
	landed := false // a failure before any shard write needs no freeze
	for s := 0; s < S; s++ {
		if subs[s].docs == nil {
			continue
		}
		primary := ms.byShard[s][0]
		var resp httpapi.AddDocsResponse
		if err := r.do(ctx, primary, "/v1/docs:batch", httpapi.AddDocsRequest{Docs: subs[s].docs}, &resp); err != nil {
			if nse := shedOf(err); nse != nil {
				err = &httpapi.ShedError{StatusCode: nse.code, RetryAfter: nse.retryAfter, Msg: nse.Error()}
			}
			if !landed {
				return 0, fmt.Errorf("cluster: add: %w", err)
			}
			r.synced = false
			return 0, fmt.Errorf("cluster: add: ingest frozen until Sync: %w", err)
		}
		if resp.First != subs[s].firstLocal {
			r.synced = false
			return 0, fmt.Errorf("cluster: add: shard %d appended at local %d, expected %d — cluster out of sync, ingest frozen until Sync",
				s, resp.First, subs[s].firstLocal)
		}
		landed = true
	}
	r.nextGlobal += len(docs)
	r.docs.Store(int64(r.nextGlobal))
	return first, nil
}

// RouterStats is the router's observability snapshot.
type RouterStats struct {
	// ManifestVersion is the serving topology's version.
	ManifestVersion int
	// Synced reports whether ingest is live (see Sync).
	Synced bool
	// Docs is the cluster document count as of the last Sync/Add.
	Docs int64
	// Partials counts quorum-degraded search responses served.
	Partials int64
	// Hedges counts hedged requests launched because a node was slow.
	Hedges int64
	// NodeErrors counts failed node requests (including hedge losers).
	NodeErrors int64
	// Reloads and StaleReloads count accepted and version-rejected
	// manifest reloads.
	Reloads      int64
	StaleReloads int64
	// NodeSheds counts node responses that shed load (429/503) — healthy
	// backpressure, split from NodeErrors so a dashboard can tell
	// overload from failure.
	NodeSheds int64
	// Retries and RetryBudgetExhausted count same-node retries granted
	// and refused by the retry budget.
	Retries              int64
	RetryBudgetExhausted int64
	// BreakerDenied counts requests failed fast by an open breaker.
	BreakerDenied int64
	// BreakersOpen/HalfOpen gauge the current breaker states across
	// known nodes; BreakerTrips totals closed→open transitions.
	BreakersOpen     int
	BreakersHalfOpen int
	BreakerTrips     int64
	// NodesEjected gauges nodes the probe loop currently marks as
	// outliers; ProbeFailures counts failed background probes.
	NodesEjected  int
	ProbeFailures int64
}

// RouterStats snapshots the router's counters.
func (r *Router) RouterStats() RouterStats {
	r.ingestMu.Lock()
	synced := r.synced
	r.ingestMu.Unlock()
	open, halfOpen, ejected, trips := r.healthSnapshot()
	return RouterStats{
		ManifestVersion:      r.man.Load().man.Version,
		Synced:               synced,
		Docs:                 r.docs.Load(),
		Partials:             r.partials.Load(),
		Hedges:               r.hedges.Load(),
		NodeErrors:           r.nodeErrs.Load(),
		Reloads:              r.reloads.Load(),
		StaleReloads:         r.staleRels.Load(),
		NodeSheds:            r.nodeSheds.Load(),
		Retries:              r.budget.Retries(),
		RetryBudgetExhausted: r.budget.Exhausted(),
		BreakerDenied:        r.denied.Load(),
		BreakersOpen:         open,
		BreakersHalfOpen:     halfOpen,
		BreakerTrips:         trips,
		NodesEjected:         ejected,
		ProbeFailures:        r.probeFails.Load(),
	}
}

// RegisterMetrics exports the router's counters on reg under the
// lsi_cluster_* namespace (distinct from the per-node lsi_* series, so
// a router can share a Prometheus job with the nodes it fronts).
func (r *Router) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("lsi_cluster_manifest_version", "Version of the serving cluster manifest.",
		func() float64 { return float64(r.man.Load().man.Version) })
	reg.GaugeFunc("lsi_cluster_docs", "Cluster document count as of the last ingest sync.",
		func() float64 { return float64(r.docs.Load()) })
	reg.GaugeFunc("lsi_cluster_ingest_synced", "1 while ingest is synced and accepting writes.",
		func() float64 {
			if r.Ready() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("lsi_cluster_partial_results_total", "Search responses served from a degraded quorum.",
		func() float64 { return float64(r.partials.Load()) })
	reg.CounterFunc("lsi_cluster_hedges_total", "Hedged node requests launched because a primary was slow.",
		func() float64 { return float64(r.hedges.Load()) })
	reg.CounterFunc("lsi_cluster_node_errors_total", "Failed node requests, including hedge losers.",
		func() float64 { return float64(r.nodeErrs.Load()) })
	reg.CounterFunc("lsi_cluster_manifest_reloads_total", "Accepted manifest hot reloads.",
		func() float64 { return float64(r.reloads.Load()) })
	reg.CounterFunc("lsi_cluster_manifest_stale_reloads_total", "Manifest reloads refused by the version gate.",
		func() float64 { return float64(r.staleRels.Load()) })
	reg.CounterFunc("lsi_cluster_node_sheds_total", "Node responses that shed load (429/503) — backpressure, not failure.",
		func() float64 { return float64(r.nodeSheds.Load()) })
	reg.CounterFunc("lsi_cluster_retries_total", "Same-node retries granted by the retry budget.",
		func() float64 { return float64(r.budget.Retries()) })
	reg.CounterFunc("lsi_cluster_retry_budget_exhausted_total", "Retries refused because the retry budget was empty.",
		func() float64 { return float64(r.budget.Exhausted()) })
	reg.CounterFunc("lsi_cluster_breaker_denied_total", "Requests failed fast by an open circuit breaker.",
		func() float64 { return float64(r.denied.Load()) })
	reg.GaugeFunc("lsi_cluster_breakers_open", "Nodes whose circuit breaker is currently open.",
		func() float64 { open, _, _, _ := r.healthSnapshot(); return float64(open) })
	reg.GaugeFunc("lsi_cluster_breakers_half_open", "Nodes whose circuit breaker is probing recovery.",
		func() float64 { _, half, _, _ := r.healthSnapshot(); return float64(half) })
	reg.CounterFunc("lsi_cluster_breaker_trips_total", "Circuit-breaker closed-to-open transitions across all nodes.",
		func() float64 { _, _, _, trips := r.healthSnapshot(); return float64(trips) })
	reg.GaugeFunc("lsi_cluster_nodes_ejected", "Nodes the probe loop currently marks as outliers.",
		func() float64 { _, _, ej, _ := r.healthSnapshot(); return float64(ej) })
	reg.CounterFunc("lsi_cluster_probe_failures_total", "Failed background health probes.",
		func() float64 { return float64(r.probeFails.Load()) })
}
