package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/topk"
	"repro/retrieval"
	"repro/retrieval/httpapi"
)

// RouterOptions configures a Router; zero values pick the documented
// defaults.
type RouterOptions struct {
	// NodeTimeout bounds each per-node request (default 2s). The
	// caller's context still applies on top.
	NodeTimeout time.Duration
	// HedgeAfter is how long the router waits on a node before also
	// trying the shard's next candidate (default 150ms). A node that
	// fails outright is hedged immediately, without waiting. The first
	// success wins; stragglers are canceled.
	HedgeAfter time.Duration
	// Client is the HTTP client for node requests (default: a dedicated
	// client with sane connection reuse).
	Client *http.Client
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.NodeTimeout <= 0 {
		o.NodeTimeout = 2 * time.Second
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 150 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 16}}
	}
	return o
}

// manifestState is the router's compiled topology, swapped atomically
// on Reload so queries in flight keep the manifest they started with.
type manifestState struct {
	man     *Manifest
	byShard [][]Node
}

// Router fans queries out to the shard-owning nodes of a cluster
// manifest and merges their answers into the single-process result
// order. It implements retrieval.Retriever (plus the httpapi
// FanoutSearcher, DocAdder, and ReadyReporter capabilities), so
// httpapi.NewHandler(router, ...) is a complete cluster front door.
//
// Reads degrade, writes don't: a shard whose every candidate node
// failed is simply absent from a search's merge — the response is
// marked partial (X-Partial-Results through httpapi) and counted — but
// an Add that cannot reach a shard primary fails and freezes ingest
// until Sync re-derives the cluster's document count, because global
// numbering (g mod S owns g) leaves no correct place to put a skipped
// document.
type Router struct {
	opts   RouterOptions
	client *http.Client
	man    atomic.Pointer[manifestState]

	// ingestMu serializes writers: round-robin numbering means each
	// batch's shard split depends on the exact global position where the
	// batch starts.
	ingestMu   sync.Mutex
	nextGlobal int
	synced     bool

	docs      atomic.Int64 // published nextGlobal, for lock-free NumDocs
	partials  atomic.Int64
	hedges    atomic.Int64
	nodeErrs  atomic.Int64
	reloads   atomic.Int64
	staleRels atomic.Int64
}

// NewRouter compiles a validated manifest into a Router. Call Sync
// before ingesting (Add also syncs lazily); searches need no sync.
func NewRouter(m *Manifest, opts RouterOptions) (*Router, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	r := &Router{opts: opts.withDefaults()}
	r.client = r.opts.Client
	r.man.Store(&manifestState{man: m, byShard: m.byShard()})
	return r, nil
}

// Reload hot-swaps the cluster topology. The new manifest must validate,
// keep the shard count (resharding is a rebuild, not a reload), and
// strictly increase the version — a stale file can never roll the
// topology back. Queries in flight finish on the manifest they started
// with.
func (r *Router) Reload(m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	cur := r.man.Load()
	if m.Version <= cur.man.Version {
		r.staleRels.Add(1)
		return fmt.Errorf("cluster: reload version %d is not newer than the serving version %d", m.Version, cur.man.Version)
	}
	if m.Shards != cur.man.Shards {
		return fmt.Errorf("cluster: reload changes the shard count %d -> %d; resharding requires a rebuild", cur.man.Shards, m.Shards)
	}
	r.man.Store(&manifestState{man: m, byShard: m.byShard()})
	r.reloads.Add(1)
	return nil
}

// Manifest returns the serving topology.
func (r *Router) Manifest() *Manifest { return r.man.Load().man }

// post runs one JSON request against one node, decoding a 2xx body
// into out. Non-2xx responses become errors carrying the node's name
// and the body's error message.
func (r *Router) post(ctx context.Context, node Node, path string, body, out any) error {
	ctx, cancel := context.WithTimeout(ctx, r.opts.NodeTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encoding request for node %q: %w", node.Name, err)
		}
		rd = bytes.NewReader(b)
	}
	method := http.MethodPost
	if body == nil {
		method = http.MethodGet
	}
	req, err := http.NewRequestWithContext(ctx, method, node.URL+path, rd)
	if err != nil {
		return fmt.Errorf("cluster: node %q: %w", node.Name, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: node %q: %w", node.Name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e httpapi.ErrorResponse
		json.NewDecoder(io.LimitReader(resp.Body, 4<<10)).Decode(&e)
		return fmt.Errorf("cluster: node %q: %s: status %d: %s", node.Name, path, resp.StatusCode, e.Error)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: node %q: decoding %s response: %w", node.Name, path, err)
	}
	return nil
}

// hedged runs call against a shard's candidates, primary first. A
// candidate that errors is replaced immediately; one that is merely
// slow is raced against the next candidate after HedgeAfter. The first
// success wins and cancels the stragglers; when every candidate has
// failed the last error is returned.
func hedged[T any](r *Router, ctx context.Context, nodes []Node, call func(context.Context, Node) (T, error)) (T, error) {
	var zero T
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, len(nodes))
	launched, pending := 0, 0
	launch := func() {
		node := nodes[launched]
		launched++
		pending++
		go func() {
			v, err := call(hctx, node)
			ch <- outcome{v, err}
		}()
	}
	launch()
	timer := time.NewTimer(r.opts.HedgeAfter)
	defer timer.Stop()
	var lastErr error
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				return out.v, nil
			}
			r.nodeErrs.Add(1)
			lastErr = out.err
			if launched < len(nodes) {
				launch()
			} else if pending == 0 {
				return zero, lastErr
			}
		case <-timer.C:
			if launched < len(nodes) {
				r.hedges.Add(1)
				launch()
				timer.Reset(r.opts.HedgeAfter)
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// shardResults is one shard's answer to a fan-out, remapped to global
// document numbers.
type shardResults struct {
	shard   int
	perQ    [][]retrieval.Result
	failed  bool
	lastErr error
}

// fanout runs one batch of queries against every shard concurrently
// and returns the per-shard outcomes. Queries and merge stay strictly
// deterministic; only availability varies.
func (r *Router) fanout(ctx context.Context, queries []string, topN int) ([]shardResults, *manifestState) {
	ms := r.man.Load()
	S := ms.man.Shards
	out := make([]shardResults, S)
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			perQ, err := hedged(r, ctx, ms.byShard[s], func(ctx context.Context, node Node) ([][]retrieval.Result, error) {
				if len(queries) == 1 {
					var resp httpapi.SearchResponse
					if err := r.post(ctx, node, "/v1/search", httpapi.SearchRequest{Query: queries[0], TopN: topN}, &resp); err != nil {
						return nil, err
					}
					return [][]retrieval.Result{resp.Results}, nil
				}
				var resp httpapi.BatchSearchResponse
				if err := r.post(ctx, node, "/v1/search:batch", httpapi.BatchSearchRequest{Queries: queries, TopN: topN}, &resp); err != nil {
					return nil, err
				}
				if len(resp.Results) != len(queries) {
					return nil, fmt.Errorf("cluster: node %q answered %d of %d queries", node.Name, len(resp.Results), len(queries))
				}
				return resp.Results, nil
			})
			out[s] = shardResults{shard: s, perQ: perQ, failed: err != nil, lastErr: err}
		}(s)
	}
	wg.Wait()
	return out, ms
}

// mergeQuery merges one query's per-shard answers into the
// single-process result order: remap each shard-local document l to
// global l*S + s, then sort with the exact comparator the in-process
// index uses (internal/topk: score desc, global asc) and truncate to
// topN. Because each node returns its own top-topN superset of the
// global top-topN's members on that shard, the merge is exact — not an
// approximation.
func mergeQuery(parts []shardResults, q, topN, S int) []retrieval.Result {
	var ms []topk.Match
	ids := make(map[int]string)
	for _, p := range parts {
		if p.failed {
			continue
		}
		for _, res := range p.perQ[q] {
			g := res.Doc*S + p.shard
			ms = append(ms, topk.Match{Doc: g, Score: res.Score})
			ids[g] = res.ID
		}
	}
	topk.SortMatches(ms)
	if topN > 0 && len(ms) > topN {
		ms = ms[:topN]
	}
	out := make([]retrieval.Result, len(ms))
	for i, m := range ms {
		out[i] = retrieval.Result{Doc: m.Doc, ID: ids[m.Doc], Score: m.Score}
	}
	return out
}

// SearchPartial fans one query across the cluster. partial reports a
// degraded quorum: at least one shard answered and at least one did
// not, so the results are a correct merge of the shards that did.
// When no shard answers, the error of the last failure is returned.
func (r *Router) SearchPartial(ctx context.Context, query string, topN int) ([]retrieval.Result, bool, error) {
	parts, ms := r.fanout(ctx, []string{query}, topN)
	failed := 0
	var lastErr error
	for _, p := range parts {
		if p.failed {
			failed++
			lastErr = p.lastErr
		}
	}
	if failed == len(parts) {
		return nil, false, fmt.Errorf("cluster: no shard reachable: %w", lastErr)
	}
	partial := failed > 0
	if partial {
		r.partials.Add(1)
	}
	return mergeQuery(parts, 0, topN, ms.man.Shards), partial, nil
}

// SearchBatchPartial is SearchPartial for a query batch; one fan-out
// round trip per shard regardless of batch size.
func (r *Router) SearchBatchPartial(ctx context.Context, queries []string, topN int) ([][]retrieval.Result, bool, error) {
	parts, ms := r.fanout(ctx, queries, topN)
	failed := 0
	var lastErr error
	for _, p := range parts {
		if p.failed {
			failed++
			lastErr = p.lastErr
		}
	}
	if failed == len(parts) {
		return nil, false, fmt.Errorf("cluster: no shard reachable: %w", lastErr)
	}
	partial := failed > 0
	if partial {
		r.partials.Add(1)
	}
	out := make([][]retrieval.Result, len(queries))
	for q := range queries {
		out[q] = mergeQuery(parts, q, topN, ms.man.Shards)
	}
	return out, partial, nil
}

// Search implements retrieval.Retriever. Partiality is not visible
// through this narrow interface; callers that must distinguish a
// degraded answer use SearchPartial (httpapi does, surfacing the
// X-Partial-Results header).
func (r *Router) Search(ctx context.Context, query string, topN int) ([]retrieval.Result, error) {
	res, _, err := r.SearchPartial(ctx, query, topN)
	return res, err
}

// SearchBatch implements retrieval.Retriever.
func (r *Router) SearchBatch(ctx context.Context, queries []string, topN int) ([][]retrieval.Result, error) {
	res, _, err := r.SearchBatchPartial(ctx, queries, topN)
	return res, err
}

// NumDocs returns the cluster's document count as of the last
// Sync/Add (0 before the first sync).
func (r *Router) NumDocs() int { return int(r.docs.Load()) }

// Stats implements retrieval.Retriever with a cluster-level summary.
func (r *Router) Stats() retrieval.Stats {
	ms := r.man.Load()
	return retrieval.Stats{
		Backend:     "cluster",
		Sharded:     true,
		Shards:      ms.man.Shards,
		NumDocs:     r.NumDocs(),
		TextQueries: true,
	}
}

// Ready implements the httpapi readiness capability: the router is
// ready once ingest is synced (searches work regardless; readiness
// gates traffic that may include writes).
func (r *Router) Ready() bool {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.synced
}

// docsOnShard is the round-robin partition arithmetic: how many of N
// global documents shard s of S holds.
func docsOnShard(s, N, S int) int {
	if N <= s {
		return 0
	}
	return (N - s + S - 1) / S
}

// Sync derives the cluster's next global document position from the
// shard primaries' document counts and verifies they form a consistent
// round-robin prefix (shard s of S holding ceil((N-s)/S) documents).
// Inconsistent counts — the wreckage of a partially failed write —
// leave ingest frozen with a descriptive error; searches still work.
func (r *Router) Sync(ctx context.Context) error {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	return r.syncLocked(ctx)
}

func (r *Router) syncLocked(ctx context.Context) error {
	r.synced = false
	ms := r.man.Load()
	S := ms.man.Shards
	counts := make([]int, S)
	total := 0
	for s := 0; s < S; s++ {
		primary := ms.byShard[s][0]
		var st retrieval.Stats
		if err := r.post(ctx, primary, "/v1/stats", nil, &st); err != nil {
			return fmt.Errorf("cluster: sync: %w", err)
		}
		counts[s] = st.NumDocs
		total += st.NumDocs
	}
	for s := 0; s < S; s++ {
		if want := docsOnShard(s, total, S); counts[s] != want {
			return fmt.Errorf("cluster: sync: shard %d holds %d documents, want %d of a consistent %d-document round-robin — a write landed partially; see OPERATIONS.md",
				s, counts[s], want, total)
		}
	}
	r.nextGlobal = total
	r.docs.Store(int64(total))
	r.synced = true
	return nil
}

// Add implements live ingest through the router: documents are
// numbered from the cluster's next global position and routed to their
// owning shards (global g to shard g mod S), preserving the exact
// placement a single-process sharded index would have chosen. Writes
// go to primaries only. Any failure freezes ingest (synced=false)
// until Sync verifies what actually landed, because a partially
// applied batch would otherwise shift every later document's shard.
func (r *Router) Add(ctx context.Context, docs []retrieval.Document) (int, error) {
	if len(docs) == 0 {
		return 0, fmt.Errorf("cluster: empty add batch")
	}
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	if !r.synced {
		if err := r.syncLocked(ctx); err != nil {
			return 0, err
		}
	}
	ms := r.man.Load()
	S := ms.man.Shards
	first := r.nextGlobal

	// Split the batch by owning shard. Globals are assigned in order, so
	// each shard's sub-batch lands at consecutive locals starting at the
	// local position of its first global.
	type sub struct {
		docs       []httpapi.AddDocRequest
		firstLocal int
	}
	subs := make([]sub, S)
	for i, d := range docs {
		g := first + i
		s := g % S
		if subs[s].docs == nil {
			subs[s].firstLocal = g / S
		}
		subs[s].docs = append(subs[s].docs, httpapi.AddDocRequest{ID: d.ID, Text: d.Text})
	}
	for s := 0; s < S; s++ {
		if subs[s].docs == nil {
			continue
		}
		primary := ms.byShard[s][0]
		var resp httpapi.AddDocsResponse
		if err := r.post(ctx, primary, "/v1/docs:batch", httpapi.AddDocsRequest{Docs: subs[s].docs}, &resp); err != nil {
			r.synced = false
			return 0, fmt.Errorf("cluster: add: ingest frozen until Sync: %w", err)
		}
		if resp.First != subs[s].firstLocal {
			r.synced = false
			return 0, fmt.Errorf("cluster: add: shard %d appended at local %d, expected %d — cluster out of sync, ingest frozen until Sync",
				s, resp.First, subs[s].firstLocal)
		}
	}
	r.nextGlobal += len(docs)
	r.docs.Store(int64(r.nextGlobal))
	return first, nil
}

// RouterStats is the router's observability snapshot.
type RouterStats struct {
	// ManifestVersion is the serving topology's version.
	ManifestVersion int
	// Synced reports whether ingest is live (see Sync).
	Synced bool
	// Docs is the cluster document count as of the last Sync/Add.
	Docs int64
	// Partials counts quorum-degraded search responses served.
	Partials int64
	// Hedges counts hedged requests launched because a node was slow.
	Hedges int64
	// NodeErrors counts failed node requests (including hedge losers).
	NodeErrors int64
	// Reloads and StaleReloads count accepted and version-rejected
	// manifest reloads.
	Reloads      int64
	StaleReloads int64
}

// RouterStats snapshots the router's counters.
func (r *Router) RouterStats() RouterStats {
	r.ingestMu.Lock()
	synced := r.synced
	r.ingestMu.Unlock()
	return RouterStats{
		ManifestVersion: r.man.Load().man.Version,
		Synced:          synced,
		Docs:            r.docs.Load(),
		Partials:        r.partials.Load(),
		Hedges:          r.hedges.Load(),
		NodeErrors:      r.nodeErrs.Load(),
		Reloads:         r.reloads.Load(),
		StaleReloads:    r.staleRels.Load(),
	}
}

// RegisterMetrics exports the router's counters on reg under the
// lsi_cluster_* namespace (distinct from the per-node lsi_* series, so
// a router can share a Prometheus job with the nodes it fronts).
func (r *Router) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("lsi_cluster_manifest_version", "Version of the serving cluster manifest.",
		func() float64 { return float64(r.man.Load().man.Version) })
	reg.GaugeFunc("lsi_cluster_docs", "Cluster document count as of the last ingest sync.",
		func() float64 { return float64(r.docs.Load()) })
	reg.GaugeFunc("lsi_cluster_ingest_synced", "1 while ingest is synced and accepting writes.",
		func() float64 {
			if r.Ready() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("lsi_cluster_partial_results_total", "Search responses served from a degraded quorum.",
		func() float64 { return float64(r.partials.Load()) })
	reg.CounterFunc("lsi_cluster_hedges_total", "Hedged node requests launched because a primary was slow.",
		func() float64 { return float64(r.hedges.Load()) })
	reg.CounterFunc("lsi_cluster_node_errors_total", "Failed node requests, including hedge losers.",
		func() float64 { return float64(r.nodeErrs.Load()) })
	reg.CounterFunc("lsi_cluster_manifest_reloads_total", "Accepted manifest hot reloads.",
		func() float64 { return float64(r.reloads.Load()) })
	reg.CounterFunc("lsi_cluster_manifest_stale_reloads_total", "Manifest reloads refused by the version gate.",
		func() float64 { return float64(r.staleRels.Load()) })
}
