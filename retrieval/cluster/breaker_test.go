package cluster

// Breaker and retry-budget state machines on an injected clock — every
// transition is driven by explicit Advance calls, no wall-clock sleep
// calibrates any assertion.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func testBreaker(clk faultinject.Clock) *Breaker {
	return NewBreaker(BreakerOptions{
		ConsecutiveFailures: 3,
		FailureRate:         0.5,
		Window:              8,
		MinSamples:          4,
		OpenFor:             5 * time.Second,
		Clock:               clk,
	})
}

// TestBreakerConsecutiveTrip: closed → open on a failure run, fail-fast
// while open, half-open probe after the cooldown, re-close on success.
func TestBreakerConsecutiveTrip(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("after 3 consecutive failures: state %v, trips %d", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before the cooldown")
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("probe success left state %v", b.State())
	}
	// The window reset with the close: one new failure must not re-trip.
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatal("single failure after recovery re-tripped the breaker")
	}
}

// TestBreakerRateTrip: non-consecutive failures trip via the windowed
// rate once MinSamples is met.
func TestBreakerRateTrip(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	b := testBreaker(clk)
	// Alternate success/failure: never 3 in a row, but 50% failing.
	outcomes := []bool{true, false, true, false, true, false, true, false}
	for i, ok := range outcomes {
		if b.State() == BreakerOpen {
			break
		}
		b.Allow()
		b.Record(ok)
		if i < 3 && b.State() != BreakerClosed {
			t.Fatalf("tripped at sample %d, before MinSamples", i)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("50%% failure rate never tripped: state %v", b.State())
	}
}

// TestBreakerHalfOpenFailureReopens: a failed probe starts a fresh
// cooldown; the breaker keeps cycling until a probe succeeds.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after cooldown")
	}
	b.Record(false)
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state %v, trips %d, want open, 2", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a request without a new cooldown")
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe", b.State())
	}
}

// TestBreakerDeniedRequestsNotRecorded: fail-fast denials must not feed
// the window, or an open breaker could never observe recovery.
func TestBreakerDeniedRequestsNotRecorded(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	for i := 0; i < 100; i++ {
		if b.Allow() {
			t.Fatal("open breaker admitted a request")
		}
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("denials poisoned the breaker: no probe after cooldown")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed", b.State())
	}
}

// TestRetryBudgetBoundsAmplification is the acceptance bound: under
// 100% failure with every request wanting MaxRetries retries, granted
// retries stay within ratio×requests + burst.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	const (
		ratio    = 0.1
		burst    = 10.0
		requests = 2000
		maxTries = 3 // retries wanted per failing request
	)
	b := NewRetryBudget(ratio, burst)
	granted := 0
	for i := 0; i < requests; i++ {
		b.OnRequest()
		for a := 0; a < maxTries; a++ {
			if b.TryRetry() {
				granted++
			}
		}
	}
	bound := int(ratio*requests + burst)
	if granted > bound {
		t.Fatalf("%d retries granted for %d failing requests, bound %d", granted, requests, bound)
	}
	// The budget is a throttle, not a ban: a healthy fraction is granted.
	if granted < bound/2 {
		t.Fatalf("only %d retries granted, bound %d — budget over-throttles", granted, bound)
	}
	if b.Retries() != int64(granted) {
		t.Fatalf("Retries() = %d, granted %d", b.Retries(), granted)
	}
	if b.Exhausted() != int64(requests*maxTries-granted) {
		t.Fatalf("Exhausted() = %d, want %d", b.Exhausted(), requests*maxTries-granted)
	}
}

// TestBackoffJitterBounds: full jitter stays in (0, cap] and the cap
// respects RetryMaxDelay even when the exponential overflows.
func TestBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, hi := 25*time.Millisecond, 500*time.Millisecond
	for attempt := 0; attempt < 64; attempt++ {
		ceil := base << attempt
		if ceil > hi || ceil <= 0 {
			ceil = hi
		}
		for i := 0; i < 100; i++ {
			d := backoff(attempt, base, hi, rng)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
}

// TestBreakerCancelReleasesProbe: a half-open probe whose outcome is
// unknowable (request canceled mid-flight) must return the slot, or
// the breaker wedges — denying everything forever with no probe left
// to settle.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	clk.Advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("post-cooldown probe denied")
	}
	if b.Allow() {
		t.Fatal("second request admitted while the probe is in flight")
	}
	b.Cancel() // the probe was canceled, not answered
	if b.State() != BreakerHalfOpen {
		t.Fatalf("cancel changed state to %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("breaker wedged: canceled probe never released its slot")
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("fresh probe success left state %v", b.State())
	}
	// In any other state Cancel is a no-op.
	b.Cancel()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("cancel on a closed breaker had an effect")
	}
}

// TestBreakerReadyHasNoSideEffects: Ready mirrors Allow's verdict but
// claims nothing — repeated Ready calls on an expired-cooldown or
// half-open breaker neither transition it nor consume the probe.
func TestBreakerReadyHasNoSideEffects(t *testing.T) {
	clk := faultinject.NewFakeClock(time.Unix(0, 0))
	b := testBreaker(clk)
	if !b.Ready() {
		t.Fatal("closed breaker not ready")
	}
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.Ready() {
		t.Fatal("open breaker inside its cooldown reported ready")
	}
	clk.Advance(5 * time.Second)
	for i := 0; i < 3; i++ {
		if !b.Ready() {
			t.Fatalf("ready call %d after cooldown: denied", i)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("ready transitioned the breaker to %v", b.State())
	}
	if !b.Allow() { // the real request claims the probe...
		t.Fatal("allow denied after ready said yes")
	}
	if b.Ready() { // ...and ready sees the claimed slot
		t.Fatal("ready ignored an in-flight probe")
	}
	b.Record(true)
	if b.State() != BreakerClosed || !b.Ready() {
		t.Fatalf("probe success: state %v", b.State())
	}
}
