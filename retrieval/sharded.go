package retrieval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/ir"
	"repro/internal/sparse"
	"repro/retrieval/shard"
)

// Sharded mode: WithShards(n) swaps the single immutable backend for
// retrieval/shard's sharded live index. The Index keeps owning the text
// layer — vocabulary, weighting, pipeline flags — while the shard
// subsystem owns the numeric segments and the global document directory,
// so the same Retriever methods (and the same query preprocessing) serve
// both modes.
//
// Sharded indexes add three capabilities on top of the Retriever
// contract: live appends (Add), readiness reporting (Ready), and
// directory persistence (SaveDir / OpenDir; the manifest format is
// documented in retrieval/shard).

// Sentinel errors of the sharded mode.
var (
	// ErrImmutableIndex reports Add against an unsharded index, which is
	// immutable after Build.
	ErrImmutableIndex = errors.New("retrieval: index does not accept live updates (build with WithShards)")
	// ErrIndexClosed reports Add against a sharded index after Close —
	// a server-lifecycle condition, not a request error.
	ErrIndexClosed = errors.New("retrieval: index is closed")
	// ErrNotSharded reports SaveDir against an unsharded index (use Save)
	// and vice versa.
	ErrNotSharded = errors.New("retrieval: not a sharded index")
)

// buildSharded finishes a Build configured with WithShards: the text
// layer is already assembled; partition the matrix and build the shard
// subsystem.
func buildSharded(ix *Index, a *sparse.CSR, ids []string, numTerms, numDocs int, cfg config) (*Index, error) {
	if cfg.backend != BackendLSI {
		return nil, fmt.Errorf("retrieval: WithShards requires the LSI backend (got %s)", cfg.backend)
	}
	engine, err := cfg.engine.toLSI()
	if err != nil {
		return nil, err
	}
	rank := cfg.rank
	if rank <= 0 {
		rank = autoRank(numTerms, numDocs)
	}
	autoCompact := true
	if cfg.autoCompact != nil {
		autoCompact = *cfg.autoCompact
	}
	sx, err := shard.Build(a, ids, shard.Config{
		Shards:      cfg.shards,
		Rank:        rank,
		Engine:      engine,
		Seed:        cfg.seed,
		SealEvery:   cfg.sealEvery,
		AutoCompact: autoCompact,
		ANNList:     cfg.annList,
		ANNProbe:    cfg.annProbe,
		Quantize:    cfg.quantBeta > 0,
	})
	if err != nil {
		return nil, fmt.Errorf("retrieval: building sharded index: %w", err)
	}
	ix.sharded = sx
	ix.annList, ix.annProbe = cfg.annList, cfg.annProbe
	ix.quantBeta = cfg.quantBeta
	ix.docIDs = nil // the shard directory owns external IDs in sharded mode
	return ix, nil
}

// Sharded reports whether the index is a sharded live index.
func (ix *Index) Sharded() bool { return ix.sharded != nil }

// Ready reports whether the index owes no background work: always true
// for unsharded indexes; for sharded indexes, false while sealed
// segments await compaction or a compaction pass is in flight. A
// not-ready index serves correct (fold-in) results — Ready is the
// readiness signal for load balancers, surfaced at /readyz.
func (ix *Index) Ready() bool {
	if ix.sharded == nil {
		return true
	}
	return ix.sharded.Ready()
}

// Compact runs one synchronous compaction pass on a sharded index,
// returning the number of segments rebuilt. Unsharded indexes have
// nothing to compact and return 0.
func (ix *Index) Compact() (int, error) {
	if ix.sharded == nil {
		return 0, nil
	}
	return ix.sharded.Compact()
}

// Close releases background resources (the sharded compactor and the
// attached WAL, if any). It is a no-op for unsharded indexes and is
// idempotent; searches against an already-published index keep working
// after Close, but Add fails.
func (ix *Index) Close() error {
	if ix.sharded == nil {
		return nil
	}
	err := ix.sharded.Close()
	if ix.wlog != nil {
		if werr := ix.wlog.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// docSparse converts a document's text to the sorted sparse term-space
// vector fold-in consumes — the same pipeline, vocabulary, and weighting
// as querySparse, because fold-in represents documents exactly the way
// queries are projected. Terms outside the build-time vocabulary are
// dropped (the standard fold-in limitation: the vocabulary is fixed at
// build time); a document with no in-vocabulary terms indexes as an
// empty vector that never scores above 0.
func (ix *Index) docSparse(text string) (terms []int, weights []float64) {
	terms, weights, _ = ix.querySparse(text)
	return terms, weights
}

// Add appends documents to a sharded live index, folding them into their
// shards without a rebuild, and returns the position (and DocID index)
// of the first: the batch occupies [first, first+len(docs)). It is safe
// to call concurrently with Search and with other Adds. Unsharded
// indexes return ErrImmutableIndex; a closed index returns
// ErrIndexClosed.
//
// Cancellation is honored on entry only: once the fold begins, the
// append runs to completion rather than leaving the caller unsure
// whether the batch landed. Bound very large batches yourself if you
// need finer-grained deadlines.
//
// For a TF-IDF-weighted index, added documents are weighted by raw
// counts (document frequencies are a build-time corpus statistic) — the
// same convention queries use.
// With AttachWAL, the batch is additionally framed and fsync'd to the
// write-ahead log before it is applied, so a crash after Add returns
// cannot lose it.
func (ix *Index) Add(ctx context.Context, docs []Document) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if ix.sharded == nil {
		return 0, ErrImmutableIndex
	}
	if ix.vocab == nil {
		return 0, ErrNoVocabulary
	}
	if len(docs) == 0 {
		return 0, fmt.Errorf("retrieval: empty batch")
	}
	if ix.wlog != nil {
		return ix.addDurable(docs)
	}
	return ix.applyBatch(docs)
}

// applyBatch folds a validated batch into the shard subsystem — the
// shared apply step of the direct, durable, and WAL-replay paths.
func (ix *Index) applyBatch(docs []Document) (int, error) {
	batch := make([]shard.Doc, len(docs))
	for i, d := range docs {
		terms, weights := ix.docSparse(d.Text)
		batch[i] = shard.Doc{ID: d.ID, Terms: terms, Weights: weights}
	}
	first, err := ix.sharded.AddBatch(batch)
	if err != nil {
		if errors.Is(err, shard.ErrClosed) {
			return 0, ErrIndexClosed
		}
		return 0, fmt.Errorf("retrieval: add: %w", err)
	}
	return first, nil
}

// textMeta is the sharded index's text layer on disk (text.json next to
// the shard manifest); external document IDs live in the shard
// subsystem's ids.json.
type textMeta struct {
	Version         int      `json:"version"`
	Vocab           []string `json:"vocab"`
	Weighting       string   `json:"weighting"`
	RemoveStopwords bool     `json:"removeStopwords"`
	Stemming        bool     `json:"stemming"`
}

const textMetaName = "text.json"

// SaveDir writes a sharded index to a directory: the shard manifest and
// segment files (see retrieval/shard) plus the text layer. Unsharded
// indexes persist to a single stream via Save instead.
func (ix *Index) SaveDir(dir string) error {
	if ix.sharded == nil {
		return fmt.Errorf("%w: use Save for single-stream persistence", ErrNotSharded)
	}
	if err := ix.sharded.SaveDir(dir); err != nil {
		return err
	}
	return ix.writeTextMeta(dir)
}

// writeTextMeta writes the index's text layer (text.json) into dir —
// shared by SaveDir and the per-shard exports, whose nodes need the
// same pipeline/vocabulary/weighting to reproduce folds and queries.
func (ix *Index) writeTextMeta(dir string) error {
	meta := textMeta{
		Version:         1,
		Vocab:           ix.vocab.Terms(),
		Weighting:       ix.weighting.String(),
		RemoveStopwords: ix.removeStopwords,
		Stemming:        ix.stemming,
	}
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("retrieval: save text layer: %w", err)
	}
	// Write via rename so a crashed re-save leaves the previous (equally
	// valid — the text layer is immutable after Build) file intact.
	tmp := filepath.Join(dir, textMetaName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("retrieval: save text layer: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, textMetaName)); err != nil {
		return fmt.Errorf("retrieval: save text layer: %w", err)
	}
	return nil
}

// OpenDir loads a sharded index saved by SaveDir. The loaded index
// serves identical scores to the saved one and keeps accepting Adds;
// segments reload as-is (pending compaction state is not carried over —
// run Compact before saving for a fully compacted index). Options
// control runtime behavior only: WithSealEvery, WithAutoCompact,
// WithQueryCache, and WithANN apply (quantizer sidecars saved next to
// the segments reload directly; WithANN additionally trains segments
// saved without them), everything structural comes from the manifest.
func OpenDir(dir string, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	data, err := os.ReadFile(filepath.Join(dir, textMetaName))
	if err != nil {
		return nil, fmt.Errorf("retrieval: open %s: %w", dir, err)
	}
	var meta textMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("retrieval: open %s: %w", textMetaName, err)
	}
	if meta.Version < 1 || meta.Version > 1 {
		return nil, fmt.Errorf("retrieval: open: text layer version %d is not supported by this build (supported: 1)", meta.Version)
	}
	weighting, err := ParseWeighting(meta.Weighting)
	if err != nil {
		return nil, fmt.Errorf("retrieval: open: %w", err)
	}
	autoCompact := true
	if cfg.autoCompact != nil {
		autoCompact = *cfg.autoCompact
	}
	sx, err := shard.Open(dir, shard.Config{
		SealEvery:   cfg.sealEvery,
		AutoCompact: autoCompact,
		ANNList:     cfg.annList,
		ANNProbe:    cfg.annProbe,
		Quantize:    cfg.quantBeta > 0,
	})
	if err != nil {
		return nil, fmt.Errorf("retrieval: open: %w", err)
	}
	if len(meta.Vocab) != sx.NumTerms() {
		sx.Close()
		return nil, fmt.Errorf("retrieval: open: vocabulary has %d terms, index has %d", len(meta.Vocab), sx.NumTerms())
	}
	vocab, err := ir.NewVocabularyFromTerms(meta.Vocab)
	if err != nil {
		sx.Close()
		return nil, fmt.Errorf("retrieval: open: %w", err)
	}
	ix := &Index{
		backend:         BackendLSI,
		sharded:         sx,
		vocab:           vocab,
		weighting:       weighting,
		removeStopwords: meta.RemoveStopwords,
		stemming:        meta.Stemming,
	}
	ix.annList, ix.annProbe = cfg.annList, cfg.annProbe
	ix.quantBeta = cfg.quantBeta
	ix.initCache(cfg.cacheBytes)
	return ix, nil
}

// Open loads an index from path, whichever form it takes: a directory is
// opened as a sharded index (OpenDir), a file as a single-stream index
// (Load). This is what `lsiserve -index` calls. The options are the
// runtime knobs: WithQueryCache and WithANN apply to both forms (for a
// single-stream LSI file, WithANN trains the quantizer at open time —
// deterministic and cheap next to the SVD the file already paid for),
// WithSealEvery and WithAutoCompact only to the directory form;
// everything structural comes from the saved index.
func Open(path string, opts ...Option) (*Index, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("retrieval: open: %w", err)
	}
	if info.IsDir() {
		return OpenDir(path, opts...)
	}
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("retrieval: open: %w", err)
	}
	defer f.Close()
	ix, err := Load(f)
	if err != nil {
		return nil, err
	}
	if cfg.annList > 0 {
		if ix.backend != BackendLSI {
			return nil, fmt.Errorf("retrieval: open: WithANN requires the LSI backend (got %s)", ix.backend)
		}
		if err := ix.trainANN(cfg); err != nil {
			return nil, err
		}
	}
	if cfg.quantBeta > 0 {
		if ix.backend != BackendLSI {
			return nil, fmt.Errorf("retrieval: open: %w", errQuantBackend(ix.backend))
		}
		if err := ix.trainQuant(cfg); err != nil {
			return nil, err
		}
	}
	ix.initCache(cfg.cacheBytes)
	return ix, nil
}
