package retrieval

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestWithQuantizedRequiresLSI(t *testing.T) {
	_, err := Build(DemoCorpus(), WithBackend(BackendVSM), WithQuantized(4))
	if err == nil {
		t.Fatal("Build(VSM, WithQuantized) succeeded, want error")
	}
}

func TestQuantizedSaturatedBetaBitwiseEqualsExhaustive(t *testing.T) {
	docs := topicDocs(200)
	plain, err := Build(docs, WithRank(6), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	// A beta large enough that topN·beta covers the corpus degenerates to
	// the exact pass: the default search must reproduce the exhaustive
	// ranking bit for bit.
	qx, err := Build(docs, WithRank(6), WithEngine(EngineDense), WithQuantized(1000))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []string{"car engine", "telescope nebula", "yeast dough", "mechanic comet"} {
		want, err := plain.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := qx.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want, "saturated beta "+q)
	}
	st, ok := qx.QuantStats()
	if !ok {
		t.Fatal("QuantStats() not ok on a WithQuantized index")
	}
	if st.Segments != 1 || st.Docs != 200 || st.Bytes <= 0 {
		t.Fatalf("QuantStats = %+v, want 1 shadow over 200 docs", st)
	}
	if st.Searches == 0 || st.DocsReranked == 0 {
		t.Fatalf("scan counters did not advance: %+v", st)
	}
	if full := qx.Stats(); full.Quant == nil || full.Quant.Beta != st.Beta {
		t.Fatalf("Stats().Quant = %+v, want the QuantStats block", full.Quant)
	}
}

func TestQuantizedRerankScoresAreExact(t *testing.T) {
	docs := topicDocs(300)
	plain, err := Build(docs, WithRank(6), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	qx, err := Build(docs, WithRank(6), WithEngine(EngineDense), WithQuantized(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []string{"car brake", "astronomer orbit", "flour oven"} {
		want, err := plain.Search(ctx, q, 200)
		if err != nil {
			t.Fatal(err)
		}
		exact := map[int]float64{}
		for _, r := range want {
			exact[r.Doc] = r.Score
		}
		got, err := qx.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("%q: no results", q)
		}
		// Stage 2 rescores with the exact float kernels, so every returned
		// score must equal the exhaustive scan's score for that document.
		for _, r := range got {
			if s, ok := exact[r.Doc]; !ok || s != r.Score {
				t.Fatalf("%q: doc %d score %v != exact %v", q, r.Doc, r.Score, s)
			}
		}
		// This corpus is a worst case for stage 1 — each topic's documents
		// are near-duplicates, so scores tie to within quantization error
		// and candidate membership can shuffle among them. The guarantee
		// that survives ties: the returned top hit scores at least as well
		// as the exhaustive scan's 10th hit.
		if got[0].Score < want[9].Score {
			t.Fatalf("%q: top hit score %v below exact 10th %v", q, got[0].Score, want[9].Score)
		}
	}
}

func TestQuantizedEscapeHatch(t *testing.T) {
	docs := topicDocs(150)
	plain, err := Build(docs, WithRank(5), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	qx, err := Build(docs, WithRank(5), WithEngine(EngineDense), WithQuantized(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := plain.Search(ctx, "galaxy orbit", 8)
	if err != nil {
		t.Fatal(err)
	}
	// SearchProbe with nprobe <= 0 is the fully exact escape hatch: float
	// kernels over every document, no tier counters moved.
	exact, err := qx.SearchProbe(ctx, "galaxy orbit", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, exact, want, "escape hatch")
	if st, _ := qx.QuantStats(); st.Searches != 0 {
		t.Fatalf("escape hatch moved the scan counters: %+v", st)
	}
}

func TestQuantizedComposesWithANN(t *testing.T) {
	docs := topicDocs(360)
	plain, err := Build(docs, WithRank(6), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	both, err := Build(docs, WithRank(6), WithEngine(EngineDense), WithANN(6, 2), WithQuantized(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := plain.Search(ctx, "telescope comet", 300)
	if err != nil {
		t.Fatal(err)
	}
	exact := map[int]float64{}
	for _, r := range want {
		exact[r.Doc] = r.Score
	}
	// The composed default search probes IVF cells AND scores them through
	// the int8 shadow; both tiers' counters must advance, and every score
	// is still an exact float64 cosine.
	got, err := both.Search(ctx, "telescope comet", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("composed search returned nothing")
	}
	for _, r := range got {
		if s, ok := exact[r.Doc]; !ok || s != r.Score {
			t.Fatalf("doc %d: composed score %v != exact %v", r.Doc, r.Score, s)
		}
	}
	ast, _ := both.ANNStats()
	qst, _ := both.QuantStats()
	if ast.Searches != 1 || qst.Searches != 1 {
		t.Fatalf("tier counters: ann %+v quant %+v, want one search each", ast, qst)
	}
	// Saturating both budgets recovers the exhaustive ranking exactly.
	full, err := both.SearchProbe(ctx, "telescope comet", 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, full, want[:8], "saturated compose")
}

func TestQuantizedOpenBuildsTier(t *testing.T) {
	docs := topicDocs(150)
	plain, err := Build(docs, WithRank(5), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "quant.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The shadow is seedless derived state: Open builds it when the
	// opening options ask for the tier, and a saturated beta stays
	// exhaustive.
	ox, err := Open(path, WithQuantized(1000))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := plain.Search(ctx, "baker pastry", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ox.Search(ctx, "baker pastry", 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want, "opened saturated beta")
	if st, ok := ox.QuantStats(); !ok || st.Segments != 1 {
		t.Fatalf("opened index QuantStats = %+v ok=%v, want a 1-shadow tier", st, ok)
	}
}

func TestQuantizedShardedEndToEnd(t *testing.T) {
	docs := topicDocs(600)
	build := func(opts ...Option) *Index {
		t.Helper()
		ix, err := Build(docs, append([]Option{WithRank(4), WithShards(2), WithAutoCompact(false)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		return ix
	}
	plain := build()
	qx := build(WithQuantized(4))

	st, ok := qx.QuantStats()
	if !ok {
		t.Fatal("QuantStats() not ok on a sharded WithQuantized index")
	}
	// Both initial per-shard segments are compacted and large enough to
	// quantize (300 docs each ≥ the 256-doc floor).
	if st.Segments != 2 || st.Docs != 600 {
		t.Fatalf("QuantStats = %+v, want 2 quantized segments over 600 docs", st)
	}

	ctx := context.Background()
	want, err := plain.Search(ctx, "telescope comet", 10)
	if err != nil {
		t.Fatal(err)
	}
	// The escape hatch reproduces the exhaustive ranking; the default
	// (beta=4) search serves exact reranked scores.
	exact, err := qx.SearchProbe(ctx, "telescope comet", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, exact, want, "sharded escape hatch")
	got, err := qx.Search(ctx, "telescope comet", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].Doc != want[0].Doc || got[0].Score != want[0].Score {
		t.Fatalf("sharded quantized top hit %+v != exact %+v", got[0], want[0])
	}

	// Persistence round trip: the quant-*.qnt sidecars come back without
	// any options at open time.
	dir := t.TempDir()
	if err := qx.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	ox, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ox.Close()
	if st, ok := ox.QuantStats(); !ok || st.Segments != 2 {
		t.Fatalf("reopened QuantStats = %+v ok=%v, want 2 quantized segments", st, ok)
	}
	reopened, err := ox.Search(ctx, "telescope comet", 10)
	if err != nil {
		t.Fatal(err)
	}
	if reopened[0].Doc != want[0].Doc || reopened[0].Score != want[0].Score {
		t.Fatalf("reopened quantized top hit %+v != exact %+v", reopened[0], want[0])
	}
}

func TestQuantizedUnconfiguredPathUntouched(t *testing.T) {
	// An index built WITHOUT WithQuantized must not carry the tier at all:
	// no stats block, no counters, searches identical to a plain build.
	docs := topicDocs(100)
	ix, err := Build(docs, WithRank(5), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ix.QuantStats(); ok {
		t.Fatal("QuantStats() ok on an index without the tier")
	}
	if ix.Stats().Quant != nil {
		t.Fatal("Stats().Quant non-nil on an index without the tier")
	}
}
