package retrieval

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The real crash test: a child process builds a WAL'd index, acks each
// Add on stdout, and is SIGKILLed mid-stream — between acks and
// checkpoints, with no chance to flush or unwind. The parent then
// recovers from the checkpoint + WAL and asserts that every document
// the child acked before dying is present. This is the durability
// contract end to end: ack ⇒ fsync'd ⇒ survives SIGKILL.
func TestWALCrashReplaySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestWALCrashHelperProcess", "-test.v")
	cmd.Env = append(os.Environ(), "WAL_CRASH_HELPER=1", "WAL_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acks until the child has acked a healthy batch of docs past
	// at least one checkpoint, then SIGKILL it mid-flight.
	maxAck, ckpts := -1, 0
	sc := bufio.NewScanner(stdout)
	deadline := time.After(60 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
read:
	for {
		select {
		case <-deadline:
			cmd.Process.Kill()
			t.Fatalf("child never reached the kill point (maxAck=%d ckpts=%d)", maxAck, ckpts)
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("child exited before the kill point (maxAck=%d ckpts=%d)", maxAck, ckpts)
			}
			switch {
			case strings.HasPrefix(line, "ACK "):
				n, err := strconv.Atoi(strings.TrimPrefix(line, "ACK "))
				if err != nil {
					t.Fatalf("bad ack line %q", line)
				}
				maxAck = n
			case strings.HasPrefix(line, "CKPT"):
				ckpts++
			}
			if ckpts >= 1 && maxAck >= 25 {
				break read
			}
		}
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no deferred cleanup runs
		t.Fatal(err)
	}
	cmd.Wait()

	// Recover exactly as a restarted server would.
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	ix, err := OpenDir(data, WithAutoCompact(false))
	if err != nil {
		t.Fatalf("reopening checkpoint after SIGKILL: %v", err)
	}
	defer ix.Close()
	replayed, err := ix.AttachWAL(waldir)
	if err != nil {
		t.Fatalf("WAL replay after SIGKILL: %v", err)
	}
	t.Logf("child acked %d docs across %d checkpoints; checkpoint+replay recovered %d (replayed %d)",
		maxAck+1, ckpts, ix.NumDocs(), replayed)

	// Every acked document must exist: acked doc i is global base+i with
	// ID "live-<i>". One unacked in-flight batch may also have landed
	// (logged, killed before the ack line) — allowed, bounded by 1.
	const base = walCrashBaseDocs
	if got := ix.NumDocs(); got < base+maxAck+1 {
		t.Fatalf("acked %d live docs but index holds %d (< %d): acked writes lost",
			maxAck+1, got, base+maxAck+1)
	} else if got > base+maxAck+2 {
		t.Fatalf("index holds %d docs, more than acked+1 in-flight (%d)", got, base+maxAck+2)
	}
	for i := 0; i <= maxAck; i++ {
		if got, want := ix.DocID(base+i), fmt.Sprintf("live-%04d", i); got != want {
			t.Fatalf("global %d: id %q, want %q", base+i, got, want)
		}
	}
	// And the recovered index still answers queries over them.
	res, err := ix.Search(context.Background(), "car engine", 5)
	if err != nil || len(res) == 0 {
		t.Fatalf("post-recovery search: %d results, err %v", len(res), err)
	}
}

// walCrashBaseDocs is the child's build-time corpus size.
const walCrashBaseDocs = 12

// TestWALCrashHelperProcess is the SIGKILLed child of
// TestWALCrashReplaySIGKILL, not a test on its own (it exits via
// os.Exit or the parent's kill, never normally under the parent).
func TestWALCrashHelperProcess(t *testing.T) {
	if os.Getenv("WAL_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestWALCrashReplaySIGKILL")
	}
	dir := os.Getenv("WAL_CRASH_DIR")
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	ix, err := Build(largerCorpus(walCrashBaseDocs),
		WithRank(3), WithShards(2), WithAutoCompact(false), WithSealEvery(8), WithSeed(3))
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper build:", err)
		os.Exit(1)
	}
	if err := ix.SaveDir(data); err != nil {
		fmt.Fprintln(os.Stderr, "helper save:", err)
		os.Exit(1)
	}
	if _, err := ix.AttachWAL(waldir); err != nil {
		fmt.Fprintln(os.Stderr, "helper attach:", err)
		os.Exit(1)
	}
	ctx := context.Background()
	for i := 0; i < 100000; i++ {
		_, err := ix.Add(ctx, []Document{{
			ID:   fmt.Sprintf("live-%04d", i),
			Text: "a shiny new car with a powerful engine cruising past stars",
		}})
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper add:", err)
			os.Exit(1)
		}
		fmt.Printf("ACK %d\n", i) // unbuffered: one write syscall per ack
		if i%10 == 9 {
			if err := ix.Checkpoint(data); err != nil {
				fmt.Fprintln(os.Stderr, "helper checkpoint:", err)
				os.Exit(1)
			}
			fmt.Println("CKPT")
		}
	}
	fmt.Println("DONE") // parent treats early exit as failure
}
