package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// replayAll reopens nothing — it replays l and returns the payloads.
func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i*7)))
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, p)
	}
	// Replay on the live log.
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("live replay: got %d records, want %d", len(got), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Replay after reopen.
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got = replayAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("reopened replay: got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestEmptyPayloadRoundTrips(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	got := replayAll(t, l)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("got %v, want one empty record", got)
	}
}

// A torn tail (partial final frame) must be tolerated on reopen: the
// complete prefix replays, the torn bytes are truncated away, and new
// appends land cleanly after it.
func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l.Close()

	// Simulate a crash mid-append: write half a frame at the tail.
	seg := filepath.Join(dir, segName(0))
	frame := AppendRecord(nil, []byte("this record never finished writing"))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	got := replayAll(t, l2)
	if len(got) != 3 {
		t.Fatalf("got %d records after torn tail, want 3", len(got))
	}
	if err := l2.Append([]byte("after-crash")); err != nil {
		t.Fatalf("Append after torn-tail recovery: %v", err)
	}
	got = replayAll(t, l2)
	if len(got) != 4 || string(got[3]) != "after-crash" {
		t.Fatalf("post-recovery append not visible: %q", got)
	}
	l2.Close()
}

// Corruption in the body of the log (not a torn tail) must fail Open
// with ErrCorrupt — silently dropping acked records is not an option.
func TestCorruptBodyFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Append(bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Append([]byte("second")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()

	seg := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[10] ^= 0xff // flip a payload byte inside the first record
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write corrupted segment: %v", err)
	}

	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt body: got %v, want ErrCorrupt", err)
	}
}

// Rotate must drop everything appended before it and keep everything
// after, across a reopen.
func TestRotateDropsCheckpointedRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Append([]byte("new-0")); err != nil {
		t.Fatalf("Append after rotate: %v", err)
	}
	got := replayAll(t, l)
	if len(got) != 1 || string(got[0]) != "new-0" {
		t.Fatalf("after rotate: got %q, want [new-0]", got)
	}
	l.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got = replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "new-0" {
		t.Fatalf("after reopen: got %q, want [new-0]", got)
	}
}

func TestRotateTwiceAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l.Append([]byte("a"))
	l.Rotate()
	l.Rotate()
	l.Append([]byte("b"))
	l.Close()
	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 1 || string(got[0]) != "b" {
		t.Fatalf("got %q, want [b]", got)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	if err := l.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize Append succeeded, want error")
	}
}

func TestReplayStopsOnCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	l.Append([]byte("one"))
	l.Append([]byte("two"))
	sentinel := errors.New("stop here")
	calls := 0
	err = l.Replay(func(p []byte) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Replay error = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Fatalf("callback ran %d times after error, want 1", calls)
	}
}

func TestParseSegName(t *testing.T) {
	for n, want := range map[string]bool{
		segName(0):                true,
		segName(42):               true,
		"wal-0.log":               false,
		"wal-000000000000000.log": false, // 15 digits
		"seg-0-0-0.idx":           false,
		"manifest.json":           false,
	} {
		if _, ok := parseSegName(n); ok != want {
			t.Errorf("parseSegName(%q) ok = %v, want %v", n, ok, want)
		}
	}
}
