// Package wal implements the crash-safe write-ahead log behind the
// live index's ingest durability story: every accepted Add/AddBatch is
// framed, CRC-protected, and fsync'd to disk before the caller is
// acked, so a crash at any instant loses no acknowledged write.
//
// Layout:
//
//	wal-dir/
//	  wal-0000000000000000.log   ← oldest segment
//	  wal-0000000000000001.log   ← active segment (appends go here)
//
// Append frames an opaque payload as [uvarint length | crc32c |
// payload], writes it to the active segment, and fsyncs before
// returning. The payload's meaning belongs to the caller (the
// retrieval layer logs ingest batches).
//
// Replay streams every record of every segment, oldest first. A torn
// tail — an incomplete final frame, the signature of a crash
// mid-append — is tolerated and truncated away on the next Open; a CRC
// mismatch or malformed frame anywhere else is corruption and fails
// with a descriptive error, never a panic (ScanRecords is fuzzed).
//
// Rotate starts a fresh segment and deletes the older ones. Callers
// rotate immediately after persisting a checkpoint (SaveDir), so the
// log only ever holds writes newer than the newest checkpoint and
// replay-after-checkpoint is exactly "what the checkpoint is missing".
//
// A Log serializes its own mutations; Append/Rotate/Replay are safe to
// call from concurrent goroutines.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/faultinject"
)

// ErrCorrupt reports a WAL segment with a malformed or CRC-failing
// record before its final frame — damage Replay cannot distinguish from
// data loss, as opposed to a torn tail (which is expected after a crash
// and silently truncated).
var ErrCorrupt = errors.New("wal: corrupt record")

// MaxRecordBytes bounds a single record's payload (64 MiB). The bound
// exists so a corrupt length prefix cannot drive an unbounded
// allocation; real ingest batches are orders of magnitude smaller.
const MaxRecordBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segName names the numbered segment files.
func segName(n uint64) string { return fmt.Sprintf("wal-%016x.log", n) }

// parseSegName extracts the segment number, reporting ok=false for
// files that are not WAL segments.
func parseSegName(name string) (uint64, bool) {
	var n uint64
	if _, err := fmt.Sscanf(name, "wal-%016x.log", &n); err != nil {
		return 0, false
	}
	if segName(n) != name {
		return 0, false
	}
	return n, true
}

// Log is an append-only record log in a directory of numbered segment
// files. Open/Append/Replay/Rotate are safe for concurrent use.
type Log struct {
	dir  string
	fsys faultinject.FS

	mu     sync.Mutex
	f      faultinject.File // active segment, opened for append
	active uint64           // active segment number
	off    int64            // durable bytes in the active segment
	broken error            // first unrecoverable append fault (fail-stop)
	closed bool
}

// Open opens (creating if needed) the write-ahead log in dir and
// prepares its newest segment for appending. A torn final record left
// by a crash mid-append is truncated away; corruption earlier in any
// segment fails the open.
func Open(dir string) (*Log, error) { return OpenFS(dir, faultinject.OS{}) }

// OpenFS is Open with an explicit file system — the fault-injection
// seam. Every durability-relevant operation the log performs (segment
// writes, fsyncs, truncation, rotation) goes through fsys, so tests
// interpose a faultinject.FaultyFS to script torn writes, fsync
// errors, and disk-full against the real record format.
func OpenFS(dir string, fsys faultinject.FS) (*Log, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: dir, fsys: fsys}
	segs, err := l.listSegments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.startSegment(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Verify every segment now, truncating a torn tail on the newest
	// (crash mid-append) — older segments must be fully intact.
	var activeLen int64
	for i, n := range segs {
		path := filepath.Join(dir, segName(n))
		data, err := fsys.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		good, err := ScanRecords(data, func([]byte) error { return nil })
		if err != nil {
			return nil, fmt.Errorf("wal: open %s: %w", segName(n), err)
		}
		if good < len(data) {
			if i != len(segs)-1 {
				return nil, fmt.Errorf("wal: open %s: %w: torn record in a non-final segment", segName(n), ErrCorrupt)
			}
			if err := fsys.Truncate(path, int64(good)); err != nil {
				return nil, fmt.Errorf("wal: open: truncating torn tail: %w", err)
			}
		}
		activeLen = int64(good)
	}
	active := segs[len(segs)-1]
	f, err := fsys.OpenFile(filepath.Join(dir, segName(active)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l.f, l.active, l.off = f, active, activeLen
	return l, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func (l *Log) listSegments() ([]uint64, error) {
	entries, err := l.fsys.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// startSegment creates segment n and makes it active, fsyncing the
// directory so the new name survives a crash.
func (l *Log) startSegment(n uint64) error {
	// O_APPEND, so every write lands at the current end of file — after
	// a torn append is truncated away, the next frame starts exactly at
	// the restored tail instead of leaving a hole at the dead fd offset.
	f, err := l.fsys.OpenFile(filepath.Join(l.dir, segName(n)), os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	l.f, l.active, l.off = f, n, 0
	return nil
}

// Append frames payload, writes it to the active segment, and fsyncs
// before returning: when Append returns nil the record survives any
// subsequent crash. Payloads larger than MaxRecordBytes are rejected.
func (l *Log) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte bound", len(payload), MaxRecordBytes)
	}
	frame := AppendRecord(nil, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log failed, refusing appends until reopen or rotation: %w", l.broken)
	}
	if _, err := l.f.Write(frame); err != nil {
		// A failed or short write may have left a torn frame at the
		// tail. Truncate back to the last durable record so no later
		// append can land beyond the tear — a record written after a
		// torn frame would be silently discarded by the next boot's
		// torn-tail truncation even though it was acked. If the tail
		// cannot be restored, fail-stop.
		if terr := l.fsys.Truncate(filepath.Join(l.dir, segName(l.active)), l.off); terr != nil {
			l.broken = fmt.Errorf("restoring tail after torn append: %v (append: %w)", terr, err)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		// After a failed fsync the kernel may have dropped the dirty
		// pages while leaving them readable, so nothing written through
		// this fd can be trusted again. Fail-stop: later appends are
		// refused, and the next Open re-verifies the tail from disk.
		l.broken = fmt.Errorf("append fsync: %w", err)
		return fmt.Errorf("wal: append: fsync: %w", err)
	}
	l.off += int64(len(frame))
	return nil
}

// Replay streams every record currently in the log, oldest segment
// first, to fn. A torn final frame in the newest segment is ignored
// (it was never acked); corruption anywhere else fails with ErrCorrupt.
// An error from fn stops the replay and is returned as-is.
func (l *Log) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.listSegments()
	if err != nil {
		return err
	}
	for i, n := range segs {
		data, err := l.fsys.ReadFile(filepath.Join(l.dir, segName(n)))
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		good, err := ScanRecords(data, fn)
		if err != nil {
			return fmt.Errorf("wal: replay %s: %w", segName(n), err)
		}
		if good < len(data) && i != len(segs)-1 {
			return fmt.Errorf("wal: replay %s: %w: torn record in a non-final segment", segName(n), ErrCorrupt)
		}
	}
	return nil
}

// Rotate starts a fresh active segment and deletes every older one —
// the checkpoint hook: call it immediately after the state the log
// protects has been durably saved elsewhere, so the log only holds
// writes newer than that checkpoint.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	old := l.active
	if l.broken == nil {
		// On a failed log, skip the farewell sync: every append since
		// the fault was refused, so the old fd holds nothing acked, and
		// the fresh segment below recovers the log on a trustworthy fd.
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: rotate: %w", err)
		}
	}
	if err := l.f.Close(); err != nil && l.broken == nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.startSegment(old + 1); err != nil {
		return err
	}
	l.broken = nil
	// The new segment is durable; retiring the old ones is best-effort
	// (a leftover is re-deleted by the next rotation, and replay of an
	// already-checkpointed record is idempotent at the caller).
	segs, err := l.listSegments()
	if err != nil {
		return nil
	}
	for _, n := range segs {
		if n <= old {
			l.fsys.Remove(filepath.Join(l.dir, segName(n)))
		}
	}
	l.fsys.SyncDir(l.dir)
	return nil
}

// Close fsyncs and closes the active segment. The log must not be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.f.Close()
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// AppendRecord appends the framed form of payload to dst and returns
// the extended slice: uvarint length, 4-byte little-endian CRC-32C of
// the payload, payload bytes.
func AppendRecord(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// ScanRecords walks the framed records in data, calling fn for each
// complete, CRC-valid payload. It returns the number of bytes consumed
// by complete records; consumed < len(data) means the final frame is
// incomplete (a torn tail — expected after a crash mid-append). A
// complete frame that fails its CRC, or a length prefix exceeding
// MaxRecordBytes, returns ErrCorrupt. ScanRecords is total: arbitrary
// input yields a result or an error, never a panic, and allocates
// nothing beyond fn's own work (payloads alias data).
func ScanRecords(data []byte, fn func(payload []byte) error) (consumed int, err error) {
	off := 0
	for off < len(data) {
		size, n := binary.Uvarint(data[off:])
		if n == 0 {
			return off, nil // length prefix itself is torn
		}
		if n < 0 || size > MaxRecordBytes {
			return off, fmt.Errorf("%w: record length %d at offset %d", ErrCorrupt, size, off)
		}
		rest := data[off+n:]
		if len(rest) < 4+int(size) {
			return off, nil // torn tail: frame extends past the data
		}
		sum := binary.LittleEndian.Uint32(rest)
		payload := rest[4 : 4+int(size)]
		if crc32.Checksum(payload, crcTable) != sum {
			return off, fmt.Errorf("%w: crc mismatch at offset %d", ErrCorrupt, off)
		}
		if err := fn(payload); err != nil {
			return off, err
		}
		off += n + 4 + int(size)
	}
	return off, nil
}

// ReadRecords collects every record payload in data (copied, not
// aliased), tolerating a torn tail — the convenience form of
// ScanRecords for tests and tools.
func ReadRecords(data []byte) ([][]byte, error) {
	var out [][]byte
	_, err := ScanRecords(data, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
