package wal

// Disk-fault tests: the log driven through a faultinject.FaultyFS with
// scripted short writes, fsync errors, and disk-full. The invariant
// under every schedule is the one Append promises: a record acked
// (Append returned nil) before the fault is still replayed after a
// reopen, and no record acked after a torn frame is ever silently
// discarded.

import (
	"bytes"
	"errors"
	"fmt"
	"syscall"
	"testing"

	"repro/internal/faultinject"
)

// reopenAndReplay closes nothing (the "crash"), reopens the directory
// on a clean FS, and returns the replayed payloads.
func reopenAndReplay(t *testing.T, dir string) [][]byte {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after faults: %v", err)
	}
	defer l.Close()
	var got [][]byte
	if err := l.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay after faults: %v", err)
	}
	return got
}

// TestAppendShortWriteDoesNotOrphanLaterAcks: a torn append is
// truncated away so the NEXT acked append lands at a clean tail. The
// failure this guards against: the torn frame stays, a later acked
// record lands beyond it, and reopen's torn-tail truncation silently
// discards the acked record.
func TestAppendShortWriteDoesNotOrphanLaterAcks(t *testing.T) {
	dir := t.TempDir()
	fs := faultinject.NewFaultyFS(faultinject.OS{}, 42)
	l, err := OpenFS(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("acked-before")); err != nil {
		t.Fatal(err)
	}

	fs.FailWrites(1, nil, true) // every write torn short
	if err := l.Append([]byte("torn-never-acked")); err == nil {
		t.Fatal("torn append acked")
	} else if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn append error %v, want the injected fault", err)
	}
	fs.Clear()

	if err := l.Append([]byte("acked-after")); err != nil {
		t.Fatalf("append after recovered tear: %v", err)
	}

	got := reopenAndReplay(t, dir)
	if len(got) != 2 || !bytes.Equal(got[0], []byte("acked-before")) || !bytes.Equal(got[1], []byte("acked-after")) {
		t.Fatalf("replay = %q, want [acked-before acked-after]", got)
	}
}

// TestAppendFsyncErrorFailsStop: after a failed fsync nothing written
// through the fd can be trusted, so the log refuses further appends
// until rotation or reopen — an un-fsynced "ack" must be impossible.
func TestAppendFsyncErrorFailsStop(t *testing.T) {
	dir := t.TempDir()
	fs := faultinject.NewFaultyFS(faultinject.OS{}, 7)
	l, err := OpenFS(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(1, syscall.EIO)
	if err := l.Append([]byte("unsynced")); err == nil {
		t.Fatal("append acked without a durable fsync")
	}
	fs.Clear()
	// Fail-stop: the fault is gone but the fd is still untrusted.
	if err := l.Append([]byte("after")); err == nil {
		t.Fatal("failed log accepted an append")
	}
	// Rotation (the checkpoint hook) recovers on a fresh segment.
	if err := l.Rotate(); err != nil {
		t.Fatalf("rotate on failed log: %v", err)
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatalf("append after recovery rotation: %v", err)
	}
	got := replayAll(t, l)
	if len(got) != 1 || !bytes.Equal(got[0], []byte("fresh")) {
		t.Fatalf("replay after rotation = %q, want [fresh]", got)
	}
}

// TestAppendDiskFullSchedules: under every budget in a sweep, acked
// records survive reopen and unacked ones never reappear — the
// crossing record is torn at the budget boundary, exactly the shape a
// real ENOSPC leaves.
func TestAppendDiskFullSchedules(t *testing.T) {
	for budget := int64(0); budget <= 256; budget += 16 {
		budget := budget
		t.Run(fmt.Sprintf("budget-%d", budget), func(t *testing.T) {
			dir := t.TempDir()
			fs := faultinject.NewFaultyFS(faultinject.OS{}, budget)
			l, err := OpenFS(dir, fs)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			fs.DiskFullAfter(budget)
			var acked [][]byte
			for i := 0; i < 12; i++ {
				p := []byte(fmt.Sprintf("rec-%02d-%s", i, "payload-padding-to-make-frames-real"))
				if err := l.Append(p); err != nil {
					if !errors.Is(err, faultinject.ErrInjected) && !errors.Is(err, syscall.ENOSPC) {
						// The fail-stop refusal after an unrestorable tail
						// is also legitimate.
						if l.broken == nil {
							t.Fatalf("append %d: unexpected error %v", i, err)
						}
					}
					continue
				}
				acked = append(acked, p)
			}
			got := reopenAndReplay(t, dir)
			if len(got) != len(acked) {
				t.Fatalf("replay holds %d records, acked %d", len(got), len(acked))
			}
			for i := range acked {
				if !bytes.Equal(got[i], acked[i]) {
					t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
				}
			}
		})
	}
}
