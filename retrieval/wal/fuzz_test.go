package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzScanRecords drives arbitrary bytes through the WAL frame decoder.
// The invariant under fuzz: ScanRecords returns (consumed, err) with
// 0 ≤ consumed ≤ len(data) and errors (never panics) on corrupt input;
// and whatever it does accept round-trips — re-encoding the accepted
// payloads reproduces exactly the consumed prefix.
func FuzzScanRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, []byte("hello")))
	f.Add(AppendRecord(AppendRecord(nil, []byte("a")), []byte("bb")))
	// Torn tail: half a valid frame.
	full := AppendRecord(nil, []byte("torn-me"))
	f.Add(full[:len(full)/2])
	// Corrupt CRC.
	bad := AppendRecord(nil, []byte("bad-crc"))
	bad[len(bad)-1] ^= 0xff
	f.Add(bad)
	// Huge length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		consumed, err := ScanRecords(data, func(p []byte) error {
			payloads = append(payloads, append([]byte(nil), p...))
			return nil
		})
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d out of range [0,%d]", consumed, len(data))
		}
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-ErrCorrupt error from decoder: %v", err)
			}
			return
		}
		// Accepted prefix must round-trip through the encoder.
		var re []byte
		for _, p := range payloads {
			re = AppendRecord(re, p)
		}
		if !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encoded accepted records differ from consumed prefix:\n got %x\nwant %x", re, data[:consumed])
		}
	})
}
