package retrieval

import (
	"context"
	"errors"
	"testing"
)

func demoLSI(t *testing.T, opts ...Option) *Index {
	t.Helper()
	ix, err := Build(DemoCorpus(), append([]Option{WithRank(3), WithEngine(EngineDense)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildEmptyCorpus(t *testing.T) {
	if _, err := Build(nil); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("Build(nil) = %v, want ErrEmptyCorpus", err)
	}
	// Every token is a stopword: preprocessing empties the vocabulary.
	if _, err := BuildTexts([]string{"the and of", "a an it"}); !errors.Is(err, ErrEmptyCorpus) {
		t.Fatalf("all-stopword corpus = %v, want ErrEmptyCorpus", err)
	}
}

func TestLSISynonymyRetrieval(t *testing.T) {
	ix := demoLSI(t)
	res, err := ix.Search(context.Background(), "car", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	// The paper's synonymy effect: LSI must surface the "automobile"
	// documents (1 and 2) for a "car" query even though they never use
	// the word.
	got := map[int]bool{}
	for _, r := range res {
		got[r.Doc] = true
		if r.ID != DemoCorpus()[r.Doc].ID {
			t.Fatalf("doc %d carries ID %q, want %q", r.Doc, r.ID, DemoCorpus()[r.Doc].ID)
		}
	}
	for _, want := range []int{0, 1, 2, 3} {
		if !got[want] {
			t.Fatalf("LSI top-4 for \"car\" = %+v, missing vehicle doc %d", res, want)
		}
	}
}

func TestVSMBaselineMissesSynonyms(t *testing.T) {
	ix, err := Build(DemoCorpus(), WithBackend(BackendVSM))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Rank() != 0 {
		t.Fatalf("VSM rank = %d, want 0", ix.Rank())
	}
	res, err := ix.Search(context.Background(), "car", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Literal matching retrieves only the documents containing "car".
	for _, r := range res {
		if r.Doc == 1 || r.Doc == 2 {
			t.Fatalf("VSM retrieved synonym-only doc %d for \"car\": %+v", r.Doc, res)
		}
	}
}

func TestSearchErrorContracts(t *testing.T) {
	ix := demoLSI(t)
	ctx := context.Background()

	if _, err := ix.Search(ctx, "zzzunknownzzz", 3); !errors.Is(err, ErrNoQueryTerms) {
		t.Fatalf("unknown-vocabulary query = %v, want ErrNoQueryTerms", err)
	}
	if _, err := ix.SearchVector(ctx, []float64{1, 2, 3}, 3); !errors.Is(err, ErrVectorLength) {
		t.Fatalf("short vector = %v, want ErrVectorLength", err)
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ix.Search(canceled, "car", 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Search = %v, want context.Canceled", err)
	}
	if _, err := ix.SearchBatch(canceled, []string{"car"}, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled SearchBatch = %v, want context.Canceled", err)
	}
}

func TestSearchVectorMatchesTextSearch(t *testing.T) {
	ix := demoLSI(t)
	ctx := context.Background()
	fromText, err := ix.Search(ctx, "galaxy stars", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Densify the sparse query the text path uses: the dense SearchVector
	// path must agree with the sparse hot path bitwise.
	terms, weights, known := ix.querySparse("galaxy stars")
	if known == 0 {
		t.Fatal("demo query missed the vocabulary")
	}
	q := make([]float64, ix.NumTerms())
	for i, term := range terms {
		q[term] = weights[i]
	}
	fromVec, err := ix.SearchVector(ctx, q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fromText {
		if fromText[i] != fromVec[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, fromText[i], fromVec[i])
		}
	}
}

func TestSearchBatchMatchesSearch(t *testing.T) {
	for _, backend := range []Backend{BackendLSI, BackendVSM} {
		ix, err := Build(DemoCorpus(), WithRank(3), WithEngine(EngineDense), WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		queries := []string{"car engine", "zzzunknownzzz", "pasta garlic", "telescope galaxy"}
		batch, err := ix.SearchBatch(ctx, queries, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(queries) {
			t.Fatalf("%v: %d batch results for %d queries", backend, len(batch), len(queries))
		}
		if len(batch[1]) != 0 || batch[1] == nil {
			t.Fatalf("%v: unknown-vocabulary query should give empty non-nil results, got %#v", backend, batch[1])
		}
		for i, q := range queries {
			if i == 1 {
				continue
			}
			single, err := ix.Search(ctx, q, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(single) != len(batch[i]) {
				t.Fatalf("%v query %d: batch %d results, single %d", backend, i, len(batch[i]), len(single))
			}
			for j := range single {
				if single[j] != batch[i][j] {
					t.Fatalf("%v query %d result %d: %+v vs %+v", backend, i, j, batch[i][j], single[j])
				}
			}
		}
	}
}

func TestStats(t *testing.T) {
	ix := demoLSI(t)
	s := ix.Stats()
	if s.Backend != "lsi" || s.NumDocs != 12 || s.Rank != 3 || s.Weighting != "log" || !s.TextQueries {
		t.Fatalf("stats = %+v", s)
	}
	if s.NumTerms != ix.NumTerms() || s.NumTerms == 0 {
		t.Fatalf("stats terms = %d, index %d", s.NumTerms, ix.NumTerms())
	}
}

func TestAutoRank(t *testing.T) {
	cases := []struct{ n, m, want int }{
		{10, 12, 2},      // tiny corpus floors at 2
		{69, 12, 3},      // demo-corpus shape
		{2000, 900, 100}, // large corpora cap at 100
	}
	for _, c := range cases {
		if got := autoRank(c.n, c.m); got != c.want {
			t.Fatalf("autoRank(%d,%d) = %d, want %d", c.n, c.m, got, c.want)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, w := range []Weighting{WeightingCount, WeightingBinary, WeightingLog, WeightingTFIDF} {
		got, err := ParseWeighting(w.String())
		if err != nil || got != w {
			t.Fatalf("ParseWeighting(%q) = %v, %v", w.String(), got, err)
		}
	}
	if _, err := ParseWeighting("nope"); err == nil {
		t.Fatal("ParseWeighting should reject unknown names")
	}
	for _, b := range []Backend{BackendLSI, BackendVSM} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Fatalf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("nope"); err == nil {
		t.Fatal("ParseBackend should reject unknown names")
	}
}

func TestWeightingOptionsBuild(t *testing.T) {
	// Every weighting (including TF-IDF, whose queries fall back to raw
	// counts) must build and answer queries on both backends.
	for _, w := range []Weighting{WeightingCount, WeightingBinary, WeightingLog, WeightingTFIDF} {
		for _, b := range []Backend{BackendLSI, BackendVSM} {
			ix, err := Build(DemoCorpus(), WithRank(3), WithWeighting(w), WithBackend(b))
			if err != nil {
				t.Fatalf("%v/%v: %v", w, b, err)
			}
			res, err := ix.Search(context.Background(), "garlic pasta", 2)
			if err != nil {
				t.Fatalf("%v/%v: %v", w, b, err)
			}
			if len(res) == 0 || res[0].Doc < 8 {
				t.Fatalf("%v/%v: cooking query returned %+v", w, b, res)
			}
		}
	}
}
