package retrieval

import (
	"time"

	"repro/retrieval/shard"
)

// ShardStat is one shard's segment topology (re-exported from
// retrieval/shard so monitoring consumers need only this package).
type ShardStat = shard.ShardStat

// LiveStats is the observability snapshot of a sharded live index — the
// per-scrape numbers behind lsiserve's /metrics endpoint that the
// JSON-oriented Stats does not carry: per-shard segment topology,
// ingest volume, and the freshness signals (epoch and epoch age) the
// query cache's invalidation story is built on. Every field is read
// wait-free from published state.
type LiveStats struct {
	// Epoch is the index-wide mutation epoch (see shard.Index.Epoch): it
	// advances after every published Add batch and compaction swap.
	Epoch uint64
	// Generation is the manifest generation of the newest durable
	// checkpoint (see shard.Index.Generation); comparable across a
	// primary and its replicas, unlike Epoch.
	Generation uint64
	// DocsIngested counts documents accepted through Add since
	// Build/Open (build-time documents excluded); monotonic, so a
	// Prometheus rate() over it is the ingest rate.
	DocsIngested int64
	// LastMutation is the wall-clock time of the last published
	// mutation; time.Since(LastMutation) is the epoch age.
	LastMutation time.Time
	// CompactionDebt counts sealed segments waiting for the compactor —
	// the backlog that grows when ingest outruns compaction and the
	// signal the httpapi admission gate sheds ingest on.
	CompactionDebt int
	// Compacting reports a compaction pass in flight; Compactions counts
	// segment rebuilds performed since Build/Open.
	Compacting  bool
	Compactions int64
	// PerShard is each shard's segment topology, indexed by shard
	// number.
	PerShard []shard.ShardStat
}

// LiveStats snapshots the live-index observability counters; ok is
// false for unsharded (immutable) indexes, which have no segment
// lifecycle to observe.
func (ix *Index) LiveStats() (LiveStats, bool) {
	if ix.sharded == nil {
		return LiveStats{}, false
	}
	return LiveStats{
		Epoch:          ix.sharded.Epoch(),
		Generation:     ix.sharded.Generation(),
		DocsIngested:   ix.sharded.DocsIngested(),
		LastMutation:   ix.sharded.LastMutation(),
		CompactionDebt: ix.sharded.CompactionDebt(),
		Compacting:     ix.sharded.Compacting(),
		Compactions:    ix.sharded.Compactions(),
		PerShard:       ix.sharded.ShardStats(),
	}, true
}
