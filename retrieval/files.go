package retrieval

import "os"

// ReadFiles turns plain-text files into Build input, one Document per
// file with the path (as given) as its stable ID — the single ID
// convention shared by cmd/lsiquery and cmd/lsiserve, so an index built
// live from files and one loaded from a save of the same files report
// identical result IDs.
func ReadFiles(paths []string) ([]Document, error) {
	docs := make([]Document, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		docs = append(docs, Document{ID: path, Text: string(data)})
	}
	return docs, nil
}
