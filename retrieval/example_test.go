package retrieval_test

import (
	"context"
	"fmt"
	"log"

	"repro/retrieval"
)

// ExampleBuild indexes a few documents with the default LSI backend and
// inspects the result.
func ExampleBuild() {
	ix, err := retrieval.Build([]retrieval.Document{
		{ID: "pasta", Text: "Cooking pasta with garlic, olive oil and fresh basil."},
		{ID: "sauce", Text: "A good tomato sauce starts with garlic and olive oil."},
		{ID: "stars", Text: "The telescope charted stars and planets across the galaxy."},
		{ID: "comet", Text: "Astronomers tracked the comet past distant planets and stars."},
	}, retrieval.WithRank(2), retrieval.WithEngine(retrieval.EngineDense))
	if err != nil {
		log.Fatal(err)
	}
	stats := ix.Stats()
	fmt.Printf("backend=%s docs=%d rank=%d weighting=%s\n",
		stats.Backend, stats.NumDocs, stats.Rank, stats.Weighting)
	// Output:
	// backend=lsi docs=4 rank=2 weighting=log
}

// ExampleRetriever_Search shows the synonymy effect that motivates the
// paper: the "automobile" documents never contain the word "car", yet the
// LSI ranking surfaces them, while the literal vector-space baseline
// cannot.
func ExampleRetriever_Search() {
	corpus := retrieval.DemoCorpus()
	ctx := context.Background()

	lsi, err := retrieval.Build(corpus,
		retrieval.WithRank(3), retrieval.WithEngine(retrieval.EngineDense))
	if err != nil {
		log.Fatal(err)
	}
	vsm, err := retrieval.Build(corpus, retrieval.WithBackend(retrieval.BackendVSM))
	if err != nil {
		log.Fatal(err)
	}

	for _, ret := range []retrieval.Retriever{lsi, vsm} {
		results, err := ret.Search(ctx, "automobile", 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:", ret.Stats().Backend)
		for _, r := range results {
			fmt.Printf(" %s", r.ID)
		}
		fmt.Println()
	}
	// Output:
	// lsi: demo-00 demo-01 demo-02 demo-03
	// vsm: demo-01 demo-02
}
