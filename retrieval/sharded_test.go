package retrieval

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// largerCorpus recycles the demo corpus with suffix variation so shard
// tests have enough documents to spread across shards.
func largerCorpus(n int) []Document {
	demo := DemoCorpus()
	docs := make([]Document, n)
	for i := range docs {
		d := demo[i%len(demo)]
		docs[i] = Document{
			ID:   fmt.Sprintf("%s-v%d", d.ID, i/len(demo)),
			Text: d.Text,
		}
	}
	return docs
}

func sameResults(t *testing.T, got, want []Result, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", context, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result %d = %+v, want %+v (bitwise)", context, i, got[i], want[i])
		}
	}
}

func TestShardedOneShardMatchesUnsharded(t *testing.T) {
	docs := largerCorpus(24)
	opts := []Option{WithRank(3), WithEngine(EngineRandomized), WithSeed(7)}
	plain, err := Build(docs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := Build(docs, append(opts, WithShards(1), WithAutoCompact(false))...)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	if !sharded.Sharded() || plain.Sharded() {
		t.Fatal("Sharded() flags wrong")
	}
	ctx := context.Background()
	for _, q := range []string{"car", "galaxy of stars", "cooking recipes", "automobile engine"} {
		for _, topN := range []int{1, 5, 0} {
			want, err1 := plain.Search(ctx, q, topN)
			got, err2 := sharded.Search(ctx, q, topN)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch: %v vs %v", err1, err2)
			}
			sameResults(t, got, want, q)
		}
	}
	// Batch path too.
	qs := []string{"car", "zzzznotaword", "galaxy"}
	want, err := plain.SearchBatch(ctx, qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.SearchBatch(ctx, qs, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		sameResults(t, got[i], want[i], qs[i])
	}
}

func TestShardedLiveAdd(t *testing.T) {
	docs := largerCorpus(20)
	ix, err := Build(docs, WithRank(3), WithShards(3), WithAutoCompact(false), WithSealEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()

	first, err := ix.Add(ctx, []Document{
		{ID: "new-car", Text: "a shiny new car with a powerful engine"},
		{Text: "stars and galaxies in deep space"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != 20 {
		t.Fatalf("first = %d, want 20", first)
	}
	if ix.NumDocs() != 22 {
		t.Fatalf("NumDocs %d, want 22", ix.NumDocs())
	}
	if got := ix.DocID(20); got != "new-car" {
		t.Fatalf("DocID(20) = %q", got)
	}
	if got := ix.DocID(21); got != "doc-21" {
		t.Fatalf("DocID(21) = %q, want generated default", got)
	}

	// The added car document must be retrievable by a car query.
	res, err := ix.Search(ctx, "car engine", 22)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Doc == 20 {
			if r.ID != "new-car" {
				t.Fatalf("result carries ID %q", r.ID)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("added document missing from results")
	}

	// Unsharded indexes refuse live updates.
	plain, err := Build(docs, WithRank(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Add(ctx, []Document{{Text: "x"}}); !errors.Is(err, ErrImmutableIndex) {
		t.Fatalf("plain Add = %v, want ErrImmutableIndex", err)
	}
}

func TestShardedStats(t *testing.T) {
	docs := largerCorpus(30)
	ix, err := Build(docs, WithRank(3), WithShards(2), WithAutoCompact(false), WithSealEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	st := ix.Stats()
	if !st.Sharded || st.Shards != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.Backend != "lsi" || st.Rank != 3 {
		t.Fatalf("backend/rank: %+v", st)
	}
	if st.VocabSize == 0 || st.VocabSize != st.NumTerms {
		t.Fatalf("vocab size %d vs terms %d", st.VocabSize, st.NumTerms)
	}
	if st.MemoryBytes <= 0 {
		t.Fatalf("memory estimate %d", st.MemoryBytes)
	}
	if st.Segments != 2 || !st.Ready {
		t.Fatalf("segments/ready: %+v", st)
	}

	// Ingest past the seal threshold: sealed segments appear and the
	// index stops reporting ready until compacted.
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := ix.Add(ctx, []Document{{Text: "car engine repair manual"}}); err != nil {
			t.Fatal(err)
		}
	}
	st = ix.Stats()
	if st.SealedPending == 0 || st.Ready {
		t.Fatalf("after ingest: %+v", st)
	}
	if st.NumDocs != 40 || st.FoldedDocs != 10 {
		t.Fatalf("doc counts: %+v", st)
	}
	if n, err := ix.Compact(); err != nil || n == 0 {
		t.Fatalf("compact: %d, %v", n, err)
	}
	st = ix.Stats()
	if !st.Ready || st.SealedPending != 0 || st.Compactions == 0 {
		t.Fatalf("after compact: %+v", st)
	}
}

func TestUnshardedStatsMemoryAndVocab(t *testing.T) {
	for _, backend := range []Backend{BackendLSI, BackendVSM} {
		ix, err := Build(DemoCorpus(), WithBackend(backend), WithRank(3))
		if err != nil {
			t.Fatal(err)
		}
		st := ix.Stats()
		if st.VocabSize == 0 {
			t.Fatalf("%s: vocab size 0 with a text layer attached", backend)
		}
		if st.MemoryBytes <= 0 {
			t.Fatalf("%s: memory estimate %d", backend, st.MemoryBytes)
		}
		if !st.Ready {
			t.Fatalf("%s: unsharded index not ready", backend)
		}
	}
}

func TestShardedSaveDirOpenRoundTrip(t *testing.T) {
	docs := largerCorpus(26)
	ix, err := Build(docs, WithRank(3), WithShards(3), WithAutoCompact(false), WithSealEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ctx := context.Background()
	if _, err := ix.Add(ctx, []Document{{ID: "late", Text: "spiral galaxy telescope"}}); err != nil {
		t.Fatal(err)
	}

	dir := filepath.Join(t.TempDir(), "sharded-idx")
	if err := ix.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Save to a stream must refuse.
	if err := ix.Save(discardWriter{}); err == nil {
		t.Fatal("stream Save of a sharded index did not fail")
	}

	re, err := Open(dir, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !re.Sharded() {
		t.Fatal("reloaded index not sharded")
	}
	if re.NumDocs() != ix.NumDocs() {
		t.Fatalf("reloaded NumDocs %d, want %d", re.NumDocs(), ix.NumDocs())
	}
	for _, q := range []string{"car", "galaxy telescope", "cooking"} {
		want, err := ix.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want, q)
	}
	if re.DocID(26) != "late" {
		t.Fatalf("reloaded DocID(26) = %q", re.DocID(26))
	}
	// The reloaded index stays live.
	if _, err := re.Add(ctx, []Document{{Text: "fresh pasta recipe"}}); err != nil {
		t.Fatal(err)
	}
	if re.NumDocs() != ix.NumDocs()+1 {
		t.Fatalf("reloaded NumDocs %d after add", re.NumDocs())
	}

	// Opening a plain file through Open still works.
	plain, err := Build(docs[:8], WithRank(3))
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(t.TempDir(), "plain.idx")
	f, err := os.Create(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Open(file)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Sharded() || reloaded.NumDocs() != 8 {
		t.Fatalf("plain Open: sharded=%v docs=%d", reloaded.Sharded(), reloaded.NumDocs())
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
