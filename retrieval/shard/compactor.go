package shard

import (
	"fmt"
	"time"

	"repro/internal/segment"
)

// The background compactor. Sealed fold-in segments represent their
// documents only within the basis they were folded against; the
// compactor rebuilds them from their retained raw documents with a fresh
// two-step randomized decomposition (internal/segment.Compact) and swaps
// the replacement in atomically. Compacted tiers keep their raw
// documents and are re-absorbed by later passes under a size-tiered
// policy, so a shard's segment count stays O(log docs) under unbounded
// ingest. All heavy work runs outside every lock: the shard mutex is
// held only for the pointer swap, and searches in flight keep serving
// the old segments they snapshotted.

// compactable reports whether a stable segment is waiting for the
// compactor: it still carries raw documents and was not produced by a
// full decomposition.
func compactable(s *segment.Segment) bool {
	return !s.Compacted && s.Raw != nil
}

// compactTick bounds how long a sealed segment waits when a wake signal
// is missed (the channel is best-effort, capacity 1).
const compactTick = 2 * time.Second

// startCompactor launches the background loop when AutoCompact is on;
// otherwise it arranges for Close to return immediately.
func (x *Index) startCompactor() {
	if !x.cfg.AutoCompact {
		close(x.done)
		return
	}
	go func() {
		defer close(x.done)
		ticker := time.NewTicker(compactTick)
		defer ticker.Stop()
		for {
			select {
			case <-x.stop:
				return
			case <-x.wake:
			case <-ticker.C:
			}
			if _, err := x.Compact(); err != nil {
				// Compaction failure leaves the sealed segments serving
				// as-is; the next pass retries. Nothing to surface to a
				// caller here.
				continue
			}
		}
	}()
}

// wakeCompactor nudges the background loop; a full channel means a wake
// is already pending.
func (x *Index) wakeCompactor() {
	if !x.cfg.AutoCompact {
		return
	}
	select {
	case x.wake <- struct{}{}:
	default:
	}
}

// Compact runs one compaction pass synchronously: for every shard with
// sealed segments awaiting compaction, the sealed segments — plus any
// older compacted tier no larger than the material being merged — are
// rebuilt into one compacted segment, which replaces them atomically.
// It returns the number of segments merged away (0 when there was
// nothing to do). Safe to call concurrently with ingest and searches;
// concurrent Compact calls serialize.
func (x *Index) Compact() (int, error) {
	x.compactMu.Lock()
	defer x.compactMu.Unlock()
	x.compacting.Add(1)
	defer x.compacting.Add(-1)

	rebuilt := 0
	for s, sh := range x.shards {
		// Snapshot the compactable set. Only this (serialized) path ever
		// removes stable segments, so the set cannot shrink under us;
		// ingest can only append more.
		st := sh.state.Load()
		sealedDocs := 0
		for _, seg := range st.stable {
			if compactable(seg) {
				sealedDocs += seg.Len()
			}
		}
		if sealedDocs == 0 {
			continue
		}
		// Size-tiered merge: every sealed segment must be rebuilt, and
		// older compacted tiers that kept their raw documents are
		// absorbed while no larger than the material merged so far
		// (walking newest to oldest). Each surviving tier is therefore
		// bigger than everything younger combined, so a shard holds
		// O(log docs) segments no matter how long ingest runs — without
		// re-decomposing the whole shard on every pass. Merging any
		// in-order subsequence of the stable list keeps globals
		// ascending: per-shard segments hold disjoint, chronologically
		// increasing global ranges.
		var mergeable []*segment.Segment // raw-bearing stable segments, stable order
		for _, seg := range st.stable {
			if seg.Raw != nil && seg.Raw.Len() == seg.Len() {
				mergeable = append(mergeable, seg)
			}
		}
		start := len(mergeable)
		size := 0
		for start > 0 {
			prev := mergeable[start-1]
			if !compactable(prev) && prev.Len() > size {
				break
			}
			start--
			size += prev.Len()
		}
		pending := mergeable[start:]
		// Deterministic rebuild seed: a function of the configured seed,
		// the shard, and the segment contents' position — compacting the
		// same documents yields the same segment, run after run.
		seed := x.cfg.Seed + int64(s)*1000003 + int64(pending[0].Global[0])*8191 + 1
		comp, err := segment.Compact(pending, x.numTerms, segment.CompactOptions{
			K:       x.cfg.Rank,
			Seed:    seed,
			L:       x.cfg.CompactL,
			KeepRaw: true,
		})
		if err != nil {
			return rebuilt, fmt.Errorf("shard %d: %w", s, err)
		}
		// Re-derive the segment's sidecars — coarse quantizer and int8
		// shadow — against the fresh decomposition, still outside every
		// lock: both publish in the same swap as the re-SVD, so the epoch
		// bump below covers all of it and cached pre-compaction rankings
		// retire exactly once.
		if comp, err = x.trainAnn(comp, s); err != nil {
			return rebuilt, err
		}
		if comp, err = x.trainQuant(comp); err != nil {
			return rebuilt, fmt.Errorf("shard %d: %w", s, err)
		}

		sh.mu.Lock()
		cur := sh.state.Load()
		next := &shardState{epoch: cur.epoch + 1, live: cur.live}
		replaced := false
		inPending := func(seg *segment.Segment) bool {
			for _, p := range pending {
				if seg == p {
					return true
				}
			}
			return false
		}
		for _, seg := range cur.stable {
			if inPending(seg) {
				if !replaced {
					// The merged replacement takes the slot of the first
					// input; later inputs just disappear.
					next.stable = append(next.stable, comp)
					replaced = true
				}
				continue
			}
			next.stable = append(next.stable, seg)
		}
		sh.state.Store(next)
		sh.mu.Unlock()
		// Publish-then-bump, same protocol as ingest: the compacted
		// segment's (re-decomposed, numerically different) scores are
		// visible before the epoch moves, so epoch-keyed cache entries
		// can never mix pre- and post-compaction rankings.
		x.globalEpoch.Add(1)
		x.lastMutation.Store(time.Now().UnixNano())
		rebuilt += len(pending)
		x.compactions.Add(1)
	}
	return rebuilt, nil
}
