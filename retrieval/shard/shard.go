// Package shard implements the sharded live LSI index: documents are
// partitioned across N shards, each shard is a lifecycle of segments
// (see internal/segment), and the whole structure serves searches with
// no reader locks while absorbing appends and background compactions.
//
// Layout and lifecycle:
//
//		Index
//		 ├── shard 0: state ──▶ {stable segments…, live segment}   (atomic pointer)
//		 ├── shard 1: state ──▶ {…}
//		 └── shard N-1
//
//	  - Build partitions the term-document matrix round-robin (global
//	    document g lives on shard g mod N) and runs one SVD per shard, so
//	    per-shard topic subspaces stay independent and builds parallelize.
//	  - Add / AddBatch fold new documents into the shard's live segment via
//	    the LSI fold-in path. Every mutation publishes a NEW immutable
//	    shard state through an atomic pointer with a bumped epoch; readers
//	    load the pointer once and never block or lock.
//	  - When a live segment reaches SealEvery documents it is sealed:
//	    moved read-only into the stable list, where the background
//	    compactor rebuilds it (two-step randomized SVD over the retained
//	    raw documents) and atomically swaps the compacted replacement in.
//	  - Search fans out across every segment of every shard on
//	    internal/par and merges bounded per-chunk top-k under the strict
//	    (score desc, global doc asc) order, so results are deterministic
//	    for any shard count, segment layout, and worker count — and a
//	    1-shard index is bitwise identical to the unsharded path.
//
// Global document numbers are assigned once, at build or ingest, and
// never change: compaction carries each segment's global mapping through
// the rebuild, so result IDs are stable across the whole lifecycle.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lsi"
	"repro/internal/mat"
	"repro/internal/segment"
	"repro/internal/sparse"
	"repro/internal/topk"
)

// Config configures Build and Open. The zero value of every optional
// field picks the documented default.
type Config struct {
	// Shards is the number of shards (default 1).
	Shards int
	// Rank is the per-shard LSI rank k (required >= 1; the retrieval
	// layer resolves its auto-rank before calling down).
	Rank int
	// Engine selects the SVD engine for initial shard builds.
	Engine lsi.Engine
	// Seed drives every decomposition; shard s uses Seed+s so a 1-shard
	// index reproduces the unsharded build bitwise.
	Seed int64
	// SealEvery is the live-segment size that triggers sealing
	// (default 256 documents).
	SealEvery int
	// AutoCompact starts the background compactor (disable for tests
	// that need a fixed segment layout; Compact can still be called
	// manually).
	AutoCompact bool
	// CompactL overrides the two-step projection dimension (0 = auto).
	CompactL int
	// ANNList enables the IVF ANN tier: compacted segments of at least
	// ANNMinDocs documents carry a coarse quantizer with ANNList cells
	// (clamped per segment to its document count). 0 disables training;
	// quantizers already present on loaded segments still serve.
	ANNList int
	// ANNProbe is the default probe budget the owning layer passes to
	// SearchSparseProbe; the shard layer stores it for Stats only.
	ANNProbe int
	// ANNMinDocs is the smallest segment worth a quantizer (0 = default
	// 256; set negative-impossible sizes like 1 in tests to train tiny
	// segments).
	ANNMinDocs int
	// Quantize enables the int8 scoring tier: compacted segments of at
	// least QuantMinDocs documents carry an int8 shadow of their document
	// matrix, scanned by searches that pass a positive Beta. Shadows
	// already present on loaded segments still serve when false.
	Quantize bool
	// QuantMinDocs is the smallest segment worth an int8 shadow (0 =
	// default 256; same convention as ANNMinDocs).
	QuantMinDocs int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.SealEvery <= 0 {
		c.SealEvery = 256
	}
	return c
}

// ErrClosed reports an operation on a closed index.
var ErrClosed = errors.New("shard: index is closed")

// shardState is one immutable snapshot of a shard: the sealed/compacted
// segments plus the live fold-in segment (nil when none is open). Every
// mutation allocates a new state and publishes it via the shard's atomic
// pointer with epoch+1 — readers are wait-free and always see a
// consistent segment set.
type shardState struct {
	epoch  uint64
	stable []*segment.Segment
	live   *segment.Segment
}

// segments appends every segment of the state to dst.
func (st *shardState) segments(dst []*segment.Segment) []*segment.Segment {
	dst = append(dst, st.stable...)
	if st.live != nil {
		dst = append(dst, st.live)
	}
	return dst
}

// shardH is one shard: its published state and the basis new documents
// fold into. mu serializes state publication (ingest seal/extend and
// compactor swap); readers never take it.
type shardH struct {
	mu    sync.Mutex
	state atomic.Pointer[shardState]
	// base is the fold-in basis: the index built over the shard's initial
	// documents (or its first ingested batch). Guarded by the index-wide
	// ingest mutex.
	base *lsi.Index
}

// idTable is the append-only global directory: ids[g] is the external
// identifier of global document g. Published by atomic pointer; the
// writer (under ingestMu) appends and re-publishes, and readers only
// index below their snapshot's length, so backing-array reuse across
// snapshots is safe.
type idTable struct {
	ids []string
}

// Index is a sharded live LSI index. Searches are safe from any number
// of goroutines concurrently with ingest and compaction; ingest calls
// serialize on an internal mutex.
type Index struct {
	cfg      Config
	numTerms int
	shards   []*shardH

	ingestMu sync.Mutex
	ids      atomic.Pointer[idTable]

	compactMu   sync.Mutex // serializes whole-index compaction passes
	compacting  atomic.Int32
	compactions atomic.Int64 // total segment rebuilds performed

	// Observability counters (see DocsIngested / LastMutation): ingest
	// volume and the wall-clock time of the last published mutation,
	// which /metrics turns into an ingest rate and an epoch age.
	docsIngested atomic.Int64
	lastMutation atomic.Int64 // unix nanoseconds; set at build and on every epoch bump

	// generation is the manifest generation of the newest on-disk
	// checkpoint this in-memory index corresponds to: set by Open from
	// the loaded manifest and advanced by SaveDir after its manifest
	// rename lands (a built-but-never-saved index reports 0, the same
	// number its first save will write). Replication compares
	// (generation, numDocs) pairs across nodes — unlike the epoch, which
	// counts local mutations (including compactions, whose timing
	// differs per process), the generation names durable state and so is
	// comparable between a primary and its replicas.
	generation atomic.Uint64

	// ANN probe counters (see ANNSearches and friends in ann.go).
	annSearches atomic.Int64
	annCells    atomic.Int64
	annDocs     atomic.Int64

	// Quantized-tier counters (see QuantSearches and friends in quant.go).
	quantSearches atomic.Int64
	quantDocs     atomic.Int64
	quantReranked atomic.Int64

	// globalEpoch counts published mutations index-wide. It is bumped
	// AFTER the mutation's state pointers are stored (ingest publishes
	// ids + every shard state first; compaction swaps its segment
	// first), so an observer that reads epoch E and then snapshots is
	// guaranteed to see every mutation numbered <= E. That ordering is
	// what the query cache's epoch-keyed invalidation relies on: a
	// result computed entirely within one observed epoch can be served
	// to any later reader of that same epoch without ever resurrecting
	// pre-Add or pre-Compact state. Readers pay one atomic load.
	globalEpoch atomic.Uint64

	wake   chan struct{}
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool
}

// Build partitions the n×m term-document matrix a (documents as columns)
// round-robin across cfg.Shards shards, runs one rank-cfg.Rank SVD per
// shard, and returns the live index. ids[j] is the external identifier of
// global document j (= column j); len(ids) must equal m.
func Build(a *sparse.CSR, ids []string, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	n, m := a.Dims()
	if n == 0 || m == 0 {
		return nil, fmt.Errorf("shard: empty term-document matrix %dx%d", n, m)
	}
	if cfg.Rank < 1 {
		return nil, fmt.Errorf("shard: rank %d, want >= 1", cfg.Rank)
	}
	if len(ids) != m {
		return nil, fmt.Errorf("shard: %d ids for %d documents", len(ids), m)
	}
	x := newIndex(n, cfg)
	x.ids.Store(&idTable{ids: append([]string(nil), ids...)})

	// One independent SVD per shard over its column subset. Shard builds
	// are deterministic (seed+s) and independent, so building serially in
	// shard order keeps results reproducible; each build parallelizes
	// internally through the SVD kernels.
	for s := 0; s < cfg.Shards; s++ {
		sub, globals := columnSubset(a, s, cfg.Shards)
		if len(globals) == 0 {
			x.shards[s].state.Store(&shardState{})
			continue
		}
		ix, err := lsi.Build(sub, cfg.Rank, lsi.Options{Engine: cfg.Engine, Seed: cfg.Seed + int64(s)})
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		seg, err := segment.New(ix, globals, nil, true)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		if seg, err = x.trainAnn(seg, s); err != nil {
			return nil, err
		}
		if seg, err = x.trainQuant(seg); err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		x.shards[s].base = ix
		x.shards[s].state.Store(&shardState{stable: []*segment.Segment{seg}})
	}
	x.startCompactor()
	return x, nil
}

func newIndex(numTerms int, cfg Config) *Index {
	x := &Index{
		cfg:      cfg,
		numTerms: numTerms,
		shards:   make([]*shardH, cfg.Shards),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for s := range x.shards {
		x.shards[s] = &shardH{}
		x.shards[s].state.Store(&shardState{})
	}
	x.ids.Store(&idTable{})
	x.lastMutation.Store(time.Now().UnixNano())
	return x
}

// columnSubset extracts the columns of a assigned to shard s (j mod
// shards == s) as their own matrix, returning it with the global column
// numbers in ascending order. With one shard the original matrix is
// returned as-is, so a 1-shard build is bit-for-bit the unsharded build.
func columnSubset(a *sparse.CSR, s, shards int) (*sparse.CSR, []int) {
	n, m := a.Dims()
	if shards == 1 {
		globals := make([]int, m)
		for j := range globals {
			globals[j] = j
		}
		return a, globals
	}
	var globals []int
	local := make([]int, m) // global column -> shard-local column
	for j := s; j < m; j += shards {
		local[j] = len(globals)
		globals = append(globals, j)
	}
	if len(globals) == 0 {
		return nil, nil
	}
	coo := sparse.NewCOO(n, len(globals))
	for t := 0; t < n; t++ {
		a.RowIter(t, func(j int, v float64) {
			if j%shards == s {
				coo.Add(t, local[j], v)
			}
		})
	}
	return coo.ToCSR(), globals
}

// NumTerms returns the vocabulary dimension.
func (x *Index) NumTerms() int { return x.numTerms }

// NumDocs returns the number of indexed documents (including every
// folded-in document published so far).
func (x *Index) NumDocs() int { return len(x.ids.Load().ids) }

// NumShards returns the shard count.
func (x *Index) NumShards() int { return x.cfg.Shards }

// Rank returns the configured per-shard rank k.
func (x *Index) Rank() int { return x.cfg.Rank }

// Epoch returns the index-wide mutation epoch: it increases after every
// published mutation (ingest batch or compaction swap) and is stable
// between them. Reading the epoch, searching, and observing the same
// epoch afterwards proves the search saw no concurrent mutation — the
// validity protocol of retrieval's query cache. Immutable (unsharded)
// indexes have no counterpart; the retrieval layer uses a constant 0
// for them.
func (x *Index) Epoch() uint64 { return x.globalEpoch.Load() }

// Generation returns the manifest generation of the newest durable
// checkpoint: the generation Open loaded or the last SaveDir wrote
// (a built-but-never-saved index reports 0). Together with NumDocs it
// forms the replication token replicas compare against their primary
// (see retrieval/cluster).
func (x *Index) Generation() uint64 { return x.generation.Load() }

// ExternalID returns the external identifier of global document g, or
// "" if g is out of range.
func (x *Index) ExternalID(g int) string {
	ids := x.ids.Load().ids
	if g < 0 || g >= len(ids) {
		return ""
	}
	return ids[g]
}

// snapshot collects every segment currently published, shard by shard.
func (x *Index) snapshot() []*segment.Segment {
	var segs []*segment.Segment
	for _, sh := range x.shards {
		segs = sh.state.Load().segments(segs)
	}
	return segs
}

// SearchSparse ranks every indexed document against a sparse query
// (terms strictly ascending, the form the retrieval layer produces) and
// returns the topN best (all if topN <= 0), best-first with ties broken
// by ascending global document number. It is wait-free with respect to
// ingest and compaction: the segment set is snapshotted once and every
// segment in it is immutable.
func (x *Index) SearchSparse(terms []int, weights []float64, topN int) []topk.Match {
	return segment.SearchSparse(x.snapshot(), terms, weights, topN)
}

// SearchVec is SearchSparse for a dense term-space query vector.
func (x *Index) SearchVec(q []float64, topN int) []topk.Match {
	return segment.SearchVec(x.snapshot(), q, topN)
}

// Stats describes the index's segment topology and resource use.
type Stats struct {
	// Shards is the shard count; Epoch is the highest shard epoch (total
	// number of published mutations across the index's lifetime is the
	// sum, but the max is what monitoring needs: "is it moving?").
	Shards int    `json:"shards"`
	Epoch  uint64 `json:"epoch"`
	// Generation is the manifest generation of the newest durable
	// checkpoint (0 = never saved); see Index.Generation.
	Generation uint64 `json:"generation"`
	// Segments counts every published segment; Live of them are
	// fold-in segments still absorbing, SealedPending are sealed and
	// waiting for the compactor, Compacted were rebuilt (or built) by a
	// full decomposition.
	Segments      int `json:"segments"`
	Live          int `json:"liveSegments"`
	SealedPending int `json:"sealedPending"`
	Compacted     int `json:"compactedSegments"`
	// Docs is the total document count; FoldedDocs of them are currently
	// represented by fold-in rather than a direct decomposition.
	Docs       int `json:"docs"`
	FoldedDocs int `json:"foldedDocs"`
	// Compactions counts segment rebuilds performed since Build/Open.
	Compactions int64 `json:"compactions"`
	// Compacting reports whether a compaction pass is in flight.
	Compacting bool `json:"compacting"`
	// MemoryBytes estimates the heap held by segment data.
	MemoryBytes int64 `json:"memoryBytes"`
	// The ANN tier: ANNSegments counts segments carrying an IVF
	// quantizer, ANNDocs the documents they cover (ANNDocs/Docs is the
	// corpus fraction served sublinearly); the lifetime counters mirror
	// the ANNSearches/ANNCellsProbed/ANNDocsScored accessors.
	ANNSegments    int   `json:"annSegments"`
	ANNDocs        int   `json:"annDocs"`
	ANNSearches    int64 `json:"annSearches"`
	ANNCellsProbed int64 `json:"annCellsProbed"`
	ANNDocsScored  int64 `json:"annDocsScored"`
	// The quantized tier: QuantSegments counts segments carrying an int8
	// shadow, QuantDocs the documents they cover, QuantBytes the shadows'
	// footprint (compare against ~8·QuantDocs·rank for the float rows they
	// stand in for); the lifetime counters mirror the QuantSearches/
	// QuantDocsScanned/QuantDocsReranked accessors.
	QuantSegments     int   `json:"quantSegments"`
	QuantDocs         int   `json:"quantDocs"`
	QuantBytes        int64 `json:"quantBytes"`
	QuantSearches     int64 `json:"quantSearches"`
	QuantDocsScanned  int64 `json:"quantDocsScanned"`
	QuantDocsReranked int64 `json:"quantDocsReranked"`
}

// Stats snapshots the segment topology.
func (x *Index) Stats() Stats {
	st := Stats{Shards: x.cfg.Shards, Generation: x.generation.Load()}
	// Fold-in segments share their basis matrix with the segment they
	// fold against; count each distinct basis once.
	seenBasis := make(map[*mat.Dense]bool)
	for _, sh := range x.shards {
		s := sh.state.Load()
		if s.epoch > st.Epoch {
			st.Epoch = s.epoch
		}
		var segs []*segment.Segment
		segs = s.segments(segs)
		for _, seg := range segs {
			st.Segments++
			st.Docs += seg.Len()
			switch {
			case seg == s.live:
				st.Live++
				st.FoldedDocs += seg.Len()
			case compactable(seg):
				st.SealedPending++
				st.FoldedDocs += seg.Len()
			case seg.Compacted:
				st.Compacted++
			default:
				// Frozen fold-in segment (reloaded without its raw docs):
				// not live, not compactable, not a full decomposition.
				st.FoldedDocs += seg.Len()
			}
			k := int64(seg.Ix.K())
			m := int64(seg.Ix.NumDocs())
			st.MemoryBytes += 8*(m*k+k+m) + 16*int64(seg.Raw.NNZ())
			if b := seg.Ix.Basis(); !seenBasis[b] {
				seenBasis[b] = true
				st.MemoryBytes += 8 * int64(seg.Ix.NumTerms()) * k
			}
			if ann := seg.Ann; ann != nil {
				st.ANNSegments++
				st.ANNDocs += seg.Len()
				nlist := int64(ann.NList())
				st.MemoryBytes += 8*nlist*int64(ann.Dim()) + 8*nlist + 8*(nlist+1) + 4*int64(ann.NumDocs())
			}
			if qm := seg.Quant; qm != nil {
				st.QuantSegments++
				st.QuantDocs += seg.Len()
				st.QuantBytes += qm.Bytes()
				st.MemoryBytes += qm.Bytes()
			}
		}
	}
	for _, id := range x.ids.Load().ids {
		st.MemoryBytes += int64(len(id)) + 16
	}
	st.Compactions = x.compactions.Load()
	st.Compacting = x.compacting.Load() > 0
	st.ANNSearches = x.annSearches.Load()
	st.ANNCellsProbed = x.annCells.Load()
	st.ANNDocsScored = x.annDocs.Load()
	st.QuantSearches = x.quantSearches.Load()
	st.QuantDocsScanned = x.quantDocs.Load()
	st.QuantDocsReranked = x.quantReranked.Load()
	return st
}

// Ready reports whether the index has no compaction debt: no sealed
// segments waiting and no compaction in flight. Serving while not ready
// is correct (fold-in segments answer queries); Ready is the signal a
// load balancer uses to prefer warmed replicas.
func (x *Index) Ready() bool {
	if x.compacting.Load() > 0 {
		return false
	}
	return x.CompactionDebt() == 0
}

// CompactionDebt counts the sealed segments waiting for the compactor —
// the backlog that grows when ingest outruns compaction. Zero on a
// fully compacted index; the httpapi admission gate sheds ingest when
// this exceeds its budget, and /metrics exports it as the
// lsi_index_compaction_debt gauge.
func (x *Index) CompactionDebt() int {
	debt := 0
	for _, sh := range x.shards {
		for _, seg := range sh.state.Load().stable {
			if compactable(seg) {
				debt++
			}
		}
	}
	return debt
}

// Compacting reports whether a compaction pass is in flight.
func (x *Index) Compacting() bool { return x.compacting.Load() > 0 }

// Compactions returns the total number of segment rebuilds performed
// since Build or Open.
func (x *Index) Compactions() int64 { return x.compactions.Load() }

// DocsIngested returns the total number of documents accepted through
// Add/AddBatch since Build or Open (build-time documents are not
// counted). Monotonic; a Prometheus rate() over it is the ingest rate.
func (x *Index) DocsIngested() int64 { return x.docsIngested.Load() }

// LastMutation returns the wall-clock time of the last published
// mutation (ingest batch or compaction swap), or the build/open time if
// none has happened. time.Since(LastMutation()) is the index's epoch
// age: how stale the freshest published state is — near zero under
// steady ingest, growing on an idle or stalled index.
func (x *Index) LastMutation() time.Time {
	return time.Unix(0, x.lastMutation.Load())
}

// ShardStat is the per-shard slice of Stats: the segment counts and
// document total of one shard, in the same states Stats counts
// index-wide. Exported per shard so monitoring can spot imbalance
// (one shard accumulating sealed segments while others stay compacted).
type ShardStat struct {
	// Segments counts every published segment of the shard; Live,
	// SealedPending, and Compacted split them by lifecycle state (a
	// frozen fold-in segment reloaded without raw docs is in none of the
	// three).
	Segments      int `json:"segments"`
	Live          int `json:"liveSegments"`
	SealedPending int `json:"sealedPending"`
	Compacted     int `json:"compactedSegments"`
	// Docs is the shard's document count.
	Docs int `json:"docs"`
}

// ShardStats snapshots every shard's segment topology, indexed by shard
// number. Like Stats it is wait-free: each shard's published state is
// loaded once.
func (x *Index) ShardStats() []ShardStat {
	out := make([]ShardStat, len(x.shards))
	for i, sh := range x.shards {
		s := sh.state.Load()
		var segs []*segment.Segment
		segs = s.segments(segs)
		st := &out[i]
		for _, seg := range segs {
			st.Segments++
			st.Docs += seg.Len()
			switch {
			case seg == s.live:
				st.Live++
			case compactable(seg):
				st.SealedPending++
			case seg.Compacted:
				st.Compacted++
			}
		}
	}
	return out
}

// Close stops the background compactor and marks the index closed for
// ingest; searches against the already-published segments keep working.
// Close is idempotent.
func (x *Index) Close() error {
	if x.closed.Swap(true) {
		return nil
	}
	close(x.stop)
	<-x.done
	return nil
}
