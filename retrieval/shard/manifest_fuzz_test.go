package shard

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// validManifestJSON is a minimal well-formed manifest used as the
// positive fuzz seed and by the table tests below.
const validManifestJSON = `{
  "version": 1,
  "format": "lsi-sharded",
  "shards": 2,
  "rank": 3,
  "seed": 42,
  "numTerms": 10,
  "numDocs": 4,
  "sealEvery": 256,
  "idsFile": "ids.json",
  "segments": [
    [{"file": "seg-0-0.idx", "docs": 2, "globals": [0, 2], "compacted": true, "base": true}],
    [{"file": "seg-1-0.idx", "docs": 2, "globals": [1, 3], "compacted": true, "base": true}]
  ]
}`

// FuzzParseManifest asserts the manifest loader is total: any byte
// string — corrupt, truncated, hostile — must yield either a valid
// manifest or a descriptive error, never a panic and never an
// input-independent allocation. Seeds live in
// testdata/fuzz/FuzzParseManifest; run `go test -fuzz=FuzzParseManifest
// ./retrieval/shard` to explore further.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(validManifestJSON))
	f.Add([]byte(validManifestJSON)[:60]) // truncated mid-object
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version": 99, "format": "lsi-sharded", "shards": 1}`))
	f.Add([]byte(`{"version": 1, "format": "lsi-sharded", "shards": 1, "rank": 1, "numTerms": 1, "numDocs": 9999999999, "idsFile": "x", "segments": [[]]}`))
	f.Add([]byte(`{"version": 1, "format": "lsi-sharded", "shards": 1, "rank": 1, "numTerms": 1, "numDocs": 1, "idsFile": "../../etc/passwd", "segments": [[{"file": "s", "docs": 1, "globals": [0]}]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			if m != nil {
				t.Fatal("error with non-nil manifest")
			}
			return
		}
		// A manifest that parses must satisfy the invariants the loader
		// relies on.
		if m.Shards < 1 || m.Rank < 1 || m.NumTerms < 1 || m.NumDocs < 0 {
			t.Fatalf("accepted out-of-range manifest: %+v", m)
		}
		if len(m.Segments) != m.Shards {
			t.Fatalf("accepted %d segment lists for %d shards", len(m.Segments), m.Shards)
		}
		total := 0
		for _, segs := range m.Segments {
			for _, e := range segs {
				if e.File != filepath.Base(e.File) || strings.ContainsAny(e.File, `/\`) {
					t.Fatalf("accepted unsafe file name %q", e.File)
				}
				if e.Docs != len(e.Globals) {
					t.Fatalf("accepted docs/globals mismatch")
				}
				total += e.Docs
			}
		}
		if total != m.NumDocs {
			t.Fatalf("accepted numDocs=%d with %d documents", m.NumDocs, total)
		}
	})
}

func TestParseManifestRejectsCorruption(t *testing.T) {
	base := func() map[string]any {
		var m map[string]any
		if err := json.Unmarshal([]byte(validManifestJSON), &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	mutate := func(fn func(map[string]any)) []byte {
		m := base()
		fn(m)
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"valid", []byte(validManifestJSON), ""},
		{"truncated", []byte(validManifestJSON)[:80], "unexpected end"},
		{"not json", []byte("ceci n'est pas un manifeste"), "invalid character"},
		{"wrong format", mutate(func(m map[string]any) { m["format"] = "tarball" }), `format "tarball"`},
		{"future version", mutate(func(m map[string]any) { m["version"] = 99 }), "version 99"},
		{"zero shards", mutate(func(m map[string]any) { m["shards"] = 0; m["segments"] = []any{} }), "0 shards"},
		{"negative rank", mutate(func(m map[string]any) { m["rank"] = -1 }), "rank -1"},
		{"shard list mismatch", mutate(func(m map[string]any) { m["shards"] = 3 }), "segment lists"},
		{"traversal ids file", mutate(func(m map[string]any) { m["idsFile"] = "../ids.json" }), "bare name"},
		{"doc count mismatch", mutate(func(m map[string]any) { m["numDocs"] = 7 }), "numDocs=7"},
		{"duplicate global", mutate(func(m map[string]any) {
			segs := m["segments"].([]any)
			seg := segs[1].([]any)[0].(map[string]any)
			seg["globals"] = []any{0, 3}
		}), "more than one segment"},
		{"global out of range", mutate(func(m map[string]any) {
			segs := m["segments"].([]any)
			seg := segs[1].([]any)[0].(map[string]any)
			seg["globals"] = []any{1, 44}
		}), "out of [0,4)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := ParseManifest(tc.data)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid manifest rejected: %v", err)
				}
				if m.Shards != 2 || m.NumDocs != 4 {
					t.Fatalf("parsed %+v", m)
				}
				return
			}
			if err == nil {
				t.Fatalf("corrupt manifest accepted: %+v", m)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
