package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/segment"
)

// quantConfig is the test configuration of the int8 tier: every
// compacted segment builds a shadow, however small.
func quantConfig(shards int) Config {
	return Config{Shards: shards, Rank: 4, Seed: 77, SealEvery: 8, Quantize: true, QuantMinDocs: 1}
}

// quantSegments counts published segments carrying an int8 shadow.
func quantSegments(x *Index) int {
	n := 0
	for _, seg := range x.snapshot() {
		if seg.Quant != nil {
			n++
		}
	}
	return n
}

func TestQuantBuildTrainsCompactedSegments(t *testing.T) {
	a := testMatrix(t, 4, 10, 60, 501)
	x, err := Build(a, defaultIDs(60), quantConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if got := quantSegments(x); got != 2 {
		t.Fatalf("%d quantized segments after build, want 2 (one per shard)", got)
	}
	st := x.Stats()
	if st.QuantSegments != 2 || st.QuantDocs != 60 {
		t.Fatalf("Stats quant block = %d segments / %d docs, want 2 / 60", st.QuantSegments, st.QuantDocs)
	}
	if st.QuantBytes <= 0 {
		t.Fatalf("QuantBytes = %d, want > 0", st.QuantBytes)
	}
}

func TestQuantEscapeHatchBitwiseExact(t *testing.T) {
	a := testMatrix(t, 4, 10, 80, 502)
	x, err := Build(a, defaultIDs(80), quantConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for j := 0; j < 12; j++ {
		terms, weights := sparseCol(a, j)
		want := x.SearchSparse(terms, weights, 10)
		// Zero options are the exhaustive escape hatch: bitwise-equal to
		// the plain search, no tier counters moved.
		got, st := x.SearchSparseOpts(terms, weights, 10, segment.ProbeOptions{})
		sameMatches(t, got, want, "escape hatch")
		if st.QuantSegs != 0 || st.ExactDocs != 80 {
			t.Fatalf("escape hatch stats %+v, want pure exhaustive scan", st)
		}
		// A beta so large the rerank covers every document degenerates to
		// the exact pass: still bitwise-equal.
		got, st = x.SearchSparseOpts(terms, weights, 10, segment.ProbeOptions{Beta: 1000})
		sameMatches(t, got, want, "saturated beta")
	}
}

func TestQuantSearchMatchesTopResults(t *testing.T) {
	a := testMatrix(t, 4, 10, 100, 503)
	x, err := Build(a, defaultIDs(100), quantConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for j := 0; j < 10; j++ {
		terms, weights := sparseCol(a, j)
		want := x.SearchSparse(terms, weights, 5)
		got, st := x.SearchSparseOpts(terms, weights, 5, segment.ProbeOptions{Beta: 4})
		if st.QuantSegs != 2 {
			t.Fatalf("stats %+v, want both segments on the int8 path", st)
		}
		// Reranked exact scores mean every returned score is a true
		// float64 cosine; the top result should agree with the exact
		// search (the int8 stage only risks dropping near-ties deeper in
		// the list).
		if len(got) == 0 || len(want) == 0 {
			t.Fatal("empty results")
		}
		if got[0].Doc != want[0].Doc || got[0].Score != want[0].Score {
			t.Fatalf("query %d: quantized top hit (%d, %v) != exact (%d, %v)",
				j, got[0].Doc, got[0].Score, want[0].Doc, want[0].Score)
		}
	}
}

func TestQuantDeterministicAcrossWorkers(t *testing.T) {
	a := testMatrix(t, 4, 10, 90, 504)
	x, err := Build(a, defaultIDs(90), quantConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 5)
	opts := segment.ProbeOptions{Beta: 3}
	prev := par.SetMaxProcs(1)
	want, _ := x.SearchSparseOpts(terms, weights, 12, opts)
	par.SetMaxProcs(prev)
	for _, workers := range []int{2, 3, 8} {
		prev := par.SetMaxProcs(workers)
		got, _ := x.SearchSparseOpts(terms, weights, 12, opts)
		par.SetMaxProcs(prev)
		sameMatches(t, got, want, "quantized search across workers")
	}
}

func TestQuantMixedSegmentsLiveStayFloat(t *testing.T) {
	a := testMatrix(t, 4, 10, 40, 505)
	cfg := quantConfig(1)
	cfg.AutoCompact = false
	x, err := Build(a, defaultIDs(40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Fold in documents: they land in a live segment with no shadow and
	// must be served in float alongside the quantized initial segment.
	for i := 0; i < 5; i++ {
		terms, weights := sparseCol(a, i)
		if _, err := x.Add(Doc{ID: "live", Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	terms, weights := sparseCol(a, 2)
	got, st := x.SearchSparseOpts(terms, weights, 45, segment.ProbeOptions{Beta: 1000})
	if st.QuantSegs != 1 || st.ExactDocs != 5 {
		t.Fatalf("mixed stats %+v, want 1 quantized segment and 5 exact docs", st)
	}
	sameMatches(t, got, x.SearchSparse(terms, weights, 45), "mixed saturated beta")
	found := false
	for _, m := range got {
		if m.Doc >= 40 {
			found = true
		}
	}
	if !found {
		t.Fatal("no live-segment document in results")
	}
}

func TestQuantCompactorRebuilds(t *testing.T) {
	a := testMatrix(t, 4, 10, 30, 506)
	cfg := quantConfig(1)
	cfg.AutoCompact = false
	x, err := Build(a, defaultIDs(30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for i := 0; i < 20; i++ {
		terms, weights := sparseCol(a, i%30)
		if _, err := x.Add(Doc{Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := x.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range x.snapshot() {
		if seg.Compacted && seg.Quant == nil {
			t.Fatal("compacted segment left without an int8 shadow")
		}
		if !seg.Compacted && seg.Quant != nil {
			t.Fatal("fold-in segment carries an int8 shadow")
		}
	}
}

func TestQuantMinDocsGate(t *testing.T) {
	a := testMatrix(t, 4, 10, 50, 507)
	cfg := quantConfig(1)
	cfg.QuantMinDocs = 1000
	x, err := Build(a, defaultIDs(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if got := quantSegments(x); got != 0 {
		t.Fatalf("%d quantized segments under a 1000-doc threshold, want 0", got)
	}
	// The opts search still works — it just scans in float.
	terms, weights := sparseCol(a, 1)
	got, st := x.SearchSparseOpts(terms, weights, 10, segment.ProbeOptions{Beta: 4})
	if st.QuantSegs != 0 || st.ExactDocs != 50 {
		t.Fatalf("stats %+v, want pure exhaustive scan", st)
	}
	sameMatches(t, got, x.SearchSparse(terms, weights, 10), "gated")
}

func TestQuantSaveOpenRoundTrip(t *testing.T) {
	a := testMatrix(t, 4, 10, 70, 508)
	x, err := Build(a, defaultIDs(70), quantConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sidecars := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "quant-") && strings.HasSuffix(e.Name(), ".qnt") {
			sidecars++
		}
	}
	if sidecars != 2 {
		t.Fatalf("%d quant sidecars on disk, want 2", sidecars)
	}

	// Reopening with NO quant config still loads the sidecars and serves
	// quantized searches identical to the saved index.
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := quantSegments(y); got != 2 {
		t.Fatalf("%d quantized segments after open, want 2", got)
	}
	opts := segment.ProbeOptions{Beta: 3}
	for j := 0; j < 8; j++ {
		terms, weights := sparseCol(a, j)
		want, _ := x.SearchSparseOpts(terms, weights, 10, opts)
		got, _ := y.SearchSparseOpts(terms, weights, 10, opts)
		sameMatches(t, got, want, "reloaded quantized search")
	}

	// A re-save retires the old generation's sidecars.
	if err := y.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "quant-0-") {
			t.Fatalf("stale generation-0 sidecar %s survived re-save", e.Name())
		}
	}
}

func TestQuantOpenBuildsWhenSidecarMissing(t *testing.T) {
	a := testMatrix(t, 4, 10, 40, 509)
	// Save WITHOUT the quantized tier...
	x, err := Build(a, defaultIDs(40), Config{Shards: 2, Rank: 4, Seed: 77, SealEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// ...and open WITH it: segments quantize in place.
	y, err := Open(dir, Config{Quantize: true, QuantMinDocs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := quantSegments(y); got != 2 {
		t.Fatalf("%d quantized segments after quant-enabled open, want 2", got)
	}
	terms, weights := sparseCol(a, 3)
	got, _ := y.SearchSparseOpts(terms, weights, 10, segment.ProbeOptions{Beta: 1000})
	sameMatches(t, got, y.SearchSparse(terms, weights, 10), "built-on-open saturated beta")
}

func TestQuantExportCarriesSidecars(t *testing.T) {
	a := testMatrix(t, 4, 10, 60, 510)
	x, err := Build(a, defaultIDs(60), quantConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "node0")
	if err := x.SaveShardDir(0, dir); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := quantSegments(y); got != 1 {
		t.Fatalf("%d quantized segments in exported shard, want 1", got)
	}
	terms, weights := sparseCol(a, 0)
	got, _ := y.SearchSparseOpts(terms, weights, 10, segment.ProbeOptions{Beta: 1000})
	sameMatches(t, got, y.SearchSparse(terms, weights, 10), "exported saturated beta")
}

func TestQuantStatsCounters(t *testing.T) {
	a := testMatrix(t, 4, 10, 50, 511)
	x, err := Build(a, defaultIDs(50), quantConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 4)
	_, st := x.SearchSparseOpts(terms, weights, 5, segment.ProbeOptions{Beta: 2})
	if st.QuantSegs != 1 || st.QuantDocs != 50 || st.Reranked <= 0 || st.Reranked >= 50 {
		t.Fatalf("quant stats %+v, want a full int8 scan and a partial rerank", st)
	}
	s := x.Stats()
	if s.QuantSearches != 1 || s.QuantDocsScanned != int64(st.QuantDocs) || s.QuantDocsReranked != int64(st.Reranked) {
		t.Fatalf("counter stats %+v vs search %+v", s, st)
	}
	var ps segment.ProbeStats
	_, ps = x.SearchSparseOpts(terms, weights, 5, segment.ProbeOptions{}) // escape hatch: no counter movement
	if ps.QuantSegs != 0 || x.QuantSearches() != 1 {
		t.Fatalf("escape hatch moved counters: %+v, searches=%d", ps, x.QuantSearches())
	}
}

func TestQuantComposesWithANN(t *testing.T) {
	a := testMatrix(t, 4, 10, 90, 512)
	cfg := quantConfig(2)
	cfg.ANNList = 6
	cfg.ANNMinDocs = 1
	x, err := Build(a, defaultIDs(90), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 7)
	// Both tiers on: IVF narrows the candidate set, int8 scores it, exact
	// float reranks. Stats must show both tiers at work on every segment.
	got, st := x.SearchSparseOpts(terms, weights, 8, segment.ProbeOptions{NProbe: 2, Beta: 4})
	if st.Probed != 2 || st.QuantSegs != 2 {
		t.Fatalf("composed stats %+v, want both tiers on both segments", st)
	}
	if len(got) == 0 {
		t.Fatal("composed search returned nothing")
	}
	// Scores are exact-reranked: every returned score must equal the
	// exact cosine the plain search computes for that document.
	exact := x.SearchSparse(terms, weights, 90)
	score := map[int]float64{}
	for _, m := range exact {
		score[m.Doc] = m.Score
	}
	for _, m := range got {
		if s, ok := score[m.Doc]; !ok || s != m.Score {
			t.Fatalf("doc %d: composed score %v != exact %v", m.Doc, m.Score, s)
		}
	}
	// Full-coverage budgets on both tiers recover the exact results.
	full, _ := x.SearchSparseOpts(terms, weights, 10, segment.ProbeOptions{NProbe: 99, Beta: 1000})
	sameMatches(t, full, x.SearchSparse(terms, weights, 10), "saturated compose")
}
