package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/faultinject"
	"repro/internal/ivf"
	"repro/internal/lsi"
	"repro/internal/quant"
	"repro/internal/segment"
)

// Persistence: a sharded index saves to a directory — one small JSON
// manifest describing the shard/segment topology, one generation-stamped
// ids-<g>.json with the external document identifiers in global order,
// and one generation-stamped file per segment in the existing LSI wire
// format (internal/lsi, version 1 numeric payload). The manifest is
// versioned and strictly validated on load: a corrupt or truncated
// manifest fails with a descriptive error, never a panic (fuzzed in
// manifest_fuzz_test.go).
//
// Pending raw documents are not persisted: segments reload as
// non-compactable, serving exactly the scores they served when saved.
// Call Compact before SaveDir to persist a fully compacted index.

const (
	// ManifestName is the manifest's file name inside an index directory.
	ManifestName = "manifest.json"
	// ManifestVersion is the newest manifest format this build reads and
	// the version it writes.
	ManifestVersion = 1
	// manifestFormat guards against feeding some other JSON file to Open.
	manifestFormat = "lsi-sharded"
)

// Manifest is the on-disk description of a sharded index.
type Manifest struct {
	Version int    `json:"version"`
	Format  string `json:"format"`
	// Generation increments on every SaveDir into the same directory;
	// data files carry it in their names, so a re-save never overwrites
	// a file the previous manifest references and a crash mid-save
	// leaves the old manifest pointing at intact old files.
	Generation int                 `json:"generation"`
	Shards     int                 `json:"shards"`
	Rank       int                 `json:"rank"`
	Seed       int64               `json:"seed"`
	NumTerms   int                 `json:"numTerms"`
	NumDocs    int                 `json:"numDocs"`
	SealEvery  int                 `json:"sealEvery"`
	IDsFile    string              `json:"idsFile"`
	Segments   [][]ManifestSegment `json:"segments"` // [shard][i]
}

// ManifestSegment describes one segment file.
type ManifestSegment struct {
	File      string `json:"file"`
	Docs      int    `json:"docs"`
	Globals   []int  `json:"globals"`
	Compacted bool   `json:"compacted"`
	// Base marks the segment whose latent index is the shard's fold-in
	// basis for future ingest.
	Base bool `json:"base,omitempty"`
	// ANNFile names the segment's IVF quantizer sidecar (internal/ivf
	// wire format), empty when the segment has none. Optional by
	// construction: a version-1 manifest without it still opens, the
	// segment just serves exhaustively (or re-trains, if the opening
	// config asks for the ANN tier).
	ANNFile string `json:"annFile,omitempty"`
	// QuantFile names the segment's int8 shadow sidecar (internal/quant
	// wire format), empty when the segment has none. Optional exactly
	// like ANNFile: absent, the segment scores in float (or rebuilds the
	// shadow, if the opening config asks for the quantized tier).
	QuantFile string `json:"quantFile,omitempty"`
}

// ParseManifest decodes and validates manifest bytes. It is total:
// arbitrary input yields either a valid *Manifest or a descriptive
// error — never a panic and never unbounded allocation (every size it
// trusts is bounded by the input length).
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: manifest: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("shard: manifest: format %q, want %q", m.Format, manifestFormat)
	}
	if m.Version < 1 || m.Version > ManifestVersion {
		return nil, fmt.Errorf("shard: manifest: version %d is not supported by this build (supported: 1..%d); rebuild the index or upgrade",
			m.Version, ManifestVersion)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("shard: manifest: %d shards, want >= 1", m.Shards)
	}
	if m.Rank < 1 {
		return nil, fmt.Errorf("shard: manifest: rank %d, want >= 1", m.Rank)
	}
	if m.NumTerms < 1 {
		return nil, fmt.Errorf("shard: manifest: %d terms, want >= 1", m.NumTerms)
	}
	if m.SealEvery < 0 {
		return nil, fmt.Errorf("shard: manifest: sealEvery %d, want >= 0", m.SealEvery)
	}
	if m.Generation < 0 {
		return nil, fmt.Errorf("shard: manifest: generation %d, want >= 0", m.Generation)
	}
	if len(m.Segments) != m.Shards {
		return nil, fmt.Errorf("shard: manifest: segment lists for %d shards, manifest declares %d", len(m.Segments), m.Shards)
	}
	if err := validFileName(m.IDsFile); err != nil {
		return nil, fmt.Errorf("shard: manifest: ids file: %w", err)
	}
	// Every document must live in exactly one segment: the per-segment
	// global lists partition [0, NumDocs). Sizes are checked before any
	// allocation keyed on them, so a corrupt NumDocs cannot drive a huge
	// allocation — it must equal the total globals actually present.
	total := 0
	for s, segs := range m.Segments {
		for i, e := range segs {
			if err := validFileName(e.File); err != nil {
				return nil, fmt.Errorf("shard: manifest: shard %d segment %d: %w", s, i, err)
			}
			if e.ANNFile != "" {
				if err := validFileName(e.ANNFile); err != nil {
					return nil, fmt.Errorf("shard: manifest: shard %d segment %d: ann file: %w", s, i, err)
				}
			}
			if e.QuantFile != "" {
				if err := validFileName(e.QuantFile); err != nil {
					return nil, fmt.Errorf("shard: manifest: shard %d segment %d: quant file: %w", s, i, err)
				}
			}
			if e.Docs != len(e.Globals) {
				return nil, fmt.Errorf("shard: manifest: shard %d segment %d: docs=%d but %d globals",
					s, i, e.Docs, len(e.Globals))
			}
			total += e.Docs
		}
	}
	if m.NumDocs != total {
		return nil, fmt.Errorf("shard: manifest: numDocs=%d but segments hold %d documents", m.NumDocs, total)
	}
	seen := make([]bool, m.NumDocs)
	for s, segs := range m.Segments {
		for i, e := range segs {
			prev := -1
			for _, g := range e.Globals {
				if g < 0 || g >= m.NumDocs {
					return nil, fmt.Errorf("shard: manifest: shard %d segment %d: global %d out of [0,%d)",
						s, i, g, m.NumDocs)
				}
				if seen[g] {
					return nil, fmt.Errorf("shard: manifest: global %d appears in more than one segment", g)
				}
				seen[g] = true
				if g <= prev {
					return nil, fmt.Errorf("shard: manifest: shard %d segment %d: globals not strictly ascending at %d",
						s, i, g)
				}
				prev = g
			}
		}
	}
	for s, segs := range m.Segments {
		bases := 0
		for _, e := range segs {
			if e.Base {
				bases++
			}
		}
		if bases > 1 {
			return nil, fmt.Errorf("shard: manifest: shard %d marks %d base segments, want at most 1", s, bases)
		}
	}
	return &m, nil
}

// validFileName accepts only bare file names — no separators, no
// traversal — so a hostile manifest cannot read or write outside its
// index directory.
func validFileName(name string) error {
	if name == "" {
		return fmt.Errorf("empty file name")
	}
	if name != filepath.Base(name) || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("file name %q is not a bare name", name)
	}
	return nil
}

// nextGeneration scans dir for generation-stamped data files and returns
// one past the highest generation found, so a new save never reuses a
// file name an earlier manifest might reference.
func nextGeneration(dir string, fsys faultinject.FS) (int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	gen := 0
	for _, e := range entries {
		var g, a, b int
		if n, _ := fmt.Sscanf(e.Name(), "seg-%d-%d-%d.idx", &g, &a, &b); n == 3 && g >= gen {
			gen = g + 1
		}
		if n, _ := fmt.Sscanf(e.Name(), "ann-%d-%d-%d.ivf", &g, &a, &b); n == 3 && g >= gen {
			gen = g + 1
		}
		if n, _ := fmt.Sscanf(e.Name(), "quant-%d-%d-%d.qnt", &g, &a, &b); n == 3 && g >= gen {
			gen = g + 1
		}
		if n, _ := fmt.Sscanf(e.Name(), "ids-%d.json", &g); n == 1 && g >= gen {
			gen = g + 1
		}
	}
	return gen, nil
}

// writeFileAtomic writes data to dir/name via a temp file + rename, so
// the name only ever holds a complete file.
func writeFileAtomic(dir, name string, data []byte, fsys faultinject.FS) error {
	tmp := filepath.Join(dir, name+".tmp")
	if err := fsys.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(dir, name))
}

// SaveDir writes the index to dir (created if needed): the manifest,
// the external IDs, and one wire-format file per segment. The snapshot
// is taken atomically with respect to ingest. The save is crash-safe,
// including re-saves into a live index directory: data files carry a
// fresh generation number (never overwriting anything the current
// manifest references), the manifest itself is switched by an atomic
// rename, and only after that switch are the previous generation's
// files deleted. A crash at any point leaves the directory opening as
// either the complete old index or the complete new one.
func (x *Index) SaveDir(dir string) error { return x.SaveDirFS(dir, faultinject.OS{}) }

// SaveDirFS is SaveDir with an explicit file system — the
// fault-injection seam. Every write the checkpoint performs goes
// through fsys, so tests interpose a faultinject.FaultyFS and verify
// that a save interrupted by torn writes or disk-full leaves the
// directory opening as the complete previous index.
func (x *Index) SaveDirFS(dir string, fsys faultinject.FS) error {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	gen, err := nextGeneration(dir, fsys)
	if err != nil {
		return fmt.Errorf("shard: save: %w", err)
	}
	// Snapshot under ingestMu so ids and segment states agree; writing
	// happens after release.
	x.ingestMu.Lock()
	ids := x.ids.Load().ids
	states := make([]*shardState, len(x.shards))
	bases := make([]*lsi.Index, len(x.shards))
	for s, sh := range x.shards {
		states[s] = sh.state.Load()
		bases[s] = sh.base
	}
	x.ingestMu.Unlock()

	man := &Manifest{
		Version:    ManifestVersion,
		Format:     manifestFormat,
		Generation: gen,
		Shards:     x.cfg.Shards,
		Rank:       x.cfg.Rank,
		Seed:       x.cfg.Seed,
		NumTerms:   x.numTerms,
		NumDocs:    len(ids),
		SealEvery:  x.cfg.SealEvery,
		IDsFile:    fmt.Sprintf("ids-%d.json", gen),
		Segments:   make([][]ManifestSegment, x.cfg.Shards),
	}
	keep := map[string]bool{man.IDsFile: true}
	for s, st := range states {
		var segs []*segment.Segment
		segs = st.segments(segs)
		man.Segments[s] = []ManifestSegment{}
		for i, seg := range segs {
			name := fmt.Sprintf("seg-%d-%d-%d.idx", gen, s, i)
			var buf bytes.Buffer
			if err := seg.Ix.Save(&buf); err != nil {
				return fmt.Errorf("shard: save segment %s: %w", name, err)
			}
			if err := writeFileAtomic(dir, name, buf.Bytes(), fsys); err != nil {
				return fmt.Errorf("shard: save segment %s: %w", name, err)
			}
			keep[name] = true
			annName := ""
			if seg.Ann != nil {
				annName = fmt.Sprintf("ann-%d-%d-%d.ivf", gen, s, i)
				if err := writeFileAtomic(dir, annName, seg.Ann.Encode(), fsys); err != nil {
					return fmt.Errorf("shard: save quantizer %s: %w", annName, err)
				}
				keep[annName] = true
			}
			quantName := ""
			if seg.Quant != nil {
				quantName = fmt.Sprintf("quant-%d-%d-%d.qnt", gen, s, i)
				if err := writeFileAtomic(dir, quantName, seg.Quant.Encode(), fsys); err != nil {
					return fmt.Errorf("shard: save quantized matrix %s: %w", quantName, err)
				}
				keep[quantName] = true
			}
			man.Segments[s] = append(man.Segments[s], ManifestSegment{
				File:      name,
				Docs:      seg.Len(),
				Globals:   seg.Global,
				Compacted: seg.Compacted,
				Base:      bases[s] != nil && seg.Ix == bases[s],
				ANNFile:   annName,
				QuantFile: quantName,
			})
		}
	}

	idsData, err := json.Marshal(ids)
	if err != nil {
		return fmt.Errorf("shard: save ids: %w", err)
	}
	if err := writeFileAtomic(dir, man.IDsFile, idsData, fsys); err != nil {
		return fmt.Errorf("shard: save ids: %w", err)
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	if err := writeFileAtomic(dir, ManifestName, manData, fsys); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	// From here the new manifest is the directory's truth: fsync the
	// directory so the rename survives power loss.
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("shard: save manifest: %w", err)
	}
	x.generation.Store(uint64(gen))

	// The new manifest is live; retire the previous generation's data
	// files (best-effort — see retireStaleGenerations).
	retireStaleGenerations(dir, keep)
	return nil
}

// Open loads an index saved by SaveDir. The manifest supplies the
// structural configuration (shards, rank, seed, vocabulary dimension);
// cfg supplies the runtime knobs — SealEvery (0 keeps the saved value),
// AutoCompact, Engine, CompactL. Segments reload exactly as saved and
// serve identical scores; retained raw documents are not persisted, so
// reloaded segments are not re-compactable.
func Open(dir string, cfg Config) (*Index, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("shard: open: %w", err)
	}
	man, err := ParseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("shard: open: %w", err)
	}

	cfg.Shards = man.Shards
	cfg.Rank = man.Rank
	cfg.Seed = man.Seed
	if cfg.SealEvery <= 0 {
		cfg.SealEvery = man.SealEvery
	}
	cfg = cfg.withDefaults()

	idsData, err := os.ReadFile(filepath.Join(dir, man.IDsFile))
	if err != nil {
		return nil, fmt.Errorf("shard: open: %w", err)
	}
	var ids []string
	if err := json.Unmarshal(idsData, &ids); err != nil {
		return nil, fmt.Errorf("shard: open %s: %w", man.IDsFile, err)
	}
	if len(ids) != man.NumDocs {
		return nil, fmt.Errorf("shard: open: %d ids for %d documents", len(ids), man.NumDocs)
	}

	x := newIndex(man.NumTerms, cfg)
	x.generation.Store(uint64(man.Generation))
	x.ids.Store(&idTable{ids: ids})
	for s, entries := range man.Segments {
		st := &shardState{}
		for _, e := range entries {
			f, err := os.Open(filepath.Join(dir, e.File))
			if err != nil {
				return nil, fmt.Errorf("shard: open: %w", err)
			}
			ix, err := lsi.Load(f)
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("shard: open segment %s: %w", e.File, err)
			}
			if ix.NumTerms() != man.NumTerms {
				return nil, fmt.Errorf("shard: open segment %s: %d terms, manifest says %d",
					e.File, ix.NumTerms(), man.NumTerms)
			}
			if ix.NumDocs() != e.Docs {
				return nil, fmt.Errorf("shard: open segment %s: %d documents, manifest says %d",
					e.File, ix.NumDocs(), e.Docs)
			}
			seg, err := segment.New(ix, e.Globals, nil, e.Compacted)
			if err != nil {
				return nil, fmt.Errorf("shard: open segment %s: %w", e.File, err)
			}
			if e.ANNFile != "" {
				annData, err := os.ReadFile(filepath.Join(dir, e.ANNFile))
				if err != nil {
					return nil, fmt.Errorf("shard: open: %w", err)
				}
				ann, err := ivf.Decode(annData)
				if err != nil {
					return nil, fmt.Errorf("shard: open quantizer %s: %w", e.ANNFile, err)
				}
				if seg, err = seg.WithAnn(ann); err != nil {
					return nil, fmt.Errorf("shard: open quantizer %s: %w", e.ANNFile, err)
				}
			} else if seg, err = x.trainAnn(seg, s); err != nil {
				// An older save without sidecars opens into an ANN-enabled
				// config by training in place, so the tier is available
				// without a rebuild.
				return nil, fmt.Errorf("shard: open segment %s: %w", e.File, err)
			}
			if e.QuantFile != "" {
				quantData, err := os.ReadFile(filepath.Join(dir, e.QuantFile))
				if err != nil {
					return nil, fmt.Errorf("shard: open: %w", err)
				}
				qm, err := quant.Decode(quantData)
				if err != nil {
					return nil, fmt.Errorf("shard: open quantized matrix %s: %w", e.QuantFile, err)
				}
				if seg, err = seg.WithQuant(qm); err != nil {
					return nil, fmt.Errorf("shard: open quantized matrix %s: %w", e.QuantFile, err)
				}
			} else if seg, err = x.trainQuant(seg); err != nil {
				// Same fallback as the ANN sidecar: an older save opens into
				// a quantization-enabled config by rebuilding the shadow in
				// place (deterministic, so it matches what a save would hold).
				return nil, fmt.Errorf("shard: open segment %s: %w", e.File, err)
			}
			st.stable = append(st.stable, seg)
			if e.Base {
				x.shards[s].base = ix
			}
		}
		// A shard that has segments but no recorded basis (a manifest
		// from a degenerate save) falls back to its first segment's
		// index so ingest keeps working.
		if x.shards[s].base == nil && len(st.stable) > 0 {
			x.shards[s].base = st.stable[0].Ix
		}
		x.shards[s].state.Store(st)
	}
	x.startCompactor()
	return x, nil
}
