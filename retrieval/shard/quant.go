package shard

import (
	"repro/internal/quant"
	"repro/internal/segment"
	"repro/internal/topk"
)

// The quantized scoring tier. When Config.Quantize is set every
// compacted segment big enough to be worth it carries an int8 shadow of
// its rank-k document matrix (internal/quant): built at build time for
// the initial segments, rebuilt by the compactor right after each re-SVD.
// Like the ANN quantizer it is derived state of the decomposition — it
// rides the same publish-then-bump swap, so the epoch-keyed query cache
// needs no new invalidation machinery — and live fold-in segments never
// carry one, so freshly ingested documents are scored in float by
// construction. Unlike the ANN quantizer, quantization is seedless: the
// shadow is a pure function of the document matrix.

// defaultQuantMinDocs is the segment size below which an int8 shadow is
// not worth building: the scan it accelerates is already tiny, and the
// over-fetched rerank would cover most of the segment anyway.
const defaultQuantMinDocs = 256

// quantMinDocs resolves the configured build threshold.
func (x *Index) quantMinDocs() int {
	if x.cfg.QuantMinDocs != 0 {
		return x.cfg.QuantMinDocs
	}
	return defaultQuantMinDocs
}

// trainQuant attaches a freshly built int8 shadow to seg when the
// quantized tier is configured and the segment qualifies (compacted, at
// or above the size threshold); otherwise it returns seg unchanged. Like
// trainAnn it is pure with respect to the segment, so callers publish
// the result with the same atomic swap they would publish seg.
func (x *Index) trainQuant(seg *segment.Segment) (*segment.Segment, error) {
	if !x.cfg.Quantize || !seg.Compacted || seg.Len() < x.quantMinDocs() {
		return seg, nil
	}
	return seg.WithQuant(quant.Quantize(seg.Ix.DocVectors()))
}

// SearchSparseOpts is SearchSparse with explicit tier options: segments
// carrying the configured sidecars answer through the IVF and/or int8
// paths, the rest scan exhaustively, and results merge deterministically
// with exact float64 scores. The zero options are the exhaustive escape
// hatch (identical to SearchSparse). Tier work is accumulated into the
// index's ANN and quant counters for /metrics.
func (x *Index) SearchSparseOpts(terms []int, weights []float64, topN int, opts segment.ProbeOptions) ([]topk.Match, segment.ProbeStats) {
	ms, st := segment.SearchSparseOpts(x.snapshot(), terms, weights, topN, opts)
	x.recordProbe(st)
	return ms, st
}

// SearchVecOpts is SearchSparseOpts for a dense term-space query.
func (x *Index) SearchVecOpts(q []float64, topN int, opts segment.ProbeOptions) ([]topk.Match, segment.ProbeStats) {
	ms, st := segment.SearchVecOpts(x.snapshot(), q, topN, opts)
	x.recordProbe(st)
	return ms, st
}

// QuantSearches returns how many searches were answered at least partly
// through the int8 tier since Build/Open. Monotonic, for /metrics.
func (x *Index) QuantSearches() int64 { return x.quantSearches.Load() }

// QuantDocsScanned returns the lifetime total of documents scored
// through the int8 kernels.
func (x *Index) QuantDocsScanned() int64 { return x.quantDocs.Load() }

// QuantDocsReranked returns the lifetime total of over-fetched
// candidates rescored with exact float kernels — the stage-2 work the
// scan's narrowing paid for.
func (x *Index) QuantDocsReranked() int64 { return x.quantReranked.Load() }
