package shard

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/lsi"
	"repro/internal/topk"
)

// Exporting every shard of a central build and re-merging the exported
// nodes' results must reproduce the central index bitwise — the
// property the cluster router's fan-out merge rests on.
func TestSaveShardDirMergeMatchesCentralBitwise(t *testing.T) {
	const shards, m = 3, 47 // m not divisible by shards: uneven last round
	a := testMatrix(t, 3, 12, m, 311)
	ids := make([]string, m)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc-%03d", i)
	}
	central, err := Build(a, ids, Config{Shards: shards, Rank: 4, Engine: lsi.EngineRandomized, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer central.Close()

	dir := t.TempDir()
	nodes := make([]*Index, shards)
	for s := 0; s < shards; s++ {
		sub := filepath.Join(dir, fmt.Sprintf("node%d", s))
		if err := central.SaveShardDir(s, sub); err != nil {
			t.Fatalf("SaveShardDir(%d): %v", s, err)
		}
		nodes[s], err = Open(sub, Config{})
		if err != nil {
			t.Fatalf("Open export %d: %v", s, err)
		}
		defer nodes[s].Close()
	}

	// Node-local document counts partition the corpus, and external IDs
	// survive the local remap.
	totalDocs := 0
	for s, node := range nodes {
		totalDocs += node.NumDocs()
		for l := 0; l < node.NumDocs(); l++ {
			g := l*shards + s
			if got, want := node.ExternalID(l), central.ExternalID(g); got != want {
				t.Fatalf("node %d local %d: id %q, want %q (global %d)", s, l, got, want, g)
			}
		}
	}
	if totalDocs != m {
		t.Fatalf("exports hold %d docs total, want %d", totalDocs, m)
	}

	// Merged per-node results == central results, bitwise, for full
	// rankings: each node returns everything, locals remap to globals,
	// and the strict (score desc, doc asc) order does the rest.
	for j := 0; j < 10; j++ {
		terms, weights := sparseCol(a, j)
		want := central.SearchSparse(terms, weights, 0)
		var merged []topk.Match
		for s, node := range nodes {
			for _, match := range node.SearchSparse(terms, weights, 0) {
				merged = append(merged, topk.Match{Doc: match.Doc*shards + s, Score: match.Score})
			}
		}
		topk.SortMatches(merged)
		sameMatches(t, merged, want, fmt.Sprintf("query %d", j))
	}
}

func TestSaveShardDirRejectsBadShard(t *testing.T) {
	a := testMatrix(t, 2, 10, 12, 313)
	x, err := Build(a, defaultIDs(12), Config{Shards: 2, Rank: 3, Engine: lsi.EngineRandomized, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.SaveShardDir(-1, t.TempDir()); err == nil {
		t.Fatal("SaveShardDir(-1) succeeded")
	}
	if err := x.SaveShardDir(2, t.TempDir()); err == nil {
		t.Fatal("SaveShardDir(2) succeeded")
	}
}

// Generation must surface through Stats and Generation() after save and
// reopen.
func TestGenerationSurfacing(t *testing.T) {
	a := testMatrix(t, 2, 10, 12, 317)
	x, err := Build(a, defaultIDs(12), Config{Shards: 2, Rank: 3, Engine: lsi.EngineRandomized, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := t.TempDir()
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := x.Generation(); got != 0 {
		t.Fatalf("first save: Generation() = %d, want 0", got)
	}
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if got := x.Generation(); got != 1 {
		t.Fatalf("second save: Generation() = %d, want 1", got)
	}
	if got := x.Stats().Generation; got != 1 {
		t.Fatalf("Stats().Generation = %d, want 1", got)
	}
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := y.Generation(); got != 1 {
		t.Fatalf("reopened Generation() = %d, want 1", got)
	}
}
