package shard

import (
	"fmt"

	"repro/internal/ivf"
	"repro/internal/segment"
	"repro/internal/topk"
)

// The ANN tier. When Config.ANNList > 0 every compacted segment big
// enough to be worth probing carries an IVF coarse quantizer over its
// rank-k document vectors (internal/ivf): trained at build time for the
// initial segments, retrained by the compactor right after each re-SVD —
// the quantizer is derived state of the decomposition, so it rides the
// same publish-then-bump swap and the epoch-keyed query cache needs no
// new invalidation machinery. Live fold-in segments never carry one and
// stay exhaustive; a probe search over a mixed segment set merges both
// paths under the strict (score desc, global doc asc) order.

// defaultANNMinDocs is the segment size below which training a quantizer
// is not worth it: probing saves a fraction of an already-tiny scan while
// paying the cell-ranking pass.
const defaultANNMinDocs = 256

// annMinDocs resolves the configured training threshold.
func (x *Index) annMinDocs() int {
	if x.cfg.ANNMinDocs != 0 {
		return x.cfg.ANNMinDocs
	}
	return defaultANNMinDocs
}

// annSeed derives the deterministic training seed of a segment's
// quantizer from the configured seed, the shard, and the segment's first
// global document — the same scheme the compactor uses for rebuild
// seeds, offset so the two streams never collide. Re-training the same
// documents yields the same centroids, run after run.
func annSeed(base int64, s, firstGlobal int) int64 {
	return base + int64(s)*1000003 + int64(firstGlobal)*8191 + 500009
}

// trainAnn attaches a freshly trained quantizer to seg when the ANN tier
// is configured and the segment qualifies (compacted, at or above the
// size threshold); otherwise it returns seg unchanged. Training is pure
// with respect to the segment: it reads the published document vectors
// and produces a new Segment value, so callers publish the result with
// the same atomic swap they would publish seg.
func (x *Index) trainAnn(seg *segment.Segment, s int) (*segment.Segment, error) {
	if x.cfg.ANNList <= 0 || !seg.Compacted || seg.Len() < x.annMinDocs() {
		return seg, nil
	}
	ann, err := ivf.Train(seg.Ix.DocVectors(), seg.Ix.Norms(), ivf.TrainOptions{
		NList: x.cfg.ANNList,
		Seed:  annSeed(x.cfg.Seed, s, seg.Global[0]),
	})
	if err != nil {
		return nil, fmt.Errorf("shard %d: training quantizer: %w", s, err)
	}
	return seg.WithAnn(ann)
}

// SearchSparseProbe is SearchSparse with an IVF probe budget: segments
// carrying a quantizer score only their nprobe nearest cells, the rest
// scan exhaustively, and results merge deterministically. nprobe <= 0 is
// the exhaustive escape hatch (identical to SearchSparse); nprobe >=
// nlist returns bitwise-identical results to SearchSparse. Probe work is
// accumulated into the index's ANN counters for /metrics.
func (x *Index) SearchSparseProbe(terms []int, weights []float64, topN, nprobe int) ([]topk.Match, segment.ProbeStats) {
	ms, st := segment.SearchSparseProbe(x.snapshot(), terms, weights, topN, nprobe)
	x.recordProbe(st)
	return ms, st
}

// SearchVecProbe is SearchSparseProbe for a dense term-space query.
func (x *Index) SearchVecProbe(q []float64, topN, nprobe int) ([]topk.Match, segment.ProbeStats) {
	ms, st := segment.SearchVecProbe(x.snapshot(), q, topN, nprobe)
	x.recordProbe(st)
	return ms, st
}

// recordProbe folds one search's tier stats into the lifetime counters.
func (x *Index) recordProbe(st segment.ProbeStats) {
	if st.Probed > 0 {
		x.annSearches.Add(1)
		x.annCells.Add(int64(st.Cells))
		x.annDocs.Add(int64(st.Docs))
	}
	if st.QuantSegs > 0 {
		x.quantSearches.Add(1)
		x.quantDocs.Add(int64(st.QuantDocs))
		x.quantReranked.Add(int64(st.Reranked))
	}
}

// ANNSearches returns how many searches were answered at least partly
// through the ANN tier since Build/Open. Monotonic, for /metrics.
func (x *Index) ANNSearches() int64 { return x.annSearches.Load() }

// ANNCellsProbed returns the lifetime total of cells probed.
func (x *Index) ANNCellsProbed() int64 { return x.annCells.Load() }

// ANNDocsScored returns the lifetime total of ANN candidates scored —
// against DocsIngested-scale corpus sizes, the saved scan fraction.
func (x *Index) ANNDocsScored() int64 { return x.annDocs.Load() }
