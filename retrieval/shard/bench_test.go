package shard

import (
	"fmt"
	"testing"
)

// Benchmarks for the sharded hot paths, recorded per PR via
// scripts/bench_record.sh into BENCH_4.json and compiled-and-run by the
// CI bench-smoke job.
//
//   - BenchmarkShardedSearch holds the corpus fixed and varies the shard
//     count: the per-query cost model is S·O(nnz(q)·k) projections plus
//     one O(M·k) scan over all documents, so 1 vs 4 vs 16 shards mostly
//     measures fan-out overhead.
//   - BenchmarkIngestThroughput measures single-document Add latency
//     against a live index (fold-in + copy-on-write republication).

const (
	benchDocs = 1536
	benchRank = 8
)

func benchQueries(b *testing.B, x *Index) ([][]int, [][]float64) {
	b.Helper()
	a := testMatrix(b, 4, 30, 32, 90)
	var terms [][]int
	var weights [][]float64
	for j := 0; j < 32; j++ {
		n, _ := a.Dims()
		var ts []int
		var ws []float64
		for t := 0; t < n && t < x.NumTerms(); t++ {
			if v := a.At(t, j); v != 0 {
				ts = append(ts, t)
				ws = append(ws, v)
			}
		}
		terms = append(terms, ts)
		weights = append(weights, ws)
	}
	return terms, weights
}

func BenchmarkShardedSearch(b *testing.B) {
	a := testMatrix(b, 4, 30, benchDocs, 91)
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			x, err := Build(a, defaultIDs(benchDocs), Config{Shards: shards, Rank: benchRank, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer x.Close()
			terms, weights := benchQueries(b, x)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := i % len(terms)
				res := x.SearchSparse(terms[q], weights[q], 10)
				if len(res) == 0 {
					b.Fatal("empty result")
				}
			}
		})
	}
}

func BenchmarkIngestThroughput(b *testing.B) {
	a := testMatrix(b, 4, 30, 256, 92)
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			x, err := Build(a, defaultIDs(256), Config{Shards: shards, Rank: benchRank, Seed: 2, SealEvery: 512})
			if err != nil {
				b.Fatal(err)
			}
			defer x.Close()
			// Pre-extract the documents to fold so the timer sees only
			// ingest.
			var docs []Doc
			for j := 0; j < 256; j++ {
				terms, weights := sparseCol(a, j)
				docs = append(docs, Doc{Terms: terms, Weights: weights})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := x.Add(docs[i%len(docs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}
