package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/par"
	"repro/internal/segment"
)

// annConfig is the test configuration of the ANN tier: every compacted
// segment trains, however small.
func annConfig(shards int) Config {
	return Config{Shards: shards, Rank: 4, Seed: 77, SealEvery: 8, ANNList: 6, ANNProbe: 2, ANNMinDocs: 1}
}

// annSegments counts published segments carrying a quantizer.
func annSegments(x *Index) int {
	n := 0
	for _, seg := range x.snapshot() {
		if seg.Ann != nil {
			n++
		}
	}
	return n
}

func TestANNBuildTrainsCompactedSegments(t *testing.T) {
	a := testMatrix(t, 4, 10, 60, 401)
	x, err := Build(a, defaultIDs(60), annConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if got := annSegments(x); got != 2 {
		t.Fatalf("%d quantized segments after build, want 2 (one per shard)", got)
	}
	st := x.Stats()
	if st.ANNSegments != 2 || st.ANNDocs != 60 {
		t.Fatalf("Stats ANN block = %d segments / %d docs, want 2 / 60", st.ANNSegments, st.ANNDocs)
	}
}

func TestANNFullProbeMatchesExhaustiveBitwise(t *testing.T) {
	a := testMatrix(t, 4, 10, 80, 402)
	x, err := Build(a, defaultIDs(80), annConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for j := 0; j < 12; j++ {
		terms, weights := sparseCol(a, j)
		want := x.SearchSparse(terms, weights, 10)
		// nprobe >= nlist probes every cell: bitwise-equal to exhaustive.
		got, st := x.SearchSparseProbe(terms, weights, 10, 99)
		sameMatches(t, got, want, "full probe")
		if st.Probed != 3 || st.ExactDocs != 0 {
			t.Fatalf("full probe stats %+v, want 3 probed segments and no exact scan", st)
		}
		// nprobe <= 0 is the exhaustive escape hatch.
		got, st = x.SearchSparseProbe(terms, weights, 10, 0)
		sameMatches(t, got, want, "escape hatch")
		if st.Probed != 0 || st.ExactDocs != 80 {
			t.Fatalf("escape hatch stats %+v, want pure exhaustive scan", st)
		}
	}
}

func TestANNProbeDeterministicAcrossWorkers(t *testing.T) {
	a := testMatrix(t, 4, 10, 90, 403)
	x, err := Build(a, defaultIDs(90), annConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 5)
	prev := par.SetMaxProcs(1)
	want, _ := x.SearchSparseProbe(terms, weights, 12, 2)
	par.SetMaxProcs(prev)
	for _, workers := range []int{2, 3, 8} {
		prev := par.SetMaxProcs(workers)
		got, _ := x.SearchSparseProbe(terms, weights, 12, 2)
		par.SetMaxProcs(prev)
		sameMatches(t, got, want, "probe across workers")
	}
}

func TestANNMixedSegmentsLiveStayExact(t *testing.T) {
	a := testMatrix(t, 4, 10, 40, 404)
	cfg := annConfig(1)
	cfg.AutoCompact = false
	x, err := Build(a, defaultIDs(40), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Fold in a few documents: they land in a live segment with no
	// quantizer and must be served exhaustively alongside the probed
	// initial segment.
	for i := 0; i < 5; i++ {
		terms, weights := sparseCol(a, i)
		if _, err := x.Add(Doc{ID: "live", Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	terms, weights := sparseCol(a, 2)
	got, st := x.SearchSparseProbe(terms, weights, 45, 99)
	if st.Probed != 1 || st.ExactDocs != 5 {
		t.Fatalf("mixed stats %+v, want 1 probed segment and 5 exact docs", st)
	}
	sameMatches(t, got, x.SearchSparse(terms, weights, 45), "mixed full probe")
	// The folded duplicates of column 2 (globals 40..44 include one) must
	// be findable — i.e. the live segment genuinely participates.
	found := false
	for _, m := range got {
		if m.Doc >= 40 {
			found = true
		}
	}
	if !found {
		t.Fatal("no live-segment document in results")
	}
}

func TestANNCompactorRetrains(t *testing.T) {
	a := testMatrix(t, 4, 10, 30, 405)
	cfg := annConfig(1)
	cfg.AutoCompact = false
	x, err := Build(a, defaultIDs(30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for i := 0; i < 20; i++ {
		terms, weights := sparseCol(a, i%30)
		if _, err := x.Add(Doc{Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := x.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, seg := range x.snapshot() {
		if seg.Compacted && seg.Ann == nil {
			t.Fatal("compacted segment left without a quantizer")
		}
		if !seg.Compacted && seg.Ann != nil {
			t.Fatal("fold-in segment carries a quantizer")
		}
	}
}

func TestANNMinDocsGate(t *testing.T) {
	a := testMatrix(t, 4, 10, 50, 406)
	cfg := annConfig(1)
	cfg.ANNMinDocs = 1000
	x, err := Build(a, defaultIDs(50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if got := annSegments(x); got != 0 {
		t.Fatalf("%d quantized segments under a 1000-doc threshold, want 0", got)
	}
	// Probe search still works — it just scans exhaustively.
	terms, weights := sparseCol(a, 1)
	got, st := x.SearchSparseProbe(terms, weights, 10, 2)
	if st.Probed != 0 || st.ExactDocs != 50 {
		t.Fatalf("stats %+v, want pure exhaustive scan", st)
	}
	sameMatches(t, got, x.SearchSparse(terms, weights, 10), "gated")
}

func TestANNSaveOpenRoundTrip(t *testing.T) {
	a := testMatrix(t, 4, 10, 70, 407)
	x, err := Build(a, defaultIDs(70), annConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// Sidecar files exist on disk.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sidecars := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ann-") && strings.HasSuffix(e.Name(), ".ivf") {
			sidecars++
		}
	}
	if sidecars != 2 {
		t.Fatalf("%d ann sidecars on disk, want 2", sidecars)
	}

	// Reopening with NO ANN config still loads the sidecars and serves
	// probed searches identical to the saved index.
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := annSegments(y); got != 2 {
		t.Fatalf("%d quantized segments after open, want 2", got)
	}
	for j := 0; j < 8; j++ {
		terms, weights := sparseCol(a, j)
		want, _ := x.SearchSparseProbe(terms, weights, 10, 2)
		got, _ := y.SearchSparseProbe(terms, weights, 10, 2)
		sameMatches(t, got, want, "reloaded probe")
	}

	// A re-save retires the old generation's sidecars along with its
	// segment files.
	if err := y.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ann-0-") {
			t.Fatalf("stale generation-0 sidecar %s survived re-save", e.Name())
		}
	}
}

func TestANNOpenTrainsWhenSidecarMissing(t *testing.T) {
	a := testMatrix(t, 4, 10, 40, 408)
	// Save WITHOUT the ANN tier...
	x, err := Build(a, defaultIDs(40), Config{Shards: 2, Rank: 4, Seed: 77, SealEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	// ...and open WITH it: segments train in place.
	y, err := Open(dir, Config{ANNList: 6, ANNMinDocs: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := annSegments(y); got != 2 {
		t.Fatalf("%d quantized segments after ANN-enabled open, want 2", got)
	}
	terms, weights := sparseCol(a, 3)
	got, _ := y.SearchSparseProbe(terms, weights, 10, 99)
	sameMatches(t, got, y.SearchSparse(terms, weights, 10), "trained-on-open full probe")
}

func TestANNExportCarriesSidecars(t *testing.T) {
	a := testMatrix(t, 4, 10, 60, 409)
	x, err := Build(a, defaultIDs(60), annConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "node0")
	if err := x.SaveShardDir(0, dir); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if got := annSegments(y); got != 1 {
		t.Fatalf("%d quantized segments in exported shard, want 1", got)
	}
	terms, weights := sparseCol(a, 0)
	got, _ := y.SearchSparseProbe(terms, weights, 10, 99)
	sameMatches(t, got, y.SearchSparse(terms, weights, 10), "exported full probe")
}

func TestANNStatsCounters(t *testing.T) {
	a := testMatrix(t, 4, 10, 50, 410)
	x, err := Build(a, defaultIDs(50), annConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 4)
	_, st := x.SearchSparseProbe(terms, weights, 10, 2)
	if st.Cells != 2 || st.Docs <= 0 || st.Docs >= 50 {
		t.Fatalf("probe stats %+v, want 2 cells and a partial scan", st)
	}
	s := x.Stats()
	if s.ANNSearches != 1 || s.ANNCellsProbed != int64(st.Cells) || s.ANNDocsScored != int64(st.Docs) {
		t.Fatalf("counter stats %+v vs probe %+v", s, st)
	}
	var ps segment.ProbeStats
	_, ps = x.SearchSparseProbe(terms, weights, 10, 0) // escape hatch: no counter movement
	if ps.Probed != 0 || x.ANNSearches() != 1 {
		t.Fatalf("escape hatch moved counters: %+v, searches=%d", ps, x.ANNSearches())
	}
}
