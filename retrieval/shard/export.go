package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/segment"
)

// SaveShardDir exports shard s of the index as a standalone 1-shard
// index directory — the unit of work a cluster deploy ships to each
// shard-owning node. The export is exact, not approximate:
//
//   - Global document numbers are remapped to the node-local numbering
//     local = (global - s) / Shards, the inverse of the round-robin
//     assignment, so the node's locals are a dense [0, mₛ) and the
//     router recovers the cluster-wide global as local*Shards + s.
//   - The manifest's seed is Seed+s — exactly the seed shard s's
//     decompositions used here — so node-local compactions reproduce
//     this process's bit-for-bit.
//   - Segment payloads are byte-identical to a SaveDir of this index:
//     the node serves exactly the scores this shard serves.
//
// Like SaveDir the export is crash-safe (generation-stamped data files,
// manifest switched last by atomic rename) and snapshots atomically
// with respect to ingest.
func (x *Index) SaveShardDir(s int, dir string) error {
	if s < 0 || s >= x.cfg.Shards {
		return fmt.Errorf("shard: export: shard %d out of [0,%d)", s, x.cfg.Shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("shard: export: %w", err)
	}
	gen, err := nextGeneration(dir, faultinject.OS{})
	if err != nil {
		return fmt.Errorf("shard: export: %w", err)
	}

	x.ingestMu.Lock()
	ids := x.ids.Load().ids
	st := x.shards[s].state.Load()
	base := x.shards[s].base
	x.ingestMu.Unlock()

	var segs []*segment.Segment
	segs = st.segments(segs)
	localDocs := 0
	for _, seg := range segs {
		localDocs += seg.Len()
	}

	man := &Manifest{
		Version:    ManifestVersion,
		Format:     manifestFormat,
		Generation: gen,
		Shards:     1,
		Rank:       x.cfg.Rank,
		Seed:       x.cfg.Seed + int64(s),
		NumTerms:   x.numTerms,
		NumDocs:    localDocs,
		SealEvery:  x.cfg.SealEvery,
		IDsFile:    fmt.Sprintf("ids-%d.json", gen),
		Segments:   [][]ManifestSegment{{}},
	}
	localIDs := make([]string, localDocs)
	keep := map[string]bool{man.IDsFile: true}
	for i, seg := range segs {
		locals := make([]int, len(seg.Global))
		for j, g := range seg.Global {
			if g%x.cfg.Shards != s {
				return fmt.Errorf("shard: export: global %d found on shard %d, owner is shard %d",
					g, s, g%x.cfg.Shards)
			}
			l := (g - s) / x.cfg.Shards
			if l < 0 || l >= localDocs {
				return fmt.Errorf("shard: export: global %d maps to local %d out of [0,%d)", g, l, localDocs)
			}
			locals[j] = l
			localIDs[l] = ids[g]
		}
		name := fmt.Sprintf("seg-%d-0-%d.idx", gen, i)
		var buf bytes.Buffer
		if err := seg.Ix.Save(&buf); err != nil {
			return fmt.Errorf("shard: export segment %s: %w", name, err)
		}
		if err := writeFileAtomic(dir, name, buf.Bytes(), faultinject.OS{}); err != nil {
			return fmt.Errorf("shard: export segment %s: %w", name, err)
		}
		keep[name] = true
		// The sidecars index segment-local rows, which the global
		// renumbering does not touch, so both export byte-identical.
		annName := ""
		if seg.Ann != nil {
			annName = fmt.Sprintf("ann-%d-0-%d.ivf", gen, i)
			if err := writeFileAtomic(dir, annName, seg.Ann.Encode(), faultinject.OS{}); err != nil {
				return fmt.Errorf("shard: export quantizer %s: %w", annName, err)
			}
			keep[annName] = true
		}
		quantName := ""
		if seg.Quant != nil {
			quantName = fmt.Sprintf("quant-%d-0-%d.qnt", gen, i)
			if err := writeFileAtomic(dir, quantName, seg.Quant.Encode(), faultinject.OS{}); err != nil {
				return fmt.Errorf("shard: export quantized matrix %s: %w", quantName, err)
			}
			keep[quantName] = true
		}
		man.Segments[0] = append(man.Segments[0], ManifestSegment{
			File:      name,
			Docs:      seg.Len(),
			Globals:   locals,
			Compacted: seg.Compacted,
			Base:      base != nil && seg.Ix == base,
			ANNFile:   annName,
			QuantFile: quantName,
		})
	}

	idsData, err := json.Marshal(localIDs)
	if err != nil {
		return fmt.Errorf("shard: export ids: %w", err)
	}
	if err := writeFileAtomic(dir, man.IDsFile, idsData, faultinject.OS{}); err != nil {
		return fmt.Errorf("shard: export ids: %w", err)
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: export manifest: %w", err)
	}
	if err := writeFileAtomic(dir, ManifestName, manData, faultinject.OS{}); err != nil {
		return fmt.Errorf("shard: export manifest: %w", err)
	}
	retireStaleGenerations(dir, keep)
	return nil
}

// retireStaleGenerations removes generation-stamped data files not in
// keep. Best-effort: leftovers are ignored by Open and removed by the
// next save's pass.
func retireStaleGenerations(dir string, keep map[string]bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		var g, a, b int
		isSeg := func() bool { n, _ := fmt.Sscanf(name, "seg-%d-%d-%d.idx", &g, &a, &b); return n == 3 }
		isAnn := func() bool { n, _ := fmt.Sscanf(name, "ann-%d-%d-%d.ivf", &g, &a, &b); return n == 3 }
		isQuant := func() bool { n, _ := fmt.Sscanf(name, "quant-%d-%d-%d.qnt", &g, &a, &b); return n == 3 }
		isIDs := func() bool { n, _ := fmt.Sscanf(name, "ids-%d.json", &g); return n == 1 }
		if (isSeg() || isAnn() || isQuant() || isIDs()) && !keep[name] {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
