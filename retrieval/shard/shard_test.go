package shard

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/lsi"
	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/topk"
)

// testMatrix builds a labeled term-document matrix with m documents.
func testMatrix(t testing.TB, topics, termsPer, m int, seed int64) *sparse.CSR {
	t.Helper()
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: topics, TermsPerTopic: termsPer, Epsilon: 0.05, MinLen: 40, MaxLen: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(model, m, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return corpus.TermDocMatrix(c, corpus.CountWeighting)
}

func defaultIDs(m int) []string {
	ids := make([]string, m)
	for i := range ids {
		ids[i] = "doc"
	}
	return ids
}

// sparseCol extracts column j of a in sorted sparse form.
func sparseCol(a *sparse.CSR, j int) (terms []int, weights []float64) {
	n, _ := a.Dims()
	for t := 0; t < n; t++ {
		if v := a.At(t, j); v != 0 {
			terms = append(terms, t)
			weights = append(weights, v)
		}
	}
	return terms, weights
}

func sameMatches(t *testing.T, got, want []topk.Match, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", context, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: match %d = %+v, want %+v (bitwise)", context, i, got[i], want[i])
		}
	}
}

func TestOneShardMatchesUnshardedBitwise(t *testing.T) {
	a := testMatrix(t, 3, 12, 48, 301)
	plain, err := lsi.Build(a, 4, lsi.Options{Engine: lsi.EngineRandomized, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(a, defaultIDs(48), Config{Shards: 1, Rank: 4, Engine: lsi.EngineRandomized, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	for _, topN := range []int{0, 1, 7, 48, 100} {
		for j := 0; j < 8; j++ {
			terms, weights := sparseCol(a, j)
			sameMatches(t, x.SearchSparse(terms, weights, topN), plain.SearchSparse(terms, weights, topN), "sparse")
			sameMatches(t, x.SearchVec(a.Col(j), topN), plain.Search(a.Col(j), topN), "dense")
		}
	}
}

func TestOneShardFoldInMatchesAppendDocuments(t *testing.T) {
	a := testMatrix(t, 3, 12, 40, 302)
	plain, err := lsi.Build(a, 3, lsi.Options{Engine: lsi.EngineRandomized, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x, err := Build(a, defaultIDs(40), Config{Shards: 1, Rank: 3, Engine: lsi.EngineRandomized, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	// Fold columns 0..9 back in through both paths.
	var dense [][]float64
	var docs []Doc
	for j := 0; j < 10; j++ {
		dense = append(dense, a.Col(j))
		terms, weights := sparseCol(a, j)
		docs = append(docs, Doc{Terms: terms, Weights: weights})
	}
	if _, err := plain.AppendDocuments(dense); err != nil {
		t.Fatal(err)
	}
	first, err := x.AddBatch(docs)
	if err != nil {
		t.Fatal(err)
	}
	if first != 40 {
		t.Fatalf("first global %d, want 40", first)
	}
	if x.NumDocs() != 50 {
		t.Fatalf("NumDocs %d, want 50", x.NumDocs())
	}
	for j := 0; j < 8; j++ {
		terms, weights := sparseCol(a, j)
		sameMatches(t, x.SearchSparse(terms, weights, 12), plain.SearchSparse(terms, weights, 12), "after fold-in")
	}
}

func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	a := testMatrix(t, 4, 12, 90, 303)
	for _, shards := range []int{1, 3, 4} {
		x, err := Build(a, defaultIDs(90), Config{Shards: shards, Rank: 3, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		qt, qw := sparseCol(a, 2)
		prev := par.SetMaxProcs(1)
		want := x.SearchSparse(qt, qw, 13)
		for _, workers := range []int{2, 5, 8} {
			par.SetMaxProcs(workers)
			sameMatches(t, x.SearchSparse(qt, qw, 13), want, "workers")
		}
		par.SetMaxProcs(prev)
		// Rebuilding the same index reproduces the same results.
		x2, err := Build(a, defaultIDs(90), Config{Shards: shards, Rank: 3, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		sameMatches(t, x2.SearchSparse(qt, qw, 13), want, "rebuild")
		x.Close()
		x2.Close()
	}
}

func TestShardedCoversAllDocuments(t *testing.T) {
	a := testMatrix(t, 3, 12, 50, 304)
	x, err := Build(a, defaultIDs(50), Config{Shards: 4, Rank: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 0)
	res := x.SearchSparse(terms, weights, 0)
	if len(res) != 50 {
		t.Fatalf("full search returned %d docs, want 50", len(res))
	}
	seen := make([]bool, 50)
	for _, m := range res {
		if m.Doc < 0 || m.Doc >= 50 || seen[m.Doc] {
			t.Fatalf("bad or duplicate doc %d", m.Doc)
		}
		seen[m.Doc] = true
	}
	// Best-first under (score desc, doc asc).
	for i := 1; i < len(res); i++ {
		if topk.Better(res[i], res[i-1]) {
			t.Fatalf("results out of order at %d: %+v before %+v", i, res[i-1], res[i])
		}
	}
}

func TestSealAndCompactLifecycle(t *testing.T) {
	a := testMatrix(t, 3, 12, 30, 305)
	x, err := Build(a, defaultIDs(30), Config{Shards: 2, Rank: 3, Seed: 3, SealEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	// Ingest 40 documents (recycled columns) one at a time: each shard
	// receives 20, sealing two segments of 8 and leaving a live of 4.
	for i := 0; i < 40; i++ {
		terms, weights := sparseCol(a, i%30)
		if _, err := x.Add(Doc{Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	st := x.Stats()
	if st.Docs != 70 || x.NumDocs() != 70 {
		t.Fatalf("docs %d/%d, want 70", st.Docs, x.NumDocs())
	}
	if st.SealedPending != 4 {
		t.Fatalf("sealed pending %d, want 4 (two per shard)", st.SealedPending)
	}
	if st.Live != 2 {
		t.Fatalf("live segments %d, want 2", st.Live)
	}
	if x.Ready() {
		t.Fatal("index claims ready with sealed segments pending")
	}

	qt, qw := sparseCol(a, 1)
	before := x.SearchSparse(qt, qw, 0)

	n, err := x.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("compacted %d segments, want 4", n)
	}
	if !x.Ready() {
		t.Fatal("index not ready after compaction")
	}
	st = x.Stats()
	if st.SealedPending != 0 || st.Compacted != 4 { // 2 base + 2 merged rebuilds
		t.Fatalf("after compaction: %+v", st)
	}
	if st.Docs != 70 {
		t.Fatalf("compaction changed doc count: %d", st.Docs)
	}

	// Same document set, same global IDs; representation (and scores) may
	// differ, coverage must not.
	after := x.SearchSparse(qt, qw, 0)
	if len(after) != len(before) {
		t.Fatalf("compaction changed coverage: %d vs %d", len(after), len(before))
	}
	seen := make([]bool, 70)
	for _, m := range after {
		if m.Doc < 0 || m.Doc >= 70 || seen[m.Doc] {
			t.Fatalf("bad or duplicate doc %d after compaction", m.Doc)
		}
		seen[m.Doc] = true
	}

	// Compaction is deterministic: a replayed index compacted at the same
	// point returns identical post-compaction scores.
	y, err := Build(a, defaultIDs(30), Config{Shards: 2, Rank: 3, Seed: 3, SealEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	for i := 0; i < 40; i++ {
		terms, weights := sparseCol(a, i%30)
		if _, err := y.Add(Doc{Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := y.Compact(); err != nil {
		t.Fatal(err)
	}
	sameMatches(t, y.SearchSparse(qt, qw, 0), after, "replayed compaction")
}

func TestIngestIntoEmptyShard(t *testing.T) {
	// 2 documents over 3 shards: shard 2 starts empty and must bootstrap
	// its basis from its first ingested documents.
	a := testMatrix(t, 2, 10, 2, 306)
	x, err := Build(a, defaultIDs(2), Config{Shards: 3, Rank: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	terms, weights := sparseCol(a, 0)
	g, err := x.Add(Doc{ID: "fresh", Terms: terms, Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	if g != 2 {
		t.Fatalf("global %d, want 2", g)
	}
	if x.ExternalID(2) != "fresh" {
		t.Fatalf("external ID %q", x.ExternalID(2))
	}
	res := x.SearchSparse(terms, weights, 0)
	if len(res) != 3 {
		t.Fatalf("%d results, want 3", len(res))
	}
	found := false
	for _, m := range res {
		if m.Doc == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("ingested document missing from results")
	}
}

func TestAddValidation(t *testing.T) {
	a := testMatrix(t, 2, 10, 10, 307)
	x, err := Build(a, defaultIDs(10), Config{Shards: 2, Rank: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if _, err := x.AddBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := x.Add(Doc{Terms: []int{0}, Weights: []float64{1, 2}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := x.Add(Doc{Terms: []int{x.NumTerms()}, Weights: []float64{1}}); err == nil {
		t.Fatal("out-of-range term accepted")
	}
	if x.NumDocs() != 10 {
		t.Fatalf("failed adds changed NumDocs to %d", x.NumDocs())
	}
	x.Close()
	if _, err := x.Add(Doc{Terms: []int{0}, Weights: []float64{1}}); err != ErrClosed {
		t.Fatalf("add after close: %v, want ErrClosed", err)
	}
}

func TestSaveDirOpenRoundTrip(t *testing.T) {
	a := testMatrix(t, 3, 12, 45, 308)
	x, err := Build(a, defaultIDs(45), Config{Shards: 3, Rank: 3, Seed: 21, SealEvery: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// Mix of lifecycle states: ingest enough to seal some segments and
	// leave a live one, compact one pass, ingest a little more.
	addSome := func(n, from int) {
		for i := 0; i < n; i++ {
			terms, weights := sparseCol(a, (from+i)%45)
			if _, err := x.Add(Doc{ID: "added", Terms: terms, Weights: weights}); err != nil {
				t.Fatal(err)
			}
		}
	}
	addSome(20, 0)
	if _, err := x.Compact(); err != nil {
		t.Fatal(err)
	}
	addSome(7, 20)

	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()

	if y.NumDocs() != x.NumDocs() || y.NumTerms() != x.NumTerms() || y.NumShards() != x.NumShards() {
		t.Fatalf("reloaded dims docs=%d terms=%d shards=%d", y.NumDocs(), y.NumTerms(), y.NumShards())
	}
	if y.ExternalID(46) != "added" {
		t.Fatalf("reloaded external ID %q", y.ExternalID(46))
	}
	for j := 0; j < 10; j++ {
		terms, weights := sparseCol(a, j)
		sameMatches(t, y.SearchSparse(terms, weights, 15), x.SearchSparse(terms, weights, 15), "reloaded")
	}

	// The reloaded index keeps accepting documents.
	terms, weights := sparseCol(a, 3)
	if _, err := y.Add(Doc{Terms: terms, Weights: weights}); err != nil {
		t.Fatal(err)
	}
	if y.NumDocs() != x.NumDocs()+1 {
		t.Fatalf("reloaded NumDocs %d after add", y.NumDocs())
	}

	// Save the reloaded index again: a second round trip stays identical.
	dir2 := filepath.Join(t.TempDir(), "idx2")
	if err := y.SaveDir(dir2); err != nil {
		t.Fatal(err)
	}
	z, err := Open(dir2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer z.Close()
	sameMatches(t, z.SearchSparse(terms, weights, 15), y.SearchSparse(terms, weights, 15), "second round trip")
}

func TestCompactionBoundsSegmentCount(t *testing.T) {
	// Unbounded ingest with a compaction pass after every seal: the
	// size-tiered merge policy must keep the per-shard segment count
	// logarithmic (each surviving tier outweighs everything younger), not
	// one segment per pass.
	a := testMatrix(t, 3, 12, 20, 309)
	x, err := Build(a, defaultIDs(20), Config{Shards: 1, Rank: 3, Seed: 5, SealEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	passes := 0
	for i := 0; i < 400; i++ {
		terms, weights := sparseCol(a, i%20)
		if _, err := x.Add(Doc{Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
		if x.Stats().SealedPending > 0 {
			if _, err := x.Compact(); err != nil {
				t.Fatal(err)
			}
			passes++
		}
	}
	st := x.Stats()
	if passes < 40 {
		t.Fatalf("only %d compaction passes ran", passes)
	}
	// 420 docs at 8/seal with ~50 passes: one base + O(log) tiers + at
	// most one live. Without tier merging this would be ~50 segments.
	if st.Segments > 12 {
		t.Fatalf("segment count grew to %d after %d passes (tier merging broken): %+v", st.Segments, passes, st)
	}
	if st.Docs != 420 {
		t.Fatalf("docs %d, want 420", st.Docs)
	}
	// Coverage survives the repeated merges.
	terms, weights := sparseCol(a, 0)
	res := x.SearchSparse(terms, weights, 0)
	if len(res) != 420 {
		t.Fatalf("full search returned %d docs", len(res))
	}
	seen := make([]bool, 420)
	for _, m := range res {
		if m.Doc < 0 || m.Doc >= 420 || seen[m.Doc] {
			t.Fatalf("bad or duplicate doc %d", m.Doc)
		}
		seen[m.Doc] = true
	}
}

func TestResaveIsCrashSafe(t *testing.T) {
	a := testMatrix(t, 3, 12, 24, 310)
	x, err := Build(a, defaultIDs(24), Config{Shards: 2, Rank: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	dir := filepath.Join(t.TempDir(), "idx")
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	// Simulate a crashed later save: data files from a newer generation
	// exist (some even corrupt) but the manifest was never switched. Open
	// must serve the old index untouched.
	if err := os.WriteFile(filepath.Join(dir, "seg-1-0-0.idx"), []byte("garbage from a crashed save"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ids-1.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	y, err := Open(dir, Config{})
	if err != nil {
		t.Fatalf("open with crashed-save leftovers: %v", err)
	}
	if y.NumDocs() != 24 {
		t.Fatalf("reloaded %d docs", y.NumDocs())
	}
	y.Close()

	// A subsequent save must skip past the leftover generation (never
	// reuse a name that might be referenced) and retire stale data files
	// only after its manifest is live.
	terms, weights := sparseCol(a, 0)
	if _, err := x.Add(Doc{Terms: terms, Weights: weights}); err != nil {
		t.Fatal(err)
	}
	if err := x.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	man, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if man.Generation != 2 {
		t.Fatalf("generation %d, want 2 (skipping the crashed save's 1)", man.Generation)
	}
	// Old generations are cleaned up; only generation-2 data files remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if name == ManifestName {
			continue
		}
		var g, s2, i2 int
		if n, _ := fmt.Sscanf(name, "seg-%d-%d-%d.idx", &g, &s2, &i2); n == 3 && g != 2 {
			t.Fatalf("stale segment file %s survived cleanup", name)
		}
		if n, _ := fmt.Sscanf(name, "ids-%d.json", &g); n == 1 && g != 2 {
			t.Fatalf("stale ids file %s survived cleanup", name)
		}
	}
	z, err := Open(dir, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer z.Close()
	if z.NumDocs() != 25 {
		t.Fatalf("re-saved index has %d docs, want 25", z.NumDocs())
	}
	sameMatches(t, z.SearchSparse(terms, weights, 10), x.SearchSparse(terms, weights, 10), "re-saved")
}

func TestEpochBumpsAfterAddAndCompact(t *testing.T) {
	a := testMatrix(t, 3, 12, 30, 311)
	x, err := Build(a, defaultIDs(30), Config{Shards: 2, Rank: 3, SealEvery: 4, AutoCompact: false})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	if got := x.Epoch(); got != 0 {
		t.Fatalf("epoch after Build = %d, want 0", got)
	}
	terms, weights := sparseCol(a, 0)
	for i := 1; i <= 8; i++ {
		if _, err := x.Add(Doc{ID: "new", Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
		if got := x.Epoch(); got != uint64(i) {
			t.Fatalf("epoch after add %d = %d, want %d (one bump per published batch)", i, got, i)
		}
	}
	before := x.Epoch()
	n, err := x.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected sealed segments to compact (SealEvery=4, 8 adds across 2 shards)")
	}
	if got := x.Epoch(); got <= before {
		t.Fatalf("epoch after compaction = %d, want > %d", got, before)
	}
	// A no-op compaction publishes nothing and must not move the epoch.
	before = x.Epoch()
	if _, err := x.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := x.Epoch(); got != before {
		t.Fatalf("no-op compaction moved the epoch %d -> %d", before, got)
	}
}
