package shard

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/topk"
)

// Concurrent search-while-ingest coverage. Run with -race (the CI race
// gate includes this package); the assertions also hold in normal
// builds.
//
// Two phases with different guarantees:
//
//   - TestStressConcurrentAddSearchCompact: writers, searchers, and a
//     compactor hammer one index. Every result must satisfy the
//     structural invariants (valid global IDs, no duplicates, strict
//     (score desc, doc asc) order, scores in [-1, 1], IDs resolvable)
//     at every point in time.
//   - TestConcurrentIngestMatchesSerialReplay: with compaction quiesced,
//     fold-in scores are independent of segment boundaries, so after the
//     concurrent ingest settles the index must return *bitwise* the
//     same results as a serial replay of the same documents in the same
//     global order.

// checkResults asserts the structural result invariants. numDocs must be
// observed AFTER the search: IDs are published before segments, so no
// result can name a document past that bound.
func checkResults(res []topk.Match, numDocs, topN int, resolve func(int) string) error {
	if topN > 0 && len(res) > topN {
		return fmt.Errorf("%d results for topN=%d", len(res), topN)
	}
	seen := make(map[int]bool, len(res))
	for i, m := range res {
		if m.Doc < 0 || m.Doc >= numDocs {
			return fmt.Errorf("result %d: doc %d out of [0,%d)", i, m.Doc, numDocs)
		}
		if seen[m.Doc] {
			return fmt.Errorf("duplicate doc %d", m.Doc)
		}
		seen[m.Doc] = true
		if m.Score < -1.0000000001 || m.Score > 1.0000000001 {
			return fmt.Errorf("doc %d score %v out of range", m.Doc, m.Score)
		}
		if i > 0 && topk.Better(res[i], res[i-1]) {
			return fmt.Errorf("results out of order at %d: %+v before %+v", i, res[i-1], res[i])
		}
		if resolve != nil && resolve(m.Doc) == "" {
			return fmt.Errorf("doc %d has no external ID", m.Doc)
		}
	}
	return nil
}

func stressSizes() (writers, addsPerWriter, searchers, searchesPerSearcher int) {
	if testing.Short() {
		return 2, 20, 2, 30
	}
	return 4, 40, 4, 80
}

func TestStressConcurrentAddSearchCompact(t *testing.T) {
	a := testMatrix(t, 3, 12, 40, 401)
	x, err := Build(a, defaultIDs(40), Config{Shards: 3, Rank: 3, Seed: 13, SealEvery: 16, AutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	writers, adds, searchers, searches := stressSizes()
	errc := make(chan error, writers+searchers+1)
	var wg sync.WaitGroup

	// Writers: fold recycled columns in, one document per Add.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				terms, weights := sparseCol(a, (w*7+i)%40)
				if _, err := x.Add(Doc{ID: "stress", Terms: terms, Weights: weights}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	// Searchers: check every result set mid-flight.
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < searches; i++ {
				terms, weights := sparseCol(a, (s*5+i)%40)
				topN := 1 + (i % 25)
				res := x.SearchSparse(terms, weights, topN)
				if err := checkResults(res, x.NumDocs(), topN, x.ExternalID); err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}
	// A foreground compactor on top of the background one: forced passes
	// race against ingest sealing and the auto loop.
	compStop := make(chan struct{})
	compDone := make(chan struct{})
	go func() {
		defer close(compDone)
		for {
			select {
			case <-compStop:
				return
			default:
			}
			if _, err := x.Compact(); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(compStop)
	<-compDone
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	wantDocs := 40 + writers*adds
	if x.NumDocs() != wantDocs {
		t.Fatalf("NumDocs %d, want %d", x.NumDocs(), wantDocs)
	}
	// Post-quiesce: full coverage, exactly once, still well-ordered.
	if _, err := x.Compact(); err != nil {
		t.Fatal(err)
	}
	terms, weights := sparseCol(a, 0)
	res := x.SearchSparse(terms, weights, 0)
	if len(res) != wantDocs {
		t.Fatalf("full search returned %d docs, want %d", len(res), wantDocs)
	}
	if err := checkResults(res, wantDocs, 0, x.ExternalID); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIngestMatchesSerialReplay(t *testing.T) {
	a := testMatrix(t, 3, 12, 36, 402)
	cfg := Config{Shards: 3, Rank: 3, Seed: 17, SealEvery: 16} // AutoCompact off
	x, err := Build(a, defaultIDs(36), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	writers, adds, searchers, searches := stressSizes()
	total := writers * adds
	// arrival[g-36] records which column landed as global g; each slot is
	// written exactly once by the Add that won that global number.
	arrival := make([]int, total)
	errc := make(chan error, writers+searchers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				col := (w*11 + i*3) % 36
				terms, weights := sparseCol(a, col)
				g, err := x.Add(Doc{Terms: terms, Weights: weights})
				if err != nil {
					errc <- err
					return
				}
				arrival[g-36] = col
			}
		}(w)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < searches; i++ {
				terms, weights := sparseCol(a, (s+i)%36)
				res := x.SearchSparse(terms, weights, 10)
				if err := checkResults(res, x.NumDocs(), 10, nil); err != nil {
					errc <- err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	// Serial replay: same initial build, same documents in the same
	// global order. Fold-in scores do not depend on segment boundaries
	// (every fold targets the shard's base subspace), so the concurrent
	// index and the serial replay must agree bitwise.
	y, err := Build(a, defaultIDs(36), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	for _, col := range arrival {
		terms, weights := sparseCol(a, col)
		if _, err := y.Add(Doc{Terms: terms, Weights: weights}); err != nil {
			t.Fatal(err)
		}
	}
	if y.NumDocs() != x.NumDocs() {
		t.Fatalf("replay NumDocs %d, want %d", y.NumDocs(), x.NumDocs())
	}
	for j := 0; j < 12; j++ {
		terms, weights := sparseCol(a, j*3%36)
		for _, topN := range []int{0, 5, 33} {
			sameMatches(t, x.SearchSparse(terms, weights, topN), y.SearchSparse(terms, weights, topN), "serial replay")
		}
	}
}
