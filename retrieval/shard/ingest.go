package shard

import (
	"fmt"
	"time"

	"repro/internal/lsi"
	"repro/internal/segment"
	"repro/internal/sparse"
)

// Ingest: Add and AddBatch fold documents into the live segment of their
// shard through the LSI fold-in path. Calls serialize on ingestMu —
// global document numbers are allocated and published under it, so
// numbers are dense, arrival-ordered, and ascending within every
// segment — while searches stay wait-free: each mutation builds new
// immutable segments and publishes them by pointer swap.
//
// Routing matches the build-time layout: global document g lives on
// shard g mod N. A batch therefore fans its documents out across every
// shard, keeping shards balanced no matter the write pattern.

// Doc is one document to ingest: its external identifier and its sparse
// term-space vector (term IDs strictly ascending, weights parallel).
// The slices are retained by the index until the document's segment is
// compacted; callers must not mutate them after the call.
type Doc struct {
	ID      string
	Terms   []int
	Weights []float64
}

// Add folds one document into the index and returns its global document
// number. Safe to call concurrently with searches, other Adds, and
// compaction.
func (x *Index) Add(d Doc) (int, error) {
	return x.AddBatch([]Doc{d})
}

// AddBatch folds a batch of documents into the index and returns the
// global number of the first; the batch occupies the contiguous range
// [first, first+len(docs)). Every document is validated before anything
// is published, so an invalid batch leaves the index unchanged.
func (x *Index) AddBatch(docs []Doc) (int, error) {
	if x.closed.Load() {
		return 0, ErrClosed
	}
	if len(docs) == 0 {
		return 0, fmt.Errorf("shard: empty batch")
	}
	for i, d := range docs {
		if len(d.Terms) != len(d.Weights) {
			return 0, fmt.Errorf("shard: document %d has %d terms but %d weights", i, len(d.Terms), len(d.Weights))
		}
		for _, t := range d.Terms {
			if t < 0 || t >= x.numTerms {
				return 0, fmt.Errorf("shard: document %d term %d out of range [0,%d)", i, t, x.numTerms)
			}
		}
	}

	x.ingestMu.Lock()
	defer x.ingestMu.Unlock()
	if x.closed.Load() {
		return 0, ErrClosed
	}
	cur := x.ids.Load()
	first := len(cur.ids)

	// Group the batch by destination shard; globals within each group
	// ascend because the batch range is contiguous.
	type group struct {
		terms   [][]int
		weights [][]float64
		globals []int
	}
	groups := make(map[int]*group, x.cfg.Shards)
	for i, d := range docs {
		g := first + i
		s := g % x.cfg.Shards
		gr := groups[s]
		if gr == nil {
			gr = &group{}
			groups[s] = gr
		}
		gr.terms = append(gr.terms, d.Terms)
		gr.weights = append(gr.weights, d.Weights)
		gr.globals = append(gr.globals, g)
	}

	// Fold every group before publishing anything: a fold error (which
	// validation above should have made impossible) must not publish a
	// half-ingested batch.
	type publish struct {
		sh   *shardH
		live *segment.Segment
		base *lsi.Index // non-nil when this ingest created the shard's basis
	}
	var pubs []publish
	for s, gr := range groups {
		sh := x.shards[s]
		st := sh.state.Load()
		live := st.live
		if live == nil {
			if sh.base == nil {
				// First documents ever routed to this shard: there is no
				// basis to fold into, so decompose the group directly.
				// That build IS the shard's first (compacted) segment and
				// its index becomes the fold-in basis for later arrivals.
				ix, err := buildFromSparseDocs(x.numTerms, gr.terms, gr.weights, x.cfg.Rank,
					lsi.Options{Engine: x.cfg.Engine, Seed: x.cfg.Seed + int64(s)})
				if err != nil {
					return 0, fmt.Errorf("shard %d: %w", s, err)
				}
				seg, err := segment.New(ix, gr.globals, nil, true)
				if err != nil {
					return 0, fmt.Errorf("shard %d: %w", s, err)
				}
				pubs = append(pubs, publish{sh: sh, live: seg, base: ix})
				continue
			}
			empty, err := segment.New(sh.base.EmptyLike(), nil, nil, false)
			if err != nil {
				return 0, fmt.Errorf("shard %d: %w", s, err)
			}
			live = empty
		}
		next, err := live.Extend(gr.terms, gr.weights, gr.globals)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", s, err)
		}
		pubs = append(pubs, publish{sh: sh, live: next})
	}

	// Publish the external IDs first (append-only: readers of older
	// snapshots never index past their own length), then each shard's
	// new state. Shard states publish one at a time (in no particular
	// order), so a searcher racing this publish may see any subset of
	// the batch's shard groups — but never a document whose external ID
	// is unpublished, and never a torn shard state.
	ids := cur.ids
	for _, d := range docs {
		id := d.ID
		if id == "" {
			id = fmt.Sprintf("doc-%d", len(ids))
		}
		ids = append(ids, id)
	}
	x.ids.Store(&idTable{ids: ids})

	sealed := false
	for _, p := range pubs {
		p.sh.mu.Lock()
		st := p.sh.state.Load()
		next := &shardState{epoch: st.epoch + 1, stable: st.stable, live: p.live}
		if p.base != nil {
			// The freshly decomposed first segment is stable, not live.
			p.sh.base = p.base
			next.stable = append(append([]*segment.Segment(nil), st.stable...), p.live)
			next.live = nil
		} else if p.live.Len() >= x.cfg.SealEvery {
			// Seal: the live segment moves read-only into the stable
			// list and waits for the compactor; the next Add opens a
			// fresh live segment.
			next.stable = append(append([]*segment.Segment(nil), st.stable...), p.live)
			next.live = nil
			sealed = true
		}
		p.sh.state.Store(next)
		p.sh.mu.Unlock()
	}
	// Bump the global epoch only after every shard state is published:
	// a reader that observes the new epoch is then guaranteed to see the
	// whole batch, which is what lets the query cache key results by
	// epoch without ever serving pre-Add state (see Index.Epoch).
	x.globalEpoch.Add(1)
	x.docsIngested.Add(int64(len(docs)))
	x.lastMutation.Store(time.Now().UnixNano())
	if sealed {
		x.wakeCompactor()
	}
	return first, nil
}

// buildFromSparseDocs assembles a term-document matrix from sparse
// columns and decomposes it.
func buildFromSparseDocs(numTerms int, terms [][]int, weights [][]float64, rank int, opts lsi.Options) (*lsi.Index, error) {
	coo := sparse.NewCOO(numTerms, len(terms))
	for j := range terms {
		for i, t := range terms[j] {
			coo.Add(t, j, weights[j][i])
		}
	}
	return lsi.Build(coo.ToCSR(), rank, opts)
}
