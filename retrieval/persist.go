package retrieval

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/ir"
	"repro/internal/lsi"
	"repro/internal/sparse"
	"repro/internal/vsm"
)

// Persistence: an Index saves to a single self-contained stream (wire
// format v2) carrying the backend payload plus everything the text layer
// needs — vocabulary, weighting, pipeline flags, document IDs — so a
// loaded index answers text queries with no access to the original
// corpus.
//
// LSI indexes reuse the internal/lsi gob format (its v2 metadata fields
// carry the text layer); VSM indexes serialize the term-document matrix
// in triplet form under their own wire struct tagged Backend: "vsm".
// Load decodes the stream exactly once into a union of both field sets —
// gob matches fields by name, so the lsi wire struct, the vsm wire
// struct, and v1 files written before the format bump (which have no
// Backend field and fall through to the LSI path) all land in it.

// vsmWire is the serialized form of a VSM-backend Index.
type vsmWire struct {
	Version         int
	Backend         string
	Vocab           []string
	WeightingName   string
	DocIDs          []string
	RemoveStopwords bool
	Stemming        bool
	Rows, Cols      int
	RowIdx          []int
	ColIdx          []int
	Vals            []float64
}

// wireVersion tracks internal/lsi's format version: LSI streams are
// written by that package, and the VSM envelope bumps in lock-step.
const wireVersion = lsi.WireVersion

// Save writes the index to w as a self-contained stream: Load needs
// nothing else to serve text queries.
func (ix *Index) Save(w io.Writer) error {
	if ix.sharded != nil {
		return fmt.Errorf("retrieval: save: sharded indexes persist to a directory; use SaveDir")
	}
	var vocabTerms []string
	if ix.vocab != nil {
		vocabTerms = ix.vocab.Terms()
	}
	if ix.backend == BackendVSM {
		rows, cols := ix.matrix.Dims()
		wire := vsmWire{
			Version:         wireVersion,
			Backend:         "vsm",
			Vocab:           vocabTerms,
			WeightingName:   ix.weighting.String(),
			DocIDs:          ix.docIDs,
			RemoveStopwords: ix.removeStopwords,
			Stemming:        ix.stemming,
			Rows:            rows,
			Cols:            cols,
		}
		for t := 0; t < rows; t++ {
			ix.matrix.RowIter(t, func(j int, v float64) {
				wire.RowIdx = append(wire.RowIdx, t)
				wire.ColIdx = append(wire.ColIdx, j)
				wire.Vals = append(wire.Vals, v)
			})
		}
		if err := gob.NewEncoder(w).Encode(wire); err != nil {
			return fmt.Errorf("retrieval: save: %w", err)
		}
		return nil
	}
	var meta *lsi.Meta
	if ix.vocab != nil {
		meta = &lsi.Meta{
			Vocab:           vocabTerms,
			WeightingName:   ix.weighting.String(),
			DocIDs:          ix.docIDs,
			RemoveStopwords: ix.removeStopwords,
			Stemming:        ix.stemming,
		}
	}
	return ix.lsiIndex.SaveMeta(w, meta)
}

// TextConfig supplies the text layer for indexes whose stream predates
// wire format v2 (v1 carried only the numeric LSI payload): the
// vocabulary in term-ID order and the build-time weighting and pipeline
// flags. DocIDs are optional.
type TextConfig struct {
	Vocab           []string
	Weighting       Weighting
	RemoveStopwords bool
	Stemming        bool
	DocIDs          []string
}

// LoadOption configures Load.
type LoadOption func(*loadConfig)

type loadConfig struct {
	text *TextConfig
}

// WithTextConfig attaches a text layer to a loaded index whose stream
// does not carry one — a v1-format file, or a save of an index that had
// no vocabulary — so it can answer text queries. Streams that do store a
// text layer are self-contained and ignore the option.
func WithTextConfig(tc TextConfig) LoadOption {
	return func(c *loadConfig) { c.text = &tc }
}

// Load reads an index written by Save — or by the v1-format (pre-v2)
// internal LSI Save, e.g. `lsiquery -save-index` builds from before the
// format bump. v2 streams come back ready for text queries; v1 streams
// lack a vocabulary, so text queries return ErrNoVocabulary unless
// WithTextConfig supplies one (vector queries via SearchVector always
// work). Unknown future versions fail with a clear error naming the
// version.
func Load(r io.Reader, opts ...LoadOption) (*Index, error) {
	var cfg loadConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	// One streaming decode into the union of every wire layout this
	// build understands; gob fills the fields whose names the stream
	// carries and leaves the rest zero. Which backend's fields are live
	// is decided by the Backend tag (absent — hence "" — in both v1
	// files and v2 LSI streams).
	var wire struct {
		Version int
		Backend string
		// LSI payload + metadata (internal/lsi's indexWire field names).
		K        int
		NumTerms int
		Sigma    []float64
		UkRows   int
		UkData   []float64
		DocRows  int
		DocData  []float64
		// VSM payload (vsmWire field names).
		Rows, Cols int
		RowIdx     []int
		ColIdx     []int
		Vals       []float64
		// Shared text layer.
		Vocab           []string
		WeightingName   string
		DocIDs          []string
		RemoveStopwords bool
		Stemming        bool
	}
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("retrieval: load: %w", err)
	}
	if wire.Version < 1 || wire.Version > wireVersion {
		return nil, fmt.Errorf("retrieval: load: index format version %d is not supported by this build (supported: 1..%d); rebuild the index or upgrade",
			wire.Version, wireVersion)
	}
	text := textWire{
		Vocab:           wire.Vocab,
		WeightingName:   wire.WeightingName,
		DocIDs:          wire.DocIDs,
		RemoveStopwords: wire.RemoveStopwords,
		Stemming:        wire.Stemming,
	}
	if wire.Backend == "vsm" {
		return loadVSM(vsmWire{
			Rows: wire.Rows, Cols: wire.Cols,
			RowIdx: wire.RowIdx, ColIdx: wire.ColIdx, Vals: wire.Vals,
		}, text)
	}
	lsiIndex, err := lsi.NewIndexFromParts(lsi.IndexParts{
		K: wire.K, NumTerms: wire.NumTerms, Sigma: wire.Sigma,
		UkRows: wire.UkRows, UkData: wire.UkData,
		DocRows: wire.DocRows, DocData: wire.DocData,
	})
	if err != nil {
		return nil, fmt.Errorf("retrieval: %w", err)
	}
	return loadLSI(lsiIndex, text, cfg.text)
}

// textWire is the text layer as it appears on the wire (in both backend
// layouts); all-zero means the stream carried none (v1, or v2 saved
// without a vocabulary).
type textWire struct {
	Vocab           []string
	WeightingName   string
	DocIDs          []string
	RemoveStopwords bool
	Stemming        bool
}

func (t textWire) empty() bool {
	return len(t.Vocab) == 0 && len(t.DocIDs) == 0 && t.WeightingName == ""
}

func loadLSI(lsiIndex *lsi.Index, stored textWire, text *TextConfig) (*Index, error) {
	ix := &Index{backend: BackendLSI, lsiIndex: lsiIndex, weighting: WeightingLog}
	switch {
	case !stored.empty():
		if len(stored.Vocab) > 0 && len(stored.Vocab) != lsiIndex.NumTerms() {
			return nil, fmt.Errorf("retrieval: load: vocabulary has %d terms, index has %d",
				len(stored.Vocab), lsiIndex.NumTerms())
		}
		if len(stored.DocIDs) > 0 && len(stored.DocIDs) != lsiIndex.NumDocs() {
			return nil, fmt.Errorf("retrieval: load: %d doc IDs for %d documents",
				len(stored.DocIDs), lsiIndex.NumDocs())
		}
		w, err := ParseWeighting(stored.WeightingName)
		if err != nil {
			return nil, fmt.Errorf("retrieval: load: %w", err)
		}
		ix.weighting = w
		ix.removeStopwords = stored.RemoveStopwords
		ix.stemming = stored.Stemming
		ix.docIDs = stored.DocIDs
		if len(stored.Vocab) > 0 {
			ix.vocab, err = ir.NewVocabularyFromTerms(stored.Vocab)
			if err != nil {
				return nil, fmt.Errorf("retrieval: load: %w", err)
			}
		}
	case text != nil:
		if len(text.Vocab) != lsiIndex.NumTerms() {
			return nil, fmt.Errorf("retrieval: load: text config has %d vocabulary terms, index has %d",
				len(text.Vocab), lsiIndex.NumTerms())
		}
		if len(text.DocIDs) > 0 && len(text.DocIDs) != lsiIndex.NumDocs() {
			return nil, fmt.Errorf("retrieval: load: text config has %d doc IDs, index has %d documents",
				len(text.DocIDs), lsiIndex.NumDocs())
		}
		vocab, err := ir.NewVocabularyFromTerms(text.Vocab)
		if err != nil {
			return nil, fmt.Errorf("retrieval: load: %w", err)
		}
		ix.vocab = vocab
		ix.weighting = text.Weighting
		ix.removeStopwords = text.RemoveStopwords
		ix.stemming = text.Stemming
		ix.docIDs = text.DocIDs
	}
	if len(ix.docIDs) == 0 {
		ix.docIDs = defaultIDs(lsiIndex.NumDocs())
	}
	return ix, nil
}

// loadVSM rebuilds a VSM index from its matrix triplets (wire carries
// only the payload fields here; the text layer arrives separately).
func loadVSM(wire vsmWire, text textWire) (*Index, error) {
	if wire.Rows <= 0 || wire.Cols <= 0 {
		return nil, fmt.Errorf("retrieval: load: corrupt vsm matrix %dx%d", wire.Rows, wire.Cols)
	}
	if len(wire.RowIdx) != len(wire.Vals) || len(wire.ColIdx) != len(wire.Vals) {
		return nil, fmt.Errorf("retrieval: load: corrupt vsm triplets (%d/%d/%d)",
			len(wire.RowIdx), len(wire.ColIdx), len(wire.Vals))
	}
	if len(text.Vocab) > 0 && len(text.Vocab) != wire.Rows {
		return nil, fmt.Errorf("retrieval: load: vocabulary has %d terms, matrix has %d rows", len(text.Vocab), wire.Rows)
	}
	if len(text.DocIDs) > 0 && len(text.DocIDs) != wire.Cols {
		return nil, fmt.Errorf("retrieval: load: %d doc IDs for %d documents", len(text.DocIDs), wire.Cols)
	}
	coo := sparse.NewCOO(wire.Rows, wire.Cols)
	for i := range wire.Vals {
		t, d := wire.RowIdx[i], wire.ColIdx[i]
		if t < 0 || t >= wire.Rows || d < 0 || d >= wire.Cols {
			return nil, fmt.Errorf("retrieval: load: vsm entry (%d,%d) out of range for %dx%d",
				t, d, wire.Rows, wire.Cols)
		}
		coo.Add(t, d, wire.Vals[i])
	}
	a := coo.ToCSR()
	w, err := ParseWeighting(text.WeightingName)
	if err != nil {
		return nil, fmt.Errorf("retrieval: load: %w", err)
	}
	ix := &Index{
		backend:         BackendVSM,
		vsmIndex:        vsm.NewFromMatrix(a),
		matrix:          a,
		weighting:       w,
		removeStopwords: text.RemoveStopwords,
		stemming:        text.Stemming,
		docIDs:          text.DocIDs,
	}
	if len(text.Vocab) > 0 {
		ix.vocab, err = ir.NewVocabularyFromTerms(text.Vocab)
		if err != nil {
			return nil, fmt.Errorf("retrieval: load: %w", err)
		}
	}
	if len(ix.docIDs) == 0 {
		ix.docIDs = defaultIDs(wire.Cols)
	}
	return ix, nil
}

func defaultIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("doc-%d", i)
	}
	return ids
}
