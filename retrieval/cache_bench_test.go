package retrieval

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/retrieval/cache"
)

// Cache benchmarks. BenchmarkCachedQueryMiss is the baseline (the full
// sparse hot path plus key encoding and a store); BenchmarkCachedQueryHit
// is the serving-path headline — the acceptance bar is >= 10x lower
// ns/op than the uncached sparse path (BenchmarkQueryLatencySparse at
// the repo root) with no extra allocations (1 alloc/op: the returned
// copy). BenchmarkCachedQueryZipfian replays a Zipf-distributed query
// trace — the paper's model of topic-concentrated traffic — and reports
// the measured hit rate; recorded to BENCH_5.json by
// scripts/bench_record.sh.

// benchCachedIndex builds a 500-doc index with a query cache, mirroring
// the scale of benchQueryIndex in the root bench suite.
func benchCachedIndex(b *testing.B, cacheBytes int64) *Index {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	vocab := make([]string, 600)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%c%c%c", 'a'+i%26, 'a'+(i/26)%26, 'a'+(i/676)%26)
	}
	texts := make([]string, 500)
	for i := range texts {
		s := ""
		for j := 0; j < 40; j++ {
			s += vocab[rng.Intn(len(vocab))] + " "
		}
		texts[i] = s
	}
	opts := []Option{WithRank(10), WithParallelism(1), WithStemming(false), WithStopwordRemoval(false)}
	if cacheBytes > 0 {
		opts = append(opts, WithQueryCache(cacheBytes))
	}
	ix, err := BuildTexts(texts, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// benchQueryTerms returns a canonical 4-term query against the bench
// index's vocabulary.
func benchQueryTerms(ix *Index) ([]int, []float64) {
	n := ix.NumTerms()
	terms := []int{3 % n, 57 % n, 211 % n, 402 % n}
	return terms, []float64{1, 2, 1, 1}
}

// BenchmarkCachedQueryHit measures the steady-state cache hit: key
// encode (pooled), sharded LRU lookup, one result-slice copy.
func BenchmarkCachedQueryHit(b *testing.B) {
	ix := benchCachedIndex(b, 1<<20)
	terms, weights := benchQueryTerms(ix)
	if _, st := ix.searchSparseStatus(terms, weights, 10); st != cache.StatusMiss {
		b.Fatalf("priming status %v", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st := ix.searchSparseStatus(terms, weights, 10); st != cache.StatusHit {
			b.Fatalf("status %v, want hit", st)
		}
	}
}

// BenchmarkCachedQueryMiss measures the miss path: every iteration uses
// a never-seen weight so the full backend search runs plus the cache's
// key encode, flight bookkeeping, and store/evict.
func BenchmarkCachedQueryMiss(b *testing.B) {
	ix := benchCachedIndex(b, 1<<20)
	terms, weights := benchQueryTerms(ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		weights[0] = 1 + float64(i)
		if _, st := ix.searchSparseStatus(terms, weights, 10); st != cache.StatusMiss {
			b.Fatalf("status %v, want miss", st)
		}
	}
}

// BenchmarkCachedQueryCoalesced drives many goroutines through a
// round-keyed query so concurrent identical lookups pile onto one
// flight; it reports how many lookups were absorbed (coalesced or hit)
// per computed miss.
func BenchmarkCachedQueryCoalesced(b *testing.B) {
	ix := benchCachedIndex(b, 1<<20)
	terms, weights := benchQueryTerms(ix)
	var round atomic.Int64
	before, _ := ix.CacheStats()
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := append([]float64(nil), weights...)
		for pb.Next() {
			// All goroutines currently on round r share one key and
			// coalesce; Add advances the round every 16 lookups.
			r := round.Add(1) / 16
			w[0] = 1 + float64(r)
			ix.searchSparseStatus(terms, w, 10)
		}
	})
	b.StopTimer()
	after, _ := ix.CacheStats()
	misses := after.Misses - before.Misses
	if misses > 0 {
		absorbed := (after.Hits - before.Hits) + (after.Coalesced - before.Coalesced)
		b.ReportMetric(float64(absorbed)/float64(misses), "absorbed/miss")
	}
}

// BenchmarkCachedQueryZipfian replays a Zipf-distributed trace over 1k
// distinct queries — the topic-concentrated traffic the paper's
// probabilistic model predicts — against a cache deliberately smaller
// than the full query set, so the LRU must keep the Zipf head and evict
// the tail. The hit-rate metric is the amortization headline: ns/op
// approaches the hit cost as the skew concentrates.
func BenchmarkCachedQueryZipfian(b *testing.B) {
	ix := benchCachedIndex(b, 128<<10)
	n := ix.NumTerms()
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 1023)
	const traceLen = 1 << 14
	type q struct {
		terms   []int
		weights []float64
	}
	// 1024 distinct queries; trace indices are Zipf-skewed onto them.
	qs := make([]q, 1024)
	for i := range qs {
		t1 := i % n
		t2 := (i*7 + 13) % n
		if t2 <= t1 {
			t2 = t1 + 1
		}
		qs[i] = q{terms: []int{t1, t2 % n, (t2 + 17) % n}, weights: []float64{1, 2, 1}}
		nt, nw := cache.NormalizeQuery(qs[i].terms, qs[i].weights)
		qs[i].terms, qs[i].weights = nt, nw
	}
	trace := make([]int, traceLen)
	for i := range trace {
		trace[i] = int(zipf.Uint64())
	}
	before, _ := ix.CacheStats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		query := qs[trace[i%traceLen]]
		ix.searchSparseStatus(query.terms, query.weights, 10)
	}
	b.StopTimer()
	after, _ := ix.CacheStats()
	total := (after.Hits - before.Hits) + (after.Misses - before.Misses) + (after.Coalesced - before.Coalesced)
	if total > 0 {
		b.ReportMetric(float64(after.Hits-before.Hits)/float64(total), "hit-rate")
	}
}

// BenchmarkCachedQueryUncachedBaseline is the same index and query with
// no cache attached — the in-package twin of the root suite's
// BenchmarkQueryLatencySparse, so the hit/miss/baseline triple reads
// off one bench run.
func BenchmarkCachedQueryUncachedBaseline(b *testing.B) {
	ix := benchCachedIndex(b, 0)
	terms, weights := benchQueryTerms(ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.searchSparseStatus(terms, weights, 10)
	}
}
