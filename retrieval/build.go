package retrieval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/ir"
	"repro/internal/ivf"
	"repro/internal/lsi"
	"repro/internal/par"
	"repro/internal/quant"
	"repro/internal/sparse"
	"repro/internal/vsm"
	"repro/retrieval/cache"
	"repro/retrieval/shard"
	"repro/retrieval/wal"
)

// Index is the concrete Retriever produced by Build and Load. It bundles
// the backend (LSI latent space or VSM inverted index) with the text
// layer — vocabulary, weighting, pipeline flags, document IDs — so text
// queries work end to end, including on indexes loaded from disk.
type Index struct {
	backend Backend

	lsiIndex *lsi.Index
	vsmIndex *vsm.Index
	matrix   *sparse.CSR  // term-document matrix, retained for VSM persistence
	sharded  *shard.Index // non-nil iff built with WithShards

	vocab           *ir.Vocabulary // nil only for v1 files loaded without text config
	weighting       Weighting
	removeStopwords bool
	stemming        bool
	docIDs          []string

	// The ANN tier (WithANN). ann is the unsharded index's quantizer —
	// sharded indexes keep one per compacted segment down in
	// retrieval/shard. annList/annProbe remember the configuration
	// (annProbe is the default probe budget of Search; 0 = exhaustive);
	// the atomics count unsharded probe work for Stats and /metrics.
	ann         *ivf.Index
	annList     int
	annProbe    int
	annSearches atomic.Int64
	annCells    atomic.Int64
	annDocs     atomic.Int64

	// The quantized scoring tier (WithQuantized). quant is the unsharded
	// index's int8 shadow — sharded indexes keep one per compacted
	// segment down in retrieval/shard. quantBeta is the default rerank
	// over-fetch factor of Search (0 = the tier is off); the atomics
	// count unsharded scan work for Stats and /metrics.
	quant         *quant.Matrix
	quantBeta     int
	quantSearches atomic.Int64
	quantScanned  atomic.Int64
	quantReranked atomic.Int64

	qc *queryCache // non-nil iff built/opened with WithQueryCache

	// wlog is the attached write-ahead log (AttachWAL); nil means Adds
	// are not logged. walMu serializes logged Adds and checkpoints so
	// logged positions mirror apply order exactly.
	wlog  *wal.Log
	walMu sync.Mutex
}

var _ Retriever = (*Index)(nil)

// Build indexes a corpus of documents and returns the Retriever for it.
// The zero-option call builds a log-weighted LSI index at an
// automatically chosen rank with stopword removal and stemming on; see
// the With* options for every knob. It returns ErrEmptyCorpus when no
// documents are given or preprocessing leaves an empty vocabulary.
func Build(docs []Document, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("%w: no documents", ErrEmptyCorpus)
	}
	if cfg.annList > 0 && cfg.backend != BackendLSI {
		return nil, fmt.Errorf("retrieval: WithANN requires the LSI backend (got %s)", cfg.backend)
	}
	if cfg.quantBeta > 0 && cfg.backend != BackendLSI {
		return nil, errQuantBackend(cfg.backend)
	}
	if cfg.workers > 0 {
		par.SetMaxProcs(cfg.workers)
	}
	cw, err := cfg.weighting.toCorpus()
	if err != nil {
		return nil, err
	}

	texts := make([]string, len(docs))
	ids := make([]string, len(docs))
	for i, d := range docs {
		texts[i] = d.Text
		ids[i] = d.ID
		if ids[i] == "" {
			ids[i] = fmt.Sprintf("doc-%d", i)
		}
	}
	pipe := &ir.Pipeline{
		RemoveStopwords: cfg.removeStopwords,
		Stemming:        cfg.stemming,
		Vocab:           ir.NewVocabulary(),
	}
	c := pipe.ProcessAll(texts)
	if c.NumTerms == 0 {
		return nil, fmt.Errorf("%w: every token was removed by preprocessing", ErrEmptyCorpus)
	}
	a := corpus.TermDocMatrix(c, cw)

	ix := &Index{
		backend:         cfg.backend,
		vocab:           pipe.Vocab,
		weighting:       cfg.weighting,
		removeStopwords: cfg.removeStopwords,
		stemming:        cfg.stemming,
		docIDs:          ids,
	}
	if cfg.shards > 0 {
		sx, err := buildSharded(ix, a, ids, c.NumTerms, len(c.Docs), cfg)
		if err != nil {
			return nil, err
		}
		sx.initCache(cfg.cacheBytes)
		return sx, nil
	}
	switch cfg.backend {
	case BackendLSI:
		engine, err := cfg.engine.toLSI()
		if err != nil {
			return nil, err
		}
		rank := cfg.rank
		if rank <= 0 {
			rank = autoRank(c.NumTerms, len(c.Docs))
		}
		ix.lsiIndex, err = lsi.Build(a, rank, lsi.Options{Engine: engine, Seed: cfg.seed})
		if err != nil {
			return nil, fmt.Errorf("retrieval: building LSI index: %w", err)
		}
		if err := ix.trainANN(cfg); err != nil {
			return nil, err
		}
		if err := ix.trainQuant(cfg); err != nil {
			return nil, err
		}
	case BackendVSM:
		ix.vsmIndex = vsm.NewFromMatrix(a)
		ix.matrix = a
	default:
		return nil, fmt.Errorf("retrieval: unknown backend %d", int(cfg.backend))
	}
	ix.initCache(cfg.cacheBytes)
	return ix, nil
}

// BuildTexts is Build for bare strings; document IDs default to "doc-<n>".
func BuildTexts(texts []string, opts ...Option) (*Index, error) {
	docs := make([]Document, len(texts))
	for i, t := range texts {
		docs[i] = Document{Text: t}
	}
	return Build(docs, opts...)
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int {
	switch {
	case ix.sharded != nil:
		return ix.sharded.NumDocs()
	case ix.backend == BackendVSM:
		return ix.vsmIndex.NumDocs()
	}
	return ix.lsiIndex.NumDocs()
}

// NumTerms returns the vocabulary size the index was built over.
func (ix *Index) NumTerms() int {
	switch {
	case ix.sharded != nil:
		return ix.sharded.NumTerms()
	case ix.backend == BackendVSM:
		return ix.vsmIndex.NumTerms()
	}
	return ix.lsiIndex.NumTerms()
}

// Rank returns the retained LSI rank (0 for the VSM backend; the
// per-shard rank for sharded indexes).
func (ix *Index) Rank() int {
	switch {
	case ix.sharded != nil:
		return ix.sharded.Rank()
	case ix.backend == BackendVSM:
		return 0
	}
	return ix.lsiIndex.K()
}

// Stats describes the index, including a per-backend memory estimate
// that covers both the numeric payload and the text layer.
func (ix *Index) Stats() Stats {
	st := Stats{
		Backend:     ix.backend.String(),
		NumDocs:     ix.NumDocs(),
		NumTerms:    ix.NumTerms(),
		Rank:        ix.Rank(),
		Weighting:   ix.weighting.String(),
		TextQueries: ix.vocab != nil,
		Ready:       true,
	}
	if ix.vocab != nil {
		st.VocabSize = ix.vocab.Size()
		for _, term := range ix.vocab.Terms() {
			st.MemoryBytes += int64(len(term)) + 16
		}
	}
	for _, id := range ix.docIDs {
		st.MemoryBytes += int64(len(id)) + 16
	}
	switch {
	case ix.sharded != nil:
		ss := ix.sharded.Stats()
		st.Sharded = true
		st.Epoch = ix.sharded.Epoch()
		st.Generation = ss.Generation
		st.Shards = ss.Shards
		st.Segments = ss.Segments
		st.LiveSegments = ss.Live
		st.SealedPending = ss.SealedPending
		st.CompactedSegments = ss.Compacted
		st.FoldedDocs = ss.FoldedDocs
		st.Compactions = ss.Compactions
		st.MemoryBytes += ss.MemoryBytes
		st.Ready = ix.sharded.Ready()
	case ix.backend == BackendVSM:
		// Postings (doc, weight) pairs mirror the matrix nonzeros; the
		// matrix itself is retained for persistence.
		nnz := int64(ix.matrix.NNZ())
		n, m := ix.matrix.Dims()
		st.MemoryBytes += nnz*16 + int64(m)*8   // postings + norms
		st.MemoryBytes += nnz*16 + int64(n+1)*8 // retained CSR
	default:
		n := int64(ix.lsiIndex.NumTerms())
		m := int64(ix.lsiIndex.NumDocs())
		k := int64(ix.lsiIndex.K())
		st.MemoryBytes += 8 * (n*k + m*k + k + m) // basis + doc rows + sigma + norms
		if ann := ix.ann; ann != nil {
			nlist := int64(ann.NList())
			st.MemoryBytes += 8*nlist*int64(ann.Dim()) + 8*nlist + 8*(nlist+1) + 4*int64(ann.NumDocs())
		}
		if qm := ix.quant; qm != nil {
			st.MemoryBytes += qm.Bytes()
		}
	}
	if cs, ok := ix.CacheStats(); ok {
		st.Cache = &cs
		st.MemoryBytes += cs.Bytes
	}
	if as, ok := ix.ANNStats(); ok {
		st.ANN = &as
	}
	if qs, ok := ix.QuantStats(); ok {
		st.Quant = &qs
	}
	return st
}

// DocID returns the external identifier of document doc (build order).
func (ix *Index) DocID(doc int) string {
	if ix.sharded != nil {
		if id := ix.sharded.ExternalID(doc); id != "" {
			return id
		}
		return fmt.Sprintf("doc-%d", doc)
	}
	if doc >= 0 && doc < len(ix.docIDs) {
		return ix.docIDs[doc]
	}
	return fmt.Sprintf("doc-%d", doc)
}

// querySparse turns query text into a sparse term-space vector — weights
// over the distinct in-vocabulary term IDs, sorted ascending — using the
// index's own pipeline, vocabulary, and weighting. It reports how many
// query tokens hit the vocabulary. The sparse form is what both backend
// hot paths consume: a text query never materializes a vocabulary-length
// vector, and the sorted order makes the backends' accumulation match
// the dense reference bitwise.
func (ix *Index) querySparse(query string) (terms []int, weights []float64, known int) {
	pipe := &ir.Pipeline{RemoveStopwords: ix.removeStopwords, Stemming: ix.stemming}
	counts := make(map[int]float64)
	for _, term := range pipe.Terms(query) {
		if id, ok := ix.vocab.Lookup(term); ok {
			counts[id]++
			known++
		}
	}
	if known == 0 {
		return nil, nil, 0
	}
	terms = make([]int, 0, len(counts))
	for id := range counts {
		terms = append(terms, id)
	}
	sort.Ints(terms)
	weights = make([]float64, len(terms))
	for i, id := range terms {
		switch ix.weighting {
		case WeightingBinary:
			weights[i] = 1
		case WeightingLog:
			weights[i] = 1 + math.Log(counts[id])
		default: // count; tf-idf queries use raw counts (df is a corpus statistic)
			weights[i] = counts[id]
		}
	}
	return terms, weights, known
}

// toResults converts n backend matches to public Results via at, which
// returns match i's (doc, score) — the one conversion loop shared by
// both backends' single and batch paths.
func (ix *Index) toResults(n int, at func(int) (int, float64)) []Result {
	out := make([]Result, n)
	for i := range out {
		doc, score := at(i)
		out[i] = Result{Doc: doc, ID: ix.DocID(doc), Score: score}
	}
	return out
}

// searchVec ranks documents against a validated dense term-space vector
// (the SearchVector path; text queries go through searchSparse).
func (ix *Index) searchVec(q []float64, topN int) []Result {
	if ix.annProbe > 0 || ix.quantBeta > 0 {
		return ix.searchVecOpts(q, topN, ix.probeOpts())
	}
	if ix.sharded != nil {
		ms := ix.sharded.SearchVec(q, topN)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	if ix.backend == BackendVSM {
		ms := ix.vsmIndex.Search(q, topN)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	ms := ix.lsiIndex.Search(q, topN)
	return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
}

// searchSparse ranks documents against a validated sparse query (terms
// sorted ascending), staying on the backends' sparse hot paths. With a
// configured default probe budget (WithANN's nprobe > 0) it routes
// through the ANN tier.
func (ix *Index) searchSparse(terms []int, weights []float64, topN int) []Result {
	if ix.annProbe > 0 || ix.quantBeta > 0 {
		return ix.searchSparseOpts(terms, weights, topN, ix.probeOpts())
	}
	if ix.sharded != nil {
		ms := ix.sharded.SearchSparse(terms, weights, topN)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	if ix.backend == BackendVSM {
		ms := ix.vsmIndex.SearchSparse(terms, weights, topN)
		return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
	}
	ms := ix.lsiIndex.SearchSparse(terms, weights, topN)
	return ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score })
}

// Search implements Retriever: it preprocesses the query with the
// index's pipeline, folds it into the backend's space, and returns the
// topN documents by cosine similarity (all documents if topN <= 0).
// With WithQueryCache, repeated queries are answered from the epoch-
// keyed result cache (see SearchStatus for the per-lookup disposition);
// results are identical either way.
//
// Cancellation is honored at query boundaries: ctx is checked before the
// search and again after it, so work that outlives its deadline reports
// the deadline error rather than stale results — but an in-flight
// backend scan is not interrupted mid-kernel.
func (ix *Index) Search(ctx context.Context, query string, topN int) ([]Result, error) {
	res, _, err := ix.SearchStatus(ctx, query, topN)
	return res, err
}

// SearchVector ranks documents against a raw term-space query vector (for
// callers that build vectors themselves, e.g. from corpus-model
// documents). The vector length must equal NumTerms; a mismatch returns
// an error wrapping ErrVectorLength instead of panicking like the
// internal fast-paths.
func (ix *Index) SearchVector(ctx context.Context, q []float64, topN int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(q) != ix.NumTerms() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVectorLength, len(q), ix.NumTerms())
	}
	res := ix.searchVec(q, topN)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// batchChunk bounds how many queries run between context checks in
// SearchBatch: small enough that cancellation is honored promptly, large
// enough that the parallel backend batch kernels stay saturated.
const batchChunk = 64

// SearchBatch implements Retriever: it runs every query through the same
// path as Search, fanning the per-query work across CPUs via the backend
// batch kernels and checking ctx between chunks of batchChunk queries.
// Queries with no in-vocabulary terms yield empty (non-nil) result
// slices; result order matches query order.
func (ix *Index) SearchBatch(ctx context.Context, queries []string, topN int) ([][]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ix.vocab == nil {
		return nil, ErrNoVocabulary
	}
	out := make([][]Result, len(queries))
	qterms := make([][]int, 0, len(queries))
	qweights := make([][]float64, 0, len(queries))
	qpos := make([]int, 0, len(queries)) // query index of each sparse vector
	for i, query := range queries {
		if terms, weights, known := ix.querySparse(query); known > 0 {
			qterms = append(qterms, terms)
			qweights = append(qweights, weights)
			qpos = append(qpos, i)
		} else {
			out[i] = []Result{}
		}
	}
	// With a query cache, answer what we can from it and narrow the
	// batch to the misses; computed misses are stored after their chunk
	// if the epoch stayed stable (the same publish-then-bump validity
	// protocol as the single-query path).
	var cacheKeys [][]byte
	var batchEpoch uint64
	if ix.qc != nil {
		batchEpoch = ix.qc.epoch()
		cacheKeys = make([][]byte, 0, len(qterms))
		kept := 0
		for i := range qterms {
			key := cache.AppendQueryKey(nil, batchEpoch, topN, qterms[i], qweights[i])
			if v, ok := ix.qc.c.Get(key); ok {
				out[qpos[i]] = copyResults(v)
				continue
			}
			qterms[kept], qweights[kept], qpos[kept] = qterms[i], qweights[i], qpos[i]
			cacheKeys = append(cacheKeys, key)
			kept++
		}
		qterms, qweights, qpos = qterms[:kept], qweights[:kept], qpos[:kept]
	}
	for lo := 0; lo < len(qterms); lo += batchChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+batchChunk, len(qterms))
		var chunk [][]Result
		if ix.sharded != nil || ix.tiered() {
			// Sharded and tier-routed searches go query-by-query through the
			// same dispatch as Search; each query parallelizes internally.
			for i := lo; i < hi; i++ {
				chunk = append(chunk, ix.searchSparse(qterms[i], qweights[i], topN))
			}
		} else if ix.backend == BackendVSM {
			for _, ms := range ix.vsmIndex.SearchBatchSparse(qterms[lo:hi], qweights[lo:hi], topN) {
				chunk = append(chunk, ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score }))
			}
		} else {
			for _, ms := range ix.lsiIndex.SearchBatchSparse(qterms[lo:hi], qweights[lo:hi], topN) {
				chunk = append(chunk, ix.toResults(len(ms), func(i int) (int, float64) { return ms[i].Doc, ms[i].Score }))
			}
		}
		store := ix.qc != nil && ix.qc.epoch() == batchEpoch
		for i, res := range chunk {
			out[qpos[lo+i]] = res
			if store {
				// The caller owns res; cache a private copy under the
				// key encoded at probe time.
				ix.qc.c.Put(cacheKeys[lo+i], copyResults(res))
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
