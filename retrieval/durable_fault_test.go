package retrieval

// End-to-end disk-fault durability: the live index's WAL'd ingest path
// driven through a faultinject.FaultyFS. The contract under any fault
// schedule: an Add that returned nil is present after "crash" (abandon
// without checkpoint) + reopen + replay; an Add that errored may or
// may not be present (log-before-apply), but must never corrupt the
// log or the index.

import (
	"context"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"

	"repro/internal/faultinject"
)

// buildWALIndex builds a 2-shard index, checkpoints it to data, and
// attaches a WAL in waldir through fsys.
func buildWALIndex(t *testing.T, data, waldir string, fsys faultinject.FS) *Index {
	t.Helper()
	ix, err := Build(largerCorpus(16), WithRank(3), WithShards(2), WithAutoCompact(false), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveDir(data); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.AttachWALFS(waldir, fsys); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestAddTornWALWriteKeepsAckedDocs: a torn WAL append refuses the ack
// and the index recovers — later acked adds land cleanly and a reopen
// replays exactly the acked suffix.
func TestAddTornWALWriteKeepsAckedDocs(t *testing.T) {
	dir := t.TempDir()
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	fs := faultinject.NewFaultyFS(faultinject.OS{}, 3)
	ix := buildWALIndex(t, data, waldir, fs)
	ctx := context.Background()

	acked := 0
	add := func(i int) error {
		_, err := ix.Add(ctx, []Document{{ID: fmt.Sprintf("live-%d", i), Text: "car engine maintenance manual"}})
		if err == nil {
			acked++
		}
		return err
	}
	if err := add(0); err != nil {
		t.Fatal(err)
	}
	fs.FailWrites(1, nil, true)
	if err := add(1); err == nil {
		t.Fatal("add acked over a torn WAL append")
	}
	fs.Clear()
	if err := add(2); err != nil {
		t.Fatalf("add after recovered tear: %v", err)
	}
	wantDocs := 16 + acked
	if ix.NumDocs() != wantDocs {
		t.Fatalf("live index holds %d docs, want %d", ix.NumDocs(), wantDocs)
	}
	ix.Close() // crash: no checkpoint since the base save

	re, err := OpenDir(data, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	replayed, err := re.AttachWAL(waldir)
	if err != nil {
		t.Fatalf("replay after torn-write faults: %v", err)
	}
	if replayed != acked || re.NumDocs() != wantDocs {
		t.Fatalf("replayed %d docs into %d total, want %d into %d", replayed, re.NumDocs(), acked, wantDocs)
	}
}

// TestAddFsyncFaultNeverAcksThenRecovers: an fsync fault refuses acks
// (fail-stop) until a checkpoint rotates onto a fresh segment; acked
// documents from before and after the incident both survive reopen.
func TestAddFsyncFaultNeverAcksThenRecovers(t *testing.T) {
	dir := t.TempDir()
	data, waldir := filepath.Join(dir, "data"), filepath.Join(dir, "wal")
	fs := faultinject.NewFaultyFS(faultinject.OS{}, 5)
	ix := buildWALIndex(t, data, waldir, fs)
	ctx := context.Background()

	if _, err := ix.Add(ctx, []Document{{ID: "pre", Text: "stars and galaxies in deep space"}}); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncs(1, syscall.EIO)
	if _, err := ix.Add(ctx, []Document{{ID: "dark", Text: "never acked"}}); err == nil {
		t.Fatal("add acked without a durable fsync")
	}
	fs.Clear()
	// The log is fail-stopped: ingest refuses until the operator (or the
	// checkpoint loop) rotates it.
	if _, err := ix.Add(ctx, []Document{{ID: "still-dark", Text: "refused"}}); err == nil {
		t.Fatal("add acked on a failed log")
	}
	if err := ix.Checkpoint(data); err != nil {
		t.Fatalf("recovery checkpoint: %v", err)
	}
	if _, err := ix.Add(ctx, []Document{{ID: "post", Text: "telescopes observing distant galaxies"}}); err != nil {
		t.Fatalf("add after recovery checkpoint: %v", err)
	}
	wantDocs := ix.NumDocs()
	ix.Close()

	re, err := OpenDir(data, WithAutoCompact(false))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.AttachWAL(waldir); err != nil {
		t.Fatalf("replay after fsync faults: %v", err)
	}
	if re.NumDocs() != wantDocs {
		t.Fatalf("reopened index holds %d docs, want %d", re.NumDocs(), wantDocs)
	}
	if got := re.DocID(wantDocs - 1); got != "post" {
		t.Fatalf("newest doc %q, want post", got)
	}
}

// TestCheckpointENOSPCKeepsPreviousGeneration: a checkpoint that runs
// out of disk fails without harming the previous checkpoint — the
// directory still opens at the old generation with the old corpus.
func TestCheckpointENOSPCKeepsPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	ix, err := Build(largerCorpus(14), WithRank(3), WithShards(2), WithAutoCompact(false), WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if err := ix.SaveDir(data); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ix.Add(ctx, []Document{{ID: "extra", Text: "car engine"}}); err != nil {
		t.Fatal(err)
	}

	// Size one full save on a side directory, then sweep budgets below
	// it so the real save dies at many different points of its write
	// schedule: during a segment, the ids file, or the manifest.
	trial := faultinject.NewFaultyFS(faultinject.OS{}, 1)
	if err := ix.sharded.SaveDirFS(filepath.Join(dir, "trial"), trial); err != nil {
		t.Fatal(err)
	}
	total := trial.BytesWritten()
	if total < 16 {
		t.Fatalf("trial checkpoint wrote only %d bytes", total)
	}
	step := total / 8
	if step == 0 {
		step = 1
	}
	for budget := int64(0); budget < total; budget += step {
		fs := faultinject.NewFaultyFS(faultinject.OS{}, budget)
		fs.DiskFullAfter(budget)
		if err := ix.sharded.SaveDirFS(data, fs); err == nil {
			t.Fatalf("budget %d: checkpoint succeeded on a full disk", budget)
		}
		re, err := OpenDir(data, WithAutoCompact(false))
		if err != nil {
			t.Fatalf("budget %d: previous checkpoint no longer opens: %v", budget, err)
		}
		if re.NumDocs() != 14 || re.Generation() != 0 {
			t.Fatalf("budget %d: reopened at (gen %d, %d docs), want (0, 14)", budget, re.Generation(), re.NumDocs())
		}
		re.Close()
	}
}
