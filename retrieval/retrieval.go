// Package retrieval is the public face of the repository: one stable API
// for building, querying, persisting, and serving the retrieval systems
// the paper compares — rank-k latent semantic indexing (LSI) and the
// conventional vector-space model (VSM) baseline.
//
// The paper's argument is comparative (LSI rankings versus plain
// vector-space rankings over the same corpus), so both systems implement
// the same Retriever interface behind a single constructor:
//
//	ret, err := retrieval.BuildTexts(texts, retrieval.WithRank(3))
//	results, err := ret.Search(ctx, "car engine repair", 10)
//
// Indexes are text-in/text-out: Build bundles the tokenize → stopword →
// stem pipeline, the vocabulary, and the term weighting into the index,
// so queries are plain strings and results carry stable document IDs.
// Save writes a self-contained index (wire format v2) that answers text
// queries after Load without the corpus that built it; v1 files written
// before the format bump still load (see Load for the migration path).
//
// Every query path returns errors — malformed input never panics through
// the public API, and batch calls honor context cancellation. The
// internal packages keep their panic fast-paths; this package validates
// at the boundary.
//
// cmd/lsiserve exposes the same API over HTTP/JSON via the
// retrieval/httpapi handler; cmd/lsiquery drives it from the terminal.
package retrieval

import (
	"context"
	"errors"

	"repro/retrieval/cache"
)

// Retriever is the query contract shared by every backend. Search and
// SearchBatch take raw query text (preprocessed by the same pipeline the
// index was built with), honor ctx cancellation, and return ranked
// results best-first with ties broken by document position for
// determinism.
type Retriever interface {
	// Search returns the topN best documents for a text query (all
	// documents if topN <= 0). It returns ErrNoQueryTerms if no query
	// token survives preprocessing and vocabulary lookup.
	Search(ctx context.Context, query string, topN int) ([]Result, error)
	// SearchBatch runs many queries, fanning work across CPUs. Unlike
	// Search, a query with no in-vocabulary terms yields an empty result
	// slice rather than failing the whole batch.
	SearchBatch(ctx context.Context, queries []string, topN int) ([][]Result, error)
	// NumDocs returns the number of indexed documents.
	NumDocs() int
	// Stats describes the index (backend, dimensions, rank, weighting).
	Stats() Stats
}

// Result is one ranked retrieval hit.
type Result struct {
	// Doc is the document's position in build order.
	Doc int `json:"doc"`
	// ID is the document's external identifier (from Document.ID, or a
	// generated "doc-<n>" default).
	ID string `json:"id"`
	// Score is the cosine similarity between query and document — in the
	// rank-k latent space for the LSI backend, in raw term space for VSM.
	//
	// Scores are stable across query paths and releases to within 1e-12:
	// the sparse text hot path, the dense SearchVector path, and batch
	// calls agree on a document's score to at least that tolerance (hot-
	// path kernel changes may move the last ulps), and rankings —
	// including the document-ID tie-break — are identical.
	Score float64 `json:"score"`
}

// Document is one input to Build: an external identifier and raw text.
type Document struct {
	// ID is the stable identifier returned in Results; empty means a
	// generated "doc-<n>" default.
	ID string
	// Text is the document's raw text, preprocessed by the index's
	// pipeline (tokenize, optional stopword removal, optional stemming).
	Text string
}

// Stats describes an index.
type Stats struct {
	// Backend is "lsi" or "vsm".
	Backend string `json:"backend"`
	// Sharded reports the sharded live index (WithShards); the Shard*
	// fields below are only populated when it is set.
	Sharded bool `json:"sharded,omitempty"`
	// NumDocs and NumTerms are the index dimensions.
	NumDocs  int `json:"numDocs"`
	NumTerms int `json:"numTerms"`
	// Rank is the retained LSI rank k (0 for the VSM backend, which has
	// no latent space; the per-shard rank for sharded indexes).
	Rank int `json:"rank,omitempty"`
	// Weighting names the term-weighting function of the term-document
	// matrix.
	Weighting string `json:"weighting"`
	// TextQueries reports whether the index carries a vocabulary and can
	// answer text queries (false only for v1-format files loaded without
	// WithTextConfig).
	TextQueries bool `json:"textQueries"`
	// VocabSize is the number of terms in the bundled vocabulary (0 when
	// the index has none; otherwise equal to NumTerms).
	VocabSize int `json:"vocabSize"`
	// MemoryBytes estimates the index's heap footprint: the backend's
	// numeric payload (latent matrices for LSI, postings + retained
	// matrix for VSM, every segment for sharded indexes) plus the text
	// layer (vocabulary and document ID strings).
	MemoryBytes int64 `json:"memoryBytes"`

	// Epoch is the index-wide mutation epoch of a sharded live index
	// (advances after every published Add batch and compaction swap);
	// permanently 0 for immutable indexes. Local to this process — see
	// Index.Epoch.
	Epoch uint64 `json:"epoch"`
	// Generation is the manifest generation of the newest durable
	// checkpoint of a sharded live index (0 for immutable indexes and
	// for sharded indexes never saved); comparable across a primary and
	// its replicas — see Index.Generation.
	Generation uint64 `json:"generation"`

	// Sharded-index topology (zero unless Sharded).
	Shards            int   `json:"shards,omitempty"`
	Segments          int   `json:"segments,omitempty"`
	LiveSegments      int   `json:"liveSegments,omitempty"`
	SealedPending     int   `json:"sealedPending,omitempty"`
	CompactedSegments int   `json:"compactedSegments,omitempty"`
	FoldedDocs        int   `json:"foldedDocs,omitempty"`
	Compactions       int64 `json:"compactions,omitempty"`
	// Ready is false while the index owes compaction work (see
	// Index.Ready); always true for unsharded indexes.
	Ready bool `json:"ready"`

	// Cache reports the query result cache (WithQueryCache); nil when
	// the index is uncached.
	Cache *QueryCacheStats `json:"cache,omitempty"`

	// ANN reports the IVF ANN tier (WithANN); nil when the index has
	// none.
	ANN *ANNStats `json:"ann,omitempty"`

	// Quant reports the quantized scoring tier (WithQuantized); nil when
	// the index has none.
	Quant *QuantStats `json:"quant,omitempty"`
}

// QueryCacheStats describes the query result cache of an index built
// with WithQueryCache: the hit/miss/coalesce/evict counters and working
// set of the underlying cache, plus the index epoch its keys currently
// embed (0 forever on immutable indexes; advancing with every Add batch
// and compaction on sharded live indexes).
type QueryCacheStats struct {
	cache.Stats
	Epoch uint64 `json:"epoch"`
}

// Sentinel errors returned by the query and build paths; test with
// errors.Is — returned errors may wrap them with context.
var (
	// ErrEmptyCorpus reports a Build over no documents, or documents
	// whose every token is removed by preprocessing.
	ErrEmptyCorpus = errors.New("retrieval: corpus is empty after preprocessing")
	// ErrNoQueryTerms reports a text query with no token in the index
	// vocabulary (after the same preprocessing the corpus went through).
	ErrNoQueryTerms = errors.New("retrieval: no query terms in the index vocabulary")
	// ErrNoVocabulary reports a text query against an index without a
	// bundled vocabulary (a v1-format file loaded without WithTextConfig).
	ErrNoVocabulary = errors.New("retrieval: index has no vocabulary; text queries unavailable (load v1 indexes with WithTextConfig, or re-save as v2)")
	// ErrVectorLength reports a raw query vector whose length differs
	// from the index vocabulary size.
	ErrVectorLength = errors.New("retrieval: query vector length does not match the index vocabulary")
)
