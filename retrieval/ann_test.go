package retrieval

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// topicDocs generates n tiny documents drawn from three disjoint topic
// vocabularies — the paper's corpus model in miniature, so the k-means
// quantizer has real clusters to find.
func topicDocs(n int) []Document {
	topics := [][]string{
		{"car", "engine", "mechanic", "brake", "dealership", "driver"},
		{"galaxy", "telescope", "orbit", "astronomer", "nebula", "comet"},
		{"flour", "oven", "yeast", "baker", "dough", "pastry"},
	}
	docs := make([]Document, n)
	for i := range docs {
		words := topics[i%len(topics)]
		var b strings.Builder
		for j := 0; j < 8; j++ {
			b.WriteString(words[(i+j*j)%len(words)])
			b.WriteByte(' ')
		}
		docs[i] = Document{ID: fmt.Sprintf("d%04d", i), Text: b.String()}
	}
	return docs
}

func TestWithANNRequiresLSI(t *testing.T) {
	_, err := Build(DemoCorpus(), WithBackend(BackendVSM), WithANN(4, 2))
	if err == nil {
		t.Fatal("Build(VSM, WithANN) succeeded, want error")
	}
}

func TestANNFullProbeBitwiseEqualsExhaustive(t *testing.T) {
	docs := topicDocs(240)
	plain, err := Build(docs, WithRank(6), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	// nprobe = nlist: every cell is probed, so the default search must
	// reproduce the exhaustive ranking bit for bit.
	ann, err := Build(docs, WithRank(6), WithEngine(EngineDense), WithANN(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, q := range []string{"car engine", "telescope nebula", "yeast dough", "mechanic comet"} {
		want, err := plain.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ann.Search(ctx, q, 10)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, got, want, "full-probe "+q)
	}
	st, ok := ann.ANNStats()
	if !ok {
		t.Fatal("ANNStats() not ok on a WithANN index")
	}
	if st.Segments != 1 || st.Docs != 240 {
		t.Fatalf("ANNStats = %+v, want 1 segment over 240 docs", st)
	}
	if st.Searches == 0 || st.CellsProbed == 0 || st.DocsScored == 0 {
		t.Fatalf("probe counters did not advance: %+v", st)
	}
	if full := ann.Stats(); full.ANN == nil || full.ANN.NList != st.NList {
		t.Fatalf("Stats().ANN = %+v, want the ANNStats block", full.ANN)
	}
}

func TestANNZeroProbeDefaultStaysExhaustive(t *testing.T) {
	docs := topicDocs(120)
	plain, err := Build(docs, WithRank(6), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	// nprobe 0: quantizers train, but the default search path must not
	// touch them — only a per-request override probes.
	ann, err := Build(docs, WithRank(6), WithEngine(EngineDense), WithANN(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := plain.Search(ctx, "galaxy orbit", 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ann.Search(ctx, "galaxy orbit", 8)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want, "default search")
	if st, _ := ann.ANNStats(); st.Searches != 0 {
		t.Fatalf("default search probed the tier: %+v", st)
	}

	// Per-request overrides: a full budget is bitwise-exhaustive, a zero
	// budget is the explicit escape hatch, and both leave results sorted.
	full, err := ann.SearchProbe(ctx, "galaxy orbit", 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, full, want, "SearchProbe full budget")
	exact, err := ann.SearchProbe(ctx, "galaxy orbit", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, exact, want, "SearchProbe escape hatch")
	if st, _ := ann.ANNStats(); st.Searches != 1 {
		t.Fatalf("ANNStats.Searches = %d, want 1 (only the full-budget probe)", st.Searches)
	}

	narrow, err := ann.SearchProbe(ctx, "galaxy orbit", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow) == 0 {
		t.Fatal("nprobe=1 returned no results")
	}
	for i := 1; i < len(narrow); i++ {
		if narrow[i].Score > narrow[i-1].Score {
			t.Fatalf("nprobe=1 results unsorted: %+v", narrow)
		}
	}
}

func TestSearchProbeErrorContracts(t *testing.T) {
	ann, err := Build(topicDocs(60), WithRank(4), WithEngine(EngineDense), WithANN(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ann.SearchProbe(ctx, "zzzunknownzzz", 3, 2); !errors.Is(err, ErrNoQueryTerms) {
		t.Fatalf("unknown-vocabulary probe = %v, want ErrNoQueryTerms", err)
	}
	if _, err := ann.SearchVectorProbe(ctx, make([]float64, ann.NumTerms()+3), 3, 2); !errors.Is(err, ErrVectorLength) {
		t.Fatalf("wrong-length vector probe = %v, want ErrVectorLength", err)
	}

	// A full-budget vector probe reproduces SearchVector exactly.
	q := make([]float64, ann.NumTerms())
	for i := 0; i < len(q); i += 3 {
		q[i] = 1
	}
	want, err := ann.SearchVector(ctx, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ann.SearchVectorProbe(ctx, q, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want, "vector full probe")
}

func TestANNOpenTrainsTier(t *testing.T) {
	docs := topicDocs(150)
	plain, err := Build(docs, WithRank(5), WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ann.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// The quantizer is derived state: Open retrains it when the opening
	// options ask for the tier, and a full budget stays exhaustive.
	ox, err := Open(path, WithANN(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	want, err := plain.Search(ctx, "baker pastry", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ox.Search(ctx, "baker pastry", 10)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, got, want, "opened full probe")
	if st, ok := ox.ANNStats(); !ok || st.Segments != 1 {
		t.Fatalf("opened index ANNStats = %+v ok=%v, want a 1-segment tier", st, ok)
	}
}

func TestANNShardedEndToEnd(t *testing.T) {
	docs := topicDocs(600)
	build := func(opts ...Option) *Index {
		t.Helper()
		ix, err := Build(docs, append([]Option{WithRank(4), WithShards(2), WithAutoCompact(false)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ix.Close() })
		return ix
	}
	plain := build()
	ann := build(WithANN(6, 2))

	st, ok := ann.ANNStats()
	if !ok {
		t.Fatal("ANNStats() not ok on a sharded WithANN index")
	}
	// Both initial per-shard segments are compacted and large enough to
	// train (300 docs each ≥ the 256-doc floor).
	if st.Segments != 2 || st.Docs != 600 {
		t.Fatalf("ANNStats = %+v, want 2 quantized segments over 600 docs", st)
	}

	ctx := context.Background()
	want, err := plain.Search(ctx, "telescope comet", 10)
	if err != nil {
		t.Fatal(err)
	}
	// Escape hatch and full budget both reproduce the exhaustive
	// ranking; the default (nprobe=2) search must at least stay sorted
	// and within the corpus.
	exact, err := ann.SearchProbe(ctx, "telescope comet", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, exact, want, "sharded escape hatch")
	full, err := ann.SearchProbe(ctx, "telescope comet", 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, full, want, "sharded full budget")

	// Persistence round trip: the sidecars come back without any ANN
	// options at open time, so per-request probes keep working.
	dir := t.TempDir()
	if err := ann.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	ox, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ox.Close()
	if st, ok := ox.ANNStats(); !ok || st.Segments != 2 {
		t.Fatalf("reopened ANNStats = %+v ok=%v, want 2 quantized segments", st, ok)
	}
	reopened, err := ox.SearchProbe(ctx, "telescope comet", 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, reopened, want, "reopened full budget")
}
