package retrieval

import (
	"context"
	"fmt"

	"repro/internal/ivf"
	"repro/internal/segment"
)

// The ANN tier at the retrieval layer (see WithANN). Unsharded LSI
// indexes carry one IVF quantizer over the whole document-vector matrix,
// trained at Build (and at Open, when the opening options ask for the
// tier — the quantizer is derived state, cheap to rebuild and
// deterministic for a fixed seed, so single-stream index files stay
// format-stable). Sharded indexes delegate to retrieval/shard, where
// every compacted segment owns a quantizer persisted as an ann-*.ivf
// sidecar next to its seg-*.idx file.

// annSeedOffset separates the quantizer-training random stream from the
// decomposition seeds derived from the same configured seed.
const annSeedOffset = 500009

// trainANN trains the unsharded index's quantizer per cfg; a no-op when
// the tier is not configured. Build and Open call it after the LSI index
// exists.
func (ix *Index) trainANN(cfg config) error {
	ix.annList, ix.annProbe = cfg.annList, cfg.annProbe
	if cfg.annList <= 0 || ix.lsiIndex == nil {
		return nil
	}
	ann, err := ivf.Train(ix.lsiIndex.DocVectors(), ix.lsiIndex.Norms(), ivf.TrainOptions{
		NList: cfg.annList,
		Seed:  cfg.seed + annSeedOffset,
	})
	if err != nil {
		return fmt.Errorf("retrieval: training quantizer: %w", err)
	}
	ix.ann = ann
	return nil
}

// searchSparseProbe is searchSparse with an explicit probe budget:
// nprobe > 0 probes that many cells per quantizer (composing with the
// configured quantized tier, when one serves), nprobe <= 0 scans fully
// exactly — float kernels, no tier. Indexes without a quantizer serve
// every budget through whatever tiers they do have.
func (ix *Index) searchSparseProbe(terms []int, weights []float64, topN, nprobe int) []Result {
	var opts segment.ProbeOptions
	if nprobe > 0 {
		opts = segment.ProbeOptions{NProbe: nprobe, Beta: ix.quantBeta}
	}
	return ix.searchSparseOpts(terms, weights, topN, opts)
}

// searchVecProbe is searchSparseProbe for a dense term-space vector.
func (ix *Index) searchVecProbe(q []float64, topN, nprobe int) []Result {
	var opts segment.ProbeOptions
	if nprobe > 0 {
		opts = segment.ProbeOptions{NProbe: nprobe, Beta: ix.quantBeta}
	}
	return ix.searchVecOpts(q, topN, opts)
}

// SearchProbe is Search with a per-request probe budget overriding the
// configured default: nprobe > 0 scores only that many cells per
// quantizer (clamped to nlist; nprobe >= nlist probes every cell) while
// keeping the configured quantized rerank, and nprobe <= 0 forces the
// fully exact scan — float64 kernels over every document, the
// per-request escape hatch for both tiers. Indexes without an ANN tier
// serve every budget through whatever tiers they do have. SearchProbe
// bypasses the query cache: cache keys assume the configured default
// budget, and a per-request override must not poison them.
func (ix *Index) SearchProbe(ctx context.Context, query string, topN, nprobe int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ix.vocab == nil {
		return nil, ErrNoVocabulary
	}
	terms, weights, known := ix.querySparse(query)
	if known == 0 {
		return nil, fmt.Errorf("%w: %q", ErrNoQueryTerms, query)
	}
	var res []Result
	if ix.backend == BackendVSM {
		// No latent space to probe; serve the ordinary VSM ranking.
		res = ix.searchSparse(terms, weights, topN)
	} else {
		res = ix.searchSparseProbe(terms, weights, topN, nprobe)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// SearchVectorProbe is SearchVector with a per-request probe budget; the
// budget semantics are those of SearchProbe. The vector length must
// equal NumTerms.
func (ix *Index) SearchVectorProbe(ctx context.Context, q []float64, topN, nprobe int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(q) != ix.NumTerms() {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVectorLength, len(q), ix.NumTerms())
	}
	var res []Result
	if ix.backend == BackendVSM {
		res = ix.searchVec(q, topN)
	} else {
		res = ix.searchVecProbe(q, topN, nprobe)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// ANNStats describes the IVF ANN tier of an index built or opened with
// WithANN (surfaced as the "ann" block of /v1/stats).
type ANNStats struct {
	// NList is the configured cell count; NProbe the default probe
	// budget (0 = the default search scans exhaustively).
	NList  int `json:"nlist"`
	NProbe int `json:"nprobe"`
	// Segments counts quantizers serving (1 for an unsharded index; one
	// per quantized segment for sharded indexes) and Docs the documents
	// they cover — Docs/NumDocs is the corpus fraction served
	// sublinearly.
	Segments int `json:"segments"`
	Docs     int `json:"docs"`
	// Lifetime probe counters: searches that used the tier, cells
	// probed, and candidates scored in them.
	Searches    int64 `json:"searches"`
	CellsProbed int64 `json:"cellsProbed"`
	DocsScored  int64 `json:"docsScored"`
}

// ANNStats reports the ANN tier's configuration and probe counters; ok
// is false when the index has no tier (not configured, or a backend
// without one).
func (ix *Index) ANNStats() (ANNStats, bool) {
	st := ANNStats{NList: ix.annList, NProbe: ix.annProbe}
	switch {
	case ix.sharded != nil:
		ss := ix.sharded.Stats()
		if ix.annList <= 0 && ss.ANNSegments == 0 {
			return ANNStats{}, false
		}
		st.Segments = ss.ANNSegments
		st.Docs = ss.ANNDocs
		st.Searches = ss.ANNSearches
		st.CellsProbed = ss.ANNCellsProbed
		st.DocsScored = ss.ANNDocsScored
	case ix.ann != nil:
		st.NList = ix.ann.NList() // post-clamp truth beats the config
		st.Segments = 1
		st.Docs = ix.ann.NumDocs()
		st.Searches = ix.annSearches.Load()
		st.CellsProbed = ix.annCells.Load()
		st.DocsScored = ix.annDocs.Load()
	default:
		return ANNStats{}, false
	}
	return st, true
}
