package retrieval

import (
	"context"
	"fmt"
	"sync"

	"repro/retrieval/cache"
)

// Query result caching (WithQueryCache). The cache decorates the
// backend search: queries are keyed by their *normalized sparse form*
// (so any two texts that preprocess to the same term vector share an
// entry), the requested topN, and the index epoch. The epoch is the
// invalidation story:
//
//   - Unsharded indexes are immutable after Build, so they use the
//     constant epoch 0 and cached results stay valid forever.
//   - Sharded live indexes expose shard.Index.Epoch, which advances
//     after every published Add batch and every compaction swap. The
//     bump retires the whole cached working set in O(1) — new lookups
//     encode the new epoch into their keys and miss — with no locks on
//     the read path and no scan; stale entries age out of the LRU.
//
// Freshness proof sketch (the stress tests pin this): a mutation
// publishes its state pointers *before* bumping the epoch, and a cached
// compute re-reads the epoch after searching, storing only if it was
// stable. So an entry keyed with epoch E was computed entirely inside
// epoch E, i.e. after every mutation numbered <= E was fully visible;
// a lookup at epoch E can therefore never observe pre-Add or
// pre-Compact results. (An entry may contain *newer* data than its
// epoch if a mutation raced the compute's snapshot without finishing
// before validation — the same benign race an uncached wait-free search
// has.)
//
// Cached values are shared between the cache and every hit, so the
// decorator copies the result slice before returning it; a steady-state
// hit costs exactly that one allocation.

// queryCache decorates the backend sparse-search path of an Index with
// an epoch-keyed result cache plus request coalescing.
type queryCache struct {
	c     *cache.Cache[[]Result]
	epoch func() uint64
}

// keyBufPool recycles key-encoding scratch so the hit path allocates
// nothing beyond the returned copy.
var keyBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// resultsCost estimates the bytes a cached result slice retains: slice
// header plus, per result, the struct and the external-ID string bytes.
func resultsCost(rs []Result) int64 {
	cost := int64(24)
	for i := range rs {
		cost += 32 + int64(len(rs[i].ID))
	}
	return cost
}

// copyResults returns a caller-owned copy of a shared result slice.
func copyResults(rs []Result) []Result {
	out := make([]Result, len(rs))
	copy(out, rs)
	return out
}

// initCache attaches a query cache bounded at maxBytes (<= 0 leaves the
// index uncached). Called once from the constructors (Build, Open,
// OpenDir) before the index is shared, never concurrently with queries.
func (ix *Index) initCache(maxBytes int64) {
	c := cache.New[[]Result](cache.Config{MaxBytes: maxBytes}, resultsCost)
	if c == nil {
		return
	}
	ix.qc = &queryCache{c: c, epoch: ix.epoch}
}

// epoch returns the index's current mutation epoch: the shard
// subsystem's global epoch for live indexes, the constant 0 for
// immutable ones.
func (ix *Index) epoch() uint64 {
	if ix.sharded != nil {
		return ix.sharded.Epoch()
	}
	return 0
}

// search ranks a validated sparse query through the cache: hit and
// coalesced lookups share a previously computed slice (copied before
// returning), misses run raw and store the result if the epoch was
// stable around the computation.
func (q *queryCache) search(terms []int, weights []float64, topN int, raw func([]int, []float64, int) []Result) ([]Result, cache.Status) {
	e := q.epoch()
	bufp := keyBufPool.Get().(*[]byte)
	key := cache.AppendQueryKey((*bufp)[:0], e, topN, terms, weights)
	res, st := q.c.Do(key, func() ([]Result, bool) {
		r := raw(terms, weights, topN)
		// Store only if no mutation published while we searched; the
		// value is correct to return either way (it is exactly what an
		// uncached search would have produced).
		return r, q.epoch() == e
	})
	*bufp = key[:0]
	keyBufPool.Put(bufp)
	// The slice is shared with the cache (hit, coalesced) or with
	// waiters that coalesced on our flight (miss) — hand out a copy.
	return copyResults(res), st
}

// searchSparseStatus is searchSparse through the cache when one is
// attached, reporting the lookup's disposition.
func (ix *Index) searchSparseStatus(terms []int, weights []float64, topN int) ([]Result, cache.Status) {
	if ix.qc == nil {
		return ix.searchSparse(terms, weights, topN), cache.StatusBypass
	}
	return ix.qc.search(terms, weights, topN, ix.searchSparse)
}

// SearchStatus is Search plus the cache disposition of the lookup:
// StatusHit or StatusCoalesced when the result came from (or was shared
// with) the query cache, StatusMiss when it was computed and considered
// for storage, StatusBypass when the index has no cache (the
// httpapi layer surfaces this as the Cache-Status response header).
// Results are identical to Search's for every status — the cache is
// keyed by normalized query, topN, and index epoch, so a hit can never
// serve results from before a live index's last Add or Compact.
func (ix *Index) SearchStatus(ctx context.Context, query string, topN int) ([]Result, cache.Status, error) {
	if err := ctx.Err(); err != nil {
		return nil, cache.StatusBypass, err
	}
	if ix.vocab == nil {
		return nil, cache.StatusBypass, ErrNoVocabulary
	}
	terms, weights, known := ix.querySparse(query)
	if known == 0 {
		return nil, cache.StatusBypass, fmt.Errorf("%w: %q", ErrNoQueryTerms, query)
	}
	res, st := ix.searchSparseStatus(terms, weights, topN)
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	return res, st, nil
}

// CacheStats reports the query cache's counters; ok is false when the
// index was built without WithQueryCache.
func (ix *Index) CacheStats() (QueryCacheStats, bool) {
	if ix.qc == nil {
		return QueryCacheStats{}, false
	}
	return QueryCacheStats{Stats: ix.qc.c.Stats(), Epoch: ix.epoch()}, true
}
