package retrieval

import (
	"encoding/json"
	"fmt"

	"repro/internal/faultinject"
	"repro/retrieval/wal"
)

// Durability: a sharded live index can attach a write-ahead log
// (retrieval/wal). With a WAL attached, every Add batch is framed,
// fsync'd, and only then applied and acked, so a crash at any instant —
// including SIGKILL between the ack and the next checkpoint — loses no
// acknowledged document: AttachWAL on the next boot replays exactly the
// suffix the newest checkpoint is missing. Checkpoint couples SaveDir
// with a WAL rotation so the log stays short and replay-after-
// checkpoint is exactly "what the checkpoint lacks".
//
// The log records raw document text (WALBatch), not folded vectors:
// replay pushes the documents back through the same deterministic
// pipeline/vocabulary/weighting, so a replayed index is the index the
// crash interrupted.

// WALBatch is the payload of one write-ahead-log record: the Add batch
// exactly as submitted, plus the global position its first document was
// assigned. Replay uses First to skip batches (or batch prefixes) that
// a later checkpoint already made durable.
type WALBatch struct {
	// First is the global document number assigned to Docs[0]; the
	// batch occupies [First, First+len(Docs)).
	First int `json:"first"`
	// Docs is the submitted batch, raw text and all.
	Docs []Document `json:"docs"`
}

// AttachWAL opens (creating if needed) the write-ahead log in dir,
// replays any records the index's current state is missing, and arms
// the log so every subsequent Add is appended and fsync'd before it is
// applied and acked. It returns the number of documents replayed.
//
// Call it after Build/OpenDir and before serving: replay mutates the
// index through the ordinary ingest path. Only sharded live indexes
// can attach a WAL (ErrNotSharded otherwise).
//
// One durability asymmetry is inherent to log-before-apply: a batch
// that was logged but whose apply then failed (e.g. the index was
// concurrently closed) is NOT acked to the caller, yet will be applied
// by replay on the next boot. Acked writes are never lost; failed
// writes may still land.
func (ix *Index) AttachWAL(dir string) (replayed int, err error) {
	return ix.AttachWALFS(dir, faultinject.OS{})
}

// AttachWALFS is AttachWAL with an explicit file system — the
// fault-injection seam (see wal.OpenFS). Production callers use
// AttachWAL; chaos tests interpose a faultinject.FaultyFS to script
// torn appends, fsync errors, and disk-full against the live ingest
// path and then prove no acked write is lost across a reopen.
func (ix *Index) AttachWALFS(dir string, fsys faultinject.FS) (replayed int, err error) {
	if ix.sharded == nil {
		return 0, fmt.Errorf("%w: only sharded live indexes support a WAL", ErrNotSharded)
	}
	if ix.wlog != nil {
		return 0, fmt.Errorf("retrieval: a WAL is already attached")
	}
	log, err := wal.OpenFS(dir, fsys)
	if err != nil {
		return 0, err
	}
	replayed, err = ix.replayWAL(log)
	if err != nil {
		log.Close()
		return replayed, err
	}
	ix.wlog = log
	return replayed, nil
}

// replayWAL applies every logged batch (or batch suffix) the index does
// not already hold.
func (ix *Index) replayWAL(log *wal.Log) (replayed int, err error) {
	err = log.Replay(func(p []byte) error {
		var b WALBatch
		if err := json.Unmarshal(p, &b); err != nil {
			return fmt.Errorf("retrieval: wal replay: decoding batch: %w", err)
		}
		if b.First < 0 || len(b.Docs) == 0 {
			return fmt.Errorf("retrieval: wal replay: malformed batch (first=%d, %d docs)", b.First, len(b.Docs))
		}
		have := ix.sharded.NumDocs()
		if b.First > have {
			return fmt.Errorf("retrieval: wal replay: log starts at document %d but index holds %d — missing an older WAL segment or checkpoint", b.First, have)
		}
		if b.First+len(b.Docs) <= have {
			return nil // fully covered by the checkpoint
		}
		sub := b.Docs[have-b.First:]
		first, err := ix.applyBatch(sub)
		if err != nil {
			return fmt.Errorf("retrieval: wal replay: %w", err)
		}
		if first != have {
			return fmt.Errorf("retrieval: wal replay: batch landed at %d, want %d", first, have)
		}
		replayed += len(sub)
		return nil
	})
	return replayed, err
}

// addDurable is Add's path when a WAL is attached: log, fsync, apply,
// ack — serialized so the logged First positions mirror the apply
// order exactly.
func (ix *Index) addDurable(docs []Document) (int, error) {
	ix.walMu.Lock()
	defer ix.walMu.Unlock()
	first := ix.sharded.NumDocs()
	payload, err := json.Marshal(WALBatch{First: first, Docs: docs})
	if err != nil {
		return 0, fmt.Errorf("retrieval: add: encoding wal record: %w", err)
	}
	if err := ix.wlog.Append(payload); err != nil {
		return 0, fmt.Errorf("retrieval: add: %w", err)
	}
	got, err := ix.applyBatch(docs)
	if err != nil {
		return 0, err
	}
	if got != first {
		return 0, fmt.Errorf("retrieval: add: batch landed at %d, logged at %d", got, first)
	}
	return first, nil
}

// Checkpoint persists the index to dir (SaveDir) and, if a WAL is
// attached, rotates it — atomically with respect to concurrent Adds, so
// no acked batch can fall between the snapshot and the rotation. After
// a checkpoint the WAL holds only writes newer than dir's manifest.
func (ix *Index) Checkpoint(dir string) error {
	if ix.sharded == nil {
		return fmt.Errorf("%w: use Save for single-stream persistence", ErrNotSharded)
	}
	ix.walMu.Lock()
	defer ix.walMu.Unlock()
	if err := ix.SaveDir(dir); err != nil {
		return err
	}
	if ix.wlog != nil {
		return ix.wlog.Rotate()
	}
	return nil
}

// WALAttached reports whether a write-ahead log is armed on this index.
func (ix *Index) WALAttached() bool { return ix.wlog != nil }

// ErrWALGone reports a TailWAL position the log no longer covers — the
// records before it were rotated away by a checkpoint. The caller (a
// replica tailing its primary) must re-pull a snapshot and tail from
// the snapshot's document count instead; httpapi surfaces it as 410
// Gone.
var ErrWALGone = fmt.Errorf("retrieval: wal no longer covers the requested position")

// TailWAL returns every logged document with global position >= from,
// in global order — the replica catch-up feed. A replica that holds
// [0, from) applies the returned batch and is caught up to this
// process's acked writes at the time of the call. An empty slice means
// already caught up; ErrWALGone means the log starts after from (a
// checkpoint rotated the needed records away) and the replica must
// re-snapshot.
func (ix *Index) TailWAL(from int) ([]Document, error) {
	if ix.sharded == nil {
		return nil, fmt.Errorf("%w: only sharded live indexes carry a WAL", ErrNotSharded)
	}
	if ix.wlog == nil {
		return nil, fmt.Errorf("retrieval: no WAL attached")
	}
	if from < 0 {
		return nil, fmt.Errorf("retrieval: wal tail from %d, want >= 0", from)
	}
	// Serialize with Adds and checkpoints so the log contents and the
	// document count are read as one consistent snapshot.
	ix.walMu.Lock()
	defer ix.walMu.Unlock()
	var out []Document
	start := -1 // first global the log covers
	err := ix.wlog.Replay(func(p []byte) error {
		var b WALBatch
		if err := json.Unmarshal(p, &b); err != nil {
			return fmt.Errorf("retrieval: wal tail: decoding batch: %w", err)
		}
		if start == -1 {
			start = b.First
		}
		if b.First+len(b.Docs) <= from {
			return nil
		}
		skip := 0
		if b.First < from {
			skip = from - b.First
		}
		out = append(out, b.Docs[skip:]...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Coverage check: the log holds [start, start+total). A caller
	// behind start needs records a checkpoint already rotated away.
	if start == -1 {
		// Empty log: only a caller already at our document count is
		// covered (everything else predates the last rotation).
		if from < ix.sharded.NumDocs() {
			return nil, ErrWALGone
		}
		return nil, nil
	}
	if from < start {
		return nil, ErrWALGone
	}
	return out, nil
}

// Epoch returns the index-wide mutation epoch of a sharded live index
// (see shard.Index.Epoch): it advances after every published Add batch
// and compaction swap. Immutable indexes are permanently at 0. Serving
// stacks surface it as the X-Index-Epoch header so clients can observe
// local index motion; note epochs are NOT comparable across processes —
// compaction timing differs — so replication compares (Generation,
// NumDocs) instead.
func (ix *Index) Epoch() uint64 {
	if ix.sharded == nil {
		return 0
	}
	return ix.sharded.Epoch()
}

// Generation returns the manifest generation of the newest durable
// checkpoint of a sharded live index (see shard.Index.Generation);
// 0 for immutable indexes and for sharded indexes never saved.
func (ix *Index) Generation() uint64 {
	if ix.sharded == nil {
		return 0
	}
	return ix.sharded.Generation()
}

// SaveShardDir exports one shard of a sharded index as a standalone
// 1-shard index directory — manifest, segments, and the text layer —
// ready for a cluster node to Open and serve (see shard.SaveShardDir
// for the exactness guarantees). SaveShardDirs exports every shard.
func (ix *Index) SaveShardDir(s int, dir string) error {
	if ix.sharded == nil {
		return fmt.Errorf("%w: only sharded indexes export per-shard", ErrNotSharded)
	}
	if err := ix.sharded.SaveShardDir(s, dir); err != nil {
		return err
	}
	return ix.writeTextMeta(dir)
}

// SaveShardDirs exports every shard of the index under dir: shard s
// lands in dir/shard-<s>. The exports together hold exactly the
// index's corpus, and a router fanning over them merges to the same
// results this index serves (bitwise).
func (ix *Index) SaveShardDirs(dir string) error {
	if ix.sharded == nil {
		return fmt.Errorf("%w: only sharded indexes export per-shard", ErrNotSharded)
	}
	for s := 0; s < ix.sharded.NumShards(); s++ {
		if err := ix.SaveShardDir(s, shardDirName(dir, s)); err != nil {
			return err
		}
	}
	return nil
}

// shardDirName names shard s's export directory under dir.
func shardDirName(dir string, s int) string {
	return fmt.Sprintf("%s/shard-%d", dir, s)
}

// NumShards returns the shard count of a sharded index (1 for
// immutable indexes, which are a single partition by construction).
func (ix *Index) NumShards() int {
	if ix.sharded == nil {
		return 1
	}
	return ix.sharded.NumShards()
}
