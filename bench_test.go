package repro

// One benchmark per paper artifact (table, figure, or theorem-shaped
// claim), as indexed in DESIGN.md §11. Each benchmark runs the scaled-down
// configuration of the corresponding experiment so `go test -bench=.`
// finishes in minutes; `cmd/lsibench` runs the full paper-scale versions.
// b.ReportMetric attaches the headline quantity of each experiment so a
// bench run doubles as a results summary.

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/experiments"
	"repro/internal/lsi"
	"repro/internal/par"
	"repro/internal/randproj"
	"repro/internal/sparse"
	"repro/internal/svd"
	"repro/internal/topk"
)

// BenchmarkTable1AngleStats regenerates the paper's Section 4 table
// (intratopic/intertopic angle statistics, original vs LSI space).
func BenchmarkTable1AngleStats(b *testing.B) {
	cfg := experiments.SmallTable1Config()
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LSIIntra.Mean, "intra-rad")
	b.ReportMetric(last.LSIInter.Mean, "inter-rad")
}

// BenchmarkTheorem2Skew validates Theorem 2 (0-separable ⇒ near-0-skewed).
func BenchmarkTheorem2Skew(b *testing.B) {
	cfg := experiments.SmallTheorem2Config()
	var last *experiments.Theorem2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTheorem2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].LSISkew, "skew")
}

// BenchmarkTheorem3EpsilonSweep validates Theorem 3 (skew = O(ε)).
func BenchmarkTheorem3EpsilonSweep(b *testing.B) {
	cfg := experiments.SmallTheorem3Config()
	var last *experiments.Theorem3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTheorem3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].LSISkew, "skew-at-max-eps")
}

// BenchmarkLemma1Perturbation validates the invariant-subspace stability
// lemma.
func BenchmarkLemma1Perturbation(b *testing.B) {
	cfg := experiments.DefaultLemma1Config()
	cfg.Epsilons = []float64{0.01, 0.05}
	cfg.Trials = 2
	var last *experiments.Lemma1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLemma1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].Ratio, "Gnorm-per-eps")
}

// BenchmarkJLDistortion validates Lemma 2 (Johnson–Lindenstrauss).
func BenchmarkJLDistortion(b *testing.B) {
	cfg := experiments.SmallJLConfig()
	var last *experiments.JLResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunJL(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].Report.DistanceRatio.Std, "dist-ratio-std")
}

// BenchmarkTheorem5TwoStep validates the two-step residual bound.
func BenchmarkTheorem5TwoStep(b *testing.B) {
	cfg := experiments.SmallTheorem5Config()
	var last *experiments.Theorem5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTheorem5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].RecoveredFrac, "recovered-frac")
}

// BenchmarkLSIFullSVD times the paper's direct-LSI cost model — a full SVD
// of the term-document matrix, the O(mnc) side of the Section 5 cost
// comparison.
func BenchmarkLSIFullSVD(b *testing.B) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 100, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 400, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	ad := corpus.TermDocMatrix(c, corpus.CountWeighting).ToDense()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svd.Decompose(ad); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSIDirect times truncated rank-k Lanczos on the sparse matrix —
// the modern direct baseline (already below the paper's O(mnc) accounting).
func BenchmarkLSIDirect(b *testing.B) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 100, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 400, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svd.Lanczos(a, 10, svd.LanczosOptions{
			Reorthogonalize: true, Rng: rand.New(rand.NewSource(7)),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSITwoStep times the two-step method on the same matrix — the
// O(ml(l+c)) side.
func BenchmarkLSITwoStep(b *testing.B) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 100, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 400, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := randproj.NewTwoStep(a, 10, 80, randproj.TwoStepOptions{Seed: 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynonymy regenerates the Section 4 synonymy analysis.
func BenchmarkSynonymy(b *testing.B) {
	cfg := experiments.SmallSynonymyConfig()
	var last *experiments.SynonymyResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSynonymy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Pairs[0].LSICosine, "lsi-cos")
}

// BenchmarkTheorem6Graph validates the graph-model discovery theorem.
func BenchmarkTheorem6Graph(b *testing.B) {
	cfg := experiments.SmallTheorem6Config()
	var last *experiments.Theorem6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTheorem6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].MeanAccuracy, "accuracy")
}

// BenchmarkRetrievalQuality regenerates the LSI-vs-VSM synonymy comparison.
func BenchmarkRetrievalQuality(b *testing.B) {
	cfg := experiments.SmallRetrievalConfig()
	var last *experiments.RetrievalResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRetrieval(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LSIMAP-last.VSMMAP, "map-gain")
}

// BenchmarkCollabFilter regenerates the Section 6 collaborative-filtering
// comparison.
func BenchmarkCollabFilter(b *testing.B) {
	cfg := experiments.SmallCFConfig()
	var last *experiments.CFResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCF(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[0].LSIRecall-last.Rows[0].PopRecall, "recall-gain")
}

// BenchmarkStyleDegradation runs the Definition 3 style-strength sweep.
func BenchmarkStyleDegradation(b *testing.B) {
	cfg := experiments.SmallStyleConfig()
	var last *experiments.StyleResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunStyle(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].LSISkew, "skew-at-max-strength")
}

// BenchmarkSampling runs the §5 sampling-vs-projection comparison.
func BenchmarkSampling(b *testing.B) {
	cfg := experiments.SmallSamplingConfig()
	var last *experiments.SamplingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSampling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].EnergyFrac, "proj-energy-frac")
}

// BenchmarkPolysemy runs the polysemy open-question experiment.
func BenchmarkPolysemy(b *testing.B) {
	cfg := experiments.SmallPolysemyConfig()
	var last *experiments.PolysemyResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunPolysemy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Terms[0].ContextPrecisionA, "ctx-precision")
}

// BenchmarkMixtureExtension runs the multi-topic extension experiment.
func BenchmarkMixtureExtension(b *testing.B) {
	cfg := experiments.SmallMixtureConfig()
	var last *experiments.MixtureResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMixture(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Correlation, "overlap-corr")
}

// BenchmarkSVDEngines compares the SVD engines on a fixed corpus matrix —
// the ablation behind the engine choice in DESIGN.md §12.
func BenchmarkSVDEngines(b *testing.B) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 5, TermsPerTopic: 40, Epsilon: 0.05, MinLen: 40, MaxLen: 80,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 150, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ad := a.ToDense()
	b.Run("golub-reinsch-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svd.Decompose(ad); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jacobi-dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svd.Jacobi(ad); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lanczos-k5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svd.Lanczos(a, 5, svd.LanczosOptions{
				Reorthogonalize: true, Rng: rand.New(rand.NewSource(7)),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("randomized-k5", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := svd.Randomized(a, 5, svd.RandomizedOptions{
				Rng: rand.New(rand.NewSource(7)),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLanczosDimAblation reruns the Krylov-dimension ablation.
func BenchmarkLanczosDimAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunLanczosDimAblation(17); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRandomizedParamAblation reruns the randomized-SVD parameter
// ablation.
func BenchmarkRandomizedParamAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunRandomizedParamAblation(17); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeightingAblation reruns the §2 weighting-choice ablation.
func BenchmarkWeightingAblation(b *testing.B) {
	cfg := experiments.SmallTable1Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunWeightingAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures end-to-end LSI index construction at the
// paper's matrix shape (2000×1000 scaled to 1/4 size for bench time).
func BenchmarkIndexBuild(b *testing.B) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 20, TermsPerTopic: 25, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 250, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lsi.Build(a, 20, lsi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchQueries builds an index over a paper-scale corpus plus a
// batch of 64 full-document queries for the serial/parallel throughput
// pair below.
func benchBatchQueries(b *testing.B) (*lsi.Index, [][]float64) {
	b.Helper()
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 50, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 2000, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ix, err := lsi.Build(a, 10, lsi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = a.Col(i % a.Cols())
	}
	return ix, queries
}

// BenchmarkBatchQueriesSerial times folding + cosine ranking a 64-query
// batch with the parallel substrate pinned to one worker — the serial
// baseline for the pair.
func BenchmarkBatchQueriesSerial(b *testing.B) {
	ix, queries := benchBatchQueries(b)
	old := par.SetMaxProcs(1)
	defer par.SetMaxProcs(old)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchBatch(queries, 10)
	}
}

// BenchmarkBatchQueriesParallel is the same batch with query fan-out
// enabled; the speedup over BenchmarkBatchQueriesSerial is the serving-
// path headline for the perf trajectory.
func BenchmarkBatchQueriesParallel(b *testing.B) {
	ix, queries := benchBatchQueries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchBatch(queries, 10)
	}
}

// benchQueryIndex builds the 500-document index the single-query latency
// benchmarks run against.
func benchQueryIndex(b *testing.B) (*lsi.Index, *sparse.CSR) {
	b.Helper()
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 50, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 500, rand.New(rand.NewSource(99)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ix, err := lsi.Build(a, 10, lsi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return ix, a
}

// BenchmarkQueryLatency measures single-query latency against a built
// index: dense fold-in + fused-dot ranking + bounded top-10 selection.
func BenchmarkQueryLatency(b *testing.B) {
	ix, a := benchQueryIndex(b)
	q := a.Col(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

// BenchmarkQueryLatencySparse is the text-query shape of the latency
// benchmark: a short sparse query (a handful of terms) folded in through
// the sparse kernel, never materializing a vocabulary-length vector.
func BenchmarkQueryLatencySparse(b *testing.B) {
	ix, _ := benchQueryIndex(b)
	terms := []int{3, 57, 211, 402}
	weights := []float64{1, 2, 1, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchSparse(terms, weights, 10)
	}
}

// BenchmarkTopKSelection isolates the selection stage: bounded min-heap
// top-10 versus sorting all m scored matches — the m·log m term the heap
// removes from every query.
func BenchmarkTopKSelection(b *testing.B) {
	const m = 100000
	src := make([]topk.Match, m)
	rng := rand.New(rand.NewSource(17))
	for i := range src {
		src[i] = topk.Match{Doc: i, Score: rng.Float64()}
	}
	scratch := make([]topk.Match, m)
	b.Run("heap-top10", func(b *testing.B) {
		var h topk.Heap
		dst := make([]topk.Match, 0, 10)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Reset(10)
			for _, m := range src {
				h.Offer(m)
			}
			dst = h.AppendSorted(dst[:0])
		}
	})
	b.Run("full-sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(scratch, src)
			topk.SortMatches(scratch)
		}
	})
}
