# Single source of truth for the commands CI runs — `make <target>` locally
# reproduces the corresponding workflow job exactly.

GO ?= go

# Base ref for the perf-regression gate (CI passes the PR's base branch).
BASE ?= origin/main

.PHONY: all build test lint vet fmt-check docs-check race bench-smoke bench bench-record bench-gate fuzz-short serve-smoke load-smoke cluster-smoke chaos-smoke ann-smoke quant-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check docs-check

# Godoc-coverage gate: go vet plus a doc-comment check over every
# exported identifier of the operator-facing packages (retrieval, its
# cache/shard subsystems, the HTTP layer, internal/metrics).
docs-check:
	sh scripts/docs_check.sh

# Race-detect the concurrency-bearing packages: the worker pool, the
# numeric + retrieval layers built on it, the public API + HTTP layer
# (including the admission-gate degradation tests), the WAL, the
# cluster router/replica (hedged fan-out, failover, breakers, the chaos
# suite), the fault-injection harness, the metrics registry, the IVF
# ANN quantizer and the int8 scoring shadow (both trained and probed
# concurrently by the compactor and searches), the fidelity metrics,
# and the load generator.
race:
	$(GO) test -race ./internal/par ./internal/sparse ./internal/mat ./internal/topk ./internal/lsi ./internal/vsm ./internal/segment ./internal/ivf ./internal/quant ./internal/eval ./internal/metrics ./internal/faultinject ./retrieval ./retrieval/cache ./retrieval/shard ./retrieval/wal ./retrieval/cluster ./retrieval/httpapi ./cmd/lsiserve ./cmd/lsiload

# Build the serving daemon, boot it on a free port, and curl the health
# and search endpoints — fails on any non-200.
serve-smoke:
	$(GO) build -o bin/lsiserve ./cmd/lsiserve
	sh scripts/serve_smoke.sh bin/lsiserve

# Boot lsiserve as a sharded live index and drive a short closed-loop
# lsiload Zipf trace against it; fails on any failed (non-2xx/429)
# request or a dead /metrics endpoint. The latency summary lands in
# load-smoke.json so CI can archive the under-load quantiles per commit.
load-smoke:
	$(GO) build -o bin/lsiserve ./cmd/lsiserve
	$(GO) build -o bin/lsiload ./cmd/lsiload
	sh scripts/load_smoke.sh bin/lsiserve bin/lsiload

# Stand up a 3-node local cluster (shard export + WAL'd nodes + router
# over a generated manifest) and drive an lsiload Zipf trace through
# the router; fails on any failed request, a degraded quorum, or
# missing lsi_cluster_* metrics. The summary lands in
# cluster-smoke.json (archived by CI).
cluster-smoke:
	$(GO) build -o bin/lsiserve ./cmd/lsiserve
	$(GO) build -o bin/lsiload ./cmd/lsiload
	sh scripts/cluster_smoke.sh bin/lsiserve bin/lsiload

# Chaos smoke: the 3-node cluster + router with lsiserve -chaos armed,
# driven by lsiload -faults on a schedule that flaps one node and
# partitions another. lsiload gates the resilience invariants (no stuck
# request, acked-write ledger exact); the script asserts the faults
# landed, the cluster healed, and the breaker/health metrics are live.
# The summary lands in chaos-smoke.json (archived by CI).
chaos-smoke:
	$(GO) build -o bin/lsiserve ./cmd/lsiserve
	$(GO) build -o bin/lsiload ./cmd/lsiload
	sh scripts/chaos_smoke.sh bin/lsiserve bin/lsiload

# Compile-and-run guard for every benchmark: one iteration each with
# allocation reporting, no tests. The output lands in bench-smoke.txt so
# CI can archive the per-commit perf trajectory as an artifact.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem -run='^$$' ./... > bench-smoke.txt 2>&1 || { cat bench-smoke.txt; exit 1; }
	cat bench-smoke.txt

# Full benchmark sweep (slow; for perf-trajectory measurements).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# Append a labeled, machine-readable benchmark run to BENCH_3.json.
bench-record:
	sh scripts/bench_record.sh -l "$(LABEL)"

# Perf-regression gate: benchmark the tier-1 query hot-path subset on
# HEAD and on the merge-base with $(BASE), compare medians, and fail on
# a >20% ns/op regression or any allocs/op growth. The report lands in
# bench-gate.txt (archived by CI as an artifact).
bench-gate:
	sh scripts/bench_gate.sh -r "$(BASE)" -o bench-gate.txt

# Sample a balanced >=100k-document corpus from the paper's model with
# corpusgen, index it with the IVF ANN tier, and gate recall@10 >= 0.95
# at nprobe=8 plus ANN-faster-than-exhaustive. The measured summary
# lands in ann-smoke.json (archived by CI).
ann-smoke:
	$(GO) build -o bin/corpusgen ./cmd/corpusgen
	$(GO) build -o bin/annsmoke ./cmd/annsmoke
	sh scripts/ann_smoke.sh bin/corpusgen bin/annsmoke

# Sample a balanced >=100k-document corpus from the paper's model with
# corpusgen, index it with the int8 quantized scoring tier, and gate
# top-10 overlap >= 0.99 at rank 64, beta=64 plus quantized-faster-than-exact.
# The measured summary lands in quant-smoke.json (archived by CI).
quant-smoke:
	$(GO) build -o bin/corpusgen ./cmd/corpusgen
	$(GO) build -o bin/quantsmoke ./cmd/quantsmoke
	sh scripts/quant_smoke.sh bin/corpusgen bin/quantsmoke

# Short local mirror of the nightly fuzz job: 30s per fuzz target (the
# manifest loader, the query-cache key normalizer, the WAL record
# decoder, the IVF postings decoder, and the quantized sidecar decoder).
fuzz-short:
	$(GO) test -run='^$$' -fuzz=FuzzParseManifest -fuzztime=30s ./retrieval/shard
	$(GO) test -run='^$$' -fuzz=FuzzQueryKeyNormalizer -fuzztime=30s ./retrieval/cache
	$(GO) test -run='^$$' -fuzz=FuzzNormalizeQuery -fuzztime=30s ./retrieval/cache
	$(GO) test -run='^$$' -fuzz=FuzzScanRecords -fuzztime=30s ./retrieval/wal
	$(GO) test -run='^$$' -fuzz=FuzzDecodePostings -fuzztime=30s ./internal/ivf
	$(GO) test -run='^$$' -fuzz=FuzzDecodeQuant -fuzztime=30s ./internal/quant
