# Single source of truth for the commands CI runs — `make <target>` locally
# reproduces the corresponding workflow job exactly.

GO ?= go

.PHONY: all build test lint vet fmt-check race bench-smoke bench serve-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check

# Race-detect the concurrency-bearing packages: the worker pool, the
# numeric + retrieval layers built on it, and the public API + HTTP layer.
race:
	$(GO) test -race ./internal/par ./internal/sparse ./internal/mat ./internal/lsi ./internal/vsm ./retrieval ./retrieval/httpapi ./cmd/lsiserve

# Build the serving daemon, boot it on a free port, and curl the health
# and search endpoints — fails on any non-200.
serve-smoke:
	$(GO) build -o bin/lsiserve ./cmd/lsiserve
	sh scripts/serve_smoke.sh bin/lsiserve

# Compile-and-run guard for every benchmark: one iteration each, no tests.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Full benchmark sweep (slow; for perf-trajectory measurements).
bench:
	$(GO) test -bench=. -run='^$$' ./...
