# Single source of truth for the commands CI runs — `make <target>` locally
# reproduces the corresponding workflow job exactly.

GO ?= go

.PHONY: all build test lint vet fmt-check race bench-smoke bench

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails (and lists the offenders) if any file needs gofmt.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

lint: vet fmt-check

# Race-detect the concurrency-bearing packages: the worker pool and the
# numeric + retrieval layers built on it.
race:
	$(GO) test -race ./internal/par ./internal/sparse ./internal/mat ./internal/lsi ./internal/vsm

# Compile-and-run guard for every benchmark: one iteration each, no tests.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Full benchmark sweep (slow; for perf-trajectory measurements).
bench:
	$(GO) test -bench=. -run='^$$' ./...
