// Topic recovery: reruns the paper's own Section 4 experiment — generate a
// corpus from the probabilistic model (20 topics, 2000 terms, 1000
// documents, 0.05-separable) and measure how the rank-20 LSI space
// collapses intratopic angles while keeping intertopic pairs orthogonal.
// Pass -small for a fast scaled-down run.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "run the scaled-down configuration")
	flag.Parse()

	cfg := experiments.DefaultTable1Config()
	if *small {
		cfg = experiments.SmallTable1Config()
	}
	fmt.Printf("Generating %d documents from a %d-topic, %d-term, %.2f-separable model...\n",
		cfg.NumDocs, cfg.Corpus.NumTopics, cfg.Corpus.NumTerms(), cfg.Corpus.Epsilon)
	res, err := experiments.RunTable1(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(res.Table())
	fmt.Println("Compare with the paper: intratopic averages drop from ≈1.09 rad to ≈0.02 rad,")
	fmt.Println("while intertopic averages stay ≈1.55 rad — LSI discovers the topics.")
}
