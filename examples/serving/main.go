// Serving: the production-shaped lifecycle of the public retrieval API —
// build an index, save it to disk as a self-contained file, load it back
// with no access to the corpus, and serve it over HTTP/JSON, querying it
// like a client of cmd/lsiserve would.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/retrieval"
	"repro/retrieval/httpapi"
)

func main() {
	// 1. Build a rank-3 LSI index over the demo corpus.
	index, err := retrieval.Build(retrieval.DemoCorpus(), retrieval.WithRank(3))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Save it: wire format v2 bundles the vocabulary, weighting, and
	// document IDs, so the file is all a server needs.
	dir, err := os.MkdirTemp("", "lsi-serving")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "demo.idx")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := index.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("Saved self-contained index: %s (%d bytes)\n", filepath.Base(path), fi.Size())

	// 3. Load it back — text queries work without the corpus.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := retrieval.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	stats := loaded.Stats()
	fmt.Printf("Loaded: backend=%s docs=%d terms=%d rank=%d textQueries=%v\n",
		stats.Backend, stats.NumDocs, stats.NumTerms, stats.Rank, stats.TextQueries)

	// 4. Serve it over HTTP on a random port (what lsiserve does).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.NewHandler(loaded, httpapi.Options{})}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	base := fmt.Sprintf("http://%s", ln.Addr())

	// 5. Query it like a client: the synonymy effect over the wire.
	resp, err := http.Post(base+"/v1/search", "application/json",
		strings.NewReader(`{"query":"car engine","topN":4}`))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var sr httpapi.SearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPOST /v1/search {\"query\":\"car engine\"} → %s\n", resp.Status)
	for _, r := range sr.Results {
		fmt.Printf("  %-8s score=%.3f\n", r.ID, r.Score)
	}
	fmt.Println("\ndemo-01 and demo-02 never contain \"car\" — the LSI space")
	fmt.Println("retrieves them anyway, served from a file via plain HTTP.")
}
