// Polysemy: probes the paper's Section 6 open question — "does LSI address
// polysemy?" — by planting terms that two topics both generate (the "bank"
// of finance and rivers). The experiment shows LSI represents such a term
// as a mixture between its two topic directions, so bare queries are
// ambiguous, while a single context term disambiguates retrieval.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "run the scaled-down configuration")
	flag.Parse()

	cfg := experiments.DefaultPolysemyConfig()
	if *small {
		cfg = experiments.SmallPolysemyConfig()
	}
	fmt.Printf("Planting %d polysemous terms (each shared by two of %d topics, mass %.2f)...\n\n",
		cfg.NumShared, cfg.Corpus.NumTopics, cfg.ShareMass)
	res, err := experiments.RunPolysemy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
}
