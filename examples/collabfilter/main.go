// Collaborative filtering: the Section 6 application — consumers × products
// instead of terms × documents. A latent-preference generator produces
// implicit-feedback data with hidden taste groups; the rank-k LSI
// recommender transfers weight to unseen same-group items and beats the
// popularity baseline on held-out interactions.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "run the scaled-down configuration")
	flag.Parse()

	cfg := experiments.DefaultCFConfig()
	if *small {
		cfg = experiments.SmallCFConfig()
	}
	fmt.Printf("Generating %d users × %d items with %d hidden taste groups...\n\n",
		cfg.Users, cfg.Items, cfg.Groups)
	res, err := experiments.RunCF(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
}
