// Example sharding walks the sharded live index through its whole
// lifecycle: build across shards, append documents while serving, watch
// segments seal, compact them, persist the index to a directory, and
// reopen it still live.
//
//	go run ./examples/sharding
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/retrieval"
)

func show(label string, ix *retrieval.Index) {
	st := ix.Stats()
	fmt.Printf("%-28s %3d docs | %d shards, %d segments (%d live, %d sealed, %d compacted) | ready=%v\n",
		label, st.NumDocs, st.Shards, st.Segments, st.LiveSegments, st.SealedPending, st.CompactedSegments, st.Ready)
}

func main() {
	ctx := context.Background()

	// 1. Build a 3-shard live index. Auto-compaction is off so the
	// lifecycle states are visible step by step; production leaves it on.
	ix, err := retrieval.Build(retrieval.DemoCorpus(),
		retrieval.WithRank(3),
		retrieval.WithShards(3),
		retrieval.WithSealEvery(4),
		retrieval.WithAutoCompact(false),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	show("built:", ix)

	// 2. Live appends: each document folds into its shard's live segment
	// and is searchable immediately — no rebuild.
	newDocs := []retrieval.Document{
		{ID: "ev-1", Text: "electric cars with battery packs replace the combustion engine"},
		{ID: "ev-2", Text: "charging an electric automobile battery at home"},
		{ID: "probe-1", Text: "the space probe photographed the rings of saturn"},
		{ID: "bread-1", Text: "kneading dough for sourdough bread baking"},
		{ID: "ev-3", Text: "battery range of the new electric car"},
		{ID: "probe-2", Text: "a telescope on the probe measured the galaxy"},
	}
	for _, d := range newDocs {
		if _, err := ix.Add(ctx, []retrieval.Document{d}); err != nil {
			log.Fatal(err)
		}
	}
	show("after 6 live appends:", ix)

	res, err := ix.Search(ctx, "electric battery car", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  search \"electric battery car\":")
	for _, r := range res {
		fmt.Printf("    %-8s score=%.4f\n", r.ID, r.Score)
	}

	// 3. Keep appending past the seal threshold: live segments freeze
	// into sealed ones, waiting for the compactor.
	for i := 0; i < 8; i++ {
		d := retrieval.Document{Text: "another document about car engines and repair manuals"}
		if _, err := ix.Add(ctx, []retrieval.Document{d}); err != nil {
			log.Fatal(err)
		}
	}
	show("after 8 more (sealed):", ix)

	// 4. Compact: sealed segments are rebuilt from their raw documents
	// with a fresh two-step randomized decomposition and swapped in
	// atomically. (With WithAutoCompact(true) — the default — a
	// background goroutine does this on its own.)
	if _, err := ix.Compact(); err != nil {
		log.Fatal(err)
	}
	show("after compaction:", ix)

	// 5. Persist the whole sharded index to a directory and reopen it:
	// same results, still accepting appends.
	dir := filepath.Join(os.TempDir(), "lsi-sharded-example")
	defer os.RemoveAll(dir)
	if err := ix.SaveDir(dir); err != nil {
		log.Fatal(err)
	}
	re, err := retrieval.Open(dir, retrieval.WithAutoCompact(false))
	if err != nil {
		log.Fatal(err)
	}
	defer re.Close()
	show("reopened from "+dir+":", re)

	if _, err := re.Add(ctx, []retrieval.Document{{ID: "post-reload", Text: "fresh pasta recipe with tomato"}}); err != nil {
		log.Fatal(err)
	}
	res, err = re.Search(ctx, "pasta recipe", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  search \"pasta recipe\" after reload+append:")
	for _, r := range res {
		fmt.Printf("    %-12s score=%.4f\n", r.ID, r.Score)
	}
}
