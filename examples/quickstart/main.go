// Quickstart: index a handful of text documents through the public
// retrieval package and query them, demonstrating the synonymy behaviour
// that motivates the paper — a query for "car" retrieves "automobile"
// documents under LSI but not under the conventional vector-space model.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/retrieval"
)

func main() {
	// LSI merges synonyms through shared context: the "car" and
	// "automobile" documents never use each other's word, but they share
	// engine / mechanic / dealership / driver vocabulary, so the dominant
	// singular direction of the vehicle topic loads on both.
	docs := []string{
		"The car dealership sells cars, and the mechanic checks every engine before delivery.", // 0: car
		"An automobile dealership services automobile engines, brakes and transmissions.",      // 1: automobile
		"The automobile mechanic repaired the engine and adjusted the brakes for the driver.",  // 2: automobile
		"The car driver praised the mechanic after the engine repair and brake service.",       // 3: car
		"Astronomers observed the galaxy through a telescope and charted the stars.",           // 4: space
		"The telescope revealed stars and planets scattered across the galaxy.",                // 5: space
		"A starship in the novel travels between stars, planets and distant galaxies.",         // 6: space
		"Fresh basil, olive oil and garlic simmer into a fragrant pasta sauce.",                // 7: cooking
		"The pasta recipe calls for garlic, olive oil and a slow-simmered tomato sauce.",       // 8: cooking
	}

	// One constructor per system: the same corpus behind the same
	// Retriever interface, differing only in backend. Tokenization,
	// stopword removal, stemming, and the vocabulary are handled inside.
	index, err := retrieval.BuildTexts(docs, retrieval.WithRank(3))
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := retrieval.BuildTexts(docs, retrieval.WithBackend(retrieval.BackendVSM))
	if err != nil {
		log.Fatal(err)
	}

	// Query for "car": documents 1 and 2 never use the word.
	ctx := context.Background()
	fmt.Println("Query: \"car\"")
	fmt.Println("\nLSI ranking (semantic):")
	results, err := index.Search(ctx, "car", 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range results {
		fmt.Printf("  doc %d  score=%.3f  %s\n", m.Doc, m.Score, docs[m.Doc])
	}
	fmt.Println("\nVector-space ranking (literal):")
	results, err = baseline.Search(ctx, "car", 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range results {
		fmt.Printf("  doc %d  score=%.3f  %s\n", m.Doc, m.Score, docs[m.Doc])
	}
	fmt.Println("\nNote how LSI surfaces the \"automobile\" documents that literal")
	fmt.Println("term matching cannot reach — the synonymy effect of Section 4.")
}
