// Synonymy: plants pairs of terms with identical co-occurrence patterns
// (via a stochastic style matrix, Definition 3) and verifies the paper's
// Section 4 predictions: the difference of the two term axes carries almost
// no singular mass, rank-k LSI projects it out, and the two synonyms map to
// nearly parallel vectors in the LSI space.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "run the scaled-down configuration")
	flag.Parse()

	cfg := experiments.DefaultSynonymyConfig()
	if *small {
		cfg = experiments.SmallSynonymyConfig()
	}
	fmt.Printf("Planting %d synonym pairs in a %d-topic corpus of %d documents...\n\n",
		cfg.NumPairs, cfg.Corpus.NumTopics, cfg.NumDocs)
	res, err := experiments.RunSynonymy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table())
}
