// Random projection: demonstrates Section 5 — Johnson–Lindenstrauss
// distance preservation (Lemma 2), the Theorem 5 two-step residual bound,
// and the running-time advantage of projecting before LSI.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "run the scaled-down configuration")
	flag.Parse()

	jlCfg := experiments.DefaultJLConfig()
	t5Cfg := experiments.DefaultTheorem5Config()
	rtCfg := experiments.DefaultRuntimeConfig()
	if *small {
		jlCfg = experiments.SmallJLConfig()
		t5Cfg = experiments.SmallTheorem5Config()
		rtCfg.Corpora = rtCfg.Corpora[:2]
		rtCfg.NumDocs = rtCfg.NumDocs[:2]
	}

	jl, err := experiments.RunJL(jlCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(jl.Table())

	t5, err := experiments.RunTheorem5(t5Cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t5.Table())

	rt, err := experiments.RunRuntime(rtCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rt.Table())
}
