package repro

// Tier-1 test for the CI perf-regression gate: scripts/bench_gate.sh in
// compare mode must pass on parity, fail on a seeded ns/op regression
// past the threshold, fail on any allocs/op growth, and fail when a
// gated benchmark disappears — demonstrating the acceptance criterion
// without running real benchmarks (run mode is the same comparator fed
// by two `go test -bench` invocations).

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// benchLines fabricates a 3-run `go test -bench` output for one
// benchmark in one package.
func benchLines(pkg, name string, ns [3]int, allocs int) string {
	var b strings.Builder
	b.WriteString("pkg: " + pkg + "\n")
	for _, n := range ns {
		b.WriteString(name + "-4 \t 100000\t ")
		b.WriteString(strings.TrimSpace(strings.Join([]string{itoa(n), "ns/op\t 48 B/op\t", itoa(allocs), "allocs/op"}, " ")))
		b.WriteString("\n")
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func runGate(t *testing.T, dir, base, head string) (int, string) {
	t.Helper()
	basePath := filepath.Join(dir, "base.txt")
	headPath := filepath.Join(dir, "head.txt")
	report := filepath.Join(dir, "report.txt")
	if err := os.WriteFile(basePath, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(headPath, []byte(head), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("sh", "scripts/bench_gate.sh", "-a", basePath, "-b", headPath, "-o", report)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("bench_gate.sh did not run: %v\n%s", err, out)
	return -1, ""
}

func TestBenchGateVerdicts(t *testing.T) {
	base := benchLines("repro", "BenchmarkQueryLatency", [3]int{11000, 11200, 10900}, 1) +
		benchLines("repro/internal/vsm", "BenchmarkSearchShortQuery", [3]int{1500, 1520, 1480}, 1)

	cases := []struct {
		name     string
		head     string
		wantExit int
		wantIn   string
	}{
		{
			// Within threshold both ways: +4.5% on one, a speedup on the other.
			name: "parity passes",
			head: benchLines("repro", "BenchmarkQueryLatency", [3]int{11500, 11400, 11600}, 1) +
				benchLines("repro/internal/vsm", "BenchmarkSearchShortQuery", [3]int{1400, 1390, 1410}, 1),
			wantExit: 0,
			wantIn:   "bench_gate: PASS",
		},
		{
			name: "seeded ns/op regression fails",
			head: benchLines("repro", "BenchmarkQueryLatency", [3]int{15000, 15200, 14900}, 1) +
				benchLines("repro/internal/vsm", "BenchmarkSearchShortQuery", [3]int{1500, 1510, 1490}, 1),
			wantExit: 1,
			wantIn:   "FAIL (ns/op",
		},
		{
			name: "one noisy outlier run does not fail the median",
			head: benchLines("repro", "BenchmarkQueryLatency", [3]int{11000, 30000, 10900}, 1) +
				benchLines("repro/internal/vsm", "BenchmarkSearchShortQuery", [3]int{1500, 1510, 1490}, 1),
			wantExit: 0,
			wantIn:   "bench_gate: PASS",
		},
		{
			name: "any allocs/op growth fails",
			head: benchLines("repro", "BenchmarkQueryLatency", [3]int{11000, 11100, 10900}, 2) +
				benchLines("repro/internal/vsm", "BenchmarkSearchShortQuery", [3]int{1500, 1510, 1490}, 1),
			wantExit: 1,
			wantIn:   "FAIL (allocs/op 1 -> 2)",
		},
		{
			name:     "disappeared benchmark fails",
			head:     benchLines("repro", "BenchmarkQueryLatency", [3]int{11000, 11100, 10900}, 1),
			wantExit: 1,
			wantIn:   "FAIL (benchmark disappeared)",
		},
		{
			name: "new benchmark is not a regression",
			head: benchLines("repro", "BenchmarkQueryLatency", [3]int{11000, 11100, 10900}, 1) +
				benchLines("repro/internal/vsm", "BenchmarkSearchShortQuery", [3]int{1500, 1510, 1490}, 1) +
				benchLines("repro/retrieval", "BenchmarkCachedQueryHit", [3]int{230, 233, 229}, 1),
			wantExit: 0,
			wantIn:   "ok (new benchmark)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exit, out := runGate(t, t.TempDir(), base, tc.head)
			if exit != tc.wantExit {
				t.Fatalf("exit = %d, want %d\n%s", exit, tc.wantExit, out)
			}
			if !strings.Contains(out, tc.wantIn) {
				t.Fatalf("report missing %q:\n%s", tc.wantIn, out)
			}
		})
	}
}

func TestBenchGateInfraErrors(t *testing.T) {
	// Missing inputs and empty intersections are infrastructure errors
	// (exit 2), never silent passes.
	cmd := exec.Command("sh", "scripts/bench_gate.sh", "-a", "/nonexistent", "-b", "/nonexistent")
	if err := cmd.Run(); err == nil {
		t.Fatal("missing input files should not pass")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit = %v, want 2", err)
	}

	dir := t.TempDir()
	exit, out := runGate(t, dir, "no benchmarks here\n", "nothing here either\n")
	if exit != 2 {
		t.Fatalf("empty comparison: exit = %d, want 2\n%s", exit, out)
	}
}
