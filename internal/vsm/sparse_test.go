package vsm

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/par"
	"repro/internal/race"
	"repro/internal/sparse"
)

// skipUnderRace skips exact allocation-count assertions under -race: the
// instrumented runtime allocates inside sync.Pool.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
}

func TestSearchSparseUnsortedAndDuplicateTerms(t *testing.T) {
	ix, a := buildIndex(t)
	dense := ix.Search([]float64{0, 2, 0, 1}, 0)
	// Unsorted input must match the dense reference bitwise.
	unsorted := ix.SearchSparse([]int{3, 1}, []float64{1, 2}, 0)
	// Duplicate terms accumulate like q[t] += w does on the dense path.
	dup := ix.SearchSparse([]int{3, 1, 1}, []float64{1, 0.5, 1.5}, 0)
	for i := range dense {
		if dense[i] != unsorted[i] {
			t.Fatalf("unsorted result %d: %+v vs %+v", i, unsorted[i], dense[i])
		}
		if dense[i] != dup[i] {
			t.Fatalf("duplicate-term result %d: %+v vs %+v", i, dup[i], dense[i])
		}
	}
	// Inputs must come back untouched (normalization copies into scratch).
	terms := []int{3, 1}
	weights := []float64{1, 2}
	ix.SearchSparse(terms, weights, 0)
	if terms[0] != 3 || terms[1] != 1 || weights[0] != 1 || weights[1] != 2 {
		t.Fatalf("caller slices mutated: %v %v", terms, weights)
	}
	_ = a
}

// TestSearchSparseNoVocabularyDensify is the regression test for the old
// implementation's vocabulary-length allocation: on an index with a huge
// vocabulary, a short sparse query must allocate only the result slice —
// in particular, nothing proportional to the number of terms.
func TestSearchSparseNoVocabularyDensify(t *testing.T) {
	const bigVocab = 500000
	coo := sparse.NewCOO(bigVocab, 50)
	rng := rand.New(rand.NewSource(551))
	for d := 0; d < 50; d++ {
		for i := 0; i < 30; i++ {
			coo.Add(rng.Intn(bigVocab), d, 1+rng.Float64())
		}
	}
	// A handful of terms guaranteed to have postings.
	coo.Add(7, 3, 2)
	coo.Add(999, 3, 1)
	coo.Add(450001, 4, 3)
	ix := NewFromMatrix(coo.ToCSR())
	terms := []int{7, 999, 450001}
	weights := []float64{1, 2, 1}
	if res := ix.SearchSparse(terms, weights, 10); len(res) == 0 {
		t.Fatal("query found nothing; test corpus is wrong")
	}
	skipUnderRace(t)
	allocs := testing.AllocsPerRun(100, func() {
		ix.SearchSparse(terms, weights, 10)
	})
	// One allocation: the returned matches. A densifying implementation
	// would add a 4 MB []float64 per call.
	if allocs > 1 {
		t.Fatalf("SearchSparse allocated %v/op on a %d-term vocabulary, want <= 1", allocs, bigVocab)
	}
}

func vsmAllocIndex(t *testing.T) (*Index, []float64) {
	t.Helper()
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 4, TermsPerTopic: 20, Epsilon: 0.05, MinLen: 30, MaxLen: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(model, 100, rand.New(rand.NewSource(553)))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	return NewFromMatrix(a), a.Col(0)
}

func TestSearchAllocsOnlyResult(t *testing.T) {
	skipUnderRace(t)
	old := par.SetMaxProcs(1)
	defer par.SetMaxProcs(old)
	ix, q := vsmAllocIndex(t)
	for _, tc := range []struct {
		name string
		topN int
	}{{"top10", 10}, {"all", 0}} {
		t.Run(tc.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(200, func() { ix.Search(q, tc.topN) }); got != 1 {
				t.Fatalf("%v allocs/op, want 1 (the result slice only)", got)
			}
		})
	}
}

func TestAppendSearchZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	old := par.SetMaxProcs(1)
	defer par.SetMaxProcs(old)
	ix, q := vsmAllocIndex(t)
	dst := make([]Match, 0, ix.NumDocs())
	terms := make([]int, 0, 64)
	weights := make([]float64, 0, 64)
	for t2, w := range q {
		if w != 0 {
			terms = append(terms, t2)
			weights = append(weights, w)
		}
	}
	cases := []struct {
		name string
		run  func()
	}{
		{"AppendSearch/top10", func() { dst = ix.AppendSearch(dst[:0], q, 10) }},
		{"AppendSearch/all", func() { dst = ix.AppendSearch(dst[:0], q, 0) }},
		{"AppendSearchSparse/top10", func() { dst = ix.AppendSearchSparse(dst[:0], terms, weights, 10) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(200, tc.run); got != 0 {
				t.Fatalf("%v allocs/op, want 0 with a caller-provided buffer", got)
			}
		})
	}
}

func TestSearchBatchSparseMatchesSearchSparse(t *testing.T) {
	old := par.SetMaxProcs(4)
	t.Cleanup(func() { par.SetMaxProcs(old) })
	ix, _ := vsmAllocIndex(t)
	rng := rand.New(rand.NewSource(557))
	terms := make([][]int, 12)
	weights := make([][]float64, 12)
	for i := range terms {
		for j := 0; j < 5; j++ {
			terms[i] = append(terms[i], rng.Intn(ix.NumTerms()))
			weights[i] = append(weights[i], 1+rng.Float64())
		}
	}
	got := ix.SearchBatchSparse(terms, weights, 7)
	for i := range terms {
		want := ix.SearchSparse(terms[i], weights[i], 7)
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d matches, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d rank %d: batch %+v != serial %+v", i, j, got[i][j], want[j])
			}
		}
	}
}
