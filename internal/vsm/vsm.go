// Package vsm implements the conventional vector-space retrieval model —
// the baseline the paper says LSI improves on. Documents are the raw
// columns of the term-document matrix; retrieval ranks documents by cosine
// similarity computed through an inverted index, so query cost is
// proportional to the postings of the query's terms rather than to n·m.
//
// Because it matches terms literally, the model exhibits exactly the
// synonymy failure of the paper's introduction: a query using term t never
// retrieves documents that only use t's synonym. The retrieval experiments
// quantify that gap against LSI.
package vsm

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
	"repro/internal/sparse"
)

// posting is one (document, weight) pair in a term's postings list.
type posting struct {
	doc int
	w   float64
}

// Index is an inverted-file cosine retrieval index.
type Index struct {
	numTerms int
	numDocs  int
	postings [][]posting
	norms    []float64
}

// Match is one retrieval result.
type Match struct {
	Doc   int
	Score float64 // cosine similarity in term space
}

// NewFromMatrix builds the index from a term-document matrix (terms are
// rows, documents are columns), using the matrix entries as weights.
func NewFromMatrix(a *sparse.CSR) *Index {
	n, m := a.Dims()
	ix := &Index{
		numTerms: n,
		numDocs:  m,
		postings: make([][]posting, n),
		norms:    make([]float64, m),
	}
	for t := 0; t < n; t++ {
		a.RowIter(t, func(doc int, w float64) {
			ix.postings[t] = append(ix.postings[t], posting{doc: doc, w: w})
			ix.norms[doc] += w * w
		})
	}
	for d := range ix.norms {
		ix.norms[d] = math.Sqrt(ix.norms[d])
	}
	return ix
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return ix.numTerms }

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// DocFrequency returns the number of documents containing the term.
func (ix *Index) DocFrequency(term int) int {
	if term < 0 || term >= ix.numTerms {
		panic(fmt.Sprintf("vsm: term %d out of range [0,%d)", term, ix.numTerms))
	}
	return len(ix.postings[term])
}

// Search ranks documents by cosine similarity against a dense term-space
// query vector, returning the topN best (all if topN <= 0). Documents with
// zero overlap are omitted. Ties break by document ID.
func (ix *Index) Search(query []float64, topN int) []Match {
	if len(query) != ix.numTerms {
		panic(fmt.Sprintf("vsm: query length %d, want %d", len(query), ix.numTerms))
	}
	var qnorm float64
	scores := map[int]float64{}
	for t, qw := range query {
		if qw == 0 {
			continue
		}
		qnorm += qw * qw
		for _, p := range ix.postings[t] {
			scores[p.doc] += qw * p.w
		}
	}
	qnorm = math.Sqrt(qnorm)
	if qnorm == 0 {
		return nil
	}
	matches := make([]Match, 0, len(scores))
	for doc, dot := range scores {
		if ix.norms[doc] == 0 {
			continue
		}
		matches = append(matches, Match{Doc: doc, Score: dot / (qnorm * ix.norms[doc])})
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].Score != matches[b].Score {
			return matches[a].Score > matches[b].Score
		}
		return matches[a].Doc < matches[b].Doc
	})
	if topN > 0 && topN < len(matches) {
		matches = matches[:topN]
	}
	return matches
}

// SearchBatch runs Search for a batch of queries, fanning whole queries
// across par workers. The index is immutable after construction, so
// concurrent reads are safe; element i of the result is bitwise identical
// to Search(queries[i], topN).
func (ix *Index) SearchBatch(queries [][]float64, topN int) [][]Match {
	for i, q := range queries {
		if len(q) != ix.numTerms {
			panic(fmt.Sprintf("vsm: query %d has length %d, want %d", i, len(q), ix.numTerms))
		}
	}
	out := make([][]Match, len(queries))
	// Per-query cost is roughly one pass over the query terms plus the
	// matched postings, bounded below by the index dimensions.
	par.For(len(queries), par.GrainFor(ix.numTerms+ix.numDocs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.Search(queries[i], topN)
		}
	})
	return out
}

// SearchSparse ranks documents against a query given as parallel term/
// weight slices — the natural form for short queries.
func (ix *Index) SearchSparse(terms []int, weights []float64, topN int) []Match {
	if len(terms) != len(weights) {
		panic(fmt.Sprintf("vsm: %d terms but %d weights", len(terms), len(weights)))
	}
	q := make([]float64, ix.numTerms)
	for i, t := range terms {
		if t < 0 || t >= ix.numTerms {
			panic(fmt.Sprintf("vsm: term %d out of range [0,%d)", t, ix.numTerms))
		}
		q[t] += weights[i]
	}
	return ix.Search(q, topN)
}
