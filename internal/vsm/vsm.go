// Package vsm implements the conventional vector-space retrieval model —
// the baseline the paper says LSI improves on. Documents are the raw
// columns of the term-document matrix; retrieval ranks documents by cosine
// similarity computed through an inverted index, so query cost is
// proportional to the postings of the query's terms rather than to n·m.
//
// Because it matches terms literally, the model exhibits exactly the
// synonymy failure of the paper's introduction: a query using term t never
// retrieves documents that only use t's synonym. The retrieval experiments
// quantify that gap against LSI.
//
// The query hot path is term-at-a-time over a dense per-document score
// array with a touched-docs list (not a map), bounded top-k selection via
// a min-heap, and pooled scratch — steady-state Search allocates only the
// returned slice, and the Append variants nothing at all.
package vsm

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/par"
	"repro/internal/sparse"
	"repro/internal/topk"
)

// posting is one (document, weight) pair in a term's postings list.
type posting struct {
	doc int
	w   float64
}

// Index is an inverted-file cosine retrieval index.
type Index struct {
	numTerms int
	numDocs  int
	postings [][]posting
	norms    []float64
}

// Match is one retrieval result: a document and its cosine similarity to
// the query in term space. It is the shared topk.Match selection type.
type Match = topk.Match

// scratch is the reusable per-query accumulator state: a dense score
// array indexed by document, an epoch-marked touched set (so reset is
// O(1), not O(m)), the selection heap, and buffers for normalizing
// unsorted sparse queries. Instances live in a sync.Pool and are sized
// lazily to the largest index they have served.
type scratch struct {
	scores  []float64 // dense per-document dot accumulator
	mark    []int     // mark[d] == epoch ⇔ d is in touched this query
	epoch   int
	touched []int // documents hit by at least one query term, in first-hit order
	heap    topk.Heap
	pairs   []termWeight // sort/merge buffer for unsorted sparse queries
	qterms  []int
	qwts    []float64
}

type termWeight struct {
	t int
	w float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// begin readies the scratch for a query against an m-document index:
// grows the dense arrays if this index is the largest seen and opens a
// fresh epoch. Resetting at the start (not the end) of a query means a
// panicking caller can never leave stale touched state behind for the
// next pool user.
func (s *scratch) begin(m int) {
	if cap(s.scores) < m {
		s.scores = make([]float64, m)
		s.mark = make([]int, m)
	}
	s.scores = s.scores[:m]
	s.mark = s.mark[:m]
	s.epoch++
	s.touched = s.touched[:0]
}

// NewFromMatrix builds the index from a term-document matrix (terms are
// rows, documents are columns), using the matrix entries as weights.
func NewFromMatrix(a *sparse.CSR) *Index {
	n, m := a.Dims()
	ix := &Index{
		numTerms: n,
		numDocs:  m,
		postings: make([][]posting, n),
		norms:    make([]float64, m),
	}
	for t := 0; t < n; t++ {
		a.RowIter(t, func(doc int, w float64) {
			ix.postings[t] = append(ix.postings[t], posting{doc: doc, w: w})
			ix.norms[doc] += w * w
		})
	}
	for d := range ix.norms {
		ix.norms[d] = math.Sqrt(ix.norms[d])
	}
	return ix
}

// NumTerms returns the vocabulary size.
func (ix *Index) NumTerms() int { return ix.numTerms }

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// DocFrequency returns the number of documents containing the term.
func (ix *Index) DocFrequency(term int) int {
	if term < 0 || term >= ix.numTerms {
		panic(fmt.Sprintf("vsm: term %d out of range [0,%d)", term, ix.numTerms))
	}
	return len(ix.postings[term])
}

// accumulate folds one query term into the dense score array,
// registering newly touched documents. The first hit assigns, later hits
// add — the same left-to-right accumulation the map-based path performed,
// so scores are bitwise unchanged.
func (ix *Index) accumulate(sc *scratch, t int, qw float64) {
	for _, p := range ix.postings[t] {
		if sc.mark[p.doc] != sc.epoch {
			sc.mark[p.doc] = sc.epoch
			sc.touched = append(sc.touched, p.doc)
			sc.scores[p.doc] = qw * p.w
		} else {
			sc.scores[p.doc] += qw * p.w
		}
	}
}

// finish converts the accumulated dots into cosine matches and appends
// the topN best (all if topN <= 0) to dst, best-first with ties broken
// by document ID. Documents with zero overlap or zero norm are omitted.
func (ix *Index) finish(sc *scratch, dst []Match, qnorm float64, topN int) []Match {
	if qnorm == 0 {
		return dst
	}
	if topN > 0 && topN < len(sc.touched) {
		h := &sc.heap
		h.Reset(topN)
		for _, d := range sc.touched {
			if ix.norms[d] == 0 {
				continue
			}
			h.Offer(Match{Doc: d, Score: sc.scores[d] / (qnorm * ix.norms[d])})
		}
		return h.AppendSorted(dst)
	}
	start := len(dst)
	dst = slices.Grow(dst, len(sc.touched))
	for _, d := range sc.touched {
		if ix.norms[d] == 0 {
			continue
		}
		dst = append(dst, Match{Doc: d, Score: sc.scores[d] / (qnorm * ix.norms[d])})
	}
	topk.SortMatches(dst[start:])
	return dst
}

// Search ranks documents by cosine similarity against a dense term-space
// query vector, returning the topN best (all if topN <= 0). Documents with
// zero overlap are omitted; a zero query returns nil. Ties break by
// document ID. The only steady-state allocation is the returned slice;
// use AppendSearch to avoid that one too.
func (ix *Index) Search(query []float64, topN int) []Match {
	return ix.AppendSearch(nil, query, topN)
}

// AppendSearch is Search appending into dst (allocation-free once dst
// has capacity). A zero or no-overlap query returns dst unchanged.
func (ix *Index) AppendSearch(dst []Match, query []float64, topN int) []Match {
	if len(query) != ix.numTerms {
		panic(fmt.Sprintf("vsm: query length %d, want %d", len(query), ix.numTerms))
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.begin(ix.numDocs)
	var qnorm float64
	for t, qw := range query {
		if qw == 0 {
			continue
		}
		qnorm += qw * qw
		ix.accumulate(sc, t, qw)
	}
	return ix.finish(sc, dst, math.Sqrt(qnorm), topN)
}

// SearchSparse ranks documents against a query given as parallel term/
// weight slices — the natural form for short queries. It is genuinely
// sparse: cost is O(Σ|postings(tᵢ)|) in work and O(1) steady-state
// allocations beyond the returned slice, with no vocabulary-length
// materialization. Results are bitwise identical to Search over the
// densified query: unsorted or duplicated terms are normalized (sorted
// ascending, duplicate weights summed in input order) into pooled
// scratch first. It panics on length mismatch or an out-of-range term.
func (ix *Index) SearchSparse(terms []int, weights []float64, topN int) []Match {
	return ix.AppendSearchSparse(nil, terms, weights, topN)
}

// AppendSearchSparse is SearchSparse appending into dst (allocation-free
// once dst has capacity).
func (ix *Index) AppendSearchSparse(dst []Match, terms []int, weights []float64, topN int) []Match {
	if len(terms) != len(weights) {
		panic(fmt.Sprintf("vsm: %d terms but %d weights", len(terms), len(weights)))
	}
	for _, t := range terms {
		if t < 0 || t >= ix.numTerms {
			panic(fmt.Sprintf("vsm: term %d out of range [0,%d)", t, ix.numTerms))
		}
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	// The dense path visits terms in ascending order with duplicates
	// pre-merged (q[t] += w), so matching its accumulation — and hence
	// its bits — requires the same normal form. Sorted unique input (what
	// the retrieval layer sends) passes through untouched.
	if !sortedUnique(terms) {
		terms, weights = sc.normalize(terms, weights)
	}
	sc.begin(ix.numDocs)
	var qnorm float64
	for i, t := range terms {
		qw := weights[i]
		if qw == 0 {
			continue
		}
		qnorm += qw * qw
		ix.accumulate(sc, t, qw)
	}
	return ix.finish(sc, dst, math.Sqrt(qnorm), topN)
}

// sortedUnique reports whether terms is strictly ascending.
func sortedUnique(terms []int) bool {
	for i := 1; i < len(terms); i++ {
		if terms[i] <= terms[i-1] {
			return false
		}
	}
	return true
}

// normalize rewrites a sparse query into the dense path's normal form —
// terms strictly ascending, duplicate weights summed in input order —
// inside the scratch buffers, leaving the caller's slices untouched.
func (s *scratch) normalize(terms []int, weights []float64) ([]int, []float64) {
	s.pairs = s.pairs[:0]
	for i, t := range terms {
		s.pairs = append(s.pairs, termWeight{t: t, w: weights[i]})
	}
	slices.SortStableFunc(s.pairs, func(a, b termWeight) int { return cmp.Compare(a.t, b.t) })
	s.qterms = s.qterms[:0]
	s.qwts = s.qwts[:0]
	for _, p := range s.pairs {
		if n := len(s.qterms); n > 0 && s.qterms[n-1] == p.t {
			s.qwts[n-1] += p.w
			continue
		}
		s.qterms = append(s.qterms, p.t)
		s.qwts = append(s.qwts, p.w)
	}
	return s.qterms, s.qwts
}

// SearchBatch runs Search for a batch of queries, fanning whole queries
// across par workers, each drawing its own pooled scratch. The index is
// immutable after construction, so concurrent reads are safe; element i
// of the result is bitwise identical to Search(queries[i], topN).
func (ix *Index) SearchBatch(queries [][]float64, topN int) [][]Match {
	for i, q := range queries {
		if len(q) != ix.numTerms {
			panic(fmt.Sprintf("vsm: query %d has length %d, want %d", i, len(q), ix.numTerms))
		}
	}
	out := make([][]Match, len(queries))
	// Per-query cost is roughly one pass over the query terms plus the
	// matched postings, bounded below by the index dimensions.
	par.For(len(queries), par.GrainFor(ix.numTerms+ix.numDocs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.Search(queries[i], topN)
		}
	})
	return out
}

// SearchBatchSparse runs SearchSparse for a batch of sparse queries
// (terms[i]/weights[i] are query i), fanning whole queries across par
// workers. Element i of the result is bitwise identical to
// SearchSparse(terms[i], weights[i], topN).
func (ix *Index) SearchBatchSparse(terms [][]int, weights [][]float64, topN int) [][]Match {
	if len(terms) != len(weights) {
		panic(fmt.Sprintf("vsm: SearchBatchSparse %d term slices but %d weight slices", len(terms), len(weights)))
	}
	out := make([][]Match, len(terms))
	par.For(len(terms), par.GrainFor(ix.numDocs+1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = ix.SearchSparse(terms[i], weights[i], topN)
		}
	})
	return out
}
