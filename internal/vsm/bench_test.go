package vsm

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

func benchIndex(b *testing.B) (*Index, []float64) {
	b.Helper()
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 100, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 1000, rand.New(rand.NewSource(231)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	return NewFromMatrix(a), a.Col(0)
}

func BenchmarkIndexBuild1000Docs(b *testing.B) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 10, TermsPerTopic: 100, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := corpus.Generate(model, 1000, rand.New(rand.NewSource(231)))
	if err != nil {
		b.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewFromMatrix(a)
	}
}

func BenchmarkSearchFullDocumentQuery(b *testing.B) {
	ix, q := benchIndex(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(q, 10)
	}
}

func BenchmarkSearchShortQuery(b *testing.B) {
	ix, _ := benchIndex(b)
	terms := []int{3, 150, 777}
	weights := []float64{1, 1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchSparse(terms, weights, 10)
	}
}
