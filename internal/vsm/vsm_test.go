package vsm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/corpus"
	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/sparse"
)

func buildIndex(t *testing.T) (*Index, *sparse.CSR) {
	t.Helper()
	// 4 terms × 3 docs.
	coo := sparse.NewCOO(4, 3)
	coo.Add(0, 0, 2) // doc0: term0 ×2, term1 ×1
	coo.Add(1, 0, 1)
	coo.Add(1, 1, 3) // doc1: term1 ×3
	coo.Add(2, 2, 1) // doc2: term2, term3
	coo.Add(3, 2, 1)
	a := coo.ToCSR()
	return NewFromMatrix(a), a
}

func TestIndexBasics(t *testing.T) {
	ix, _ := buildIndex(t)
	if ix.NumTerms() != 4 || ix.NumDocs() != 3 {
		t.Fatalf("dims %d %d", ix.NumTerms(), ix.NumDocs())
	}
	if ix.DocFrequency(1) != 2 || ix.DocFrequency(3) != 1 || ix.DocFrequency(0) != 1 {
		t.Fatal("DocFrequency wrong")
	}
}

func TestSearchExactCosines(t *testing.T) {
	ix, a := buildIndex(t)
	// Query = doc0's own vector: top hit is doc0 with score 1.
	res := ix.Search(a.Col(0), 0)
	if res[0].Doc != 0 || math.Abs(res[0].Score-1) > 1e-12 {
		t.Fatalf("self-query top = %+v", res[0])
	}
	// Doc1 shares term1: cosine = (1*3)/(sqrt(5)*3) = 1/sqrt(5).
	if res[1].Doc != 1 || math.Abs(res[1].Score-1/math.Sqrt(5)) > 1e-12 {
		t.Fatalf("second = %+v", res[1])
	}
	// Doc2 has no overlap: omitted entirely.
	if len(res) != 2 {
		t.Fatalf("expected 2 matches, got %d", len(res))
	}
}

func TestSynonymyFailure(t *testing.T) {
	// The classic failure the paper opens with: querying "car" misses
	// documents that only say "automobile". Term 0 = car, term 1 =
	// automobile; doc0 uses car, doc1 uses automobile.
	coo := sparse.NewCOO(2, 2)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	ix := NewFromMatrix(coo.ToCSR())
	res := ix.Search([]float64{1, 0}, 0)
	if len(res) != 1 || res[0].Doc != 0 {
		t.Fatalf("VSM should retrieve only the literal match, got %+v", res)
	}
}

func TestSearchTopNAndTies(t *testing.T) {
	// Two identical docs tie: deterministic order by doc ID.
	coo := sparse.NewCOO(1, 3)
	coo.Add(0, 0, 1)
	coo.Add(0, 1, 1)
	coo.Add(0, 2, 2)
	ix := NewFromMatrix(coo.ToCSR())
	res := ix.Search([]float64{1}, 0)
	if len(res) != 3 {
		t.Fatalf("matches %d", len(res))
	}
	if res[0].Doc != 0 || res[1].Doc != 1 || res[2].Doc != 2 {
		t.Fatalf("tie order %v", res)
	}
	if got := ix.Search([]float64{1}, 2); len(got) != 2 {
		t.Fatalf("topN clamp: %d", len(got))
	}
}

func TestSearchZeroQuery(t *testing.T) {
	ix, _ := buildIndex(t)
	if res := ix.Search(make([]float64, 4), 0); res != nil {
		t.Fatalf("zero query returned %v", res)
	}
}

func TestSearchPanics(t *testing.T) {
	ix, _ := buildIndex(t)
	for i, f := range []func(){
		func() { ix.Search([]float64{1}, 0) },
		func() { ix.SearchSparse([]int{0}, []float64{1, 2}, 0) },
		func() { ix.SearchSparse([]int{9}, []float64{1}, 0) },
		func() { ix.DocFrequency(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSearchSparseMatchesDense(t *testing.T) {
	ix, _ := buildIndex(t)
	dense := ix.Search([]float64{0, 2, 0, 1}, 0)
	sparseQ := ix.SearchSparse([]int{1, 3}, []float64{2, 1}, 0)
	if len(dense) != len(sparseQ) {
		t.Fatalf("lengths %d vs %d", len(dense), len(sparseQ))
	}
	for i := range dense {
		if dense[i] != sparseQ[i] {
			t.Fatalf("result %d: %+v vs %+v", i, dense[i], sparseQ[i])
		}
	}
}

func TestVSMAgainstBruteForce(t *testing.T) {
	// Inverted-index scores must equal brute-force cosine over dense
	// columns for random corpora.
	rng := rand.New(rand.NewSource(131))
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 3, TermsPerTopic: 10, Epsilon: 0.1, MinLen: 20, MaxLen: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(model, 25, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ix := NewFromMatrix(a)
	q := a.Col(3)
	res := ix.Search(q, 0)
	scores := map[int]float64{}
	for _, m := range res {
		scores[m.Doc] = m.Score
	}
	for j := 0; j < 25; j++ {
		want := mat.Cosine(q, a.Col(j))
		got, present := scores[j]
		if want == 0 {
			if present && got != 0 {
				t.Fatalf("doc %d: zero-overlap doc scored %v", j, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("doc %d: score %v, brute force %v", j, got, want)
		}
	}
}

func TestSearchBatchMatchesSearch(t *testing.T) {
	old := par.SetMaxProcs(4)
	t.Cleanup(func() { par.SetMaxProcs(old) })
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 4, TermsPerTopic: 20, Epsilon: 0.05, MinLen: 30, MaxLen: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := corpus.Generate(model, 80, rand.New(rand.NewSource(77)))
	if err != nil {
		t.Fatal(err)
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ix := NewFromMatrix(a)
	queries := make([][]float64, 16)
	for i := range queries {
		queries[i] = a.Col(i % a.Cols())
	}
	got := ix.SearchBatch(queries, 7)
	for i, q := range queries {
		want := ix.Search(q, 7)
		if len(got[i]) != len(want) {
			t.Fatalf("query %d: %d matches, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("query %d rank %d: batch %+v != serial %+v", i, j, got[i][j], want[j])
			}
		}
	}
}

func TestSearchBatchLengthPanic(t *testing.T) {
	ix, _ := buildIndex(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected length panic")
		}
	}()
	ix.SearchBatch([][]float64{{1, 2, 3}}, 1)
}
