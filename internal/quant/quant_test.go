package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/topk"
)

// clusteredVecs samples m unit-scale vectors around `topics` random
// directions — the regime the paper proves LSI produces and the one the
// fidelity gate measures on.
func clusteredVecs(t testing.TB, m, dim, topics int, noise float64, seed int64) (*mat.Dense, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dirs := mat.NewDense(topics, dim)
	for c := 0; c < topics; c++ {
		row := dirs.Row(c)
		for d := range row {
			row[d] = rng.NormFloat64()
		}
	}
	vecs := mat.NewDense(m, dim)
	for j := 0; j < m; j++ {
		dir := dirs.Row(j % topics)
		row := vecs.Row(j)
		for d := range row {
			row[d] = dir[d] + noise*rng.NormFloat64()
		}
	}
	norms := make([]float64, m)
	for j := 0; j < m; j++ {
		norms[j] = mat.Norm(vecs.Row(j))
	}
	return vecs, norms
}

// exhaustive is the float ground truth: every row scored with DotNorm,
// selected through the same bounded heap.
func exhaustive(vecs *mat.Dense, norms, pq []float64, qn float64, topN int) []topk.Match {
	var h topk.Heap
	keep := topN
	if keep <= 0 || keep > vecs.Rows() {
		keep = vecs.Rows()
	}
	h.Reset(keep)
	for j := 0; j < vecs.Rows(); j++ {
		h.Offer(topk.Match{Doc: j, Score: mat.DotNorm(pq, vecs.Row(j), qn, norms[j])})
	}
	return h.AppendSorted(nil)
}

func withProcs(t *testing.T, n int) {
	t.Helper()
	old := par.SetMaxProcs(n)
	t.Cleanup(func() { par.SetMaxProcs(old) })
}

func TestQuantizeRoundTripErrorBound(t *testing.T) {
	vecs, _ := clusteredVecs(t, 500, 24, 7, 0.4, 1)
	qm := Quantize(vecs)
	if qm.NumDocs() != 500 || qm.Dim() != 24 {
		t.Fatalf("shape = (%d, %d), want (500, 24)", qm.NumDocs(), qm.Dim())
	}
	for j := 0; j < qm.NumDocs(); j++ {
		row, codes, scale := vecs.Row(j), qm.Row(j), qm.Scale(j)
		for d, v := range row {
			got := float64(codes[d]) * scale
			// Round-to-nearest guarantees per-element reconstruction error
			// of at most half a quantization step.
			if err := math.Abs(v - got); err > scale/2*(1+1e-12) {
				t.Fatalf("doc %d dim %d: |%v - %v| = %v exceeds scale/2 = %v", j, d, v, got, err, scale/2)
			}
		}
	}
}

func TestQuantizeCodeRangeAndScale(t *testing.T) {
	vecs, _ := clusteredVecs(t, 200, 16, 5, 0.3, 2)
	qm := Quantize(vecs)
	for j := 0; j < qm.NumDocs(); j++ {
		maxAbs := 0.0
		for _, v := range vecs.Row(j) {
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
		if want := maxAbs / MaxCode; qm.Scale(j) != want {
			t.Fatalf("doc %d: scale = %v, want maxabs/127 = %v", j, qm.Scale(j), want)
		}
		peak := 0
		for _, c := range qm.Row(j) {
			if c < -MaxCode || c > MaxCode {
				t.Fatalf("doc %d: code %d outside [-127, 127]", j, c)
			}
			a := int(c)
			if a < 0 {
				a = -a
			}
			if a > peak {
				peak = a
			}
		}
		// The largest-magnitude element of every nonzero row saturates the
		// code range by construction of the symmetric scale.
		if maxAbs > 0 && peak != MaxCode {
			t.Fatalf("doc %d: peak |code| = %d, want %d", j, peak, MaxCode)
		}
	}
}

func TestQuantizeZeroRow(t *testing.T) {
	vecs := mat.NewDense(3, 8)
	copy(vecs.Row(1), []float64{1, -2, 3, -4, 5, -6, 7, -127})
	qm := Quantize(vecs)
	if qm.Scale(0) != 0 || qm.Scale(2) != 0 {
		t.Fatalf("zero rows got scales %v, %v", qm.Scale(0), qm.Scale(2))
	}
	for _, c := range qm.Row(0) {
		if c != 0 {
			t.Fatalf("zero row quantized to nonzero code %d", c)
		}
	}
	if qm.Scale(1) == 0 {
		t.Fatal("nonzero row got scale 0")
	}
}

func TestQuantizeDeterministicAcrossWorkers(t *testing.T) {
	vecs, _ := clusteredVecs(t, 3000, 20, 11, 0.35, 3)
	var ref *Matrix
	for _, procs := range []int{1, 2, 7} {
		withProcs(t, procs)
		qm := Quantize(vecs)
		if ref == nil {
			ref = qm
			continue
		}
		for i := range qm.codes {
			if qm.codes[i] != ref.codes[i] {
				t.Fatalf("procs=%d: code %d differs", procs, i)
			}
		}
		for j := range qm.scales {
			if math.Float64bits(qm.scales[j]) != math.Float64bits(ref.scales[j]) {
				t.Fatalf("procs=%d: scale %d differs", procs, j)
			}
		}
	}
}

func TestDotInt8MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 64} {
		x, y := make([]int8, n), make([]int8, n)
		var want int32
		for i := range x {
			x[i] = int8(rng.Intn(255) - 127)
			y[i] = int8(rng.Intn(255) - 127)
			want += int32(x[i]) * int32(y[i])
		}
		if got := mat.DotInt8(x, y); got != want {
			t.Fatalf("n=%d: DotInt8 = %d, want %d", n, got, want)
		}
	}
}

// searchQueries samples noisy near-duplicate queries from the corpus.
func searchQueries(vecs *mat.Dense, nq int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	queries := make([][]float64, nq)
	qns := make([]float64, nq)
	for q := range queries {
		pq := append([]float64(nil), vecs.Row(rng.Intn(vecs.Rows()))...)
		for d := range pq {
			pq[d] += 0.05 * rng.NormFloat64()
		}
		queries[q], qns[q] = pq, mat.Norm(pq)
	}
	return queries, qns
}

func sameMatches(t *testing.T, label string, got, want []topk.Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Doc != want[i].Doc || math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestAppendSearchFullCoverageIsExact(t *testing.T) {
	// When topN·β covers the corpus the two-stage search must degenerate
	// to the exact scan bit-for-bit: same kernels, same total order.
	vecs, norms := clusteredVecs(t, 700, 12, 9, 0.3, 5)
	qm := Quantize(vecs)
	queries, qns := searchQueries(vecs, 16, 6)
	for q := range queries {
		want := exhaustive(vecs, norms, queries[q], qns[q], 10)
		got, st := qm.AppendSearch(nil, vecs, norms, queries[q], qns[q], 10, 100)
		sameMatches(t, "covering beta", got, want)
		if st.Scanned != 0 || st.Reranked != 700 {
			t.Fatalf("stats = %+v, want pure exact pass", st)
		}
	}
}

func TestAppendSearchRerankScoresAreExact(t *testing.T) {
	// Whatever candidates stage 1 picks, the scores returned must come
	// from the exact float kernel — bitwise equal to DotNorm on that doc.
	vecs, norms := clusteredVecs(t, 1200, 16, 10, 0.3, 7)
	qm := Quantize(vecs)
	queries, qns := searchQueries(vecs, 8, 8)
	for q := range queries {
		got, st := qm.AppendSearch(nil, vecs, norms, queries[q], qns[q], 10, DefaultBeta)
		if len(got) != 10 {
			t.Fatalf("got %d matches, want 10", len(got))
		}
		if st.Scanned != 1200 || st.Reranked != 40 {
			t.Fatalf("stats = %+v, want Scanned=1200 Reranked=40", st)
		}
		for i, m := range got {
			want := mat.DotNorm(queries[q], vecs.Row(m.Doc), qns[q], norms[m.Doc])
			if math.Float64bits(m.Score) != math.Float64bits(want) {
				t.Fatalf("query %d match %d: score %v, want exact %v", q, i, m.Score, want)
			}
			if i > 0 && !topk.Better(got[i-1], m) {
				t.Fatalf("query %d: matches out of order at %d", q, i)
			}
		}
	}
}

func TestAppendSearchDeterministicAcrossWorkers(t *testing.T) {
	vecs, norms := clusteredVecs(t, 5000, 16, 12, 0.3, 9)
	qm := Quantize(vecs)
	queries, qns := searchQueries(vecs, 8, 10)
	var ref [][]topk.Match
	for _, procs := range []int{1, 3, 8} {
		withProcs(t, procs)
		var all [][]topk.Match
		for q := range queries {
			got, _ := qm.AppendSearch(nil, vecs, norms, queries[q], qns[q], 10, DefaultBeta)
			all = append(all, got)
		}
		if ref == nil {
			ref = all
			continue
		}
		for q := range all {
			sameMatches(t, "worker determinism", all[q], ref[q])
		}
	}
}

func TestAppendSearchOverlapWithFloatPath(t *testing.T) {
	// The fidelity property quant-smoke gates in CI, at unit-test scale:
	// β=4 top-10 overlap with the float path on a clustered corpus.
	vecs, norms := clusteredVecs(t, 20_000, 24, 32, 0.25, 11)
	qm := Quantize(vecs)
	queries, qns := searchQueries(vecs, 32, 12)
	hits, want := 0, 0
	for q := range queries {
		truth := map[int]bool{}
		for _, m := range exhaustive(vecs, norms, queries[q], qns[q], 10) {
			truth[m.Doc] = true
		}
		got, _ := qm.AppendSearch(nil, vecs, norms, queries[q], qns[q], 10, DefaultBeta)
		for _, m := range got {
			if truth[m.Doc] {
				hits++
			}
		}
		want += len(truth)
	}
	if overlap := float64(hits) / float64(want); overlap < 0.98 {
		t.Fatalf("top-10 overlap = %.3f, want >= 0.98", overlap)
	}
}

func TestAppendSearchDocsRestrictsUniverse(t *testing.T) {
	vecs, norms := clusteredVecs(t, 900, 12, 6, 0.3, 13)
	qm := Quantize(vecs)
	queries, qns := searchQueries(vecs, 8, 14)
	docs := make([]int32, 0, 300)
	for j := 0; j < 900; j += 3 {
		docs = append(docs, int32(j))
	}
	for q := range queries {
		got, st := qm.AppendSearchDocs(nil, docs, vecs, norms, queries[q], qns[q], 5, 100)
		if st.Reranked != len(docs) {
			t.Fatalf("stats = %+v, want Reranked=%d", st, len(docs))
		}
		// Covering β makes the restricted search exact over the subset.
		var h topk.Heap
		h.Reset(5)
		for _, j := range docs {
			h.Offer(topk.Match{Doc: int(j), Score: mat.DotNorm(queries[q], vecs.Row(int(j)), qns[q], norms[j])})
		}
		sameMatches(t, "restricted universe", got, h.AppendSorted(nil))
		for _, m := range got {
			if m.Doc%3 != 0 {
				t.Fatalf("match outside candidate list: %+v", m)
			}
		}
	}
}

func TestAppendSearchZeroQuery(t *testing.T) {
	vecs, norms := clusteredVecs(t, 50, 8, 3, 0.3, 15)
	qm := Quantize(vecs)
	pq := make([]float64, 8)
	got, _ := qm.AppendSearch(nil, vecs, norms, pq, 0, 5, DefaultBeta)
	if len(got) != 5 {
		t.Fatalf("got %d matches, want 5", len(got))
	}
	for i, m := range got {
		if m.Score != 0 || m.Doc != i {
			t.Fatalf("zero query match %d = %+v, want doc %d score 0", i, m, i)
		}
	}
}

func TestAppendSearchEmptyDocs(t *testing.T) {
	vecs, norms := clusteredVecs(t, 10, 4, 2, 0.3, 16)
	qm := Quantize(vecs)
	got, st := qm.AppendSearchDocs(nil, []int32{}, vecs, norms, vecs.Row(0), norms[0], 3, DefaultBeta)
	if len(got) != 0 || st != (ScanStats{}) {
		t.Fatalf("empty universe returned %v, %+v", got, st)
	}
}

func TestSearchArgChecks(t *testing.T) {
	vecs, norms := clusteredVecs(t, 20, 6, 2, 0.3, 17)
	qm := Quantize(vecs)
	for name, fn := range map[string]func(){
		"dim mismatch":  func() { qm.AppendSearch(nil, vecs, norms, make([]float64, 7), 1, 3, 2) },
		"vecs mismatch": func() { qm.AppendSearch(nil, mat.NewDense(20, 7), norms, make([]float64, 7), 1, 3, 2) },
		"norm mismatch": func() { qm.AppendSearch(nil, vecs, norms[:19], vecs.Row(0), 1, 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
