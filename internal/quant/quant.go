// Package quant implements per-document symmetric int8 scalar
// quantization of the projected document matrix — the bandwidth
// optimization of the scoring hot path. At large corpus sizes the
// exhaustive and in-cell scans are memory-bound on 8-byte floats; the
// paper's JL projection argument (Lemma 2) already licenses lossy
// representation of the latent space, and quantizing each projected
// document row to int8 with one per-document scale cuts the matrix
// footprint 8× so the scan streams codes instead of doubles.
//
// Search is two-stage: a quantized scan scores every candidate with the
// integer kernel mat.DotInt8 and keeps an over-fetched topN·β set, then
// an exact float64 rerank through mat.DotNorm — the same fused kernel as
// the float path — restores the final (score desc, doc asc) order. The
// integer accumulation is exact and the per-document approximate score
// is a pure function of the stored codes, so quantized results are
// bitwise-deterministic for every worker count, exactly like the float
// scan.
//
// A Matrix is derived state, rebuilt from the float matrix it mirrors in
// one deterministic pass (Quantize takes no seed), and persisted as a
// versioned sidecar next to its segment (see Encode/Decode).
package quant

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/mat"
	"repro/internal/par"
)

// MaxCode is the largest code magnitude Quantize emits. The symmetric
// range [-127, 127] deliberately excludes -128 so negation never
// overflows and every code dequantizes to code·scale with
// |error| ≤ scale/2.
const MaxCode = 127

// Matrix is the int8 shadow of a projected document matrix: one
// contiguous row of codes per document plus one dequantization scale per
// document, kept as parallel arrays so the scan streams codes
// sequentially and touches scales once per row.
type Matrix struct {
	dim    int
	codes  []int8    // ndocs × dim, row-major; doc j at codes[j*dim:(j+1)*dim]
	scales []float64 // per-doc dequantization step: row j ≈ codes[j]·scales[j]

	// snOnce/sn cache scales[j]/norms[j] for the document norms this
	// matrix is searched against. A Matrix shadows exactly one immutable
	// float matrix, so the norms are the same on every search and the
	// ratio — the only per-document float work the stage-1 scan needs
	// beyond the integer dot — is computed once instead of per query.
	snOnce sync.Once
	sn     []float64
}

// Dim returns the latent dimension each document row quantizes.
func (m *Matrix) Dim() int { return m.dim }

// NumDocs returns the number of quantized document rows.
func (m *Matrix) NumDocs() int { return len(m.scales) }

// Bytes returns the in-memory footprint of the quantized representation
// (codes plus scales) — the number the serving layer reports so
// operators can size the ~8× reduction against the float matrix.
func (m *Matrix) Bytes() int64 {
	return int64(len(m.codes)) + 8*int64(len(m.scales))
}

// Scale returns the dequantization step of document j.
func (m *Matrix) Scale(j int) float64 { return m.scales[j] }

// Row returns the code row of document j (shared storage, not a copy).
func (m *Matrix) Row(j int) []int8 { return m.codes[j*m.dim : (j+1)*m.dim] }

// quantizeVec writes the symmetric int8 quantization of v into dst and
// returns the dequantization scale: scale = max|v|/127 and
// dst[i] = round(v[i]/scale), so |v[i] − dst[i]·scale| ≤ scale/2. An
// all-zero vector quantizes to zero codes with scale 0.
func quantizeVec(dst []int8, v []float64) float64 {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / MaxCode
	for i, x := range v {
		c := math.RoundToEven(x / scale)
		// RoundToEven of v/scale with |v| ≤ scale·127 stays in range, but
		// clamp anyway so a NaN/Inf row cannot smuggle -128 into the codes.
		if c > MaxCode {
			c = MaxCode
		} else if c < -MaxCode {
			c = -MaxCode
		}
		dst[i] = int8(c)
	}
	return scale
}

// Quantize builds the int8 shadow of vecs, one independent symmetric
// quantization per document row. It is a pure deterministic function of
// the input matrix — no seed, no iteration — so rebuilding at load time
// yields a byte-identical sidecar, and the row-parallel pass writes
// disjoint slices only.
func Quantize(vecs *mat.Dense) *Matrix {
	rows, cols := vecs.Dims()
	m := &Matrix{
		dim:    cols,
		codes:  make([]int8, rows*cols),
		scales: make([]float64, rows),
	}
	par.For(rows, par.GrainFor(2*cols+1), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			m.scales[j] = quantizeVec(m.Row(j), vecs.Row(j))
		}
	})
	return m
}

// scaleOverNorms returns scales[j]/norms[j] per document (0 where the
// norm is 0, matching DotNorm's zero-norm convention), computed once per
// matrix and cached — norms belong to the immutable float matrix this
// Matrix shadows, so they are identical on every search.
func (m *Matrix) scaleOverNorms(norms []float64) []float64 {
	m.snOnce.Do(func() {
		sn := make([]float64, len(m.scales))
		for j, s := range m.scales {
			if n := norms[j]; n != 0 {
				sn[j] = s / n
			}
		}
		m.sn = sn
	})
	return m.sn
}

// checkSearchArgs panics when the float matrix handed to a search does
// not match the quantized shadow — the same defensive posture as
// ivf.AppendSearch, catching segment/sidecar mixups at the boundary.
func (m *Matrix) checkSearchArgs(vecs *mat.Dense, norms []float64, pq []float64) {
	rows, cols := vecs.Dims()
	if cols != m.dim || len(pq) != m.dim {
		panic(fmt.Sprintf("quant: dimension mismatch: matrix %d, vecs %d, query %d", m.dim, cols, len(pq)))
	}
	if rows != m.NumDocs() || len(norms) != m.NumDocs() {
		panic(fmt.Sprintf("quant: document count mismatch: matrix %d, vecs %d, norms %d", m.NumDocs(), rows, len(norms)))
	}
}
