package quant

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// On-disk format (little-endian), written alongside the seg-*.idx files
// by the shard layer:
//
//	magic   "LSIQNT"             6 bytes
//	version uint16               currently 1
//	dim     uint32
//	ndocs   uint32
//	scales  ndocs float64        per-doc dequantization step bit patterns
//	                             (finite, ≥ 0)
//	codes   ndocs*dim int8       row-major, each in [-127, 127]
//	crc32   uint32               IEEE, over everything above
//
// The decoder is total: every size the header claims is validated
// against the actual byte count before any allocation is sized from it,
// scales must be finite and non-negative, codes must stay inside the
// symmetric range Quantize emits, and corruption anywhere is caught by
// the checksum — malformed input yields an error, never a panic and
// never an oversized allocation.

// WireVersion is the on-disk quantized-sidecar format version Encode
// writes. Decode accepts versions up to this one.
const WireVersion = 1

var wireMagic = [6]byte{'L', 'S', 'I', 'Q', 'N', 'T'}

// wireHeaderLen is magic + version + dim + ndocs.
const wireHeaderLen = 6 + 2 + 4 + 4

// Encode serializes the quantized matrix into the versioned wire format.
func (m *Matrix) Encode() []byte {
	buf := make([]byte, 0, wireHeaderLen+8*len(m.scales)+len(m.codes)+4)
	buf = append(buf, wireMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, WireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.NumDocs()))
	for _, s := range m.scales {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	for _, c := range m.codes {
		buf = append(buf, byte(c))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Decode parses a quantized matrix from the wire format, validating the
// checksum, the header bounds, the scale values, and the code range. It
// never panics on malformed input and never allocates beyond
// O(len(data)).
func Decode(data []byte) (*Matrix, error) {
	if len(data) < wireHeaderLen+4 {
		return nil, fmt.Errorf("quant: truncated sidecar: %d bytes", len(data))
	}
	if !bytes.Equal(data[:6], wireMagic[:]) {
		return nil, fmt.Errorf("quant: bad magic %q", data[:6])
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(tail); got != want {
		return nil, fmt.Errorf("quant: checksum mismatch: %08x, want %08x", got, want)
	}
	if v := binary.LittleEndian.Uint16(body[6:8]); v == 0 || v > WireVersion {
		return nil, fmt.Errorf("quant: unsupported wire version %d (this build reads <= %d)", v, WireVersion)
	}
	dim := int(binary.LittleEndian.Uint32(body[8:12]))
	ndocs := int(binary.LittleEndian.Uint32(body[12:16]))
	if dim < 1 || ndocs < 1 {
		return nil, fmt.Errorf("quant: degenerate header: dim=%d ndocs=%d", dim, ndocs)
	}
	rest := body[wireHeaderLen:]
	// Scales cost 8 bytes each and codes one, so both claims together are
	// checked against the real byte count before anything is allocated.
	need := 8*uint64(ndocs) + uint64(ndocs)*uint64(dim)
	if need != uint64(len(rest)) {
		return nil, fmt.Errorf("quant: body needs %d bytes for dim=%d ndocs=%d, has %d", need, dim, ndocs, len(rest))
	}
	scales := make([]float64, ndocs)
	for j := range scales {
		s := math.Float64frombits(binary.LittleEndian.Uint64(rest[j*8:]))
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			return nil, fmt.Errorf("quant: invalid scale for document %d", j)
		}
		scales[j] = s
	}
	raw := rest[8*ndocs:]
	codes := make([]int8, ndocs*dim)
	for i, b := range raw {
		c := int8(b)
		if c < -MaxCode {
			return nil, fmt.Errorf("quant: code %d out of range at element %d", c, i)
		}
		codes[i] = c
	}
	return &Matrix{dim: dim, codes: codes, scales: scales}, nil
}
