package quant

import (
	"math"
	"testing"
)

// FuzzDecodeQuant drives the sidecar decoder on attacker-controlled
// bytes, both raw (exercising the magic/CRC/header rejections) and
// re-framed behind a structurally valid header with a fresh checksum so
// the fuzzer is not stopped at the CRC. The decoder must never panic;
// when it accepts, the invariants Quantize guarantees — finite
// non-negative scales, codes inside the symmetric range — must hold, and
// re-encoding must reproduce the accepted frame byte for byte.
func FuzzDecodeQuant(f *testing.F) {
	vecs, _ := clusteredVecs(f, 30, 5, 3, 0.3, 31)
	f.Add(Quantize(vecs).Encode(), uint16(5), uint16(30))
	f.Add(frame(3, 2, []float64{0.5, 0.25}, []byte{1, 2, 3, 4, 5, 6}), uint16(3), uint16(2))
	f.Add([]byte("LSIQNT junk"), uint16(1), uint16(1))
	f.Add([]byte{}, uint16(0), uint16(0))

	f.Fuzz(func(t *testing.T, data []byte, dim16, ndocs16 uint16) {
		check := func(m *Matrix, enc []byte) {
			for j, s := range m.scales {
				if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
					t.Fatalf("accepted invalid scale %v for document %d", s, j)
				}
			}
			for i, c := range m.codes {
				if c < -MaxCode {
					t.Fatalf("accepted out-of-range code %d at element %d", c, i)
				}
			}
			if got := m.Encode(); string(got) != string(enc) {
				t.Fatal("re-encode of accepted frame differs")
			}
		}
		if m, err := Decode(data); err == nil {
			check(m, data)
		}

		// The same payload behind a consistent header: sizes are forced to
		// agree so the fuzzer reaches the scale/code validation.
		dim := int(dim16)%64 + 1
		ndocs := int(ndocs16)%256 + 1
		need := 8*ndocs + ndocs*dim
		body := make([]byte, need)
		copy(body, data)
		full := frame(uint32(dim), uint32(ndocs), nil, body)
		if m, err := Decode(full); err == nil {
			if m.Dim() != dim || m.NumDocs() != ndocs {
				t.Fatalf("accepted mismatched shape (%d, %d), want (%d, %d)", m.NumDocs(), m.Dim(), ndocs, dim)
			}
			check(m, full)
		}
	})
}
