package quant

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/topk"
)

// The throughput-vs-fidelity frontier the PR's acceptance bar reads: a
// 100k-doc clustered corpus at rank 64, scanned single-threaded so the
// ratio between sub-benchmarks is the per-core bandwidth story, not a
// scheduling artifact. Each quantized sub-benchmark reports its top-10
// overlap with the float path, so BENCH_10.json captures the full
// frontier:
//
//	go test ./internal/quant -run '^$' -bench BenchmarkQuantizedScan
//
// The "float64" sub-benchmark is the exact-scan baseline the speedups
// are measured against; "bytes/op"-style bandwidth shows up through
// SetBytes on the matrix footprint each scan streams.

const (
	benchDocs   = 100_000
	benchDim    = 64
	benchTopics = 128
	benchTopN   = 10
)

var quantBench struct {
	once    sync.Once
	vecs    *mat.Dense
	norms   []float64
	qm      *Matrix
	queries [][]float64
	qns     []float64
	truth   []map[int]bool // exact top-10 per query
}

func quantBenchSetup(b *testing.B) {
	b.Helper()
	quantBench.once.Do(func() {
		vecs, norms := clusteredVecs(b, benchDocs, benchDim, benchTopics, 0.25, 42)
		qm := Quantize(vecs)
		queries, qns := searchQueries(vecs, 64, 99)
		truth := make([]map[int]bool, len(queries))
		for q := range queries {
			truth[q] = make(map[int]bool, benchTopN)
			for _, m := range exhaustive(vecs, norms, queries[q], qns[q], benchTopN) {
				truth[q][m.Doc] = true
			}
		}
		quantBench.vecs, quantBench.norms, quantBench.qm = vecs, norms, qm
		quantBench.queries, quantBench.qns, quantBench.truth = queries, qns, truth
	})
	if quantBench.qm == nil {
		b.Fatal("quant bench setup failed in an earlier sub-benchmark")
	}
}

func BenchmarkQuantizedScan(b *testing.B) {
	quantBenchSetup(b)
	s := &quantBench
	old := par.SetMaxProcs(1)
	defer par.SetMaxProcs(old)

	b.Run("float64", func(b *testing.B) {
		b.SetBytes(benchDocs * benchDim * 8)
		for i := 0; i < b.N; i++ {
			q := i % len(s.queries)
			exhaustive(s.vecs, s.norms, s.queries[q], s.qns[q], benchTopN)
		}
		b.ReportMetric(1.0, "overlap@10")
	})

	for _, beta := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("int8-beta%d", beta), func(b *testing.B) {
			b.SetBytes(benchDocs*benchDim + benchDocs*8)
			var buf []topk.Match
			for i := 0; i < b.N; i++ {
				q := i % len(s.queries)
				buf, _ = s.qm.AppendSearch(buf[:0], s.vecs, s.norms, s.queries[q], s.qns[q], benchTopN, beta)
			}
			b.StopTimer()
			// Overlap is a property of the configuration, not the timing
			// loop: measure it once over the whole query set.
			hits, want := 0, 0
			for q := range s.queries {
				buf, _ = s.qm.AppendSearch(buf[:0], s.vecs, s.norms, s.queries[q], s.qns[q], benchTopN, beta)
				for _, m := range buf {
					if s.truth[q][m.Doc] {
						hits++
					}
				}
				want += len(s.truth[q])
			}
			b.ReportMetric(float64(hits)/float64(want), "overlap@10")
		})
	}
}

func BenchmarkQuantize(b *testing.B) {
	quantBenchSetup(b)
	b.SetBytes(benchDocs * benchDim * 8)
	for i := 0; i < b.N; i++ {
		Quantize(quantBench.vecs)
	}
}

// BenchmarkQuantScanMillion is the regime the quantization exists for: a
// corpus large enough that the float64 matrix (256 MB at rank 32) cannot
// live in any cache while the int8 shadow (32 MB) largely can, making
// the float scan memory-bound and the quantized scan compute-bound. Not
// part of the bench-gate tier-1 set (setup alone moves ~300 MB); it is
// run explicitly to record the BENCH_10.json frontier.
func BenchmarkQuantScanMillion(b *testing.B) {
	if testing.Short() {
		b.Skip("large-corpus benchmark skipped in -short mode")
	}
	const (
		mDocs = 400_000
		mDim  = 128
	)
	vecs, norms := clusteredVecs(b, mDocs, mDim, 256, 0.25, 43)
	qm := Quantize(vecs)
	queries, qns := searchQueries(vecs, 16, 100)
	old := par.SetMaxProcs(1)
	defer par.SetMaxProcs(old)

	b.Run("float64", func(b *testing.B) {
		b.SetBytes(mDocs * mDim * 8)
		for i := 0; i < b.N; i++ {
			q := i % len(queries)
			exhaustive(vecs, norms, queries[q], qns[q], benchTopN)
		}
	})
	b.Run("int8-beta4", func(b *testing.B) {
		b.SetBytes(mDocs*mDim + mDocs*8)
		var buf []topk.Match
		for i := 0; i < b.N; i++ {
			q := i % len(queries)
			buf, _ = qm.AppendSearch(buf[:0], vecs, norms, queries[q], qns[q], benchTopN, 4)
		}
	})
}
