package quant

import (
	"sync"

	"repro/internal/mat"
	"repro/internal/par"
	"repro/internal/topk"
)

// DefaultBeta is the candidate over-fetch factor when a caller does not
// choose one: the quantized scan keeps topN·β candidates for the exact
// rerank. β = 4 sits on the flat part of the fidelity frontier measured
// in BENCH_10.json — top-10 overlap with the float path is ≥ 0.99 on
// corpusgen corpora while the rerank stays a rounding error next to the
// scan.
const DefaultBeta = 4

// ScanStats reports the work one quantized search performed; the serving
// layer aggregates it into lsi_quant_* metrics.
type ScanStats struct {
	// Scanned counts documents scored through the int8 kernel; Reranked
	// counts stage-2 candidates rescored with exact float64 kernels. When
	// the over-fetched candidate set would cover every document the scan
	// degenerates to a pure exact pass: Scanned is 0 and Reranked is the
	// full document count.
	Scanned  int
	Reranked int
}

// scanBlock is the number of documents scored per batched kernel call.
// The int32 dot buffer (4·scanBlock bytes) stays L1-resident and a block
// of code rows stays within L2 at any realistic rank, while one call's
// overhead amortizes over the whole block.
const scanBlock = 512

// scanScratch pools per-query quantized-search state: the widened
// quantized query, the block dot buffer, the bounded selection heap, and
// the candidate buffer.
type scanScratch struct {
	q8   []int8
	q16  []int16
	dots [scanBlock]int32
	heap topk.Heap
	cand []topk.Match
}

var scanPool = sync.Pool{New: func() any { return new(scanScratch) }}

// scanRange offers the stage-1 score of every document in [lo, hi) to a
// heap keeping the best `keep` — the quantized counterpart of
// projected.scoreRange, blocked so the hot loop is two cheap passes per
// block: mat.DotInt8Blocked streams the code rows into an L1-resident
// int32 buffer, then a threshold pass turns each dot into sn[j]·dot and
// offers only the survivors. The offered score is the true approximate
// cosine divided by the per-query constant qscale/qn; that constant is
// positive (or the dot is identically 0), so dropping it is a monotone
// transform — the kept candidate set is the same one the full cosine
// would keep, and stage 2 rescores it exactly anyway. A running copy of
// the heap's worst kept match turns the common case — a candidate that
// loses — into one comparison with no call. Integer dots are exact and
// the per-document score is a pure function of the stored codes, so the
// scan is bitwise-deterministic for any chunking.
func (m *Matrix) scanRange(sc *scanScratch, h *topk.Heap, q16 []int16, sn []float64, keep, lo, hi int) {
	dim := m.dim
	codes := m.codes
	var wScore float64
	wDoc, full := 0, false
	for base := lo; base < hi; base += scanBlock {
		nb := hi - base
		if nb > scanBlock {
			nb = scanBlock
		}
		dots := sc.dots[:nb]
		mat.DotInt8Blocked(q16, codes[base*dim:(base+nb)*dim], dots)
		for o, d := range dots {
			j := base + o
			t := sn[j] * float64(d)
			if full && (t < wScore || (t == wScore && j > wDoc)) {
				continue
			}
			h.Offer(topk.Match{Doc: j, Score: t})
			if h.Len() == keep {
				full = true
				w := h.Items()[0]
				wScore, wDoc = w.Score, w.Doc
			}
		}
	}
}

// scanDocs is scanRange over an explicit candidate list (the IVF
// composition path): positions [lo, hi) of docs are scored. The rows are
// gathered, not streamed, so there is nothing to block — each row is
// scored with the single-row kernel.
func (m *Matrix) scanDocs(h *topk.Heap, q16 []int16, sn []float64, docs []int32, keep, lo, hi int) {
	dim := m.dim
	codes := m.codes
	var wScore float64
	wDoc, full := 0, false
	for f := lo; f < hi; f++ {
		j := int(docs[f])
		d := mat.DotInt8Pre(q16, codes[j*dim:(j+1)*dim])
		t := sn[j] * float64(d)
		if full && (t < wScore || (t == wScore && j > wDoc)) {
			continue
		}
		h.Offer(topk.Match{Doc: j, Score: t})
		if h.Len() == keep {
			full = true
			w := h.Items()[0]
			wScore, wDoc = w.Score, w.Doc
		}
	}
}

// selectChunked runs bounded top-keep selection over [0, n), serial or
// chunk-parallel exactly like the float scan: one bounded heap per
// chunk, partials merged in chunk order. Selection under the strict
// (score desc, doc asc) total order is offer-order-insensitive, so the
// kept set is identical for every worker count. Results land in h.
func selectChunked(sc *scanScratch, h *topk.Heap, n, keep, grain int, scan func(sc *scanScratch, h *topk.Heap, lo, hi int)) {
	h.Reset(keep)
	if par.MaxProcs() == 1 || n <= grain {
		scan(sc, h, 0, n)
		return
	}
	partials := par.MapChunks(n, grain, func(lo, hi int) *scanScratch {
		csc := scanPool.Get().(*scanScratch)
		csc.heap.Reset(keep)
		scan(csc, &csc.heap, lo, hi)
		return csc
	})
	for _, csc := range partials {
		h.Merge(&csc.heap)
		scanPool.Put(csc)
	}
}

// search is the shared two-stage core. docs selects the candidate
// universe: nil means every document in the matrix (the full-scan path),
// otherwise it is a list of local document numbers (the IVF composition
// path, scanning only probed cells). Stage 1 keeps the topN·β best
// quantized scores; stage 2 rescores exactly those candidates with the
// float kernels and returns the topN best appended to dst.
func (m *Matrix) search(dst []topk.Match, docs []int32, vecs *mat.Dense, norms []float64, pq []float64, qn float64, topN, beta int) ([]topk.Match, ScanStats) {
	m.checkSearchArgs(vecs, norms, pq)
	n := m.NumDocs()
	if docs != nil {
		n = len(docs)
	}
	if n == 0 {
		return dst, ScanStats{}
	}
	keep := topN
	if keep <= 0 || keep > n {
		keep = n
	}
	if beta < 1 {
		beta = 1
	}
	cand := n
	if c := int64(keep) * int64(beta); c < int64(n) {
		cand = int(c)
	}

	sc := scanPool.Get().(*scanScratch)
	defer scanPool.Put(sc)
	h := &sc.heap

	exact := func(_ *scanScratch, h *topk.Heap, lo, hi int) {
		for f := lo; f < hi; f++ {
			j := f
			if docs != nil {
				j = int(docs[f])
			}
			h.Offer(topk.Match{Doc: j, Score: mat.DotNorm(pq, vecs.Row(j), qn, norms[j])})
		}
	}
	if cand >= n {
		// The over-fetch covers the whole universe: the quantized stage
		// cannot narrow anything, so score everything exactly once.
		selectChunked(sc, h, n, keep, par.GrainFor(2*m.dim+1), exact)
		return h.AppendSorted(dst), ScanStats{Reranked: n}
	}

	// Stage 1: quantize the query once, widen it to int16 for the
	// streaming kernel, scan codes, keep the cand best approximations.
	if cap(sc.q8) < m.dim {
		sc.q8 = make([]int8, m.dim)
		sc.q16 = make([]int16, m.dim)
	}
	q8, q16 := sc.q8[:m.dim], sc.q16[:m.dim]
	quantizeVec(q8, pq)
	for i, c := range q8 {
		q16[i] = int16(c)
	}
	sn := m.scaleOverNorms(norms)
	scan := func(csc *scanScratch, h *topk.Heap, lo, hi int) { m.scanRange(csc, h, q16, sn, cand, lo, hi) }
	if docs != nil {
		scan = func(_ *scanScratch, h *topk.Heap, lo, hi int) { m.scanDocs(h, q16, sn, docs, cand, lo, hi) }
	}
	selectChunked(sc, h, n, cand, par.GrainFor(m.dim/2+1), scan)
	sc.cand = h.AppendSorted(sc.cand[:0])

	// Stage 2: exact float64 rerank of the candidates restores the final
	// (score desc, doc asc) order with true cosines.
	h.Reset(keep)
	for _, c := range sc.cand {
		j := c.Doc
		h.Offer(topk.Match{Doc: j, Score: mat.DotNorm(pq, vecs.Row(j), qn, norms[j])})
	}
	return h.AppendSorted(dst), ScanStats{Scanned: n, Reranked: len(sc.cand)}
}

// AppendSearch appends the topN best matches for the projected query pq
// (with precomputed norm qn) to dst, scored two-stage: quantized scan of
// every document, exact rerank of the topN·beta over-fetched candidates.
// Matches carry LOCAL document numbers and exact float64 cosine scores,
// best-first under (score desc, doc asc). vecs and norms must be the
// float matrix this Matrix was quantized from; beta < 1 is treated as 1.
// Results are deterministic for every worker count.
func (m *Matrix) AppendSearch(dst []topk.Match, vecs *mat.Dense, norms []float64, pq []float64, qn float64, topN, beta int) ([]topk.Match, ScanStats) {
	return m.search(dst, nil, vecs, norms, pq, qn, topN, beta)
}

// AppendSearchDocs is AppendSearch restricted to an explicit candidate
// list of local document numbers — the composition point with the IVF
// tier, which hands over the documents of its probed cells so the in-cell
// scan runs on int8 codes while the rerank stays exact float64.
func (m *Matrix) AppendSearchDocs(dst []topk.Match, docs []int32, vecs *mat.Dense, norms []float64, pq []float64, qn float64, topN, beta int) ([]topk.Match, ScanStats) {
	return m.search(dst, docs, vecs, norms, pq, qn, topN, beta)
}
