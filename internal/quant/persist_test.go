package quant

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"
)

// frame assembles a wire frame from raw parts with a fresh checksum, so
// structural rejection tests are not stopped at the CRC.
func frame(dim, ndocs uint32, scales []float64, codes []byte) []byte {
	buf := append([]byte(nil), wireMagic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, WireVersion)
	buf = binary.LittleEndian.AppendUint32(buf, dim)
	buf = binary.LittleEndian.AppendUint32(buf, ndocs)
	for _, s := range scales {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s))
	}
	buf = append(buf, codes...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// reseal recomputes the trailing checksum after a test mutates the body.
func reseal(b []byte) []byte {
	return binary.LittleEndian.AppendUint32(b[:len(b)-4], crc32.ChecksumIEEE(b[:len(b)-4]))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vecs, _ := clusteredVecs(t, 300, 18, 5, 0.3, 21)
	qm := Quantize(vecs)
	got, err := Decode(qm.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.dim != qm.dim || got.NumDocs() != qm.NumDocs() {
		t.Fatalf("shape = (%d, %d), want (%d, %d)", got.NumDocs(), got.dim, qm.NumDocs(), qm.dim)
	}
	for i := range qm.codes {
		if got.codes[i] != qm.codes[i] {
			t.Fatalf("code %d differs after round trip", i)
		}
	}
	for j := range qm.scales {
		if math.Float64bits(got.scales[j]) != math.Float64bits(qm.scales[j]) {
			t.Fatalf("scale %d differs after round trip", j)
		}
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	vecs, _ := clusteredVecs(t, 100, 8, 4, 0.3, 22)
	a, b := Quantize(vecs).Encode(), Quantize(vecs).Encode()
	if string(a) != string(b) {
		t.Fatal("two encodings of the same matrix differ")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	vecs, _ := clusteredVecs(t, 40, 6, 3, 0.3, 23)
	enc := Quantize(vecs).Encode()
	// Flip one byte anywhere in the body: the checksum must catch it.
	for _, off := range []int{0, 7, wireHeaderLen + 3, len(enc) - 10} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decoded frame with corrupt byte %d", off)
		}
	}
	for cut := 0; cut < len(enc); cut += 13 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("decoded truncation at %d bytes", cut)
		}
	}
}

func TestDecodeRejectsMalformedStructure(t *testing.T) {
	okScales := []float64{0.5, 0.25}
	okCodes := []byte{1, 2, 3, 0xff, 0x7f, 0x81} // 0x81 = -127, 0x7f = 127
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", func() []byte {
			b := frame(3, 2, okScales, okCodes)
			b[0] = 'X'
			return reseal(b)
		}()},
		{"future version", func() []byte {
			b := frame(3, 2, okScales, okCodes)
			binary.LittleEndian.PutUint16(b[6:8], WireVersion+1)
			return reseal(b)
		}()},
		{"zero dim", frame(0, 2, okScales, nil)},
		{"zero ndocs", frame(3, 0, nil, nil)},
		{"short body", frame(3, 2, okScales, okCodes[:5])},
		{"long body", frame(3, 2, okScales, append(okCodes, 0))},
		{"nan scale", frame(3, 2, []float64{math.NaN(), 0.25}, okCodes)},
		{"inf scale", frame(3, 2, []float64{math.Inf(1), 0.25}, okCodes)},
		{"negative scale", frame(3, 2, []float64{-0.5, 0.25}, okCodes)},
		{"code -128", frame(3, 2, okScales, []byte{1, 2, 3, 4, 5, 0x80})},
		{"huge ndocs claim", frame(3, 1<<31-1, okScales, okCodes)},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.data); err == nil {
			t.Fatalf("%s: decode accepted malformed frame", tc.name)
		}
	}
	// Sanity: the well-formed control frame decodes.
	if _, err := Decode(frame(3, 2, okScales, okCodes)); err != nil {
		t.Fatalf("control frame rejected: %v", err)
	}
}

func TestDecodedMatrixSearches(t *testing.T) {
	// A decoded sidecar must behave exactly like the in-memory original.
	vecs, norms := clusteredVecs(t, 400, 12, 5, 0.3, 24)
	qm := Quantize(vecs)
	loaded, err := Decode(qm.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	queries, qns := searchQueries(vecs, 8, 25)
	for q := range queries {
		a, _ := qm.AppendSearch(nil, vecs, norms, queries[q], qns[q], 10, DefaultBeta)
		b, _ := loaded.AppendSearch(nil, vecs, norms, queries[q], qns[q], 10, DefaultBeta)
		sameMatches(t, "decoded matrix", b, a)
	}
}
