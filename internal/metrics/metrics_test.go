package metrics

import (
	"bufio"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// TestExpositionTable pins the exact text format line by line for every
// metric kind, including escaping of help strings and label values.
func TestExpositionTable(t *testing.T) {
	cases := []struct {
		name  string
		setup func(r *Registry)
		want  []string // exact expected output lines, in order
	}{
		{
			name: "counter",
			setup: func(r *Registry) {
				c := r.Counter("requests_total", "Total requests.")
				c.Add(41)
				c.Inc()
			},
			want: []string{
				"# HELP requests_total Total requests.",
				"# TYPE requests_total counter",
				"requests_total 42",
			},
		},
		{
			name: "labeled counters share one family header",
			setup: func(r *Registry) {
				r.Counter("http_requests_total", "Requests by route.",
					Label{"route", "search"}, Label{"code", "200"}).Add(7)
				r.Counter("http_requests_total", "Requests by route.",
					Label{"route", "docs"}, Label{"code", "429"}).Add(3)
			},
			want: []string{
				"# HELP http_requests_total Requests by route.",
				"# TYPE http_requests_total counter",
				`http_requests_total{code="200",route="search"} 7`,
				`http_requests_total{code="429",route="docs"} 3`,
			},
		},
		{
			name: "gauge",
			setup: func(r *Registry) {
				g := r.Gauge("inflight", "In-flight requests.")
				g.Set(5)
				g.Add(-2)
			},
			want: []string{
				"# HELP inflight In-flight requests.",
				"# TYPE inflight gauge",
				"inflight 3",
			},
		},
		{
			name: "gauge func evaluates at scrape",
			setup: func(r *Registry) {
				v := 2.5
				r.GaugeFunc("debt", "Compaction debt.", func() float64 { return v })
			},
			want: []string{
				"# HELP debt Compaction debt.",
				"# TYPE debt gauge",
				"debt 2.5",
			},
		},
		{
			name: "counter func",
			setup: func(r *Registry) {
				r.CounterFunc("cache_hits_total", "Cache hits.", func() float64 { return 99 })
			},
			want: []string{
				"# HELP cache_hits_total Cache hits.",
				"# TYPE cache_hits_total counter",
				"cache_hits_total 99",
			},
		},
		{
			name: "help escaping",
			setup: func(r *Registry) {
				r.Counter("esc_total", "line one\nline two \\ backslash")
			},
			want: []string{
				`# HELP esc_total line one\nline two \\ backslash`,
				"# TYPE esc_total counter",
				"esc_total 0",
			},
		},
		{
			name: "label value escaping",
			setup: func(r *Registry) {
				r.Gauge("esc_gauge", "Escapes.",
					Label{"path", `C:\tmp`}, Label{"q", "say \"hi\"\nbye"})
			},
			want: []string{
				"# HELP esc_gauge Escapes.",
				"# TYPE esc_gauge gauge",
				`esc_gauge{path="C:\\tmp",q="say \"hi\"\nbye"} 0`,
			},
		},
		{
			name: "histogram buckets cumulative with labels",
			setup: func(r *Registry) {
				h := r.Histogram("latency_seconds", "Latency.", []float64{0.001, 0.01, 0.1},
					Label{"route", "search"})
				for _, v := range []float64{0.0005, 0.0005, 0.005, 0.05, 7} {
					h.Observe(v)
				}
			},
			want: []string{
				"# HELP latency_seconds Latency.",
				"# TYPE latency_seconds histogram",
				`latency_seconds_bucket{route="search",le="0.001"} 2`,
				`latency_seconds_bucket{route="search",le="0.01"} 3`,
				`latency_seconds_bucket{route="search",le="0.1"} 4`,
				`latency_seconds_bucket{route="search",le="+Inf"} 5`,
				`latency_seconds_sum{route="search"} 7.056`,
				`latency_seconds_count{route="search"} 5`,
			},
		},
		{
			name: "boundary value lands in its le bucket",
			setup: func(r *Registry) {
				h := r.Histogram("edge_seconds", "Boundary.", []float64{1, 2})
				h.Observe(1) // le="1" is inclusive
				h.Observe(2.0000001)
			},
			want: []string{
				"# HELP edge_seconds Boundary.",
				"# TYPE edge_seconds histogram",
				`edge_seconds_bucket{le="1"} 1`,
				`edge_seconds_bucket{le="2"} 1`,
				`edge_seconds_bucket{le="+Inf"} 2`,
				"edge_seconds_sum 3.0000001",
				"edge_seconds_count 2",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.setup(r)
			got := strings.TrimRight(expose(t, r), "\n")
			want := strings.Join(tc.want, "\n")
			if got != want {
				t.Errorf("exposition mismatch\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestHistogramInvariants checks, over a generated observation set, the
// structural invariants every scraper relies on: bucket counts are
// nondecreasing in le, the +Inf bucket equals _count, and _sum matches
// the observations.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("inv_seconds", "Invariants.", ExponentialBuckets(1e-6, 2, 20))
	sum := 0.0
	n := 0
	for i := 0; i < 5000; i++ {
		v := math.Abs(math.Sin(float64(i))) * float64(i%97) * 1e-4
		h.Observe(v)
		sum += v
		n++
	}
	out := expose(t, r)
	var prev int64 = -1
	infSeen, countSeen := false, false
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.HasPrefix(line, "#") {
			continue
		}
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		switch {
		case strings.HasPrefix(fields[0], "inv_seconds_bucket"):
			if int64(val) < prev {
				t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, prev)
			}
			prev = int64(val)
			if strings.Contains(fields[0], `le="+Inf"`) {
				infSeen = true
				if int64(val) != int64(n) {
					t.Fatalf("+Inf bucket %d, want %d", int64(val), n)
				}
			}
		case fields[0] == "inv_seconds_count":
			countSeen = true
			if int64(val) != int64(n) {
				t.Fatalf("_count %d, want %d", int64(val), n)
			}
		case fields[0] == "inv_seconds_sum":
			if math.Abs(val-sum) > 1e-9*math.Abs(sum) {
				t.Fatalf("_sum %g, want %g", val, sum)
			}
		}
	}
	if !infSeen || !countSeen {
		t.Fatalf("missing +Inf bucket (%v) or _count (%v) in:\n%s", infSeen, countSeen, out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(1, 2, 12)) // 1..2048
	// Uniform 1..1000: the true q-quantile is ~1000q; the factor-2
	// buckets bound the estimate within its containing bucket.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q        float64
		lo, hi   float64 // containing bucket bounds for the true quantile
		wantNear float64
	}{
		{0.50, 256, 512, 500},
		{0.99, 512, 1024, 990},
		{0.999, 512, 1024, 999},
	}
	for _, tc := range cases {
		got := h.Quantile(tc.q)
		if got < tc.lo || got > tc.hi {
			t.Errorf("Quantile(%g) = %g, want within bucket [%g,%g] (true ~%g)",
				tc.q, got, tc.lo, tc.hi, tc.wantNear)
		}
	}
	if got := h.Quantile(0); got > 1 {
		t.Errorf("Quantile(0) = %g, want <= 1", got)
	}
	if got := h.Quantile(1); got != 1024 {
		t.Errorf("Quantile(1) = %g, want 1024 (upper bound of the 1000 bucket)", got)
	}

	empty := NewHistogram([]float64{1})
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %g, want 0", got)
	}

	over := NewHistogram([]float64{1, 2})
	over.Observe(100) // +Inf bucket clamps to the highest finite bound
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow Quantile = %g, want clamp to 2", got)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("a_total", "A.")
	mustPanic("duplicate series", func() { r.Counter("a_total", "A.") })
	mustPanic("type mismatch", func() { r.Gauge("a_total", "A.") })
	mustPanic("help mismatch", func() { r.Counter("a_total", "B.", Label{"x", "y"}) })
	mustPanic("bad metric name", func() { r.Counter("0bad", "Bad.") })
	mustPanic("bad label name", func() { r.Counter("b_total", "B.", Label{"0bad", "v"}) })
	mustPanic("duplicate label", func() {
		r.Counter("c_total", "C.", Label{"x", "1"}, Label{"x", "2"})
	})
	mustPanic("counter decrease", func() { r.Counter("d_total", "D.").Add(-1) })
	mustPanic("empty buckets", func() { NewHistogram(nil) })
	mustPanic("unsorted buckets", func() { NewHistogram([]float64{2, 1}) })
	mustPanic("inf bucket", func() { NewHistogram([]float64{1, math.Inf(1)}) })

	// Same name with distinct labels is the normal vector case — no panic.
	r.Counter("a_total", "A.", Label{"route", "x"})
}

// TestConcurrentScrape exercises observation concurrent with scraping;
// run under -race this pins the lock-free read path.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "C.")
	g := r.Gauge("cg", "G.")
	h := r.Histogram("ch_seconds", "H.", nil)
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(seed+i%100) * 1e-5)
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()
	for {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			if c.Value() != 8000 || h.Count() != 8000 {
				t.Fatalf("counter %d, hist %d, want 8000 each", c.Value(), h.Count())
			}
			return
		default:
		}
	}
}
