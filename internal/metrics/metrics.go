// Package metrics is the dependency-free instrumentation substrate
// behind lsiserve's GET /metrics endpoint: counters, gauges, and
// log-bucketed latency histograms, collected in a Registry that writes
// the Prometheus text exposition format (version 0.0.4).
//
// The package is deliberately small and allocation-conscious so it can
// sit on the query hot path: a Counter.Inc is one atomic add, a
// Histogram.Observe is two atomic adds plus a binary search over the
// bucket bounds, and nothing locks until scrape time. Callback metrics
// (GaugeFunc, CounterFunc) evaluate at scrape, which is how slow or
// derived readings — compaction debt, cache hit totals, epoch age —
// are exported without the instrumented subsystem importing this
// package.
//
// Registration happens once, at construction, and panics on misuse
// (duplicate series, name reuse across types, invalid metric names):
// those are programmer errors, caught by the first scrape of any test.
// Observation methods never panic and are safe for concurrent use.
//
// Histograms also answer quantile queries directly (Quantile, with the
// same linear-interpolation estimate Prometheus's histogram_quantile
// uses), which is what cmd/lsiload builds its p50/p99/p999 report on.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a series at
// registration time (e.g. route="search", shard="3").
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing counter. The zero value is
// usable, but series meant for exposition come from Registry.Counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; n must be >= 0 (counters only go up). Negative n panics.
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("metrics: counter decrease")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is usable.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the gauge (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets with upper bounds
// (plus an implicit +Inf bucket) and tracks their sum — the Prometheus
// histogram model. Create with NewHistogram or Registry.Histogram.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; +Inf is implicit
	buckets []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram over the given ascending
// bucket upper bounds (a trailing +Inf bound is implied and must not be
// passed). Panics on empty, unsorted, or non-finite bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("metrics: histogram bounds must be finite (+Inf is implicit)")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; past the end = +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly within the containing bucket — the
// same estimate Prometheus's histogram_quantile produces. Observations
// in the +Inf bucket clamp to the highest finite bound. Returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			if i == len(h.bounds) {
				// +Inf bucket: no upper bound to interpolate toward.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			inBucket := h.buckets[i].Load()
			if inBucket == 0 {
				return h.bounds[i]
			}
			below := float64(cum - inBucket)
			frac := (rank - below) / float64(inBucket)
			if frac < 0 {
				frac = 0
			}
			return lo + (h.bounds[i]-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// ExponentialBuckets returns n ascending bucket bounds starting at
// start and multiplying by factor — the log-spaced scheme every latency
// histogram in the repo uses. Panics unless start > 0, factor > 1, and
// n >= 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExponentialBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefLatencyBuckets is the default latency bucket scheme, in seconds:
// 25 powers of two from 1µs to ~16.8s. The factor-2 spacing bounds the
// worst-case quantile interpolation error at 2x while keeping the
// per-series footprint at 26 cells — wide enough to resolve both a
// 236ns cache hit rounding into the first bucket and a multi-second
// overload tail.
var DefLatencyBuckets = ExponentialBuckets(1e-6, 2, 25)

// metricType is the exposition TYPE of a family.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family; exactly one of the
// value fields is set.
type series struct {
	labels  string // pre-rendered `name="value",...` without braces
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // CounterFunc / GaugeFunc
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry holds registered metrics and renders them in the Prometheus
// text format. Create with NewRegistry; methods are safe for concurrent
// use, though registration normally happens once at construction.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain
// ':', checked by the caller).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels validates and pre-renders a label set (sorted by name,
// values escaped) so scrape-time output needs no work per series.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Name) || strings.ContainsRune(l.Name, ':') {
			panic(fmt.Sprintf("metrics: invalid label name %q", l.Name))
		}
		if i > 0 {
			if ls[i-1].Name == l.Name {
				panic(fmt.Sprintf("metrics: duplicate label name %q", l.Name))
			}
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// register adds a series under (name, labels), creating the family on
// first use and enforcing that a reused name keeps its type and help.
func (r *Registry) register(name, help string, typ metricType, labels []Label, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.order = append(r.order, f)
	} else {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, f.typ, typ))
		}
		if f.help != help {
			panic(fmt.Sprintf("metrics: %s registered with two different help strings", name))
		}
	}
	for _, prev := range f.series {
		if prev.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s{%s}", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, counterType, labels, &series{counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, gaugeType, labels, &series{gauge: g})
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time. fn must be monotonically non-decreasing and safe for concurrent
// use — the idiom for exporting counters an existing subsystem already
// tracks (cache hits, compactions) without instrumenting its hot path.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, counterType, labels, &series{fn: fn})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time; fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, gaugeType, labels, &series{fn: fn})
}

// Histogram registers and returns a histogram series over the given
// bucket bounds (see NewHistogram; nil picks DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	h := NewHistogram(bounds)
	r.register(name, help, histogramType, labels, &series{hist: h})
	return h
}

// escapeHelp escapes a HELP string per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the text format:
// backslash, newline, and double quote.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value the way Prometheus expects
// (shortest round-trippable form; infinities as +Inf/-Inf).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// sampleLine writes one `name{labels} value` line.
func sampleLine(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// joinLabels merges a pre-rendered label string with one extra pair
// (used for histogram `le` labels).
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (families in registration order, one HELP and
// TYPE line each). Histogram buckets are cumulative and always include
// the +Inf bucket, whose value equals the family's _count — the
// invariants the exposition tests pin.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.order {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				sampleLine(&b, f.name, s.labels, strconv.FormatInt(s.counter.Value(), 10))
			case s.gauge != nil:
				sampleLine(&b, f.name, s.labels, formatValue(s.gauge.Value()))
			case s.fn != nil:
				sampleLine(&b, f.name, s.labels, formatValue(s.fn()))
			case s.hist != nil:
				h := s.hist
				// Load each bucket once; deriving count and +Inf from the
				// same loads keeps the cumulativity and bucket/_count
				// invariants exact even under concurrent Observes.
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.buckets[i].Load()
					le := `le="` + formatValue(bound) + `"`
					sampleLine(&b, f.name+"_bucket", joinLabels(s.labels, le), strconv.FormatInt(cum, 10))
				}
				cum += h.buckets[len(h.bounds)].Load()
				sampleLine(&b, f.name+"_bucket", joinLabels(s.labels, `le="+Inf"`), strconv.FormatInt(cum, 10))
				sampleLine(&b, f.name+"_sum", s.labels, formatValue(h.Sum()))
				sampleLine(&b, f.name+"_count", s.labels, strconv.FormatInt(cum, 10))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
