package ir

import "fmt"

// PrecisionAtK returns the fraction of the first k retrieved documents that
// are relevant. If fewer than k documents were retrieved the denominator is
// still k (standard convention). It panics if k < 1.
func PrecisionAtK(retrieved []int, relevant map[int]bool, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("ir: PrecisionAtK k=%d", k))
	}
	hits := 0
	for i, d := range retrieved {
		if i >= k {
			break
		}
		if relevant[d] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns the fraction of all relevant documents found within the
// first k retrieved. It returns 0 if there are no relevant documents.
func RecallAtK(retrieved []int, relevant map[int]bool, k int) float64 {
	if k < 1 {
		panic(fmt.Sprintf("ir: RecallAtK k=%d", k))
	}
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	for i, d := range retrieved {
		if i >= k {
			break
		}
		if relevant[d] {
			hits++
		}
	}
	return float64(hits) / float64(len(relevant))
}

// AveragePrecision returns the average of precision values at each relevant
// document's rank (AP). It returns 0 if there are no relevant documents.
func AveragePrecision(retrieved []int, relevant map[int]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	var sum float64
	for i, d := range retrieved {
		if relevant[d] {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(len(relevant))
}

// MeanAveragePrecision averages AP over queries. Each entry pairs a ranked
// retrieval list with its relevance set.
func MeanAveragePrecision(runs []RankedRun) float64 {
	if len(runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range runs {
		sum += AveragePrecision(r.Retrieved, r.Relevant)
	}
	return sum / float64(len(runs))
}

// RankedRun is one query's ranked retrieval output and ground truth.
type RankedRun struct {
	Retrieved []int
	Relevant  map[int]bool
}

// F1 returns the harmonic mean of precision and recall (0 if both are 0).
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// InterpolatedPrecision returns the standard 11-point interpolated
// precision curve: for recall levels 0.0, 0.1, …, 1.0, the maximum
// precision at any rank with recall ≥ that level. All points are 0 when
// there are no relevant documents.
func InterpolatedPrecision(retrieved []int, relevant map[int]bool) [11]float64 {
	var curve [11]float64
	if len(relevant) == 0 {
		return curve
	}
	// Precision/recall at every rank.
	type pr struct{ p, r float64 }
	var points []pr
	hits := 0
	for i, d := range retrieved {
		if relevant[d] {
			hits++
		}
		points = append(points, pr{
			p: float64(hits) / float64(i+1),
			r: float64(hits) / float64(len(relevant)),
		})
	}
	for level := 0; level <= 10; level++ {
		r := float64(level) / 10
		var best float64
		for _, pt := range points {
			if pt.r >= r-1e-12 && pt.p > best {
				best = pt.p
			}
		}
		curve[level] = best
	}
	return curve
}
