package ir

// defaultStopwords is a standard English stopword list (the classic van
// Rijsbergen-derived set, trimmed to the words that actually occur in
// typical corpora). Removing them is the preprocessing step the paper cites
// when arguing that ε-separability is realistic.
var defaultStopwords = map[string]bool{
	"a": true, "about": true, "above": true, "after": true, "again": true,
	"against": true, "all": true, "am": true, "an": true, "and": true,
	"any": true, "are": true, "as": true, "at": true, "be": true,
	"because": true, "been": true, "before": true, "being": true,
	"below": true, "between": true, "both": true, "but": true, "by": true,
	"can": true, "cannot": true, "could": true, "did": true, "do": true,
	"does": true, "doing": true, "down": true, "during": true, "each": true,
	"few": true, "for": true, "from": true, "further": true, "had": true,
	"has": true, "have": true, "having": true, "he": true, "her": true,
	"here": true, "hers": true, "herself": true, "him": true,
	"himself": true, "his": true, "how": true, "i": true, "if": true,
	"in": true, "into": true, "is": true, "it": true, "its": true,
	"itself": true, "me": true, "more": true, "most": true, "my": true,
	"myself": true, "no": true, "nor": true, "not": true, "of": true,
	"off": true, "on": true, "once": true, "only": true, "or": true,
	"other": true, "ought": true, "our": true, "ours": true,
	"ourselves": true, "out": true, "over": true, "own": true, "same": true,
	"she": true, "should": true, "so": true, "some": true, "such": true,
	"than": true, "that": true, "the": true, "their": true, "theirs": true,
	"them": true, "themselves": true, "then": true, "there": true,
	"these": true, "they": true, "this": true, "those": true,
	"through": true, "to": true, "too": true, "under": true, "until": true,
	"up": true, "very": true, "was": true, "we": true, "were": true,
	"what": true, "when": true, "where": true, "which": true, "while": true,
	"who": true, "whom": true, "why": true, "with": true, "would": true,
	"you": true, "your": true, "yours": true, "yourself": true,
	"yourselves": true,
}

// IsStopword reports whether the (lowercase) token is in the default
// English stopword list.
func IsStopword(token string) bool { return defaultStopwords[token] }

// Stopwords returns a copy of the default stopword list.
func Stopwords() []string {
	out := make([]string, 0, len(defaultStopwords))
	for w := range defaultStopwords {
		out = append(out, w)
	}
	return out
}
