package ir

// Stem reduces an English word to its Porter stem (M. F. Porter, "An
// algorithm for suffix stripping", Program 14(3), 1980). The implementation
// is a faithful port of Porter's reference algorithm, including the two
// published departures (abli→able as bli→ble, and the logi→log rule).
// Input is expected to be a lowercase word; words of length ≤ 2 are
// returned unchanged.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	s := &porterStemmer{b: []byte(word), k: len(word) - 1}
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b[:s.k+1])
}

type porterStemmer struct {
	b []byte
	k int // index of the last character of the current word
	j int // end of the stem for condition checks, set by ends
}

// cons reports whether b[i] is a consonant.
func (s *porterStemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	default:
		return true
	}
}

// m measures the number of consonant-vowel sequences in b[0..j]:
// [C](VC)^m[V] has measure m.
func (s *porterStemmer) m() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *porterStemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doublec reports whether b[j-1..j] is a double consonant.
func (s *porterStemmer) doublec(j int) bool {
	if j < 1 {
		return false
	}
	if s.b[j] != s.b[j-1] {
		return false
	}
	return s.cons(j)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant with the final
// consonant not w, x or y (used to restore a trailing e, as in hop(e)).
func (s *porterStemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether the word ends with suffix; if so it sets j to the
// stem end.
func (s *porterStemmer) ends(suffix string) bool {
	l := len(suffix)
	if l > s.k+1 {
		return false
	}
	if string(s.b[s.k+1-l:s.k+1]) != suffix {
		return false
	}
	s.j = s.k - l
	return true
}

// setto replaces the suffix after j with the given string.
func (s *porterStemmer) setto(repl string) {
	s.b = append(s.b[:s.j+1], repl...)
	s.k = s.j + len(repl)
}

// r replaces the suffix if the stem measure is positive.
func (s *porterStemmer) r(repl string) {
	if s.m() > 0 {
		s.setto(repl)
	}
}

func (s *porterStemmer) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setto("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setto("ate")
		case s.ends("bl"):
			s.setto("ble")
		case s.ends("iz"):
			s.setto("ize")
		case s.doublec(s.k):
			s.k--
			switch s.b[s.k] {
			case 'l', 's', 'z':
				s.k++
			}
		default:
			if s.m() == 1 && s.cvc(s.k) {
				s.j = s.k
				s.setto("e")
			}
		}
	}
}

func (s *porterStemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

func (s *porterStemmer) step2() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if s.ends("ational") {
			s.r("ate")
		} else if s.ends("tional") {
			s.r("tion")
		}
	case 'c':
		if s.ends("enci") {
			s.r("ence")
		} else if s.ends("anci") {
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		if s.ends("bli") {
			s.r("ble") // departure: abli→able stated as bli→ble
		} else if s.ends("alli") {
			s.r("al")
		} else if s.ends("entli") {
			s.r("ent")
		} else if s.ends("eli") {
			s.r("e")
		} else if s.ends("ousli") {
			s.r("ous")
		}
	case 'o':
		if s.ends("ization") {
			s.r("ize")
		} else if s.ends("ation") {
			s.r("ate")
		} else if s.ends("ator") {
			s.r("ate")
		}
	case 's':
		if s.ends("alism") {
			s.r("al")
		} else if s.ends("iveness") {
			s.r("ive")
		} else if s.ends("fulness") {
			s.r("ful")
		} else if s.ends("ousness") {
			s.r("ous")
		}
	case 't':
		if s.ends("aliti") {
			s.r("al")
		} else if s.ends("iviti") {
			s.r("ive")
		} else if s.ends("biliti") {
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log") // departure
		}
	}
}

func (s *porterStemmer) step3() {
	switch s.b[s.k] {
	case 'e':
		if s.ends("icate") {
			s.r("ic")
		} else if s.ends("ative") {
			s.r("")
		} else if s.ends("alize") {
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		if s.ends("ical") {
			s.r("ic")
		} else if s.ends("ful") {
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

func (s *porterStemmer) step4() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") && s.j >= 0 && (s.b[s.j] == 's' || s.b[s.j] == 't') {
			// ok
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.k = s.j
	}
}

func (s *porterStemmer) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doublec(s.k) && s.m() > 1 {
		s.k--
	}
}
