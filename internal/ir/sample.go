package ir

// SampleCorpus is a small labeled plain-text corpus used by the examples
// and the end-to-end integration tests: three themes (vehicles, astronomy,
// cooking) with deliberate synonym variation inside each theme ("car" vs
// "automobile", "galaxy" vs "cosmos", "sauce" vs "gravy") so the LSI-vs-VSM
// comparisons of the paper's introduction can be exercised on text.
var SampleCorpus = []SampleDoc{
	// Theme 0: vehicles. Even docs say "car", odd docs say "automobile".
	{0, "The car dealership sells used cars, and the mechanic inspects every engine before delivery."},
	{0, "An automobile dealership services automobile engines, brakes and transmissions for customers."},
	{0, "The car driver praised the mechanic after the engine repair and brake adjustment."},
	{0, "Automobile insurance covers engine damage, brake failure and collision repair costs."},
	{0, "A racing car needs a tuned engine, fresh tires and precise brakes to win."},
	{0, "The automobile factory assembles engines, fits brakes and paints each vehicle body."},
	{0, "Car maintenance includes engine oil changes, brake checks and tire rotation."},
	{0, "The automobile show displayed vintage engines and hand-built vehicle bodies."},
	// Theme 1: astronomy. Even docs say "galaxy", odd docs say "cosmos".
	{1, "Astronomers observed the galaxy through a telescope and charted its brightest stars."},
	{1, "The cosmos contains billions of stars, and telescopes reveal planets orbiting them."},
	{1, "A spiral galaxy rotates slowly while its stars drift around the luminous core."},
	{1, "Probes sent into the cosmos photograph planets, moons and distant stars."},
	{1, "The galaxy survey mapped stars and measured distances with orbital telescopes."},
	{1, "Radiation from the early cosmos still reaches telescopes as faint background light."},
	{1, "Star clusters within the galaxy form from collapsing clouds of gas."},
	{1, "The expanding cosmos carries stars and planets ever farther apart."},
	// Theme 2: cooking. Even docs say "sauce", odd docs say "gravy".
	{2, "The tomato sauce simmers with garlic, basil and olive oil in the pan."},
	{2, "A rich gravy needs butter, flour and slow stirring over gentle heat in the pan."},
	{2, "Pasta with garlic sauce tastes best with fresh basil and grated cheese."},
	{2, "Roast dinners pair with onion gravy, butter-soft potatoes and seasonal greens."},
	{2, "Reduce the sauce over heat until it coats the back of a spoon."},
	{2, "Whisk the gravy constantly so the flour thickens without lumps in the pan."},
	{2, "A splash of wine deepens the sauce before the garlic and basil go in."},
	{2, "Strain the gravy, season with pepper and serve it hot over the roast."},
}

// SampleDoc is one labeled document of the sample corpus.
type SampleDoc struct {
	Theme int
	Text  string
}

// SampleTexts returns just the texts of the sample corpus, in order.
func SampleTexts() []string {
	out := make([]string, len(SampleCorpus))
	for i, d := range SampleCorpus {
		out[i] = d.Text
	}
	return out
}

// SampleLabels returns the theme labels of the sample corpus, in order.
func SampleLabels() []int {
	out := make([]int, len(SampleCorpus))
	for i, d := range SampleCorpus {
		out[i] = d.Theme
	}
	return out
}
