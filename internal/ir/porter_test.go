package ir

import "testing"

// Known input/output pairs from Porter's 1980 paper and the reference
// implementation's vocabulary test.
func TestStemKnownPairs(t *testing.T) {
	pairs := map[string]string{
		// Step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c
		"happy": "happi",
		"sky":   "sky",
		// Step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5
		"probate": "probat",
		"rate":    "rate",
		"cease":   "ceas",
		"roll":    "roll",
		// Paper-domain words (sanity checks for the LSI examples)
		"indexing":   "index",
		"retrieval":  "retriev",
		"documents":  "document",
		"semantic":   "semant",
		"projection": "project",
	}
	for in, want := range pairs {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"", "a", "is", "go", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should usually be a no-op; verify on a realistic word
	// list (idempotence is not guaranteed by the algorithm in general, but
	// holds for this vocabulary and guards against index-corruption bugs).
	words := []string{
		"information", "retrieval", "latent", "semantic", "indexing",
		"probabilistic", "analysis", "matrices", "singular", "values",
		"decomposition", "topics", "documents", "corpora", "projection",
		"random", "spectral", "synonymy", "polysemy", "conductance",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not idempotent on %q: %q -> %q", w, once, twice)
		}
	}
}

func TestStemMergesInflections(t *testing.T) {
	// The property LSI preprocessing relies on: morphological variants
	// collapse to one vocabulary entry.
	groups := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"retrieve", "retrieval", "retrieved", "retrieving"},
		{"index", "indexing", "indexed"},
	}
	for _, g := range groups {
		stem := Stem(g[0])
		for _, w := range g[1:] {
			if Stem(w) != stem {
				t.Errorf("Stem(%q) = %q, want %q (group %v)", w, Stem(w), stem, g)
			}
		}
	}
}
