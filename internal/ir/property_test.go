package ir

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

// Property: tokens are non-empty and consist only of letters that are
// fixed points of ToLower (some scripts' uppercase letters have no
// lowercase mapping, e.g. mathematical capitals, so "not IsUpper" would be
// too strict).
func TestTokenizePropertyLettersOnly(t *testing.T) {
	f := func(text string) bool {
		for _, tok := range Tokenize(text) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) || r != unicode.ToLower(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(201))}); err != nil {
		t.Error(err)
	}
}

// Property: tokenizing the joined tokens is a fixed point.
func TestTokenizePropertyIdempotent(t *testing.T) {
	f := func(text string) bool {
		once := Tokenize(text)
		again := Tokenize(strings.Join(once, " "))
		if len(once) != len(again) {
			return false
		}
		for i := range once {
			if once[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(202))}); err != nil {
		t.Error(err)
	}
}

// Property: the stemmer never panics and never grows a word by more than
// one character (the e-restoration in step 1b is the only lengthening
// rule, and it fires after a longer suffix was removed).
func TestStemPropertySafe(t *testing.T) {
	f := func(raw string) bool {
		// Feed it realistic input: a lowercase letter token.
		toks := Tokenize(raw)
		for _, tok := range toks {
			out := Stem(tok)
			if len(out) > len(tok) {
				return false
			}
			if out == "" && len(tok) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(203))}); err != nil {
		t.Error(err)
	}
}

// Property: pipeline documents have strictly ascending terms with positive
// counts summing to the processed token count.
func TestPipelinePropertyDocumentInvariants(t *testing.T) {
	p := NewPipeline()
	f := func(text string) bool {
		d := p.Process(0, text)
		want := len(p.Terms(text))
		got := 0
		prev := -1
		for i, term := range d.Terms {
			if term <= prev {
				return false
			}
			prev = term
			if d.Counts[i] < 1 {
				return false
			}
			got += d.Counts[i]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(204))}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{
		"relational", "conditional", "probabilistic", "indexing",
		"decomposition", "retrieval", "conductance", "projections",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("Latent semantic indexing, a probabilistic analysis of spectral methods! ", 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkPipelineProcess(b *testing.B) {
	p := NewPipeline()
	text := strings.Repeat("the latent semantic indexing of documents retrieves synonymous terms across corpora ", 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Process(i, text)
	}
}
