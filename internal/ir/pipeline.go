package ir

import (
	"fmt"
	"sort"

	"repro/internal/corpus"
)

// Vocabulary assigns stable integer IDs to terms in order of first
// appearance.
type Vocabulary struct {
	ids   map[string]int
	terms []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: map[string]int{}}
}

// NewVocabularyFromTerms rebuilds a vocabulary from a term list in ID order
// (the inverse of Terms). It returns an error on duplicate terms, which
// would make term→ID lookups ambiguous.
func NewVocabularyFromTerms(terms []string) (*Vocabulary, error) {
	v := &Vocabulary{ids: make(map[string]int, len(terms)), terms: append([]string(nil), terms...)}
	for id, t := range v.terms {
		if prev, ok := v.ids[t]; ok {
			return nil, fmt.Errorf("ir: duplicate term %q at IDs %d and %d", t, prev, id)
		}
		v.ids[t] = id
	}
	return v, nil
}

// Terms returns the terms in ID order (a copy; the vocabulary is not
// affected by mutations of the result).
func (v *Vocabulary) Terms() []string {
	return append([]string(nil), v.terms...)
}

// IDOf returns the ID of a term, adding it if unseen.
func (v *Vocabulary) IDOf(term string) int {
	if id, ok := v.ids[term]; ok {
		return id
	}
	id := len(v.terms)
	v.ids[term] = id
	v.terms = append(v.terms, term)
	return id
}

// Lookup returns the ID of a term and whether it is known.
func (v *Vocabulary) Lookup(term string) (int, bool) {
	id, ok := v.ids[term]
	return id, ok
}

// Term returns the term with the given ID.
func (v *Vocabulary) Term(id int) string {
	if id < 0 || id >= len(v.terms) {
		panic(fmt.Sprintf("ir: term ID %d out of range [0,%d)", id, len(v.terms)))
	}
	return v.terms[id]
}

// Size returns the number of distinct terms.
func (v *Vocabulary) Size() int { return len(v.terms) }

// Pipeline converts raw text into corpus documents: tokenize, optionally
// drop stopwords, optionally stem, then map terms to vocabulary IDs.
type Pipeline struct {
	// RemoveStopwords drops tokens in the default English stopword list
	// (before stemming).
	RemoveStopwords bool
	// Stemming applies the Porter stemmer to each surviving token.
	Stemming bool
	// Vocab accumulates term IDs across every document processed by this
	// pipeline; nil means a fresh vocabulary is allocated on first use.
	Vocab *Vocabulary
}

// NewPipeline returns a pipeline with stopword removal and stemming on.
func NewPipeline() *Pipeline {
	return &Pipeline{RemoveStopwords: true, Stemming: true, Vocab: NewVocabulary()}
}

// Terms runs the token-level stages on a text and returns the processed
// term strings (after stopword removal and stemming, before ID mapping).
func (p *Pipeline) Terms(text string) []string {
	var out []string
	for _, tok := range Tokenize(text) {
		if p.RemoveStopwords && IsStopword(tok) {
			continue
		}
		if p.Stemming {
			tok = Stem(tok)
		}
		if tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

// Process converts one text into a corpus.Document with the given ID,
// growing the shared vocabulary as needed. A document may come out empty
// (all tokens stopworded away); that is not an error.
func (p *Pipeline) Process(id int, text string) corpus.Document {
	if p.Vocab == nil {
		p.Vocab = NewVocabulary()
	}
	counts := map[int]int{}
	for _, term := range p.Terms(text) {
		counts[p.Vocab.IDOf(term)]++
	}
	terms := make([]int, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Ints(terms)
	cs := make([]int, len(terms))
	for i, t := range terms {
		cs[i] = counts[t]
	}
	return corpus.Document{ID: id, Terms: terms, Counts: cs}
}

// ProcessAll converts a batch of texts into a corpus over the pipeline's
// shared vocabulary.
func (p *Pipeline) ProcessAll(texts []string) *corpus.Corpus {
	docs := make([]corpus.Document, len(texts))
	for i, t := range texts {
		docs[i] = p.Process(i, t)
	}
	if p.Vocab == nil {
		p.Vocab = NewVocabulary()
	}
	return &corpus.Corpus{NumTerms: p.Vocab.Size(), Docs: docs}
}
