package ir

import (
	"math"
	"testing"
)

func rel(ids ...int) map[int]bool {
	m := map[int]bool{}
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestPrecisionAtK(t *testing.T) {
	retrieved := []int{1, 2, 3, 4, 5}
	relevant := rel(1, 3, 9)
	if got := PrecisionAtK(retrieved, relevant, 1); got != 1 {
		t.Fatalf("P@1 = %v", got)
	}
	if got := PrecisionAtK(retrieved, relevant, 5); got != 0.4 {
		t.Fatalf("P@5 = %v", got)
	}
	// k beyond list length keeps denominator k.
	if got := PrecisionAtK(retrieved, relevant, 10); got != 0.2 {
		t.Fatalf("P@10 = %v", got)
	}
}

func TestRecallAtK(t *testing.T) {
	retrieved := []int{1, 2, 3}
	relevant := rel(1, 3, 9)
	if got := RecallAtK(retrieved, relevant, 3); math.Abs(got-2.0/3) > 1e-14 {
		t.Fatalf("R@3 = %v", got)
	}
	if got := RecallAtK(retrieved, map[int]bool{}, 3); got != 0 {
		t.Fatalf("R with no relevant = %v", got)
	}
}

func TestEvalPanics(t *testing.T) {
	for i, f := range []func(){
		func() { PrecisionAtK(nil, nil, 0) },
		func() { RecallAtK(nil, nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAveragePrecision(t *testing.T) {
	// Relevant at ranks 1 and 3 of {1,2,3}: AP = (1/1 + 2/3)/2 = 5/6.
	got := AveragePrecision([]int{1, 2, 3}, rel(1, 3))
	if math.Abs(got-5.0/6) > 1e-14 {
		t.Fatalf("AP = %v, want 5/6", got)
	}
	// Missing relevant documents lower AP.
	got = AveragePrecision([]int{1}, rel(1, 99))
	if math.Abs(got-0.5) > 1e-14 {
		t.Fatalf("AP with missing relevant = %v, want 0.5", got)
	}
	if AveragePrecision([]int{1}, map[int]bool{}) != 0 {
		t.Fatal("AP with no relevant should be 0")
	}
	// Perfect ranking has AP = 1.
	if AveragePrecision([]int{4, 7}, rel(4, 7)) != 1 {
		t.Fatal("perfect AP should be 1")
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	runs := []RankedRun{
		{Retrieved: []int{1}, Relevant: rel(1)},    // AP 1
		{Retrieved: []int{2, 1}, Relevant: rel(1)}, // AP 0.5
	}
	if got := MeanAveragePrecision(runs); math.Abs(got-0.75) > 1e-14 {
		t.Fatalf("MAP = %v", got)
	}
	if MeanAveragePrecision(nil) != 0 {
		t.Fatal("MAP of no runs should be 0")
	}
}

func TestF1(t *testing.T) {
	if got := F1(0.5, 0.5); got != 0.5 {
		t.Fatalf("F1 = %v", got)
	}
	if F1(0, 0) != 0 {
		t.Fatal("F1(0,0) should be 0")
	}
	if got := F1(1, 0.5); math.Abs(got-2.0/3) > 1e-14 {
		t.Fatalf("F1(1,0.5) = %v", got)
	}
}

func TestInterpolatedPrecision(t *testing.T) {
	// One relevant doc at rank 2 of 2: precision 0.5 at recall 1.
	curve := InterpolatedPrecision([]int{5, 1}, rel(1))
	for level := 0; level <= 10; level++ {
		if math.Abs(curve[level]-0.5) > 1e-14 {
			t.Fatalf("curve[%d] = %v, want 0.5", level, curve[level])
		}
	}
	// Perfect single hit at rank 1: all levels 1.
	curve = InterpolatedPrecision([]int{1}, rel(1))
	for level := 0; level <= 10; level++ {
		if curve[level] != 1 {
			t.Fatalf("perfect curve[%d] = %v", level, curve[level])
		}
	}
	// No relevant: all zero.
	curve = InterpolatedPrecision([]int{1}, map[int]bool{})
	for _, p := range curve {
		if p != 0 {
			t.Fatal("no-relevant curve should be all zeros")
		}
	}
	// Monotone non-increasing by construction.
	curve = InterpolatedPrecision([]int{1, 9, 2, 8, 3}, rel(1, 2, 3))
	for level := 1; level <= 10; level++ {
		if curve[level] > curve[level-1]+1e-14 {
			t.Fatalf("interpolated curve not non-increasing at %d: %v", level, curve)
		}
	}
}
