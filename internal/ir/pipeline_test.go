package ir

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The QUICK  brown-fox, jumps 42 times! Ünïcode läuft.")
	want := []string{"the", "quick", "brown", "fox", "jumps", "times", "ünïcode", "läuft"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize empty = %v", got)
	}
	if got := Tokenize("123 456 !!!"); len(got) != 0 {
		t.Fatalf("Tokenize digits = %v", got)
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "is"} {
		if !IsStopword(w) {
			t.Errorf("%q should be a stopword", w)
		}
	}
	for _, w := range []string{"automobile", "galaxy", "starship"} {
		if IsStopword(w) {
			t.Errorf("%q should not be a stopword", w)
		}
	}
	if len(Stopwords()) < 100 {
		t.Fatalf("stopword list suspiciously small: %d", len(Stopwords()))
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	a := v.IDOf("alpha")
	b := v.IDOf("beta")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if v.IDOf("alpha") != a {
		t.Fatal("ID not stable")
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d", v.Size())
	}
	if v.Term(a) != "alpha" || v.Term(b) != "beta" {
		t.Fatal("Term lookup wrong")
	}
	if id, ok := v.Lookup("beta"); !ok || id != b {
		t.Fatal("Lookup wrong")
	}
	if _, ok := v.Lookup("gamma"); ok {
		t.Fatal("Lookup of unknown term should be !ok")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range Term")
		}
	}()
	v.Term(99)
}

func TestPipelineTerms(t *testing.T) {
	p := NewPipeline()
	got := p.Terms("The cars are driving on the motorways")
	// "the", "are", "on" are stopwords; stems: car, drive, motorway.
	want := []string{"car", "drive", "motorwai"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Terms = %v, want %v", got, want)
	}
	raw := &Pipeline{RemoveStopwords: false, Stemming: false}
	got = raw.Terms("The cars")
	if !reflect.DeepEqual(got, []string{"the", "cars"}) {
		t.Fatalf("raw Terms = %v", got)
	}
}

func TestPipelineProcess(t *testing.T) {
	p := NewPipeline()
	d := p.Process(7, "cars car CARS driving")
	if d.ID != 7 {
		t.Fatalf("ID = %d", d.ID)
	}
	// car ×3, drive ×1.
	carID, ok := p.Vocab.Lookup("car")
	if !ok {
		t.Fatal("car not in vocabulary")
	}
	if d.Count(carID) != 3 {
		t.Fatalf("car count = %d", d.Count(carID))
	}
	if d.Length() != 4 {
		t.Fatalf("Length = %d", d.Length())
	}
	// Empty document is fine.
	e := p.Process(8, "the of and")
	if len(e.Terms) != 0 || e.Length() != 0 {
		t.Fatalf("stopword-only doc not empty: %+v", e)
	}
}

func TestPipelineProcessAllSharedVocab(t *testing.T) {
	p := NewPipeline()
	c := p.ProcessAll([]string{
		"galaxies and starships",
		"the starship galaxy",
	})
	if len(c.Docs) != 2 {
		t.Fatalf("docs = %d", len(c.Docs))
	}
	if c.NumTerms != p.Vocab.Size() {
		t.Fatalf("NumTerms %d != vocab %d", c.NumTerms, p.Vocab.Size())
	}
	// "galaxies"→galaxi? Porter: galaxies→galaxi; galaxy→galaxi. Shared stem.
	id, ok := p.Vocab.Lookup("galaxi")
	if !ok {
		t.Fatal("stem galaxi missing")
	}
	if c.Docs[0].Count(id) != 1 || c.Docs[1].Count(id) != 1 {
		t.Fatal("shared stem not counted in both docs")
	}
}

func TestPipelineNilVocabAutofill(t *testing.T) {
	p := &Pipeline{Stemming: true}
	d := p.Process(0, "hello worlds")
	if p.Vocab == nil || p.Vocab.Size() == 0 || len(d.Terms) != 2 {
		t.Fatal("nil vocab not autofilled")
	}
}
