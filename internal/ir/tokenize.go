// Package ir provides the text-processing substrate an LSI system needs to
// run on real documents rather than pre-built matrices: a tokenizer, an
// English stopword list (the paper notes ε-separability is "reasonably
// realistic, since documents are usually preprocessed to eliminate
// commonly-occurring stop-words"), the Porter stemmer, a vocabulary
// builder, and the standard retrieval-evaluation metrics (precision,
// recall, average precision, 11-point interpolated curves) used to compare
// LSI against the conventional vector-space baseline.
package ir

import (
	"strings"
	"unicode"
)

// Tokenize lowercases the text and splits it into maximal runs of letters.
// Digits, punctuation, and symbols separate tokens; the result contains no
// empty strings.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) {
			b.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}
