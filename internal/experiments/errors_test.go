package experiments

import "testing"

// Error-path coverage: every Run* function must reject inconsistent
// configurations with an error rather than panicking or producing silent
// garbage.

func TestRunTable1InvalidCorpus(t *testing.T) {
	cfg := SmallTable1Config()
	cfg.Corpus.NumTopics = 0
	if _, err := RunTable1(cfg); err == nil {
		t.Fatal("invalid corpus config should error")
	}
	cfg = SmallTable1Config()
	cfg.K = 0
	if _, err := RunTable1(cfg); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestRunTheorem2InvalidConfig(t *testing.T) {
	cfg := SmallTheorem2Config()
	cfg.TermsPerTopic = 0
	if _, err := RunTheorem2(cfg); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestRunTheorem3InvalidEpsilon(t *testing.T) {
	cfg := SmallTheorem3Config()
	cfg.Epsilons = []float64{1.5}
	if _, err := RunTheorem3(cfg); err == nil {
		t.Fatal("eps >= 1 should error")
	}
}

func TestRunJLInvalidDimension(t *testing.T) {
	cfg := SmallJLConfig()
	cfg.Ls = []int{0}
	if _, err := RunJL(cfg); err == nil {
		t.Fatal("l=0 should error")
	}
	cfg = SmallJLConfig()
	cfg.Ls = []int{cfg.N + 1}
	if _, err := RunJL(cfg); err == nil {
		t.Fatal("l>n should error")
	}
}

func TestRunTheorem5InvalidK(t *testing.T) {
	cfg := SmallTheorem5Config()
	cfg.K = 0
	if _, err := RunTheorem5(cfg); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestRunSynonymyInvalidPairs(t *testing.T) {
	cfg := SmallSynonymyConfig()
	cfg.NumPairs = cfg.Corpus.NumTopics + 1
	if _, err := RunSynonymy(cfg); err == nil {
		t.Fatal("too many pairs should error")
	}
}

func TestRunTheorem6InvalidBlocks(t *testing.T) {
	cfg := SmallTheorem6Config()
	cfg.BlockSize = 1
	if _, err := RunTheorem6(cfg); err == nil {
		t.Fatal("block size 1 should error")
	}
}

func TestRunRetrievalInvalidCorpus(t *testing.T) {
	cfg := SmallRetrievalConfig()
	cfg.Corpus.MinLen = 0
	if _, err := RunRetrieval(cfg); err == nil {
		t.Fatal("invalid lengths should error")
	}
}

func TestRunCFInvalidGroups(t *testing.T) {
	cfg := SmallCFConfig()
	cfg.Groups = cfg.Items + 1
	if _, err := RunCF(cfg); err == nil {
		t.Fatal("groups > items should error")
	}
}

func TestRunMixtureInvalidAlpha(t *testing.T) {
	cfg := SmallMixtureConfig()
	cfg.Alpha = 0
	if _, err := RunMixture(cfg); err == nil {
		t.Fatal("alpha=0 should error")
	}
}

func TestRunStyleInvalidStrength(t *testing.T) {
	cfg := SmallStyleConfig()
	cfg.Strengths = []float64{2}
	if _, err := RunStyle(cfg); err == nil {
		t.Fatal("strength > 1 should error")
	}
}

func TestRunWeightingAblationInvalidCorpus(t *testing.T) {
	cfg := SmallTable1Config()
	cfg.Corpus.Epsilon = -1
	if _, err := RunWeightingAblation(cfg); err == nil {
		t.Fatal("invalid epsilon should error")
	}
}

func TestRunProjectionAblationInvalidCorpus(t *testing.T) {
	cfg := SmallTheorem5Config()
	cfg.Corpus.NumTopics = 0
	if _, err := RunProjectionAblation(cfg); err == nil {
		t.Fatal("invalid corpus should error")
	}
}
