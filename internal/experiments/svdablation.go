package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/sparse"
	"repro/internal/svd"
)

// LanczosDimAblationResult measures how the Golub–Kahan–Lanczos engine's
// accuracy depends on the bidiagonalization dimension p relative to the
// requested rank k — the "Lanczos dimension" ablation behind DESIGN.md §12's engine choice. At
// p = k the Krylov space barely contains the wanted invariant subspace;
// accuracy improves rapidly with the extra dimensions.
type LanczosDimAblationResult struct {
	K    int
	Rows []LanczosDimRow
}

// LanczosDimRow is one dimension's outcome.
type LanczosDimRow struct {
	P         int
	MaxRelErr float64 // vs dense reference over the top-k singular values
}

// RunLanczosDimAblation sweeps p on a corpus-model matrix.
func RunLanczosDimAblation(seed int64) (*LanczosDimAblationResult, error) {
	a, ref, err := ablationMatrix(seed)
	if err != nil {
		return nil, err
	}
	const k = 5
	out := &LanczosDimAblationResult{K: k}
	for _, p := range []int{k, k + 3, k + 10, 2*k + 20} {
		res, err := svd.Lanczos(a, k, svd.LanczosOptions{
			Dim:             p,
			Reorthogonalize: true,
			Rng:             rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, LanczosDimRow{P: p, MaxRelErr: maxRelErr(res.S, ref.S, k)})
	}
	return out, nil
}

// Table renders the sweep.
func (r *LanczosDimAblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: Lanczos dimension p vs top-%d accuracy (dense reference)\n", r.K)
	fmt.Fprintf(&b, "%6s %14s\n", "p", "max rel err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %14.3g\n", row.P, row.MaxRelErr)
	}
	return b.String()
}

// RandomizedParamAblationResult measures the randomized engine's accuracy
// against its two knobs: power iterations and oversampling.
type RandomizedParamAblationResult struct {
	K    int
	Rows []RandomizedParamRow
}

// RandomizedParamRow is one (power, oversample) cell.
type RandomizedParamRow struct {
	PowerIters int
	Oversample int
	MaxRelErr  float64
}

// RunRandomizedParamAblation sweeps the randomized-SVD parameters.
func RunRandomizedParamAblation(seed int64) (*RandomizedParamAblationResult, error) {
	a, ref, err := ablationMatrix(seed)
	if err != nil {
		return nil, err
	}
	const k = 5
	out := &RandomizedParamAblationResult{K: k}
	for _, power := range []int{1, 2, 6} {
		for _, over := range []int{2, 10} {
			res, err := svd.Randomized(a, k, svd.RandomizedOptions{
				PowerIters: power,
				Oversample: over,
				Rng:        rand.New(rand.NewSource(seed)),
			})
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, RandomizedParamRow{
				PowerIters: power, Oversample: over,
				MaxRelErr: maxRelErr(res.S, ref.S, k),
			})
		}
	}
	return out, nil
}

// Table renders the sweep.
func (r *RandomizedParamAblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: randomized SVD power iterations × oversampling vs top-%d accuracy\n", r.K)
	fmt.Fprintf(&b, "%8s %12s %14s\n", "power", "oversample", "max rel err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12d %14.3g\n", row.PowerIters, row.Oversample, row.MaxRelErr)
	}
	return b.String()
}

// ablationMatrix builds the shared corpus matrix and its dense reference
// decomposition.
func ablationMatrix(seed int64) (*sparse.CSR, *svd.Result, error) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 5, TermsPerTopic: 30, Epsilon: 0.05, MinLen: 40, MaxLen: 80,
	})
	if err != nil {
		return nil, nil, err
	}
	c, err := corpus.Generate(model, 120, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, nil, err
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ref, err := svd.Decompose(a.ToDense())
	if err != nil {
		return nil, nil, err
	}
	return a, ref, nil
}

// maxRelErr returns the worst relative singular-value error over the top k.
func maxRelErr(got, ref []float64, k int) float64 {
	var worst float64
	for i := 0; i < k; i++ {
		if i >= len(got) {
			return math.Inf(1)
		}
		if ref[i] > 0 {
			rel := math.Abs(got[i]-ref[i]) / ref[i]
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}
