package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/lsi"
	"repro/internal/mat"
	"repro/internal/randproj"
	"repro/internal/sparse"
)

// SamplingConfig parameterizes the Section 5 discussion experiment: "LSI is
// often done not on the entire corpus, but on a randomly selected
// subcorpus... There is very little nonempirical evidence of the accuracy
// of such sampling. Our result suggests a different and more elaborate
// approach — projection on a random low-dimensional subspace — which can be
// rigorously proved to be accurate." The experiment compares:
//
//   - full: rank-k LSI on the whole corpus (reference);
//   - sample-X%: rank-k LSI on a random X% document subcorpus, with the
//     remaining documents folded in (the literature's practice);
//   - projection: the paper's two-step method at l = O(log n/ε²).
//
// Each method is scored by the δ-skew of the resulting representation of
// ALL documents and by the recovered spectral energy vs the reference.
type SamplingConfig struct {
	Corpus      corpus.SeparableConfig
	NumDocs     int
	K           int
	SampleRates []float64 // fractions of documents kept for the SVD
	L           int       // projection dimension for the two-step method
	Seed        int64
}

// DefaultSamplingConfig compares 10/25/50% document samples with an l=100
// projection on a 10-topic corpus.
func DefaultSamplingConfig() SamplingConfig {
	return SamplingConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 10, TermsPerTopic: 50, Epsilon: 0.05, MinLen: 50, MaxLen: 100,
		},
		NumDocs:     500,
		K:           10,
		SampleRates: []float64{0.1, 0.25, 0.5},
		L:           100,
		Seed:        15,
	}
}

// SmallSamplingConfig is the test-sized variant.
func SmallSamplingConfig() SamplingConfig {
	return SamplingConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 4, TermsPerTopic: 20, Epsilon: 0.05, MinLen: 40, MaxLen: 70,
		},
		NumDocs:     120,
		K:           4,
		SampleRates: []float64{0.15, 0.5},
		L:           30,
		Seed:        15,
	}
}

// SamplingRow is one method's outcome.
type SamplingRow struct {
	Method string
	// Skew is the δ-skew of the method's representation of all documents.
	// Being a max-over-pairs statistic it is sensitive to the JL
	// distortion tail: a single badly-projected pair raises it, which is
	// exactly the trade-off the §5 discussion is about.
	Skew float64
	// IntraMean and InterMean are the mean intratopic and intertopic
	// angles (radians) of the representation — the Table 1 statistics.
	IntraMean, InterMean float64
	// EnergyFrac is the spectral energy of the method's document
	// representations relative to the full-LSI reference (‖V·D‖²_F ratio).
	EnergyFrac float64
}

// SamplingResult is the comparison output.
type SamplingResult struct {
	Config SamplingConfig
	Rows   []SamplingRow
}

// RunSampling builds all methods over one corpus and scores them.
func RunSampling(cfg SamplingConfig) (*SamplingResult, error) {
	model, err := corpus.PureSeparableModel(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c, err := corpus.Generate(model, cfg.NumDocs, rng)
	if err != nil {
		return nil, err
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	labels := c.Labels()
	out := &SamplingResult{Config: cfg}

	score := func(method string, reps *mat.Dense, energyFrac float64) SamplingRow {
		gram := lsi.GramFromRows(reps)
		set := lsi.PairAngles(gram, labels)
		intra, inter := set.Summaries()
		return SamplingRow{
			Method:     method,
			Skew:       lsi.SkewFromGram(gram, labels),
			IntraMean:  intra.Mean,
			InterMean:  inter.Mean,
			EnergyFrac: energyFrac,
		}
	}

	// Reference: full LSI.
	fullIx, err := lsi.Build(a, cfg.K, lsi.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	refEnergy := fullIx.DocVectors().Frob()
	refEnergy *= refEnergy
	out.Rows = append(out.Rows, score("full", fullIx.DocVectors(), 1))

	// Document-sampled LSI with fold-in of the rest.
	for _, rate := range cfg.SampleRates {
		if rate <= 0 || rate > 1 {
			return nil, fmt.Errorf("experiments: sample rate %v out of (0,1]", rate)
		}
		keep := int(rate * float64(cfg.NumDocs))
		if keep < cfg.K {
			keep = cfg.K
		}
		perm := rng.Perm(cfg.NumDocs)
		kept := append([]int(nil), perm[:keep]...)
		sub := columnSubset(a, kept)
		subIx, err := lsi.Build(sub, cfg.K, lsi.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		// Represent EVERY document (kept and held out) by folding into the
		// sampled basis, preserving corpus order.
		reps := mat.NewDense(cfg.NumDocs, subIx.K())
		for j := 0; j < cfg.NumDocs; j++ {
			reps.SetRow(j, subIx.Project(a.Col(j)))
		}
		energy := reps.Frob()
		out.Rows = append(out.Rows, score(
			fmt.Sprintf("sample-%d%%", int(rate*100)), reps, energy*energy/refEnergy))
	}

	// Random projection (two-step). The method keeps rank 2k for
	// reconstruction (Theorem 5), but for the k-dimensional skew comparison
	// against the other methods we score its top-k coordinates — the extra
	// k dimensions hold progressively noisier directions that would
	// penalize the max-over-pairs skew statistic without being used by a
	// k-dimensional retrieval system.
	ts, err := randproj.NewTwoStep(a, cfg.K, cfg.L, randproj.TwoStepOptions{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	dv := ts.DocVectors()
	topK := dv.SliceCols(0, min(cfg.K, dv.Cols()))
	energy := topK.Frob()
	out.Rows = append(out.Rows, score(
		fmt.Sprintf("projection-l%d", cfg.L), topK, energy*energy/refEnergy))
	return out, nil
}

// columnSubset extracts the given columns of a sparse matrix as a new
// sparse matrix (order preserved as given).
func columnSubset(a *sparse.CSR, cols []int) *sparse.CSR {
	n, _ := a.Dims()
	coo := sparse.NewCOO(n, len(cols))
	for newJ, j := range cols {
		col := a.Col(j)
		for i, v := range col {
			if v != 0 {
				coo.Add(i, newJ, v)
			}
		}
	}
	return coo.ToCSR()
}

// Table renders the comparison.
func (r *SamplingResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§5 discussion: document sampling vs random projection (k=%d, %d docs)\n",
		r.Config.K, r.Config.NumDocs)
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %14s\n", "method", "skew", "intra mean", "inter mean", "energy frac")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10.4f %12.4f %12.4f %13.1f%%\n",
			row.Method, row.Skew, row.IntraMean, row.InterMean, 100*row.EnergyFrac)
	}
	b.WriteString("\n(lower skew/intra-mean is better; energy relative to full-corpus LSI)\n")
	return b.String()
}
