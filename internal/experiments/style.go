package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/lsi"
)

// StyleConfig parameterizes the style-degradation experiment. The paper's
// Theorems 2 and 3 assume a style-free corpus model and flag the
// assumption as "probably too strong" future work; this experiment applies
// cross-topic styles of increasing strength (Definition 3) to a
// 0-separable corpus and measures how the rank-k LSI skew degrades —
// empirically, a style of strength s behaves like separability ε ≈ s.
type StyleConfig struct {
	Corpus         corpus.SeparableConfig
	NumDocs        int
	Strengths      []float64
	TargetsPerTerm int
	Seed           int64
}

// DefaultStyleConfig sweeps style strength on a 10-topic corpus.
func DefaultStyleConfig() StyleConfig {
	return StyleConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 10, TermsPerTopic: 50, Epsilon: 0, MinLen: 50, MaxLen: 100,
		},
		NumDocs:        400,
		Strengths:      []float64{0, 0.05, 0.1, 0.2, 0.4},
		TargetsPerTerm: 4,
		Seed:           16,
	}
}

// SmallStyleConfig is the test-sized variant.
func SmallStyleConfig() StyleConfig {
	return StyleConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 4, TermsPerTopic: 20, Epsilon: 0, MinLen: 40, MaxLen: 70,
		},
		NumDocs:        100,
		Strengths:      []float64{0, 0.1, 0.3},
		TargetsPerTerm: 3,
		Seed:           16,
	}
}

// StyleRow is one strength's measurement.
type StyleRow struct {
	Strength  float64
	LSISkew   float64
	IntraMean float64
	InterMean float64
}

// StyleResult is the sweep output.
type StyleResult struct {
	Config StyleConfig
	Rows   []StyleRow
}

// RunStyle sweeps cross-topic style strength over a 0-separable model.
func RunStyle(cfg StyleConfig) (*StyleResult, error) {
	out := &StyleResult{Config: cfg}
	for _, s := range cfg.Strengths {
		rng := rand.New(rand.NewSource(cfg.Seed))
		model, err := corpus.PureSeparableModel(cfg.Corpus)
		if err != nil {
			return nil, err
		}
		style, err := corpus.CrossTopicStyle(cfg.Corpus, s, cfg.TargetsPerTerm, rng)
		if err != nil {
			return nil, err
		}
		model.Styles = []*corpus.Style{style}
		sampler := corpus.NewPureSampler(cfg.Corpus.NumTopics, cfg.Corpus.MinLen, cfg.Corpus.MaxLen)
		sampler.StyleID = 0
		model.Sampler = sampler
		c, err := corpus.Generate(model, cfg.NumDocs, rng)
		if err != nil {
			return nil, err
		}
		a := corpus.TermDocMatrix(c, corpus.CountWeighting)
		labels := c.Labels()
		ix, err := lsi.Build(a, cfg.Corpus.NumTopics, lsi.Options{Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		set := ix.Angles(labels)
		intra, inter := set.Summaries()
		out.Rows = append(out.Rows, StyleRow{
			Strength:  s,
			LSISkew:   ix.Skew(labels),
			IntraMean: intra.Mean,
			InterMean: inter.Mean,
		})
	}
	return out, nil
}

// Table renders the sweep.
func (r *StyleResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Style degradation (Definition 3; Theorems 2/3 assume style-free): cross-topic style strength vs rank-%d LSI\n",
		r.Config.Corpus.NumTopics)
	fmt.Fprintf(&b, "%10s %10s %12s %12s\n", "strength", "skew", "intra mean", "inter mean")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10.3g %10.4f %12.4f %12.4f\n",
			row.Strength, row.LSISkew, row.IntraMean, row.InterMean)
	}
	return b.String()
}
