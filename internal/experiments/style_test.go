package experiments

import "testing"

func TestRunStyleSmall(t *testing.T) {
	res, err := RunStyle(SmallStyleConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Strength 0 reduces to the Theorem 2 regime: near-zero skew.
	if res.Rows[0].LSISkew > 0.1 {
		t.Fatalf("style-free skew %v", res.Rows[0].LSISkew)
	}
	// Degradation is monotone (weakly) in style strength, and a strong
	// cross-topic style visibly erodes separation.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].LSISkew < res.Rows[i-1].LSISkew-0.05 {
			t.Fatalf("skew not increasing with style strength: %v -> %v",
				res.Rows[i-1].LSISkew, res.Rows[i].LSISkew)
		}
	}
	if res.Rows[len(res.Rows)-1].LSISkew < res.Rows[0].LSISkew+0.1 {
		t.Fatalf("strong style barely degraded skew: %v vs %v",
			res.Rows[len(res.Rows)-1].LSISkew, res.Rows[0].LSISkew)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
