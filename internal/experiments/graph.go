package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/graphmodel"
)

// Theorem6Config parameterizes the graph-model experiment: planted
// partitions with an ε sweep of cross-block weight.
type Theorem6Config struct {
	Blocks    int
	BlockSize int
	IntraProb float64
	Epsilons  []float64
	Trials    int
	Seed      int64
}

// DefaultTheorem6Config sweeps ε from 0.01 to 0.4 on 4 blocks of 30.
func DefaultTheorem6Config() Theorem6Config {
	return Theorem6Config{
		Blocks: 4, BlockSize: 30, IntraProb: 0.7,
		Epsilons: []float64{0.01, 0.05, 0.1, 0.2, 0.4},
		Trials:   3,
		Seed:     9,
	}
}

// SmallTheorem6Config is the test-sized variant.
func SmallTheorem6Config() Theorem6Config {
	return Theorem6Config{
		Blocks: 3, BlockSize: 15, IntraProb: 0.8,
		Epsilons: []float64{0.02, 0.2},
		Trials:   2,
		Seed:     9,
	}
}

// Theorem6Row is one ε's averaged measurement.
type Theorem6Row struct {
	Epsilon       float64
	MeanAccuracy  float64
	MeanCrossFrac float64 // realized ε (should be ≤ configured)
	BlockConduct  float64 // min over blocks of sweep conductance (last trial)
	// LambdaK and LambdaK1 are the k-th and (k+1)-th eigenvalues of the
	// normalized adjacency (last trial). The Theorem 6 proof rests on the
	// top k staying near 1 (≥ 1−ε per block) with the rest bounded away by
	// a constant — the eigengap LambdaK − LambdaK1 certifies it.
	LambdaK, LambdaK1 float64
}

// Theorem6Result is the sweep output.
type Theorem6Result struct {
	Config Theorem6Config
	Rows   []Theorem6Row
}

// RunTheorem6 sweeps the cross-weight fraction and measures how well
// rank-k spectral analysis recovers the planted high-conductance blocks.
func RunTheorem6(cfg Theorem6Config) (*Theorem6Result, error) {
	out := &Theorem6Result{Config: cfg}
	for _, eps := range cfg.Epsilons {
		var accSum, crossSum, conduct float64
		var lambdaK, lambdaK1 float64
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(trial)))
			g, truth, err := graphmodel.Planted(graphmodel.PlantedConfig{
				Blocks: cfg.Blocks, BlockSize: cfg.BlockSize,
				IntraProb: cfg.IntraProb, Epsilon: eps,
			}, rng)
			if err != nil {
				return nil, err
			}
			pred, err := graphmodel.DiscoverTopics(g, cfg.Blocks, rng)
			if err != nil {
				return nil, err
			}
			accSum += graphmodel.ClusterAccuracy(pred, truth)
			crossSum += graphmodel.CrossFraction(g, truth)
			if trial == cfg.Trials-1 {
				conduct, err = graphmodel.BlockConductance(g, truth, cfg.Blocks)
				if err != nil {
					return nil, err
				}
				// Spectrum of the normalized adjacency around the cut index
				// k — the quantity the Theorem 6 proof reasons about.
				_, vals, err := graphmodel.SpectralEmbedding(g, min(cfg.Blocks+1, g.N()))
				if err != nil {
					return nil, err
				}
				if len(vals) > cfg.Blocks {
					lambdaK, lambdaK1 = vals[cfg.Blocks-1], vals[cfg.Blocks]
				}
			}
		}
		out.Rows = append(out.Rows, Theorem6Row{
			Epsilon:       eps,
			MeanAccuracy:  accSum / float64(cfg.Trials),
			MeanCrossFrac: crossSum / float64(cfg.Trials),
			BlockConduct:  conduct,
			LambdaK:       lambdaK,
			LambdaK1:      lambdaK1,
		})
	}
	return out, nil
}

// Table renders the sweep.
func (r *Theorem6Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 6: spectral discovery of %d high-conductance blocks vs cross weight eps\n", r.Config.Blocks)
	fmt.Fprintf(&b, "%8s %12s %14s %16s %8s %8s\n",
		"eps", "accuracy", "realized eps", "block conduct.", "λ_k", "λ_k+1")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.3g %12.4f %14.4f %16.3f %8.3f %8.3f\n",
			row.Epsilon, row.MeanAccuracy, row.MeanCrossFrac, row.BlockConduct,
			row.LambdaK, row.LambdaK1)
	}
	return b.String()
}
