package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/lsi"
	"repro/internal/mat"
	"repro/internal/perturb"
)

// Theorem2Config parameterizes the Theorem 2 validation: on pure,
// 0-separable corpora the rank-k LSI must be (near-)0-skewed, with the
// skew vanishing as the corpus grows.
type Theorem2Config struct {
	NumTopics      int
	TermsPerTopic  int
	DocCounts      []int // corpus sizes m to sweep
	MinLen, MaxLen int
	Engine         lsi.Engine
	Seed           int64
}

// DefaultTheorem2Config sweeps corpus sizes at k=10 topics.
func DefaultTheorem2Config() Theorem2Config {
	return Theorem2Config{
		NumTopics: 10, TermsPerTopic: 50,
		DocCounts: []int{100, 200, 400, 800},
		MinLen:    50, MaxLen: 100,
		Seed: 2,
	}
}

// SmallTheorem2Config is the test-sized variant.
func SmallTheorem2Config() Theorem2Config {
	return Theorem2Config{
		NumTopics: 4, TermsPerTopic: 20,
		DocCounts: []int{40, 120},
		MinLen:    40, MaxLen: 80,
		Seed: 2,
	}
}

// Theorem2Row is one corpus size's measurement.
type Theorem2Row struct {
	NumDocs      int
	LSISkew      float64
	OriginalSkew float64
}

// Theorem2Result is the sweep output.
type Theorem2Result struct {
	Config Theorem2Config
	Rows   []Theorem2Row
}

// RunTheorem2 sweeps corpus sizes on a 0-separable model.
func RunTheorem2(cfg Theorem2Config) (*Theorem2Result, error) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: cfg.NumTopics, TermsPerTopic: cfg.TermsPerTopic,
		Epsilon: 0, MinLen: cfg.MinLen, MaxLen: cfg.MaxLen,
	})
	if err != nil {
		return nil, err
	}
	out := &Theorem2Result{Config: cfg}
	for _, m := range cfg.DocCounts {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(m)))
		c, err := corpus.Generate(model, m, rng)
		if err != nil {
			return nil, err
		}
		a := corpus.TermDocMatrix(c, corpus.CountWeighting)
		labels := c.Labels()
		ix, err := lsi.Build(a, cfg.NumTopics, lsi.Options{Engine: cfg.Engine, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Theorem2Row{
			NumDocs:      m,
			LSISkew:      ix.Skew(labels),
			OriginalSkew: lsi.OriginalSkew(a, labels),
		})
	}
	return out, nil
}

// Table renders the sweep.
func (r *Theorem2Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 2: rank-%d LSI skew on 0-separable pure corpora (0 = perfect)\n", r.Config.NumTopics)
	fmt.Fprintf(&b, "%8s %12s %14s\n", "m docs", "LSI skew", "original skew")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %12.4g %14.4g\n", row.NumDocs, row.LSISkew, row.OriginalSkew)
	}
	return b.String()
}

// Theorem3Config parameterizes the ε sweep of Theorem 3: skew grows O(ε).
type Theorem3Config struct {
	NumTopics      int
	TermsPerTopic  int
	NumDocs        int
	Epsilons       []float64
	MinLen, MaxLen int
	Engine         lsi.Engine
	Seed           int64
}

// DefaultTheorem3Config sweeps ε from 0 to 0.3.
func DefaultTheorem3Config() Theorem3Config {
	return Theorem3Config{
		NumTopics: 10, TermsPerTopic: 50, NumDocs: 400,
		Epsilons: []float64{0, 0.025, 0.05, 0.1, 0.2, 0.3},
		MinLen:   50, MaxLen: 100,
		Seed: 3,
	}
}

// SmallTheorem3Config is the test-sized variant.
func SmallTheorem3Config() Theorem3Config {
	return Theorem3Config{
		NumTopics: 3, TermsPerTopic: 20, NumDocs: 60,
		Epsilons: []float64{0, 0.05, 0.2},
		MinLen:   40, MaxLen: 80,
		Seed: 3,
	}
}

// Theorem3Row is one ε's measurement.
type Theorem3Row struct {
	Epsilon float64
	LSISkew float64
}

// Theorem3Result is the sweep output.
type Theorem3Result struct {
	Config Theorem3Config
	Rows   []Theorem3Row
}

// RunTheorem3 sweeps the separability parameter ε.
func RunTheorem3(cfg Theorem3Config) (*Theorem3Result, error) {
	out := &Theorem3Result{Config: cfg}
	for _, eps := range cfg.Epsilons {
		model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
			NumTopics: cfg.NumTopics, TermsPerTopic: cfg.TermsPerTopic,
			Epsilon: eps, MinLen: cfg.MinLen, MaxLen: cfg.MaxLen,
		})
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		c, err := corpus.Generate(model, cfg.NumDocs, rng)
		if err != nil {
			return nil, err
		}
		a := corpus.TermDocMatrix(c, corpus.CountWeighting)
		ix, err := lsi.Build(a, cfg.NumTopics, lsi.Options{Engine: cfg.Engine, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, Theorem3Row{Epsilon: eps, LSISkew: ix.Skew(c.Labels())})
	}
	return out, nil
}

// Table renders the sweep.
func (r *Theorem3Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 3: rank-%d LSI skew vs separability eps (predicts O(eps))\n", r.Config.NumTopics)
	fmt.Fprintf(&b, "%8s %12s %12s\n", "eps", "LSI skew", "skew/eps")
	for _, row := range r.Rows {
		ratio := "-"
		if row.Epsilon > 0 {
			ratio = fmt.Sprintf("%12.3g", row.LSISkew/row.Epsilon)
		}
		fmt.Fprintf(&b, "%8.3g %12.4g %12s\n", row.Epsilon, row.LSISkew, ratio)
	}
	return b.String()
}

// Lemma1Config parameterizes the invariant-subspace stability experiment:
// a synthetic matrix with singular values clustered near σ₁ for the top k
// and near 0 for the rest (the lemma's hypothesis), perturbed by random F
// with ‖F‖₂ = ε.
type Lemma1Config struct {
	N        int // matrix is N×N
	K        int
	TopSigma []float64 // length K, the clustered top values
	LowSigma []float64 // trailing values near zero
	Epsilons []float64
	Trials   int
	Seed     int64
}

// DefaultLemma1Config mirrors Lemma 4's normalized setting (top values in
// [19/20·σ₁, σ₁], trailing below σ₁/20) at σ₁ = 1.
func DefaultLemma1Config() Lemma1Config {
	return Lemma1Config{
		N: 60, K: 3,
		TopSigma: []float64{1.0, 0.975, 0.95},
		LowSigma: []float64{0.05, 0.04, 0.03},
		Epsilons: []float64{0.001, 0.005, 0.01, 0.02, 0.05},
		Trials:   5,
		Seed:     4,
	}
}

// Lemma1Row is one ε's averaged measurement.
type Lemma1Row struct {
	Epsilon   float64
	MeanGNorm float64 // mean ‖G‖₂ over trials
	Ratio     float64 // MeanGNorm / Epsilon — Lemma 4 bounds this by 9
}

// Lemma1Result is the sweep output.
type Lemma1Result struct {
	Config Lemma1Config
	Rows   []Lemma1Row
}

// RunLemma1 sweeps perturbation sizes and reports the invariant-subspace
// residual ‖G‖₂ in U′ₖ = Uₖ·R + G.
func RunLemma1(cfg Lemma1Config) (*Lemma1Result, error) {
	if cfg.K != len(cfg.TopSigma) {
		return nil, fmt.Errorf("experiments: K=%d but %d top singular values", cfg.K, len(cfg.TopSigma))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sig := append(append([]float64(nil), cfg.TopSigma...), cfg.LowSigma...)
	a := randomWithSpectrum(cfg.N, cfg.N, sig, rng)
	uk, err := perturb.TopKBasis(a, cfg.K)
	if err != nil {
		return nil, err
	}
	out := &Lemma1Result{Config: cfg}
	for _, eps := range cfg.Epsilons {
		var sum float64
		for trial := 0; trial < cfg.Trials; trial++ {
			f, err := perturb.RandomWithNorm2(cfg.N, cfg.N, eps, rng)
			if err != nil {
				return nil, err
			}
			ukp, err := perturb.TopKBasis(mat.AddMat(a, f), cfg.K)
			if err != nil {
				return nil, err
			}
			al, err := perturb.Align(uk, ukp, rng)
			if err != nil {
				return nil, err
			}
			sum += al.GNorm2
		}
		mean := sum / float64(cfg.Trials)
		out.Rows = append(out.Rows, Lemma1Row{Epsilon: eps, MeanGNorm: mean, Ratio: mean / eps})
	}
	return out, nil
}

// Table renders the sweep.
func (r *Lemma1Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lemma 1/4: invariant subspace residual ‖G‖₂ under ‖F‖₂ = eps (bound: ‖G‖₂ ≤ 9eps)\n")
	fmt.Fprintf(&b, "%10s %14s %12s\n", "eps", "mean ‖G‖₂", "‖G‖₂/eps")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10.4g %14.4g %12.3g\n", row.Epsilon, row.MeanGNorm, row.Ratio)
	}
	return b.String()
}

// randomWithSpectrum builds an r×c matrix with prescribed leading singular
// values and random orthonormal factors.
func randomWithSpectrum(r, c int, sig []float64, rng *rand.Rand) *mat.Dense {
	k := len(sig)
	gu := mat.NewDense(r, k)
	for i := range gu.RawData() {
		gu.RawData()[i] = rng.NormFloat64()
	}
	u, _ := mat.QR(gu)
	gv := mat.NewDense(c, k)
	for i := range gv.RawData() {
		gv.RawData()[i] = rng.NormFloat64()
	}
	v, _ := mat.QR(gv)
	us := u.Clone()
	for i := 0; i < r; i++ {
		row := us.Row(i)
		for j := 0; j < k; j++ {
			row[j] *= sig[j]
		}
	}
	return mat.MulBT(us, v)
}
