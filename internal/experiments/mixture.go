package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/lsi"
	"repro/internal/stats"
)

// MixtureConfig probes the open question the paper states after Theorem 2:
// "Can Theorem 2 be extended to a model where documents could belong to
// several topics?" Documents mix up to MaxTopics topics with Dirichlet(α)
// weights; we measure how well the rank-k LSI representation still tracks
// topical composition, via the angle between pairs of documents as a
// function of the overlap of their topic weight vectors.
type MixtureConfig struct {
	Corpus    corpus.SeparableConfig
	NumDocs   int
	MaxTopics int
	Alpha     float64
	K         int
	Seed      int64
}

// DefaultMixtureConfig mixes up to 3 of 8 topics.
func DefaultMixtureConfig() MixtureConfig {
	return MixtureConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 8, TermsPerTopic: 40, Epsilon: 0.03, MinLen: 60, MaxLen: 100,
		},
		NumDocs:   300,
		MaxTopics: 3,
		Alpha:     0.8,
		K:         8,
		Seed:      12,
	}
}

// SmallMixtureConfig is the test-sized variant.
func SmallMixtureConfig() MixtureConfig {
	return MixtureConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 4, TermsPerTopic: 15, Epsilon: 0, MinLen: 50, MaxLen: 80,
		},
		NumDocs:   80,
		MaxTopics: 2,
		Alpha:     1,
		K:         4,
		Seed:      12,
	}
}

// MixtureResult buckets pairwise LSI angles by the cosine overlap of the
// pair's true topic-weight vectors: if LSI tracks topical composition, high
// topic overlap ⇒ small angle, zero overlap ⇒ near-orthogonal.
type MixtureResult struct {
	Config MixtureConfig
	// Buckets: topic-weight overlap in [0,0.25), [0.25,0.75), [0.75,1].
	LowOverlap, MidOverlap, HighOverlap stats.Summary
	// Correlation between topic-weight overlap and LSI cosine over pairs.
	Correlation float64
}

// RunMixture generates a mixed-membership corpus and relates LSI geometry
// to true topical overlap.
func RunMixture(cfg MixtureConfig) (*MixtureResult, error) {
	model, err := corpus.MixedSeparableModel(cfg.Corpus, cfg.MaxTopics, cfg.Alpha)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c, err := corpus.Generate(model, cfg.NumDocs, rng)
	if err != nil {
		return nil, err
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ix, err := lsi.Build(a, cfg.K, lsi.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	// True topic-weight vectors.
	k := cfg.Corpus.NumTopics
	tw := make([][]float64, cfg.NumDocs)
	for i, d := range c.Docs {
		w := make([]float64, k)
		for j, id := range d.Spec.TopicIDs {
			w[id] = d.Spec.TopicWeights[j]
		}
		tw[i] = w
	}
	gram := lsi.GramFromRows(ix.DocVectors())
	var low, mid, high []float64
	var xs, ys []float64
	for i := 0; i < cfg.NumDocs; i++ {
		for j := i + 1; j < cfg.NumDocs; j++ {
			overlap := cosine(tw[i], tw[j])
			gii, gjj := gram.At(i, i), gram.At(j, j)
			if gii <= 0 || gjj <= 0 {
				continue
			}
			cos := gram.At(i, j) / math.Sqrt(gii*gjj)
			xs = append(xs, overlap)
			ys = append(ys, cos)
			switch {
			case overlap < 0.25:
				low = append(low, cos)
			case overlap < 0.75:
				mid = append(mid, cos)
			default:
				high = append(high, cos)
			}
		}
	}
	return &MixtureResult{
		Config:      cfg,
		LowOverlap:  stats.Summarize(low),
		MidOverlap:  stats.Summarize(mid),
		HighOverlap: stats.Summarize(high),
		Correlation: pearson(xs, ys),
	}, nil
}

func cosine(x, y []float64) float64 {
	var xx, yy, xy float64
	for i := range x {
		xx += x[i] * x[i]
		yy += y[i] * y[i]
		xy += x[i] * y[i]
	}
	if xx == 0 || yy == 0 {
		return 0
	}
	return xy / math.Sqrt(xx*yy)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Table renders the bucketed comparison.
func (r *MixtureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mixed-topic extension (open question after Theorem 2): LSI cosine vs true topic overlap\n")
	fmt.Fprintf(&b, "%-22s %8s %10s %10s\n", "topic-weight overlap", "pairs", "mean cos", "std")
	fmt.Fprintf(&b, "%-22s %8d %10.4f %10.4f\n", "low    [0, 0.25)", r.LowOverlap.N, r.LowOverlap.Mean, r.LowOverlap.Std)
	fmt.Fprintf(&b, "%-22s %8d %10.4f %10.4f\n", "mid    [0.25, 0.75)", r.MidOverlap.N, r.MidOverlap.Mean, r.MidOverlap.Std)
	fmt.Fprintf(&b, "%-22s %8d %10.4f %10.4f\n", "high   [0.75, 1]", r.HighOverlap.N, r.HighOverlap.Mean, r.HighOverlap.Std)
	fmt.Fprintf(&b, "\nPearson correlation (overlap vs LSI cosine): %.4f\n", r.Correlation)
	return b.String()
}
