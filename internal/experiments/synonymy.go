package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/corpus"
	"repro/internal/lsi"
	"repro/internal/mat"
	"repro/internal/svd"
)

// SynonymyConfig parameterizes the Section 4 synonymy experiment: terms
// with identical co-occurrences are planted via a style that rewrites a
// term to itself or its synonym with probability 1/2.
type SynonymyConfig struct {
	Corpus   corpus.SeparableConfig
	NumPairs int
	NumDocs  int
	K        int
	Seed     int64
}

// DefaultSynonymyConfig plants 3 pairs in a 6-topic corpus.
func DefaultSynonymyConfig() SynonymyConfig {
	return SynonymyConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 6, TermsPerTopic: 30, Epsilon: 0.03, MinLen: 60, MaxLen: 100,
		},
		NumPairs: 3,
		NumDocs:  240,
		K:        6,
		Seed:     8,
	}
}

// SmallSynonymyConfig is the test-sized variant. Documents are long enough
// that each planted pair accumulates many occurrences — the paper's
// "identical co-occurrences" prediction is asymptotic, and the sampled
// difference vector converges to the trailing eigenvector at a 1/√count
// rate.
func SmallSynonymyConfig() SynonymyConfig {
	return SynonymyConfig{
		Corpus: corpus.SeparableConfig{
			NumTopics: 3, TermsPerTopic: 12, Epsilon: 0, MinLen: 150, MaxLen: 220,
		},
		NumPairs: 2,
		NumDocs:  120,
		K:        3,
		Seed:     8,
	}
}

// SynonymyPairResult reports the paper's predictions for one planted pair
// (a, b), whose difference direction is diff = (e_a − e_b)/√2:
//
//  1. diff carries very little singular mass: SigmaRatio = ‖Aᵀ·diff‖/σₖ is
//     small (the "very small eigenvalue" of AAᵀ in the paper's argument —
//     at finite corpus size the eigenvector mixes with neighbouring noise
//     directions, so the robust statement is about the Rayleigh quotient).
//  2. LSI "projects out" the difference: TailProjection, the norm of diff's
//     component outside the rank-k LSI space, is ≈ 1.
//  3. In the rank-k LSI space the two terms map to nearly parallel vectors:
//     LSICosine is the cosine between rows a and b of Uₖ. OriginalCosine is
//     the raw co-occurrence cosine of the two term rows of A for contrast.
//
// DiffAlignment and TrailingRank report the literal single-eigenvector
// reading (best |cos| against any eigenvector, position from the bottom of
// the spectrum); they approach 1 and 0 as the corpus grows.
type SynonymyPairResult struct {
	TermA, TermB   int
	SigmaRatio     float64
	TailProjection float64
	DiffAlignment  float64
	TrailingRank   int
	LSICosine      float64
	OriginalCosine float64
}

// SynonymyResult aggregates the per-pair measurements.
type SynonymyResult struct {
	Config SynonymyConfig
	Pairs  []SynonymyPairResult
}

// RunSynonymy builds a corpus with planted synonym pairs and tests both of
// the paper's synonymy predictions.
func RunSynonymy(cfg SynonymyConfig) (*SynonymyResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	model, pairs, err := corpus.SynonymSeparableModel(cfg.Corpus, cfg.NumPairs, rng)
	if err != nil {
		return nil, err
	}
	c, err := corpus.Generate(model, cfg.NumDocs, rng)
	if err != nil {
		return nil, err
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ad := a.ToDense()
	full, err := svd.Decompose(ad)
	if err != nil {
		return nil, err
	}
	ix, err := lsi.Build(a, cfg.K, lsi.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	uk := ix.Basis()
	n := model.NumTerms
	out := &SynonymyResult{Config: cfg}
	for _, p := range pairs {
		ta, tb := p[0], p[1]
		// Difference direction (e_a − e_b)/√2.
		diff := make([]float64, n)
		diff[ta] = 1 / math.Sqrt2
		diff[tb] = -1 / math.Sqrt2
		// Find the left singular vector best aligned with the difference,
		// searching from the bottom of the spectrum.
		bestAlign, bestRank := 0.0, -1
		for j := len(full.S) - 1; j >= 0; j-- {
			c := math.Abs(mat.Dot(diff, full.U.Col(j)))
			if c > bestAlign {
				bestAlign = c
				bestRank = len(full.S) - 1 - j
			}
		}
		// Singular mass of the difference direction relative to the
		// smallest retained topical direction.
		sigmaK := ix.SingularValues()[ix.K()-1]
		var sigmaRatio float64
		if sigmaK > 0 {
			sigmaRatio = mat.Norm(mulTVecCSR(a, diff)) / sigmaK
		}
		// Component of diff outside the LSI space.
		inLSI := mat.MulTVec(uk, diff)
		tail := math.Sqrt(math.Max(0, 1-mat.Dot(inLSI, inLSI)))
		pr := SynonymyPairResult{
			TermA: ta, TermB: tb,
			SigmaRatio:     sigmaRatio,
			TailProjection: tail,
			DiffAlignment:  bestAlign,
			TrailingRank:   bestRank,
			LSICosine:      mat.Cosine(uk.Row(ta), uk.Row(tb)),
			OriginalCosine: mat.Cosine(ad.Row(ta), ad.Row(tb)),
		}
		out.Pairs = append(out.Pairs, pr)
	}
	return out, nil
}

// mulTVecCSR applies Aᵀ to a dense vector via the sparse operator.
func mulTVecCSR(a interface {
	MulTVec(x []float64) []float64
}, x []float64) []float64 {
	return a.MulTVec(x)
}

// Table renders the per-pair report.
func (r *SynonymyResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Synonymy (§4): planted identical-co-occurrence pairs, rank-%d LSI\n", r.Config.K)
	fmt.Fprintf(&b, "%8s %8s %10s %10s %10s %10s %10s %12s\n",
		"term a", "term b", "σ ratio", "tail proj", "best align", "trail rank", "LSI cos", "original cos")
	for _, p := range r.Pairs {
		fmt.Fprintf(&b, "%8d %8d %10.4f %10.4f %10.4f %10d %10.4f %12.4f\n",
			p.TermA, p.TermB, p.SigmaRatio, p.TailProjection, p.DiffAlignment,
			p.TrailingRank, p.LSICosine, p.OriginalCosine)
	}
	b.WriteString("\n(σ ratio ≪ 1: the synonym difference carries little singular mass;\n")
	b.WriteString(" tail proj ≈ 1: LSI projects the difference out;\n")
	b.WriteString(" LSI cos ≈ 1: the synonyms collapse to one direction in the LSI space)\n")
	return b.String()
}
