package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestRunTable1Small(t *testing.T) {
	res, err := RunTable1(SmallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative shape: intratopic angles collapse in LSI
	// space; intertopic angles stay near π/2 on average.
	if res.LSIIntra.Mean >= res.OriginalIntra.Mean/2 {
		t.Fatalf("LSI intra mean %v not far below original %v", res.LSIIntra.Mean, res.OriginalIntra.Mean)
	}
	if res.LSIInter.Mean < 1.2 {
		t.Fatalf("LSI inter mean %v too small", res.LSIInter.Mean)
	}
	if res.OriginalInter.Mean < 1.3 {
		t.Fatalf("original inter mean %v unexpected", res.OriginalInter.Mean)
	}
	// Pair counts: 150 docs → C(150,2) pairs split between the sets.
	total := res.OriginalIntra.N + res.OriginalInter.N
	if total != 150*149/2 {
		t.Fatalf("pair count %d", total)
	}
	if len(res.SingularValues) != 5 {
		t.Fatalf("singular values %d", len(res.SingularValues))
	}
	tab := res.Table()
	for _, want := range []string{"Intratopic", "Intertopic", "Original space", "LSI space"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestRunTheorem2Small(t *testing.T) {
	res, err := RunTheorem2(SmallTheorem2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LSISkew > 0.2 {
			t.Fatalf("m=%d: LSI skew %v on 0-separable corpus", row.NumDocs, row.LSISkew)
		}
		if row.LSISkew >= row.OriginalSkew {
			t.Fatalf("m=%d: LSI skew %v >= original %v", row.NumDocs, row.LSISkew, row.OriginalSkew)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunTheorem3Small(t *testing.T) {
	res, err := RunTheorem3(SmallTheorem3Config())
	if err != nil {
		t.Fatal(err)
	}
	// Skew at ε=0 should be (near) the smallest; skew grows with ε.
	if res.Rows[0].LSISkew > res.Rows[len(res.Rows)-1].LSISkew {
		t.Fatalf("skew not increasing with eps: %v vs %v",
			res.Rows[0].LSISkew, res.Rows[len(res.Rows)-1].LSISkew)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunLemma1(t *testing.T) {
	cfg := DefaultLemma1Config()
	cfg.Epsilons = []float64{0.005, 0.02}
	cfg.Trials = 2
	res, err := RunLemma1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Lemma 4's bound with constant 9 (the σ scale here is ≈1).
		if row.Ratio > 9 {
			t.Fatalf("eps=%v: ratio %v exceeds Lemma 4 constant", row.Epsilon, row.Ratio)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
	bad := cfg
	bad.K = 2 // mismatched with 3 top sigmas
	if _, err := RunLemma1(bad); err == nil {
		t.Fatal("mismatched K should error")
	}
}

func TestRunJLSmall(t *testing.T) {
	res, err := RunJL(SmallJLConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Distortion must shrink as l grows.
	if res.Rows[1].Report.DistanceRatio.Std >= res.Rows[0].Report.DistanceRatio.Std {
		t.Fatalf("distortion did not shrink: %v -> %v",
			res.Rows[0].Report.DistanceRatio.Std, res.Rows[1].Report.DistanceRatio.Std)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunTheorem5Small(t *testing.T) {
	res, err := RunTheorem5(SmallTheorem5Config())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// B₂ₖ can never beat the rank-2k optimum, and must recover a
		// meaningful fraction of what direct LSI recovers.
		if row.TwoStepResid < 0 {
			t.Fatal("negative residual")
		}
		if row.RecoveredFrac <= 0 || row.RecoveredFrac > 1.5 {
			t.Fatalf("recovered fraction %v out of range", row.RecoveredFrac)
		}
	}
	// Higher l recovers more.
	if res.Rows[1].RecoveredFrac <= res.Rows[0].RecoveredFrac-0.05 {
		t.Fatalf("recovery did not improve with l: %v -> %v",
			res.Rows[0].RecoveredFrac, res.Rows[1].RecoveredFrac)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunRuntimeSmall(t *testing.T) {
	cfg := RuntimeConfig{
		Corpora: DefaultRuntimeConfig().Corpora[:2],
		NumDocs: DefaultRuntimeConfig().NumDocs[:2],
		K:       5, L: 40, Seed: 7,
	}
	res, err := RunRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.FullMillis <= 0 || row.DirectMillis <= 0 || row.TwoStepMillis <= 0 {
			t.Fatalf("non-positive timing %+v", row)
		}
		// The paper's headline: the two-step method is far cheaper than the
		// O(mnc) direct-LSI computation.
		if row.SpeedupVsFull < 2 {
			t.Fatalf("two-step speedup vs full SVD only %vx", row.SpeedupVsFull)
		}
		// Corollary 4 bounds the ratio below by ≈ (1−ε); above, tail energy
		// of A folded into l dimensions inflates it, so only sanity-cap it.
		if row.EnergyRatio < 0.7 || row.EnergyRatio > 3 {
			t.Fatalf("energy ratio %v outside [0.7,3]", row.EnergyRatio)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
	bad := cfg
	bad.NumDocs = bad.NumDocs[:1]
	if _, err := RunRuntime(bad); err == nil {
		t.Fatal("mismatched lengths should error")
	}
}

func TestRunSynonymySmall(t *testing.T) {
	res, err := RunSynonymy(SmallSynonymyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("pairs %d", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		// Prediction 1: the synonym difference direction carries little
		// singular mass relative to the retained topical directions.
		if p.SigmaRatio > 0.5 {
			t.Fatalf("pair (%d,%d): sigma ratio %v", p.TermA, p.TermB, p.SigmaRatio)
		}
		// Prediction 2: LSI projects the difference out almost entirely.
		if p.TailProjection < 0.95 {
			t.Fatalf("pair (%d,%d): tail projection %v", p.TermA, p.TermB, p.TailProjection)
		}
		// Prediction 3: the synonyms are nearly parallel in LSI space.
		if p.LSICosine < 0.98 {
			t.Fatalf("pair (%d,%d): LSI cosine %v", p.TermA, p.TermB, p.LSICosine)
		}
		// The literal single-eigenvector reading holds loosely at this
		// corpus size.
		if p.DiffAlignment < 0.5 {
			t.Fatalf("pair (%d,%d): best alignment %v", p.TermA, p.TermB, p.DiffAlignment)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunTheorem6Small(t *testing.T) {
	res, err := RunTheorem6(SmallTheorem6Config())
	if err != nil {
		t.Fatal(err)
	}
	// Small ε: near-perfect discovery. Accuracy decreases (weakly) with ε.
	if res.Rows[0].MeanAccuracy < 0.95 {
		t.Fatalf("accuracy %v at eps=%v", res.Rows[0].MeanAccuracy, res.Rows[0].Epsilon)
	}
	for _, row := range res.Rows {
		if row.MeanCrossFrac > row.Epsilon+1e-9 {
			t.Fatalf("realized cross fraction %v exceeds eps %v", row.MeanCrossFrac, row.Epsilon)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunRetrievalSmall(t *testing.T) {
	res, err := RunRetrieval(SmallRetrievalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.QueryCount == 0 {
		t.Fatal("no queries evaluated")
	}
	// The paper's claim: LSI beats the vector-space model under synonymy.
	// VSM only retrieves literal matches, so its recall is capped; LSI
	// retrieves the whole topic.
	if res.LSIRecallAtN <= res.VSMRecallAtN+0.1 {
		t.Fatalf("LSI R@%d %v did not clearly beat VSM %v",
			res.Config.TopN, res.LSIRecallAtN, res.VSMRecallAtN)
	}
	if res.LSIMAP <= res.VSMMAP+0.1 {
		t.Fatalf("LSI MAP %v did not clearly beat VSM %v", res.LSIMAP, res.VSMMAP)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunCFSmall(t *testing.T) {
	res, err := RunCF(SmallCFConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LSIRecall <= row.PopRecall {
			t.Fatalf("top-%d: LSI recall %v did not beat popularity %v",
				row.TopN, row.LSIRecall, row.PopRecall)
		}
	}
	// Ratings face of the claim: rank-k RMSE beats both mean baselines.
	if res.LSIRMSE >= res.UserMeanRMSE || res.LSIRMSE >= res.GlobalMeanRMSE {
		t.Fatalf("LSI RMSE %v not below baselines (user %v, global %v)",
			res.LSIRMSE, res.UserMeanRMSE, res.GlobalMeanRMSE)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunMixtureSmall(t *testing.T) {
	res, err := RunMixture(SmallMixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	// LSI geometry should track topical overlap: high-overlap pairs more
	// parallel than low-overlap pairs, positive correlation overall.
	if res.HighOverlap.N == 0 || res.LowOverlap.N == 0 {
		t.Fatalf("buckets empty: %+v", res)
	}
	if res.HighOverlap.Mean <= res.LowOverlap.Mean {
		t.Fatalf("high-overlap cos %v not above low-overlap %v",
			res.HighOverlap.Mean, res.LowOverlap.Mean)
	}
	if res.Correlation < 0.5 {
		t.Fatalf("correlation %v too weak", res.Correlation)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunWeightingAblation(t *testing.T) {
	res, err := RunWeightingAblation(SmallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// The paper's remark: the choice does not affect the result — every
	// weighting must give strong topic separation.
	for _, row := range res.Rows {
		if row.LSISkew > 0.35 {
			t.Fatalf("%v weighting: skew %v", row.Weighting, row.LSISkew)
		}
		if row.InterMean < 1.2 || row.IntraMean > 0.35 {
			t.Fatalf("%v weighting: intra %v inter %v", row.Weighting, row.IntraMean, row.InterMean)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunProjectionAblation(t *testing.T) {
	res, err := RunProjectionAblation(SmallTheorem5Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RecoveredFrac < 0.5 {
			t.Fatalf("%v projection recovered only %v", row.Kind, row.RecoveredFrac)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunEngineAblation(t *testing.T) {
	res, err := RunEngineAblation(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Name == "lanczos-noreorth" {
			continue // allowed to be inaccurate — that is the point
		}
		if math.IsInf(row.MaxRelErr, 1) || row.MaxRelErr > 1e-5 {
			t.Fatalf("engine %s error %v", row.Name, row.MaxRelErr)
		}
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
