package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/lsi"
	"repro/internal/randproj"
	"repro/internal/svd"
)

// WeightingAblationResult verifies the paper's Section 2 remark that the
// choice of count function ("0-1, frequency, etc.") does not affect the
// results: it reruns the Table 1 skew measurement under every weighting.
type WeightingAblationResult struct {
	Config Table1Config
	Rows   []WeightingRow
}

// WeightingRow is one weighting's skew outcome.
type WeightingRow struct {
	Weighting corpus.Weighting
	LSISkew   float64
	IntraMean float64
	InterMean float64
}

// RunWeightingAblation sweeps the weighting schemes on a fixed corpus.
func RunWeightingAblation(cfg Table1Config) (*WeightingAblationResult, error) {
	model, err := corpus.PureSeparableModel(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c, err := corpus.Generate(model, cfg.NumDocs, rng)
	if err != nil {
		return nil, err
	}
	labels := c.Labels()
	out := &WeightingAblationResult{Config: cfg}
	for _, w := range []corpus.Weighting{
		corpus.CountWeighting, corpus.BinaryWeighting, corpus.LogWeighting, corpus.TFIDFWeighting,
	} {
		a := corpus.TermDocMatrix(c, w)
		ix, err := lsi.Build(a, cfg.K, lsi.Options{Engine: cfg.Engine, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		set := ix.Angles(labels)
		intra, inter := set.Summaries()
		out.Rows = append(out.Rows, WeightingRow{
			Weighting: w, LSISkew: ix.Skew(labels),
			IntraMean: intra.Mean, InterMean: inter.Mean,
		})
	}
	return out, nil
}

// Table renders the ablation.
func (r *WeightingAblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (§2 remark): weighting scheme vs rank-%d LSI topic separation\n", r.Config.K)
	fmt.Fprintf(&b, "%-8s %10s %12s %12s\n", "scheme", "skew", "intra mean", "inter mean")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %10.4g %12.4g %12.4g\n", row.Weighting, row.LSISkew, row.IntraMean, row.InterMean)
	}
	return b.String()
}

// ProjectionAblationResult compares the three projection families on the
// Theorem 5 recovered-energy metric. The paper proves the theorem for the
// column-orthonormal family; the ablation shows Gaussian and sign behave
// alike.
type ProjectionAblationResult struct {
	Config Theorem5Config
	Rows   []ProjectionRow
}

// ProjectionRow is one family's outcome at a fixed l.
type ProjectionRow struct {
	Kind          randproj.Kind
	L             int
	RecoveredFrac float64
}

// RunProjectionAblation compares projection families at the middle of the
// configured l sweep.
func RunProjectionAblation(cfg Theorem5Config) (*ProjectionAblationResult, error) {
	model, err := corpus.PureSeparableModel(cfg.Corpus)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c, err := corpus.Generate(model, cfg.NumDocs, rng)
	if err != nil {
		return nil, err
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	l := cfg.Ls[len(cfg.Ls)/2]
	out := &ProjectionAblationResult{Config: cfg}
	for _, kind := range []randproj.Kind{randproj.Orthonormal, randproj.Gaussian, randproj.Sign} {
		ts, err := randproj.NewTwoStep(a, cfg.K, l, randproj.TwoStepOptions{Kind: kind, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		lhs, direct, frobSq, err := ts.Theorem5Residual(a, cfg.K)
		if err != nil {
			return nil, err
		}
		frac := 0.0
		if frobSq > direct {
			frac = (frobSq - lhs) / (frobSq - direct)
		}
		out.Rows = append(out.Rows, ProjectionRow{Kind: kind, L: l, RecoveredFrac: frac})
	}
	return out, nil
}

// Table renders the ablation.
func (r *ProjectionAblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation (§5): projection family vs two-step recovered energy\n")
	fmt.Fprintf(&b, "%-12s %6s %12s\n", "family", "l", "recovered")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %6d %11.1f%%\n", row.Kind, row.L, 100*row.RecoveredFrac)
	}
	return b.String()
}

// EngineAblationResult compares SVD engines on accuracy (vs the Jacobi
// reference) and wall time, on a corpus-model matrix.
type EngineAblationResult struct {
	Rows []EngineRow
}

// EngineRow is one engine's outcome.
type EngineRow struct {
	Name      string
	MaxRelErr float64 // vs Jacobi reference singular values (top k)
	Millis    float64
}

// RunEngineAblation compares the Golub–Reinsch, Lanczos (with and without
// reorthogonalization), and randomized engines against the Jacobi reference
// on a moderate corpus matrix.
func RunEngineAblation(seed int64) (*EngineAblationResult, error) {
	model, err := corpus.PureSeparableModel(corpus.SeparableConfig{
		NumTopics: 5, TermsPerTopic: 30, Epsilon: 0.05, MinLen: 40, MaxLen: 80,
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	c, err := corpus.Generate(model, 120, rng)
	if err != nil {
		return nil, err
	}
	a := corpus.TermDocMatrix(c, corpus.CountWeighting)
	ad := a.ToDense()
	const k = 5
	ref, err := svd.Jacobi(ad)
	if err != nil {
		return nil, err
	}
	out := &EngineAblationResult{}
	engines := []struct {
		name string
		run  func() (*svd.Result, error)
	}{
		{"golub-reinsch", func() (*svd.Result, error) { return svd.Decompose(ad) }},
		{"lanczos+reorth", func() (*svd.Result, error) {
			return svd.Lanczos(a, k, svd.LanczosOptions{Reorthogonalize: true, Rng: rand.New(rand.NewSource(seed))})
		}},
		{"lanczos-noreorth", func() (*svd.Result, error) {
			return svd.Lanczos(a, k, svd.LanczosOptions{Reorthogonalize: false, Rng: rand.New(rand.NewSource(seed))})
		}},
		{"randomized", func() (*svd.Result, error) {
			return svd.Randomized(a, k, svd.RandomizedOptions{Rng: rand.New(rand.NewSource(seed))})
		}},
	}
	for _, e := range engines {
		start := time.Now()
		res, err := e.run()
		ms := float64(time.Since(start).Microseconds()) / 1000
		if err != nil {
			return nil, fmt.Errorf("experiments: engine %s: %w", e.name, err)
		}
		var worst float64
		for i := 0; i < k && i < len(res.S) && i < len(ref.S); i++ {
			if ref.S[i] > 0 {
				rel := math.Abs(res.S[i]-ref.S[i]) / ref.S[i]
				if rel > worst {
					worst = rel
				}
			}
		}
		if len(res.S) < k {
			worst = math.Inf(1) // engine failed to produce k triplets
		}
		out.Rows = append(out.Rows, EngineRow{Name: e.name, MaxRelErr: worst, Millis: ms})
	}
	return out, nil
}

// Table renders the ablation.
func (r *EngineAblationResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: SVD engine accuracy (vs one-sided Jacobi) and time\n")
	fmt.Fprintf(&b, "%-18s %14s %10s\n", "engine", "max rel err", "ms")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %14.3g %10.2f\n", row.Name, row.MaxRelErr, row.Millis)
	}
	return b.String()
}
