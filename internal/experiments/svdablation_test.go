package experiments

import "testing"

func TestRunLanczosDimAblation(t *testing.T) {
	res, err := RunLanczosDimAblation(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Accuracy at the largest p must be excellent; the sweep must be
	// (weakly) improving from the smallest to the largest dimension.
	last := res.Rows[len(res.Rows)-1]
	if last.MaxRelErr > 1e-8 {
		t.Fatalf("p=%d err %v", last.P, last.MaxRelErr)
	}
	first := res.Rows[0]
	if first.MaxRelErr < last.MaxRelErr {
		t.Fatalf("p=k err %v below p=max err %v — sweep inverted?", first.MaxRelErr, last.MaxRelErr)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunRandomizedParamAblation(t *testing.T) {
	res, err := RunRandomizedParamAblation(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// The heaviest configuration must reach near machine precision; the
	// lightest must still be a usable approximation.
	var best, worst float64
	for _, row := range res.Rows {
		if row.PowerIters == 6 && row.Oversample == 10 {
			best = row.MaxRelErr
		}
		if row.PowerIters == 1 && row.Oversample == 2 {
			worst = row.MaxRelErr
		}
	}
	if best > 1e-8 {
		t.Fatalf("heavy config err %v", best)
	}
	if worst > 0.2 {
		t.Fatalf("light config err %v — not even a rough approximation", worst)
	}
	if best > worst {
		t.Fatal("heavy config worse than light config")
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}
