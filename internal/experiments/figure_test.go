package experiments

import (
	"strings"
	"testing"
)

func TestRunTable1WithFigure(t *testing.T) {
	res, fig, err := RunTable1WithFigure(SmallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	// Summary values must match the plain run (same seed).
	plain, err := RunTable1(SmallTable1Config())
	if err != nil {
		t.Fatal(err)
	}
	if res.LSISkew != plain.LSISkew || res.LSIIntra.Mean != plain.LSIIntra.Mean {
		t.Fatal("figure run diverged from plain run under the same seed")
	}
	// Figure content sanity: all four populations present, bars drawn.
	for _, want := range []string{
		"Intratopic, original space",
		"Intratopic, LSI space",
		"Intertopic, original space",
		"Intertopic, LSI space",
		"#",
	} {
		if !strings.Contains(fig, want) {
			t.Fatalf("figure missing %q:\n%s", want, fig)
		}
	}
	// In the LSI space, the intratopic histogram's first bin must dominate
	// (mass collapses to ≈0); check the rendered section has its largest
	// bar on the first line.
	lines := strings.Split(fig, "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "Intratopic, LSI space") {
			first := strings.Count(lines[i+1], "#")
			for j := i + 2; j < len(lines) && strings.Contains(lines[j], "|"); j++ {
				if strings.Count(lines[j], "#") > first {
					t.Fatal("LSI intratopic mass not concentrated in the first bin")
				}
			}
			return
		}
	}
	t.Fatal("LSI intratopic section not found")
}

func TestRenderHistogramEmpty(t *testing.T) {
	out := renderHistogram("empty", nil)
	if !strings.Contains(out, "(empty)") {
		t.Fatalf("empty histogram rendering: %q", out)
	}
}
