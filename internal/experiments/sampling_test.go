package experiments

import "testing"

func TestRunSamplingSmall(t *testing.T) {
	res, err := RunSampling(SmallSamplingConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: full + 2 sample rates + projection.
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	byMethod := map[string]SamplingRow{}
	for _, row := range res.Rows {
		byMethod[row.Method] = row
	}
	full := byMethod["full"]
	if full.Skew > 0.35 || full.EnergyFrac != 1 {
		t.Fatalf("full row %+v", full)
	}
	// The provable guarantees are about average geometry and spectral
	// energy (Lemma 2 / Theorem 5), not the worst pair: projection must
	// track the full-LSI mean angles and energy.
	proj := byMethod["projection-l30"]
	if proj.IntraMean > full.IntraMean+0.3 {
		t.Fatalf("projection intra mean %v far above full %v", proj.IntraMean, full.IntraMean)
	}
	if proj.InterMean < 1.2 {
		t.Fatalf("projection inter mean %v", proj.InterMean)
	}
	if proj.EnergyFrac < 0.75 {
		t.Fatalf("projection energy %v", proj.EnergyFrac)
	}
	// Sampling quality improves with the rate (the §5 point: small samples
	// are unreliable compared to projection).
	s15 := byMethod["sample-15%"]
	s50 := byMethod["sample-50%"]
	if s50.Skew > s15.Skew+0.1 {
		t.Fatalf("50%% sample skew %v worse than 15%% sample %v", s50.Skew, s15.Skew)
	}
	if res.Table() == "" {
		t.Fatal("empty table")
	}
}

func TestRunSamplingInvalidRate(t *testing.T) {
	cfg := SmallSamplingConfig()
	cfg.SampleRates = []float64{0}
	if _, err := RunSampling(cfg); err == nil {
		t.Fatal("rate 0 should error")
	}
	cfg.SampleRates = []float64{1.5}
	if _, err := RunSampling(cfg); err == nil {
		t.Fatal("rate > 1 should error")
	}
}
